//! A small open-addressed hash map for the simulator's hot paths.
//!
//! `std::collections::HashMap` pays SipHash plus per-lookup hasher
//! state for DoS resistance the simulator does not need: every key is
//! an internal simulation identifier (VPN, translation key), never
//! attacker-controlled. [`FastMap`] instead uses a fixed 64-bit mixer
//! over [`FastKey::hash64`], linear probing over a power-of-two slot
//! array, and backward-shift deletion (no tombstones), which keeps
//! probe chains short no matter how many insert/remove cycles the
//! translate path performs.
//!
//! Iteration order is unspecified (it follows the slot array), so
//! callers must only iterate for order-independent aggregation.

/// Keys usable in a [`FastMap`]: cheap to copy, comparable, and able
/// to produce a well-distributed 64-bit hash of themselves.
pub trait FastKey: Copy + Eq {
    /// A 64-bit value identifying this key. It does not need to be
    /// avalanched — [`FastMap`] runs it through a finalizer — but
    /// distinct keys must produce distinct values for the map to
    /// distinguish them cheaply (equality is still checked on probe).
    fn hash64(self) -> u64;
}

impl FastKey for u64 {
    fn hash64(self) -> u64 {
        self
    }
}

impl FastKey for u32 {
    fn hash64(self) -> u64 {
        self as u64
    }
}

impl FastKey for usize {
    fn hash64(self) -> u64 {
        self as u64
    }
}

/// SplitMix64 finalizer: full-avalanche mix of a 64-bit value.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An open-addressed hash map with linear probing and backward-shift
/// deletion.
///
/// # Example
///
/// ```
/// use gtr_sim::fastmap::FastMap;
///
/// let mut m: FastMap<u64, u32> = FastMap::with_capacity(16);
/// m.insert(7, 700);
/// *m.get_or_insert(7, 0) += 1;
/// assert_eq!(m.get(7), Some(&701));
/// assert_eq!(m.remove(7), Some(701));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FastMap<K: FastKey, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
}

impl<K: FastKey, V> Default for FastMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: FastKey, V> FastMap<K, V> {
    /// An empty map with the minimum slot array.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty map pre-sized to hold `cap` entries without growing.
    pub fn with_capacity(cap: usize) -> Self {
        // Keep load factor <= 3/4 at `cap` entries.
        let slots = (cap * 4 / 3 + 1).next_power_of_two().max(8);
        Self { slots: (0..slots).map(|_| None).collect(), len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the slot array.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Finds `key`'s slot: `(index, true)` when present, or the empty
    /// slot where it would be inserted `(index, false)`. The load
    /// factor bound guarantees an empty slot exists.
    #[inline]
    fn probe(&self, key: K) -> (usize, bool) {
        let mask = self.mask();
        let mut i = (mix(key.hash64()) as usize) & mask;
        loop {
            match &self.slots[i] {
                None => return (i, false),
                Some((k, _)) if *k == key => return (i, true),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow_if_needed(&mut self) {
        if (self.len + 1) * 4 <= self.slots.len() * 3 {
            return;
        }
        let bigger = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, (0..bigger).map(|_| None).collect());
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }

    /// A reference to `key`'s value, if present.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        let (i, found) = self.probe(key);
        if found { self.slots[i].as_ref().map(|(_, v)| v) } else { None }
    }

    /// A mutable reference to `key`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let (i, found) = self.probe(key);
        if found { self.slots[i].as_mut().map(|(_, v)| v) } else { None }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.probe(key).1
    }

    /// Presence bitmask for a small batch of keys: bit `i` is set when
    /// `keys[i]` is in the map.
    ///
    /// The batch runs as two struct-of-arrays passes: one fixed-trip
    /// loop hashing every key (vectorizable — the SplitMix64 finalizer
    /// is straight-line multiply/xor work) and one probe loop over the
    /// precomputed home slots, so consecutive probes overlap their
    /// cache misses instead of serializing hash→probe→hash→probe as
    /// repeated [`Self::contains`] calls would.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > 64` (one wavefront's deduped lanes).
    pub fn contains_many(&self, keys: &[K]) -> u64 {
        assert!(keys.len() <= 64, "batch wider than a wavefront");
        let mask = self.mask();
        let mut homes = [0usize; 64];
        for (h, &k) in homes.iter_mut().zip(keys) {
            *h = (mix(k.hash64()) as usize) & mask;
        }
        let mut present = 0u64;
        for (i, (&home, &key)) in homes.iter().zip(keys).enumerate() {
            let mut j = home;
            loop {
                match &self.slots[j] {
                    None => break,
                    Some((k, _)) if *k == key => {
                        present |= 1 << i;
                        break;
                    }
                    _ => j = (j + 1) & mask,
                }
            }
        }
        present
    }

    /// Inserts `key -> value`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.grow_if_needed();
        let (i, found) = self.probe(key);
        if found {
            let (_, v) = self.slots[i].as_mut().expect("probed occupied slot");
            Some(std::mem::replace(v, value))
        } else {
            self.slots[i] = Some((key, value));
            self.len += 1;
            None
        }
    }

    /// A mutable reference to `key`'s value, inserting `default` first
    /// when absent (the hot-path replacement for `entry().or_insert`).
    #[inline]
    pub fn get_or_insert(&mut self, key: K, default: V) -> &mut V {
        self.grow_if_needed();
        let (i, found) = self.probe(key);
        if !found {
            self.slots[i] = Some((key, default));
            self.len += 1;
        }
        &mut self.slots[i].as_mut().expect("slot just filled").1
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// Uses backward-shift deletion: subsequent probe-chain entries are
    /// moved up so no tombstones accumulate.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let (mut hole, found) = self.probe(key);
        if !found {
            return None;
        }
        let (_, value) = self.slots[hole].take().expect("probed occupied slot");
        self.len -= 1;
        let mask = self.mask();
        let mut j = (hole + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            let ideal = (mix(k.hash64()) as usize) & mask;
            // Shift `j` into the hole iff the hole lies between the
            // entry's ideal slot and its current one (cyclically) —
            // i.e. the entry's probe chain passes over the hole.
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & mask;
        }
        Some(value)
    }

    /// Keeps only entries for which `f` returns true.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        // Rebuild in place: drain every entry and re-insert survivors.
        // O(capacity) — fine for the rare purge paths that call this.
        let entries: Vec<(K, V)> = self.slots.iter_mut().filter_map(Option::take).collect();
        self.len = 0;
        for (k, mut v) in entries {
            if f(&k, &mut v) {
                self.insert(k, v);
            }
        }
    }

    /// Iterates over values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(_, v)| v))
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: FastMap<u64, u64> = FastMap::new();
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.get(2), None);
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn get_or_insert_matches_entry_semantics() {
        let mut m: FastMap<u64, u8> = FastMap::new();
        *m.get_or_insert(5, 0) |= 0b01;
        *m.get_or_insert(5, 0) |= 0b10;
        assert_eq!(m.get(5), Some(&0b11));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: FastMap<u64, usize> = FastMap::with_capacity(4);
        for i in 0..1000u64 {
            m.insert(i, i as usize * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i), Some(&(i as usize * 3)), "key {i}");
        }
    }

    /// A key type whose hash collapses to 4 buckets: every operation
    /// exercises long probe chains and backward-shift deletion.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Colliding(u64);
    impl FastKey for Colliding {
        fn hash64(self) -> u64 {
            self.0 % 4
        }
    }

    #[test]
    fn backward_shift_keeps_chains_reachable() {
        let mut m: FastMap<Colliding, u64> = FastMap::new();
        for i in 0..32 {
            m.insert(Colliding(i), i * 100);
        }
        // Remove every other entry, then verify the survivors.
        for i in (0..32).step_by(2) {
            assert_eq!(m.remove(Colliding(i)), Some(i * 100));
        }
        for i in 0..32 {
            let expect = if i % 2 == 0 { None } else { Some(&(i * 100)) };
            assert_eq!(m.get(Colliding(i)), expect, "key {i}");
        }
        assert_eq!(m.len(), 16);
    }

    #[test]
    fn randomized_against_std_hashmap() {
        let mut rng = SplitMix64::new(0xFA57);
        let mut fast: FastMap<u64, u64> = FastMap::new();
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            let key = rng.next_below(512); // small key space forces reuse
            match rng.next_below(4) {
                0 | 1 => {
                    let v = rng.next_u64();
                    assert_eq!(fast.insert(key, v), std_map.insert(key, v));
                }
                2 => assert_eq!(fast.remove(key), std_map.remove(&key)),
                _ => assert_eq!(fast.get(key), std_map.get(&key)),
            }
            assert_eq!(fast.len(), std_map.len());
        }
        let mut fast_pairs: Vec<(u64, u64)> = fast.iter().map(|(k, v)| (*k, *v)).collect();
        let mut std_pairs: Vec<(u64, u64)> = std_map.iter().map(|(k, v)| (*k, *v)).collect();
        fast_pairs.sort_unstable();
        std_pairs.sort_unstable();
        assert_eq!(fast_pairs, std_pairs);
    }

    #[test]
    fn contains_many_matches_contains() {
        let mut rng = SplitMix64::new(0xBA7C);
        let mut m: FastMap<u64, u64> = FastMap::new();
        for _ in 0..300 {
            m.insert(rng.next_below(512), 0);
        }
        let batch: Vec<u64> = (0..64).map(|_| rng.next_below(512)).collect();
        for width in [0, 1, 7, 64] {
            let keys = &batch[..width];
            let mask = m.contains_many(keys);
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(mask & (1 << i) != 0, m.contains(k), "key {k} at lane {i}");
            }
            if width < 64 {
                assert_eq!(mask >> width, 0, "no stray bits past the batch");
            }
        }
    }

    #[test]
    #[should_panic(expected = "wavefront")]
    fn contains_many_rejects_wide_batches() {
        let m: FastMap<u64, u64> = FastMap::new();
        m.contains_many(&[0; 65]);
    }

    #[test]
    fn retain_drops_matching_entries() {
        let mut m: FastMap<u64, u64> = FastMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        m.retain(|_, v| *v % 3 == 0);
        assert_eq!(m.len(), 34);
        assert_eq!(m.values().copied().max(), Some(99));
        assert!(m.get(1).is_none());
        assert_eq!(m.get(99), Some(&99));
    }

    #[test]
    fn clear_keeps_working() {
        let mut m: FastMap<u64, u64> = FastMap::with_capacity(64);
        for i in 0..50 {
            m.insert(i, i);
        }
        m.clear();
        assert!(m.is_empty());
        m.insert(7, 70);
        assert_eq!(m.get(7), Some(&70));
    }
}
