//! # gtr-core
//!
//! The primary contribution of *"Increasing GPU Translation Reach by
//! Leveraging Under-Utilized On-Chip Resources"* (MICRO'21): a
//! reconfigurable architecture that opportunistically stores L1-TLB
//! victim translations in idle LDS segments and idle I-cache lines,
//! organized as a victim cache between the L1 and L2 TLBs.
//!
//! * [`config`] — the [`config::ReachConfig`] knob set (which
//!   structures participate, packing density, replacement policy,
//!   kernel-boundary flush, wire latency, LDS segment size).
//! * [`compress`] — base-delta tag compression (Figs 7 and 10c).
//! * [`lds_tx`] — reconfigurable LDS: 32-byte segments with mode bits,
//!   co-located compressed tags + 3-way translation storage (§4.2).
//! * [`icache_tx`] — reconfigurable I-cache: per-line mode bits,
//!   direct-mapped Tx indexing, 1 or 8 translations per line,
//!   instruction-aware replacement, kernel-boundary flush (§4.3).
//! * [`driver`] — runtime page migrations + TLB shootdowns (§7.1).
//! * [`obs`] — opt-in distribution recording (per-path latency
//!   histograms, IOMMU walk-latency tagging, victim-entry
//!   lifetime/reuse tracking) behind the schema-v2 stats export.
//! * [`victim`] — the fill/lookup flows of Figure 12.
//! * [`system`] — the full timing simulator (CUs, wavefronts, TLBs,
//!   IOMMU, caches, DRAM) that every experiment harness drives.
//! * [`stats`] — per-run and per-kernel measurements behind every
//!   figure in the paper.
//!
//! # Example: baseline vs reconfigurable run
//!
//! ```
//! use gtr_core::config::ReachConfig;
//! use gtr_core::system::System;
//! use gtr_gpu::config::GpuConfig;
//! use gtr_gpu::kernel::{AppTrace, KernelDesc, WaveProgram, WorkgroupDesc};
//! use gtr_gpu::ops::Op;
//!
//! let wave = WaveProgram::new(vec![Op::global_read_strided(0, 4096, 64)]);
//! let app = AppTrace::new(
//!     "tiny",
//!     vec![KernelDesc::new("k", 4, 0, vec![WorkgroupDesc::new(vec![wave])])],
//! );
//! let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
//! let reach = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
//! assert!(reach.total_cycles <= base.total_cycles * 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod checkpoint;
pub mod compress;
pub mod config;
pub mod driver;
pub mod export;
pub mod icache_tx;
pub mod lds_tx;
pub mod obs;
pub mod stats;
pub mod system;
pub mod victim;
