//! Quickstart: build a Table-1 GPU, run the GUPS micro-benchmark, and
//! compare the baseline against the reconfigurable IC+LDS design.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn main() {
    // 1. Pick a workload. GUPS issues uniform random read-modify-write
    //    updates over a 256 MB table: the TLB worst case.
    let app = suite::by_name("GUPS", Scale::quick()).expect("GUPS is in the suite");
    println!("workload: {} ({} kernels, {} wave-ops)", app.name(), app.kernels().len(), app.total_ops());

    // 2. Run the unmodified Table-1 baseline GPU.
    let baseline = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
    println!(
        "baseline:  {:>10} cycles | {:>6} page walks | L1 TLB {:>5.1}% | L2 TLB {:>5.1}%",
        baseline.total_cycles,
        baseline.page_walks,
        baseline.l1_hit_ratio() * 100.0,
        baseline.l2_hit_ratio() * 100.0,
    );

    // 3. Switch on the paper's reconfigurable architecture: idle LDS
    //    segments and idle I-cache lines become a TLB victim cache.
    let reach = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    println!(
        "IC+LDS:    {:>10} cycles | {:>6} page walks | victim hits {} (LDS {} / IC {})",
        reach.total_cycles,
        reach.page_walks,
        reach.victim_hits(),
        reach.lds_tx.hits,
        reach.ic_tx.hits,
    );

    // 4. Report the headline numbers.
    let speedup = baseline.total_cycles as f64 / reach.total_cycles as f64;
    println!(
        "speedup: {:.2}x ({:+.1}%) | walks: {:.1}% of baseline | peak extra reach: {} entries",
        speedup,
        (speedup - 1.0) * 100.0,
        reach.page_walks as f64 * 100.0 / baseline.page_walks.max(1) as f64,
        reach.peak_tx_entries,
    );
}
