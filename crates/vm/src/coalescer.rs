//! SIMT memory-access coalescing.
//!
//! A single wavefront instruction issues up to 64 lane addresses. The
//! hardware coalescer merges lanes that touch the same page before the
//! L1 TLB (reducing translation traffic) and lanes that touch the same
//! 64-byte line before the data cache (reducing data traffic). In the
//! worst case — the paper's §2 motivating scenario — all 64 lanes
//! touch 64 distinct pages and generate 64 distinct translation
//! requests, which is exactly the irregular traffic the §4.2/§4.3
//! victim structures are sized to absorb.

use crate::addr::{PageSize, VirtAddr, Vpn};

/// Result of coalescing one wavefront memory instruction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoalescedAccess {
    /// Unique virtual pages touched, in first-lane order.
    pub pages: Vec<Vpn>,
    /// Unique 64-byte virtual lines touched, in first-lane order.
    pub lines: Vec<u64>,
    /// For each entry of `lines`, the index into `pages` of the page
    /// containing it — computed during coalescing so consumers pairing
    /// per-line work with per-page results index directly instead of
    /// re-searching `pages` for every line.
    pub line_pages: Vec<u32>,
    /// Number of active lanes that contributed.
    pub active_lanes: usize,
}

impl CoalescedAccess {
    /// Coalesces the active lanes of one memory instruction.
    pub fn from_lanes(addrs: &[VirtAddr], page_size: PageSize) -> Self {
        let mut out = Self::default();
        out.assign_from_lanes(addrs, page_size);
        out
    }

    /// Coalesces into `self`, reusing its `pages`/`lines` buffers so a
    /// hot loop issuing millions of accesses allocates nothing.
    pub fn assign_from_lanes(&mut self, addrs: &[VirtAddr], page_size: PageSize) {
        self.pages.clear();
        self.lines.clear();
        self.line_pages.clear();
        if addrs.len() > LANE_SET_SLOTS / 2 {
            // Wider than a hardware wavefront: keep the simple scan.
            for &a in addrs {
                let vpn = a.vpn(page_size);
                let page_idx = match self.pages.iter().position(|&p| p == vpn) {
                    Some(i) => i as u32,
                    None => {
                        self.pages.push(vpn);
                        (self.pages.len() - 1) as u32
                    }
                };
                let line = a.line();
                if !self.lines.contains(&line) {
                    self.lines.push(line);
                    self.line_pages.push(page_idx);
                }
            }
        } else {
            // Membership lives in two stack-resident open-addressed
            // tables (≤64 lanes → ≤50% load) instead of rescanning the
            // output vectors per lane; push order stays first-lane.
            let mut page_set = LaneSet::new();
            let mut line_set = LaneSet::new();
            for &a in addrs {
                let vpn = a.vpn(page_size);
                let page_idx = match page_set.insert(vpn.0, self.pages.len() as u32) {
                    None => {
                        self.pages.push(vpn);
                        (self.pages.len() - 1) as u32
                    }
                    Some(existing) => existing,
                };
                let line = a.line();
                if line_set.insert(line, self.lines.len() as u32).is_none() {
                    self.lines.push(line);
                    self.line_pages.push(page_idx);
                }
            }
        }
        self.active_lanes = addrs.len();
    }

    /// Pages per lane — 1.0 means fully divergent, 1/64 fully coalesced.
    pub fn page_divergence(&self) -> f64 {
        if self.active_lanes == 0 {
            0.0
        } else {
            self.pages.len() as f64 / self.active_lanes as f64
        }
    }
}

/// Slot count of the per-instruction lane-dedup tables. Twice the
/// 64-lane wavefront width, so load never exceeds 50%.
const LANE_SET_SLOTS: usize = 128;

/// Empty-slot sentinel. VPNs and line indices are addresses shifted
/// right, so `u64::MAX` can never be a live key.
const LANE_SET_EMPTY: u64 = u64::MAX;

/// Stack-resident open-addressed key→index map for one instruction's
/// lane dedup. Keys are page/line numbers; values are the output-vector
/// index recorded at first insertion, so duplicates resolve back to the
/// original entry without rescanning the output.
struct LaneSet {
    keys: [u64; LANE_SET_SLOTS],
    vals: [u32; LANE_SET_SLOTS],
}

impl LaneSet {
    fn new() -> Self {
        LaneSet {
            keys: [LANE_SET_EMPTY; LANE_SET_SLOTS],
            vals: [0; LANE_SET_SLOTS],
        }
    }

    /// Inserts `key` with `val`; returns `None` when `key` was new (the
    /// caller should push the corresponding output entry) or
    /// `Some(stored)` with the value recorded at first insertion.
    fn insert(&mut self, key: u64, val: u32) -> Option<u32> {
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize;
        loop {
            let slot = self.keys[i];
            if slot == LANE_SET_EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                return None;
            }
            if slot == key {
                return Some(self.vals[i]);
            }
            i = (i + 1) & (LANE_SET_SLOTS - 1);
        }
    }
}

/// Running statistics over many coalesced accesses.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoalescerStats {
    /// Total lane addresses presented.
    pub lanes: u64,
    /// Translation requests after page-level merge.
    pub page_requests: u64,
    /// Data requests after line-level merge.
    pub line_requests: u64,
    /// Instructions coalesced.
    pub instructions: u64,
}

impl CoalescerStats {
    /// Records one coalesced access.
    pub fn record(&mut self, access: &CoalescedAccess) {
        self.lanes += access.active_lanes as u64;
        self.page_requests += access.pages.len() as u64;
        self.line_requests += access.lines.len() as u64;
        self.instructions += 1;
    }

    /// Fraction of lane translation traffic eliminated by coalescing.
    pub fn page_merge_ratio(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            1.0 - self.page_requests as f64 / self.lanes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(x: u64) -> VirtAddr {
        VirtAddr::new(x)
    }

    #[test]
    fn fully_coalesced_single_page() {
        let addrs: Vec<_> = (0..64).map(|i| va(0x10_000 + i * 4)).collect();
        let c = CoalescedAccess::from_lanes(&addrs, PageSize::Size4K);
        assert_eq!(c.pages.len(), 1);
        assert_eq!(c.lines.len(), 4); // 64 lanes * 4B = 256B = 4 lines
        assert_eq!(c.line_pages, vec![0, 0, 0, 0]);
        assert_eq!(c.active_lanes, 64);
        assert!((c.page_divergence() - 1.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn fully_divergent_worst_case() {
        // The paper's worst case: each lane a separate page.
        let addrs: Vec<_> = (0..64u64).map(|i| va(i * 4096 * 7)).collect();
        let c = CoalescedAccess::from_lanes(&addrs, PageSize::Size4K);
        assert_eq!(c.pages.len(), 64);
        assert_eq!(c.lines.len(), 64);
        assert!((c.page_divergence() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_pages_coalesce_more() {
        let addrs: Vec<_> = (0..16u64).map(|i| va(i * 8192)).collect();
        let small = CoalescedAccess::from_lanes(&addrs, PageSize::Size4K);
        let large = CoalescedAccess::from_lanes(&addrs, PageSize::Size2M);
        assert_eq!(small.pages.len(), 16);
        assert_eq!(large.pages.len(), 1);
    }

    #[test]
    fn order_is_first_lane_order() {
        let addrs = [va(3 * 4096), va(4096), va(3 * 4096)];
        let c = CoalescedAccess::from_lanes(&addrs, PageSize::Size4K);
        assert_eq!(c.pages, vec![Vpn(3), Vpn(1)]);
    }

    #[test]
    fn assign_reuses_buffers_and_matches_from_lanes() {
        let addrs: Vec<_> = (0..64u64).map(|i| va(i * 4096 * 7)).collect();
        let mut c = CoalescedAccess::default();
        c.assign_from_lanes(&addrs, PageSize::Size4K);
        assert_eq!(c, CoalescedAccess::from_lanes(&addrs, PageSize::Size4K));
        // Re-assigning a smaller lane set must clear all stale state.
        c.assign_from_lanes(&[va(4096)], PageSize::Size4K);
        assert_eq!(c.pages, vec![Vpn(1)]);
        assert_eq!(c.lines, vec![64]);
        assert_eq!(c.line_pages, vec![0]);
        assert_eq!(c.active_lanes, 1);
    }

    #[test]
    fn line_pages_maps_each_line_to_its_page() {
        // Mixed pattern: duplicate pages and lines, out-of-order lanes,
        // checked against the definition for both dedup strategies (the
        // stack table below the 64-lane cutoff, the scan above it).
        let addrs: Vec<_> = (0..100u64)
            .map(|i| va((i % 7) * 4096 + (i * 192) % 4096))
            .collect();
        for width in [addrs.len(), 32] {
            let c = CoalescedAccess::from_lanes(&addrs[..width], PageSize::Size4K);
            assert_eq!(c.line_pages.len(), c.lines.len());
            for (line, &pi) in c.lines.iter().zip(&c.line_pages) {
                // A 64B line lies entirely inside one 4K page.
                assert_eq!(va(line * 64).vpn(PageSize::Size4K), c.pages[pi as usize]);
            }
        }
    }

    #[test]
    fn empty_lane_set() {
        let c = CoalescedAccess::from_lanes(&[], PageSize::Size4K);
        assert!(c.pages.is_empty());
        assert_eq!(c.page_divergence(), 0.0);
    }

    #[test]
    fn stats_merge_ratio() {
        let mut st = CoalescerStats::default();
        let addrs: Vec<_> = (0..64).map(|i| va(i * 4)).collect();
        st.record(&CoalescedAccess::from_lanes(&addrs, PageSize::Size4K));
        assert_eq!(st.lanes, 64);
        assert_eq!(st.page_requests, 1);
        assert!(st.page_merge_ratio() > 0.98);
    }
}
