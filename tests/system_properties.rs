//! System-level randomized tests: random tiny traces through the full
//! simulator must be deterministic, conserve instruction counts, and
//! never let the reconfigurable design corrupt execution.
//!
//! Driven by the workspace's seeded [`SplitMix64`] generator (instead
//! of `proptest`) so the suite needs no registry access; every trace
//! is reproducible from its case seed.

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::{AppTrace, KernelDesc, WaveProgram, WorkgroupDesc};
use gpu_translation_reach::gpu::ops::Op;
use gpu_translation_reach::sim::rng::SplitMix64;

/// A random op (bounded footprint so traces stay tiny).
fn random_op(rng: &mut SplitMix64) -> Op {
    match rng.next_below(3) {
        0 => Op::compute(rng.next_below(8) as u32),
        1 => {
            let base = 0x1_0000_0000 + rng.next_below(512) * 4096;
            let stride = 1 + rng.next_below(4999);
            if rng.next_below(2) == 0 {
                Op::global_write_strided(base, stride, 64)
            } else {
                Op::global_read_strided(base, stride, 64)
            }
        }
        _ => {
            let off = rng.next_below(2048) as u32;
            if rng.next_below(2) == 0 {
                Op::lds_write(off)
            } else {
                Op::lds_read(off)
            }
        }
    }
}

/// A random app of 1-3 kernels, 1-2 workgroups of 1-4 identical waves
/// (identical so barriers, if added later, stay safe).
fn random_app(rng: &mut SplitMix64) -> AppTrace {
    let kernel_count = 1 + rng.next_below(3) as usize;
    let ks = (0..kernel_count)
        .map(|i| {
            let op_count = 1 + rng.next_below(23) as usize;
            let ops: Vec<Op> = (0..op_count).map(|_| random_op(rng)).collect();
            let wgs = 1 + rng.next_below(2) as usize;
            let waves = 1 + rng.next_below(4) as usize;
            let code = 1 + rng.next_below(63) as u32;
            let lds = [0u32, 512, 4096][rng.next_below(3) as usize];
            let wave = WaveProgram::new(ops);
            let wg = WorkgroupDesc::new(vec![wave; waves]);
            KernelDesc::new(format!("k{i}"), code, lds, vec![wg; wgs])
        })
        .collect();
    AppTrace::new("prop", ks)
}

/// Runs `case` over 16 random apps; the seed reproduces each trace.
fn check_apps(case: impl Fn(&AppTrace)) {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0x5EED ^ (seed << 8));
        case(&random_app(&mut rng));
    }
}

/// Identical inputs produce identical results, for every config.
#[test]
fn random_traces_are_deterministic() {
    check_apps(|app| {
        for reach in [ReachConfig::baseline(), ReachConfig::ic_plus_lds()] {
            let a = System::new(GpuConfig::default(), reach).run(app);
            let b = System::new(GpuConfig::default(), reach).run(app);
            assert_eq!(a.total_cycles, b.total_cycles);
            assert_eq!(a.page_walks, b.page_walks);
            assert_eq!(a.dram_accesses, b.dram_accesses);
        }
    });
}

/// The reconfigurable design never changes *what* executes — only
/// when: instruction counts and translation request counts match the
/// baseline exactly.
#[test]
fn reach_is_execution_transparent() {
    check_apps(|app| {
        let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(app);
        let reach = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(app);
        assert_eq!(base.instructions, app.total_ops());
        assert_eq!(reach.instructions, base.instructions);
        assert_eq!(reach.translation_requests, base.translation_requests);
    });
}

/// Every translation request is accounted for by exactly one
/// resolution path.
#[test]
fn translation_requests_conserved() {
    check_apps(|app| {
        let s = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(app);
        // L1 hits + L1 misses == requests (every request probes L1).
        assert_eq!(s.l1_tlb.total(), s.translation_requests);
        // Walks can never exceed L1 misses.
        assert!(s.page_walks <= s.l1_tlb.misses);
        // Victim hits can never exceed L1 misses either.
        assert!(s.victim_hits() <= s.l1_tlb.misses);
    });
}
