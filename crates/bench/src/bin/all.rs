//! Regenerates every table and figure. `--scale <tiny|quick|paper>`
//! (or the `--quick`/`--tiny` shorthands) sets the workload scale;
//! `--csv <dir>` additionally writes the main matrices as CSV for
//! external plotting; `--stats-out <path>` writes the full main
//! matrix (every cell's complete stats, epoch series included) plus
//! the per-figure `figures` metadata array as one compact JSON
//! document for `validate_stats` and downstream tooling (`--pretty`
//! switches to indented output for human reading); `--percentiles`
//! arms distribution recording for the exported matrix, so every cell
//! carries latency/lifetime histograms.
//!
//! `--sample` runs the **entire** figure battery under checkpointed
//! interval sampling: one warmup checkpoint is captured per `(app,
//! distinct translation stream)` pair and shared across every sweep
//! axis that only perturbs timing-side config (the whole L2-TLB
//! sweep, the I-cache design variants, the sharing/wire-latency
//! sensitivity studies, …), and each cell alternates detailed and
//! fast-forwarded intervals. This is how
//! `all --sample --scale paper` regenerates the complete paper in
//! minutes instead of hours. Checkpoints cache on disk under
//! `--checkpoint-dir <dir>` (default `target/ckpt-cache` when
//! sampling) so repeat sweeps skip the warmup entirely; a per-figure
//! summary line reports cell counts and worst error bounds.
//!
//! `--threads N` pins the matrix worker-thread count (default: the
//! machine's available parallelism). Results are bit-identical for
//! any value — only wall time changes.
//!
//! `--prof <out.json>` records a host-side span profile of the whole
//! battery (one timeline lane per worker thread, figure/checkpoint/
//! cell spans) and writes it as a Chrome trace — load it in Perfetto
//! or summarize with `gtr-analyze --prof-summary`. Profiling observes
//! host time only; simulated results stay byte-identical.
//!
//! `--tenants` appends the multi-tenancy figure family (the
//! tenant-count sweep and the shootdown-storm churn scenario,
//! TENANCY.md) to the battery; their metadata joins the exported
//! `figures` array. Off by default — the paper's own figures are
//! single-tenant, and the default battery output stays byte-identical
//! to its pre-tenancy form. The standalone `tenancy` binary offers
//! finer control (`--tenants N`, `--policy`).
//!
//! `--page-modes` appends the contiguity figure family (the
//! {4 KB, 2 MB, fragmented-2 MB, coalesced} page-backing comparison
//! and the allocator-fragmentation sweep) the same way. Off by
//! default for the same byte-stability reason; the standalone
//! `contiguity` binary offers finer control (`--no-modes`,
//! `--no-sweep`, per-matrix `--stats-out`).

use gtr_bench::harness::RunMode;
use gtr_bench::profile;
use gtr_sim::prof;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let prof_out = profile::arm_from_args(&args);
    let scale = scale_from_args(&args);
    let sample = args.iter().any(|a| a == "--sample");
    let pretty = args.iter().any(|a| a == "--pretty");
    let percentiles = args.iter().any(|a| a == "--percentiles");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).map(String::as_str).unwrap_or("results").to_string());
    let stats_out = args.iter().position(|a| a == "--stats-out").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--stats-out needs a path");
                std::process::exit(2);
            })
            .to_string()
    });
    let checkpoint_dir = args.iter().position(|a| a == "--checkpoint-dir").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--checkpoint-dir needs a path");
                std::process::exit(2);
            })
            .to_string()
    });

    let threads = args.iter().position(|a| a == "--threads").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a worker count");
                std::process::exit(2);
            })
    });

    let mut mode = if sample {
        let dir = checkpoint_dir.unwrap_or_else(|| "target/ckpt-cache".to_string());
        RunMode::sampled(gtr_bench::figures::sampling_for(scale)).with_checkpoint_dir(dir)
    } else {
        RunMode::exact()
    };
    if let Some(n) = threads {
        mode = mode.with_workers(n);
    }

    let tenants = args.iter().any(|a| a == "--tenants");
    let page_modes = args.iter().any(|a| a == "--page-modes");

    let t = prof::Stopwatch::start();
    let (mut figs, m) = gtr_bench::figures::battery_with_main(scale, &mode);
    if tenants {
        figs.extend(gtr_bench::figures::tenancy_battery(scale, &mode));
    }
    if page_modes {
        figs.extend(gtr_bench::figures::contiguity_battery(scale, &mode));
    }
    println!(
        "{}",
        figs.iter().map(|f| f.text.as_str()).collect::<Vec<_>>().join("\n")
    );
    if sample {
        println!("### Sampling summary (per figure: cells, worst error bounds)");
        for f in figs.iter().filter(|f| f.cells > 0) {
            println!(
                "{:<22} {:>3} cells ({} sampled)  err<={:.1}%  side-cache<={:.1}%",
                f.name, f.cells, f.sampled_cells, f.error_bound_pct, f.side_cache_error_bound_pct
            );
        }
        println!("(full battery in {})", t.report());
    }

    if csv_dir.is_none() && stats_out.is_none() {
        profile::finish(prof_out.as_deref());
        return;
    }
    // With --percentiles the export matrix needs distribution
    // recording armed, which the battery's shared matrix doesn't
    // carry — re-run just that matrix (timing results are identical).
    let m = if percentiles {
        gtr_bench::figures::main_matrix_mode(scale, true, &mode)
    } else {
        m
    };
    if let Some(dir) = csv_dir {
        let _span = prof::span("export:csv");
        std::fs::create_dir_all(&dir).expect("create csv dir");
        std::fs::write(format!("{dir}/fig13b_improvement.csv"), m.improvement_csv())
            .expect("write csv");
        std::fs::write(
            format!("{dir}/fig14b_walks.csv"),
            m.normalized_csv(|s| s.page_walks as f64),
        )
        .expect("write csv");
        std::fs::write(
            format!("{dir}/fig13c_energy.csv"),
            m.normalized_csv(|s| s.dram_energy_nj),
        )
        .expect("write csv");
        eprintln!("CSV written to {dir}/");
    }
    if let Some(path) = stats_out {
        let _span = prof::span("export:stats");
        let mut j = m.to_json();
        if let gtr_sim::json::Json::Obj(fields) = &mut j {
            fields.push(("figures".to_string(), gtr_bench::figures::figures_json(&figs)));
        }
        let mut doc = if pretty {
            j.to_string()
        } else {
            let mut s = String::new();
            j.write_compact(&mut s);
            s
        };
        doc.push('\n');
        std::fs::write(&path, doc).expect("write stats JSON");
        eprintln!("matrix stats written to {path}");
    }
    profile::finish(prof_out.as_deref());
}

fn scale_from_args(args: &[String]) -> gtr_workloads::scale::Scale {
    use gtr_workloads::scale::Scale;
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        match args.get(i + 1).map(String::as_str) {
            Some("tiny") => return Scale::tiny(),
            Some("quick") => return Scale::quick(),
            Some("paper") => return Scale::paper(),
            other => {
                eprintln!("--scale needs tiny|quick|paper (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else if args.iter().any(|a| a == "--tiny") {
        Scale::tiny()
    } else {
        Scale::paper()
    }
}
