//! Runtime shootdown integration (§7.1): pages migrate mid-run and
//! every structure's stale copy is invalidated.

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::driver::{DriverSchedule, MigrationEvent};
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::workloads::{scale::Scale, suite};

/// ATAX's matrix starts at VA 0x1_0000_0000 => VPN 0x10000.
const ATAX_FIRST_VPN: u64 = 0x1_0000_0000 / 4096;

fn schedule() -> DriverSchedule {
    // Migrate 64 hot matrix pages once the run is warmed up, twice.
    DriverSchedule::new()
        .migrate(MigrationEvent::new(5_000, ATAX_FIRST_VPN..ATAX_FIRST_VPN + 64))
        .migrate(MigrationEvent::new(20_000, ATAX_FIRST_VPN..ATAX_FIRST_VPN + 64))
}

#[test]
fn migrations_invalidate_stale_copies_everywhere() {
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_driver_schedule(schedule());
    let stats = sys.run(&app);
    let report = sys.shootdown_report();
    assert_eq!(report.events, 2);
    assert!(report.pages_migrated > 0, "hot pages were mapped and migrated");
    assert!(
        report.total_hits() > 0,
        "warm structures must hold stale copies: {report:?}"
    );
    assert!(stats.total_cycles > 0);
}

#[test]
fn shootdowns_force_rewalks() {
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let without = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_driver_schedule(schedule());
    let with = sys.run(&app);
    assert!(
        with.page_walks > without.page_walks,
        "invalidations must cause re-walks: {} vs {}",
        with.page_walks,
        without.page_walks
    );
}

#[test]
fn shootdown_runs_are_deterministic() {
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let run = || {
        let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
            .with_driver_schedule(schedule());
        let stats = sys.run(&app);
        (stats.total_cycles, stats.page_walks, sys.shootdown_report())
    };
    assert_eq!(run(), run());
}

#[test]
fn migrating_untouched_pages_is_a_noop() {
    let app = suite::by_name("SRAD", Scale::tiny()).unwrap();
    // SRAD never touches these VPNs.
    let sched = DriverSchedule::new().migrate(MigrationEvent::new(10, 0x9_9999..0x9_99A9));
    let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_driver_schedule(sched);
    sys.run(&app);
    let report = sys.shootdown_report();
    assert_eq!(report.events, 1);
    assert_eq!(report.pages_migrated, 0, "unmapped pages cannot migrate");
    assert_eq!(report.total_hits(), 0);
}

#[test]
fn baseline_shootdowns_only_hit_tlbs() {
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let mut sys = System::new(GpuConfig::default(), ReachConfig::baseline())
        .with_driver_schedule(schedule());
    sys.run(&app);
    let report = sys.shootdown_report();
    assert_eq!(report.lds_hits, 0, "baseline LDS holds no translations");
    assert_eq!(report.ic_hits, 0, "baseline I-cache holds no translations");
    assert!(report.l1_hits + report.l2_hits > 0);
}

#[test]
fn post_shootdown_state_is_coherent() {
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_driver_schedule(schedule());
    sys.run(&app);
    // Every surviving cached translation must match the (migrated)
    // page tables — the shootdown protocol removed all stale copies.
    let checked = sys.check_translation_coherence();
    assert!(checked > 1000, "expected warm structures, checked {checked}");
}
