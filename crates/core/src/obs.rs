//! Distribution recording for the translation hot path.
//!
//! [`ObsRecorder`] is the in-simulator half of the schema-v2
//! observability layer: per-service-point latency histograms,
//! per-IOMMU-level walk latencies, and victim-entry lifetime/reuse
//! tracking. It is owned by `System` and driven only when
//! `System::with_distributions` armed the cached `obs_on` flag — the
//! same gating discipline the trace sink uses, so a run without
//! distributions pays one predictable branch per site and nothing
//! else (the perf gate asserts the zero-cost guarantee).
//!
//! [`VictimLifetimes`] is deliberately reusable outside the simulator:
//! `gtr-bench`'s `gtr-analyze` replays a JSONL trace through the very
//! same struct, so the simulator-recorded and trace-reconstructed
//! lifetime histograms are equal by construction whenever the trace is
//! complete — the replay consistency oracle.

use std::collections::HashMap;

use gtr_sim::hist::Hist;
use gtr_sim::trace::TxStructure;
use gtr_sim::Cycle;

/// A live victim entry awaiting its death (eviction or shootdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LiveEntry {
    born: Cycle,
    reuses: u64,
}

/// Victim-entry lifetime and reuse-count tracking over the
/// reconfigurable LDS and I-cache ("Dead on Arrival" analysis: a
/// victim tier only earns its keep if entries are hit before they
/// fall out).
///
/// Entries are keyed by `(vpn, vmid)` — exactly the identity the
/// JSONL trace events carry — with a last-writer-wins rule when the
/// same page is inserted again (the duplicate across CUs closes the
/// previous record). An eviction closes its record and contributes a
/// lifetime sample (`eviction cycle − insert cycle`) and a reuse
/// sample (hits served while resident); a shootdown removes the record
/// *without* recording (invalidation is not a capacity outcome);
/// entries still live at run end are censored (never recorded). A
/// reuse count of zero is a dead-on-arrival entry
/// ([`Hist::zero_count`] of the reuse histogram counts them exactly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VictimLifetimes {
    live_lds: HashMap<u64, LiveEntry>,
    live_ic: HashMap<u64, LiveEntry>,
    /// Lifetimes (insert→evict, cycles) of evicted LDS entries.
    pub lifetime_lds: Hist,
    /// Lifetimes of evicted I-cache entries.
    pub lifetime_ic: Hist,
    /// Hits served by each evicted LDS entry while resident.
    pub reuse_lds: Hist,
    /// Hits served by each evicted I-cache entry while resident.
    pub reuse_ic: Hist,
}

fn key(vpn: u64, vmid: u8) -> u64 {
    // VPNs are < 2^52 and vmids < 4 (2-bit address-space ids).
    (vpn << 2) | vmid as u64
}

impl VictimLifetimes {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn close(map: &mut HashMap<u64, LiveEntry>, lifetime: &mut Hist, reuse: &mut Hist, k: u64, now: Cycle) {
        if let Some(e) = map.remove(&k) {
            lifetime.record(now.saturating_sub(e.born));
            reuse.record(e.reuses);
        }
    }

    /// Records a victim-structure insert at `now`: closes the record of
    /// the displaced entry (if any), closes a same-key duplicate, and
    /// opens a fresh record. Inserts into the L2 TLB are ignored (the
    /// fill flow's terminal stop is not a reconfigurable structure).
    pub fn insert(
        &mut self,
        structure: TxStructure,
        vpn: u64,
        vmid: u8,
        evicted: Option<(u64, u8)>,
        now: Cycle,
    ) {
        let (map, lifetime, reuse) = match structure {
            TxStructure::Lds => (&mut self.live_lds, &mut self.lifetime_lds, &mut self.reuse_lds),
            TxStructure::Icache => (&mut self.live_ic, &mut self.lifetime_ic, &mut self.reuse_ic),
            TxStructure::L2Tlb => return,
        };
        if let Some((evpn, evmid)) = evicted {
            Self::close(map, lifetime, reuse, key(evpn, evmid), now);
        }
        // A re-insert of a still-live page (e.g. the same VPN filled
        // from another CU) supersedes the old record.
        Self::close(map, lifetime, reuse, key(vpn, vmid), now);
        map.insert(key(vpn, vmid), LiveEntry { born: now, reuses: 0 });
    }

    /// Records a victim-structure hit (a translation resolved via the
    /// LDS or I-cache path). Hits on pages without a live record — a
    /// duplicate copy whose record was superseded — are ignored, which
    /// keeps the rule identical between simulator and trace replay.
    pub fn hit(&mut self, structure: TxStructure, vpn: u64, vmid: u8) {
        let map = match structure {
            TxStructure::Lds => &mut self.live_lds,
            TxStructure::Icache => &mut self.live_ic,
            TxStructure::L2Tlb => return,
        };
        if let Some(e) = map.get_mut(&key(vpn, vmid)) {
            e.reuses += 1;
        }
    }

    /// A driver shootdown invalidated `(vpn, vmid)` everywhere: drop
    /// any live record without contributing samples.
    pub fn shootdown(&mut self, vpn: u64, vmid: u8) {
        self.live_lds.remove(&key(vpn, vmid));
        self.live_ic.remove(&key(vpn, vmid));
    }

    /// Records still live (censored if the run ended now).
    pub fn live(&self) -> usize {
        self.live_lds.len() + self.live_ic.len()
    }
}

/// Everything the distribution layer records during a run: one latency
/// histogram per Fig-12 resolution path, one per IOMMU service level
/// (walk-latency tagging), and the victim lifetime tracker.
#[derive(Debug, Clone, Default)]
pub struct ObsRecorder {
    /// Translation latency per resolution path
    /// ([`gtr_sim::trace::TracePath::ALL`] order).
    pub lat: [Hist; 6],
    /// IOMMU service latency per
    /// [`gtr_vm::iommu::IommuHitLevel::ALL`] level, for requests that
    /// missed everything above the IOMMU.
    pub iommu_lat: [Hist; 4],
    /// Victim-entry lifetime/reuse tracking.
    pub victim: VictimLifetimes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_closes_with_lifetime_and_reuse() {
        let mut v = VictimLifetimes::new();
        v.insert(TxStructure::Lds, 10, 0, None, 100);
        v.hit(TxStructure::Lds, 10, 0);
        v.hit(TxStructure::Lds, 10, 0);
        assert_eq!(v.live(), 1);
        // Page 11 displaces page 10.
        v.insert(TxStructure::Lds, 11, 0, Some((10, 0)), 350);
        assert_eq!(v.lifetime_lds.count(), 1);
        assert_eq!(v.lifetime_lds.max(), 250);
        assert_eq!(v.reuse_lds.count(), 1);
        assert_eq!(v.reuse_lds.zero_count(), 0, "entry was reused twice");
        assert_eq!(v.live(), 1);
    }

    #[test]
    fn dead_on_arrival_shows_as_zero_reuse() {
        let mut v = VictimLifetimes::new();
        v.insert(TxStructure::Icache, 5, 0, None, 10);
        v.insert(TxStructure::Icache, 6, 0, Some((5, 0)), 20);
        assert_eq!(v.reuse_ic.zero_count(), 1, "never hit before eviction");
        assert_eq!(v.lifetime_ic.max(), 10);
    }

    #[test]
    fn reinsert_supersedes_and_shootdown_censors() {
        let mut v = VictimLifetimes::new();
        v.insert(TxStructure::Lds, 7, 1, None, 0);
        // Same page filled again (another CU's copy): old record closes.
        v.insert(TxStructure::Lds, 7, 1, None, 40);
        assert_eq!(v.lifetime_lds.count(), 1);
        assert_eq!(v.lifetime_lds.max(), 40);
        // Shootdown drops the live record without recording.
        v.shootdown(7, 1);
        assert_eq!(v.live(), 0);
        assert_eq!(v.lifetime_lds.count(), 1);
        // Hits on dead pages are ignored.
        v.hit(TxStructure::Lds, 7, 1);
        assert_eq!(v.reuse_lds.count(), 1);
    }

    #[test]
    fn vmid_disambiguates_and_l2_is_ignored() {
        let mut v = VictimLifetimes::new();
        v.insert(TxStructure::Lds, 9, 0, None, 0);
        v.insert(TxStructure::Lds, 9, 2, None, 5);
        assert_eq!(v.live(), 2, "same VPN in two address spaces");
        v.insert(TxStructure::L2Tlb, 1, 0, Some((9, 0)), 10);
        assert_eq!(v.live(), 2, "L2 fills do not touch the tracker");
    }
}
