//! §7.2 multi-application scenarios: interleaved kernels from two
//! address spaces share the TLBs and reconfigurable structures without
//! aliasing.

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::AppTrace;
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn interleaved() -> AppTrace {
    let a = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let b = suite::by_name("BICG", Scale::tiny()).unwrap();
    AppTrace::interleave(&a, &b)
}

#[test]
fn multi_app_trace_runs_under_every_config() {
    let app = interleaved();
    for reach in [ReachConfig::baseline(), ReachConfig::ic_plus_lds()] {
        let stats = System::new(GpuConfig::default(), reach).run(&app);
        assert!(stats.total_cycles > 0);
        assert_eq!(stats.instructions, app.total_ops());
    }
}

#[test]
fn multi_app_is_deterministic() {
    let app = interleaved();
    let a = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    let b = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.page_walks, b.page_walks);
}

#[test]
fn reconfigurable_reach_still_helps_with_two_tenants() {
    // The paper (§7.2) argues the private per-CU LDS keeps working in
    // multi-application deployments; the shared I-cache just has less
    // idle capacity. Net effect: still a solid win for High apps.
    let app = interleaved();
    let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
    let reach = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    assert!(
        reach.total_cycles < base.total_cycles,
        "multi-tenant IC+LDS should still win: base={} reach={}",
        base.total_cycles,
        reach.total_cycles
    );
    assert!(reach.page_walks < base.page_walks);
}

#[test]
fn address_spaces_do_not_alias() {
    // ATAX and BICG both place their matrix at the same VA base; with
    // distinct VMIDs the system must keep their translations separate.
    // If the spaces aliased, one app would read the other's frames and
    // the per-space page tables would stay half-populated.
    let app = interleaved();
    let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds());
    let stats = sys.run(&app);
    // Both spaces saw translation traffic (walks from both tables).
    assert!(stats.page_walks > 0);
    // Mixing a third run of the single-app trace must reproduce its
    // solo behaviour exactly (no cross-run contamination in fresh
    // systems).
    let solo = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let s1 = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&solo);
    let s2 = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&solo);
    assert_eq!(s1.total_cycles, s2.total_cycles);
}

#[test]
fn vmid_shootdown_only_hits_its_own_space() {
    use gpu_translation_reach::vm::addr::{Ppn, Translation, TranslationKey, VmId, Vpn, VrfId};
    use gpu_translation_reach::vm::tlb::{Tlb, TlbConfig};
    let mut tlb = Tlb::new(TlbConfig::fully_associative(16, 1));
    for vm in 0..2u8 {
        for v in 0..4u64 {
            tlb.insert(Translation::new(
                TranslationKey { vpn: Vpn(v), vmid: VmId::new(vm), vrf: VrfId::default() },
                Ppn(100 * vm as u64 + v),
            ));
        }
    }
    assert_eq!(tlb.invalidate_vmid(VmId::new(1)), 4);
    assert_eq!(tlb.len(), 4, "space 0 untouched");
    for v in 0..4u64 {
        assert!(tlb
            .probe(TranslationKey { vpn: Vpn(v), vmid: VmId::new(0), vrf: VrfId::default() })
            .is_some());
    }
}
