//! `gtr-analyze` — trace replay, stats comparison, and host-profile
//! reporting.
//!
//! Four modes:
//!
//! ```sh
//! # Independently reconstruct a run's statistics from its JSONL trace
//! # and fail (exit 1) if they diverge from the exported stats file:
//! gtr-analyze --replay run.jsonl --stats run.json
//!
//! # Compare two stats documents metric by metric; exit 1 if any
//! # relative delta exceeds the tolerance (percent, default 0):
//! gtr-analyze --diff run.json golden.json --tolerance 5
//!
//! # Summarize a Chrome trace written by a `--prof` run: top spans,
//! # per-worker utilization, phase breakdown, critical path:
//! gtr-analyze --prof-summary trace.json --expect-workers 4
//!
//! # Per-commit trend over the committed BENCH history files, with
//! # threshold-based regression verdicts; with no file arguments every
//! # BENCH_*.json at the repo root is discovered by glob:
//! gtr-analyze --bench-history
//! gtr-analyze --bench-history BENCH_sim_throughput.json BENCH_matrix_paper.json
//! ```
//!
//! The replay check is the strongest consistency oracle the artifact
//! set has: the trace and the stats are produced by different code
//! paths inside the simulator, so agreement means neither lost an
//! event. `ci.sh` runs both modes on every build, plus the profile
//! modes as smoke/rot gates.

use gtr_bench::analyze::{check_against_stats, diff_stats, missing_metrics, replay_jsonl};
use gtr_bench::{perf, profile};
use gtr_core::stats::RunStats;
use gtr_sim::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: gtr-analyze --replay <trace.jsonl> --stats <stats.json>\n\
         \x20      gtr-analyze --diff <a.json> <b.json> [--tolerance PCT]\n\
         \x20      gtr-analyze --prof-summary <trace.json> [--expect-workers N]\n\
         \x20      gtr-analyze --bench-history [<BENCH.json>...] [--tolerance PCT]\n\
         --replay  reconstruct statistics from the trace and verify them\n\
         \x20         against the exported stats document (exit 1 on divergence)\n\
         --diff    per-metric relative comparison of two stats documents\n\
         --prof-summary    summarize a Chrome trace from a --prof run\n\
         --expect-workers N  fail unless >= N worker lanes carry spans\n\
         --bench-history   per-commit trend of BENCH history files (no\n\
         \x20         arguments: every BENCH_*.json at the repo root)\n\
         --tolerance PCT  allowed relative delta in percent\n\
         \x20         (default 0 for --diff, {} for --bench-history)",
        perf::REGRESSION_TOLERANCE_PCT
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let str_flag = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        })
    };
    if let Some(trace_path) = str_flag("--prof-summary") {
        let expect = str_flag("--expect-workers").map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--expect-workers must be an integer");
                usage()
            })
        });
        prof_summary_mode(&trace_path, expect);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--bench-history") {
        let mut files: Vec<String> =
            args[pos + 1..].iter().take_while(|a| !a.starts_with("--")).cloned().collect();
        if files.is_empty() {
            // No explicit list: discover every committed BENCH history
            // at the repo root by glob, sorted for stable output. New
            // BENCH files are covered by the rot gate automatically
            // instead of rotting outside a hardcoded list.
            files = discover_bench_files();
            if files.is_empty() {
                eprintln!(
                    "--bench-history found no BENCH_*.json files in {}",
                    perf::repo_root().display()
                );
                std::process::exit(1);
            }
        }
        let tolerance = str_flag("--tolerance")
            .map(|v| {
                v.parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("--tolerance must be a number (percent)");
                    usage()
                })
            })
            .unwrap_or(perf::REGRESSION_TOLERANCE_PCT);
        bench_history_mode(&files, tolerance);
        return;
    }
    match (str_flag("--replay"), args.iter().any(|a| a == "--diff")) {
        (Some(trace_path), false) => {
            let Some(stats_path) = str_flag("--stats") else {
                eprintln!("--replay needs --stats <stats.json>");
                usage()
            };
            replay_mode(&trace_path, &stats_path);
        }
        (None, true) => {
            let pos = args.iter().position(|a| a == "--diff").unwrap();
            let (Some(a), Some(b)) = (args.get(pos + 1), args.get(pos + 2)) else {
                eprintln!("--diff needs two stats files");
                usage()
            };
            let tolerance = str_flag("--tolerance")
                .map(|v| {
                    v.parse::<f64>().unwrap_or_else(|_| {
                        eprintln!("--tolerance must be a number (percent)");
                        usage()
                    })
                })
                .unwrap_or(0.0)
                / 100.0;
            diff_mode(a, b, tolerance);
        }
        _ => usage(),
    }
}

/// Reads one *single-run* stats document, returning it alongside its
/// stamped schema version. Matrix documents (the `all --stats-out`
/// format) are rejected: a trace describes exactly one run.
fn load_run_stats(path: &str) -> Result<(RunStats, u64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let j = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if j.get("baseline").is_some() {
        return Err(format!(
            "{path}: this is a matrix document (multi-run); gtr-analyze needs a \
             single-run stats file from `run_app --stats-out`"
        ));
    }
    let version = j
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{path}: no schema_version"))?;
    let s = gtr_core::export::run_stats_from_json(&j)
        .ok_or_else(|| format!("{path}: does not match the stats schema"))?;
    Ok((s, version))
}

fn replay_mode(trace_path: &str, stats_path: &str) {
    let (stats, version) = load_run_stats(stats_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let text = std::fs::read_to_string(trace_path).unwrap_or_else(|e| {
        eprintln!("{trace_path}: {e}");
        std::process::exit(1);
    });
    let replay = replay_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("{trace_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "{trace_path}: {} events, {} translations, {} kernels",
        replay.events,
        replay.translations,
        replay.kernel_ends.len()
    );
    let problems = check_against_stats(&replay, &stats, version);
    if problems.is_empty() {
        println!(
            "replay matches {stats_path} (attribution, hit counters, kernel \
             sequence{})",
            if stats.dist_enabled { ", distribution histograms" } else { "" }
        );
    } else {
        eprintln!("replay DIVERGES from {stats_path}:");
        for p in &problems {
            eprintln!("  {p}");
        }
        std::process::exit(1);
    }
}

fn diff_mode(path_a: &str, path_b: &str, tolerance: f64) {
    let (a, _) = load_run_stats(path_a).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let (b, _) = load_run_stats(path_b).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let rows = diff_stats(&a, &b);
    let mut over = 0;
    println!("{:<32} {:>16} {:>16} {:>10}", "metric", path_short(path_a), path_short(path_b), "delta");
    for row in &rows {
        let marker = if row.rel.abs() > tolerance { over += 1; " *" } else { "" };
        if row.rel != 0.0 || tolerance == 0.0 {
            println!(
                "{:<32} {:>16} {:>16} {:>9.3}%{marker}",
                row.metric,
                fmt_num(row.a),
                fmt_num(row.b),
                row.rel * 100.0
            );
        }
    }
    // A metric family one side recorded and the other didn't can't
    // produce a row at all — comparing only the intersection would
    // pass a structurally different document, so it fails the diff.
    let missing = missing_metrics(&a, &b);
    for m in &missing {
        eprintln!("MISSING {m}");
    }
    if over > 0 || !missing.is_empty() {
        eprintln!(
            "{over} of {} metrics differ beyond {:.3}% tolerance; {} metric \
             families present on one side only",
            rows.len(),
            tolerance * 100.0,
            missing.len()
        );
        std::process::exit(1);
    }
    println!("{} metrics within {:.3}% tolerance", rows.len(), tolerance * 100.0);
}

fn prof_summary_mode(trace_path: &str, expect_workers: Option<usize>) {
    let text = std::fs::read_to_string(trace_path).unwrap_or_else(|e| {
        eprintln!("{trace_path}: {e}");
        std::process::exit(1);
    });
    let trace = profile::parse_chrome_trace(&text).unwrap_or_else(|e| {
        eprintln!("{trace_path}: {e}");
        std::process::exit(1);
    });
    if trace.spans.is_empty() {
        eprintln!("{trace_path}: trace carries no completed spans");
        std::process::exit(1);
    }
    print!("{}", profile::summary(&trace));
    if let Some(n) = expect_workers {
        if let Err(e) = profile::expect_workers(&trace, n) {
            eprintln!("{trace_path}: {e}");
            std::process::exit(1);
        }
        println!("\nworker-lane check: >= {n} populated worker lanes present");
    }
}

/// Every `BENCH_*.json` history file at the repository root, sorted
/// by name.
fn discover_bench_files() -> Vec<String> {
    let root = perf::repo_root();
    let Ok(entries) = std::fs::read_dir(&root) else {
        return Vec::new();
    };
    let mut files: Vec<String> = entries
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json"))
                .then(|| root.join(name).to_string_lossy().into_owned())
        })
        .collect();
    files.sort();
    files
}

fn bench_history_mode(files: &[String], tolerance_pct: f64) {
    let mut failed = false;
    for (i, path) in files.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let text = std::fs::read_to_string(path.as_str()).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        match profile::bench_history_report(path_short(path), &text, tolerance_pct) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Last path component, for compact table headers.
fn path_short(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Integers print without a fractional part; everything else with
/// three decimals.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}
