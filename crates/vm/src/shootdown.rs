//! TLB shootdown plumbing (§7.1 of the paper).
//!
//! The GPU driver enqueues a PM4-like command packet; the packet
//! processor parses it and broadcasts the victim VPN to every structure
//! that may cache the translation — the TLBs *and*, with the
//! reconfigurable architecture, the LDS and I-cache controllers.
//!
//! Under multi-tenancy ([`crate::tenancy`]) the shootdown key carries
//! the shooting tenant's VM-ID, so a broadcast only invalidates that
//! tenant's visibility: full-key-tagged structures drop exactly the
//! matching entry, and sub-entry-shared structures (arXiv 2404.18361
//! §4.3) clear one bit of the shared entry's per-tenant valid mask,
//! leaving co-sharers hitting. This is what makes tenant churn — one
//! client's pages migrating mid-kernel — an *isolation* stress rather
//! than a broadcast flush: see the shootdown-storm scenario in
//! EXPERIMENTS.md and `examples/shootdown_storm.rs`.

use gtr_sim::Cycle;

use crate::addr::TranslationKey;

/// A structure that can invalidate cached translations.
///
/// Implemented by TLBs, the IOMMU, and the reconfigurable LDS/I-cache
/// controllers in `gtr-core`.
pub trait TranslationSink {
    /// Invalidates `key`; returns `true` if an entry was present.
    fn shootdown(&mut self, key: TranslationKey) -> bool;

    /// A short name for diagnostics.
    fn sink_name(&self) -> &'static str {
        "sink"
    }
}

impl TranslationSink for crate::tlb::Tlb {
    fn shootdown(&mut self, key: TranslationKey) -> bool {
        self.invalidate(key)
    }

    fn sink_name(&self) -> &'static str {
        "tlb"
    }
}

impl TranslationSink for crate::iommu::Iommu {
    fn shootdown(&mut self, key: TranslationKey) -> bool {
        self.invalidate(key);
        true
    }

    fn sink_name(&self) -> &'static str {
        "iommu"
    }
}

/// Latency parameters of the shootdown command path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShootdownConfig {
    /// Driver → command-queue enqueue latency.
    pub enqueue_latency: Cycle,
    /// Packet-processor parse latency.
    pub parse_latency: Cycle,
    /// Per-sink broadcast/invalidate latency.
    pub per_sink_latency: Cycle,
}

impl Default for ShootdownConfig {
    fn default() -> Self {
        Self { enqueue_latency: 500, parse_latency: 100, per_sink_latency: 20 }
    }
}

/// Outcome of one shootdown broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShootdownOutcome {
    /// Cycle the shootdown fully completed.
    pub done: Cycle,
    /// Sinks that actually held the translation.
    pub sinks_hit: usize,
    /// Sinks probed.
    pub sinks_probed: usize,
}

/// Executes a shootdown of `key` across `sinks`, charging the PM4
/// command-path latencies serially per sink (the packet processor
/// notifies controllers one at a time).
pub fn run_shootdown(
    now: Cycle,
    key: TranslationKey,
    config: &ShootdownConfig,
    sinks: &mut [&mut dyn TranslationSink],
) -> ShootdownOutcome {
    let mut t = now + config.enqueue_latency + config.parse_latency;
    let mut hit = 0;
    for sink in sinks.iter_mut() {
        t += config.per_sink_latency;
        if sink.shootdown(key) {
            hit += 1;
        }
    }
    ShootdownOutcome { done: t, sinks_hit: hit, sinks_probed: sinks.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ppn, Translation, Vpn};
    use crate::tlb::{Tlb, TlbConfig};

    fn k(v: u64) -> TranslationKey {
        TranslationKey::for_vpn(Vpn(v))
    }

    #[test]
    fn shootdown_invalidates_all_sinks() {
        let mut a = Tlb::new(TlbConfig::fully_associative(4, 1));
        let mut b = Tlb::new(TlbConfig::fully_associative(4, 1));
        a.insert(Translation::new(k(7), Ppn(1)));
        b.insert(Translation::new(k(7), Ppn(1)));
        let cfg = ShootdownConfig::default();
        let out = run_shootdown(0, k(7), &cfg, &mut [&mut a, &mut b]);
        assert_eq!(out.sinks_hit, 2);
        assert_eq!(out.sinks_probed, 2);
        assert!(a.probe(k(7)).is_none());
        assert!(b.probe(k(7)).is_none());
    }

    #[test]
    fn latency_scales_with_sink_count() {
        let cfg = ShootdownConfig { enqueue_latency: 10, parse_latency: 5, per_sink_latency: 3 };
        let mut a = Tlb::new(TlbConfig::fully_associative(2, 1));
        let mut b = Tlb::new(TlbConfig::fully_associative(2, 1));
        let mut c = Tlb::new(TlbConfig::fully_associative(2, 1));
        let out = run_shootdown(100, k(1), &cfg, &mut [&mut a, &mut b, &mut c]);
        assert_eq!(out.done, 100 + 10 + 5 + 3 * 3);
        assert_eq!(out.sinks_hit, 0);
    }

    #[test]
    fn absent_key_reports_zero_hits() {
        let mut a = Tlb::new(TlbConfig::fully_associative(2, 1));
        a.insert(Translation::new(k(1), Ppn(1)));
        let out = run_shootdown(0, k(2), &ShootdownConfig::default(), &mut [&mut a]);
        assert_eq!(out.sinks_hit, 0);
        assert!(a.probe(k(1)).is_some(), "other entries untouched");
    }
}
