//! One function per table/figure of the paper.
//!
//! Every function returns the printed report as a `String`, so the
//! binaries, the `figures` bench target and the integration tests all
//! share the exact same experiment code. See `EXPERIMENTS.md` at the
//! workspace root for paper-vs-measured commentary.

use gtr_core::config::{ReachConfig, Replacement, SamplingConfig, SegmentSize, TxPerLine};
use gtr_core::stats::RunStats;
use gtr_gpu::config::GpuConfig;
use gtr_vm::addr::PageSize;
use gtr_workloads::scale::Scale;
use gtr_workloads::suite;

use crate::harness::{row, Matrix, RunMode, Variant};

/// POM-TLB entries used for the DUCATI comparison (512 K entries,
/// 4 MB of device memory).
pub const DUCATI_POM_ENTRIES: u64 = 512 * 1024;

/// Table 1: the simulated setup (printed for reference).
pub fn table1() -> String {
    let g = GpuConfig::default();
    let r = ReachConfig::ic_plus_lds();
    format!(
        "### Table 1: simulated setup\n\
         GPU: {} CUs, {} SIMDs/CU, {} waves/SIMD, {} threads/wave\n\
         L1 TLB: {} entries, fully assoc, {} cy | L2 TLB: {} entries, {}-way, {} cy\n\
         I-cache: {} KB, {}-way, shared by {} CUs; IC tag {} cy, Tx tag {} cy, \
         scan {} cy, mux {} cy, decompress {} cy\n\
         LDS: {} KB/CU, segment {} B ({} tx ways); LDS-mode {} cy, Tx-mode {} cy\n\
         Data caches: L1 {} KB/{}-way, L2 {} MB/{}-way | DRAM: DDR3-1600, 2ch x 2rk x 16bk\n\
         IOMMU: {} walkers; dev TLBs {}/{}; PWC {}/{}/{}\n",
        g.cus,
        g.simds_per_cu,
        g.waves_per_simd,
        g.threads_per_wave,
        g.l1_tlb.entries,
        g.l1_tlb.latency,
        g.l2_tlb.entries,
        g.l2_tlb.assoc,
        g.l2_tlb.latency,
        g.icache_bytes / 1024,
        g.icache_assoc,
        g.cus_per_icache,
        g.ic_tag_latency,
        r.ic_tx_tag_latency,
        r.ic_tx_scan_latency,
        r.mux_latency,
        r.decompress_latency,
        g.lds_bytes / 1024,
        r.segment_size.bytes(),
        r.segment_size.ways(),
        g.lds_latency,
        r.lds_tx_latency,
        g.l1d.capacity_bytes / 1024,
        g.l1d.assoc,
        g.memory.l2.capacity_bytes / (1024 * 1024),
        g.memory.l2.assoc,
        g.iommu.walkers,
        g.iommu.l1_entries,
        g.iommu.l2_entries,
        g.iommu.pwc.pgd_entries,
        g.iommu.pwc.pud_entries,
        g.iommu.pwc.pmd_entries,
    )
}

/// Table 2: benchmark characterization under the baseline.
pub fn table2(scale: Scale) -> String {
    let apps = suite::all(scale);
    let baseline = Variant::new("baseline", ReachConfig::baseline());
    let m = Matrix::run_apps(&apps, baseline, vec![]);
    let mut out = String::from(
        "### Table 2: benchmarks (measured on the baseline simulator)\n\
         App        Suite      Kernels  B2B  L1-HR%  L2-HR%  PTW-PKI  Category\n",
    );
    for (i, app) in apps.iter().enumerate() {
        let info = suite::info(app.name()).expect("suite metadata");
        let s = &m.baseline[i];
        out.push_str(&format!(
            "{:<10} {:<10} {:>7}  {:<3}  {:>6.1}  {:>6.1}  {:>7.2}  {}\n",
            app.name(),
            info.suite,
            app.kernels().len(),
            if app.has_back_to_back_kernels() { "Yes" } else { "No" },
            s.l1_hit_ratio() * 100.0,
            s.l2_hit_ratio() * 100.0,
            s.ptw_pki(),
            s.category(),
        ));
    }
    out
}

/// Figures 2 and 3: page walks and performance vs L2 TLB size
/// (512 → 64 K entries, plus a perfect L2 TLB).
pub fn fig02_03(scale: Scale) -> String {
    let sizes: [(&str, usize); 5] =
        [("1K", 1024), ("2K", 2048), ("4K", 4096), ("8K", 8192), ("64K", 65536)];
    let mut variants: Vec<Variant> = sizes
        .iter()
        .map(|(label, entries)| {
            Variant::with_gpu(
                format!("L2-TLB-{label}"),
                GpuConfig::default().with_l2_tlb_entries(*entries),
                ReachConfig::baseline(),
            )
        })
        .collect();
    variants.push(Variant::with_gpu(
        "Perfect-L2-TLB",
        GpuConfig::default().with_perfect_l2_tlb(),
        ReachConfig::baseline(),
    ));
    let m = Matrix::run(scale, Variant::new("512 (baseline)", ReachConfig::baseline()), variants);
    let mut out = m.normalized_table(
        "Fig 2: page walks normalized to the 512-entry baseline",
        |s: &RunStats| s.page_walks as f64,
    );
    out.push('\n');
    out.push_str(&m.improvement_table("Fig 3: performance improvement vs 512-entry baseline"));
    out
}

/// Figures 4 and 5: LDS/I-cache capacity and port-bandwidth
/// under-utilization in the baseline.
pub fn fig04_05(scale: Scale) -> String {
    let apps = suite::all(scale);
    let m = Matrix::run_apps(&apps, Variant::new("baseline", ReachConfig::baseline()), vec![]);
    let mut out = String::from(
        "### Fig 4a: LDS bytes requested per workgroup (box-and-whisker)\n\
         App        min      q1     med      q3     max   (LDS capacity/CU = 16384 B)\n",
    );
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].lds_request_summary;
        out.push_str(&format!(
            "{:<10} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out.push_str("\n### Fig 4b: idle cycles between LDS port accesses\n");
    out.push_str("App        min      q1     med      q3     max\n");
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].lds_idle_summary;
        out.push_str(&format!(
            "{:<10} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out.push_str("\n### Fig 5a: per-kernel I-cache utilization %, Eq 1 (box-and-whisker)\n");
    out.push_str("App        min      q1     med      q3     max\n");
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].icache_utilization_summary;
        out.push_str(&format!(
            "{:<10} {:>6.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out.push_str("\n### Fig 5b: idle cycles between I-cache port accesses\n");
    out.push_str("App        min      q1     med      q3     max\n");
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].icache_idle_summary;
        out.push_str(&format!(
            "{:<10} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out
}

/// Figure 11: I-cache utilization per kernel over time.
pub fn fig11(scale: Scale) -> String {
    let names = ["ATAX", "BICG", "MVT", "BFS", "NW", "PRK", "SSSP", "GUPS"];
    let mut out = String::from(
        "### Fig 11: per-kernel I-cache utilization over time (first 24 launches)\n",
    );
    for name in names {
        let app = suite::by_name(name, scale).expect("known app");
        let stats = crate::harness::run_one(&app, GpuConfig::default(), ReachConfig::baseline());
        let series: Vec<String> = stats
            .kernels
            .iter()
            .take(24)
            .map(|k| format!("{:.0}", k.icache_utilization_pct))
            .collect();
        out.push_str(&format!("{name:<6} [{} kernels] {}\n", stats.kernels.len(), series.join(" ")));
    }
    out
}

/// The main (Fig 13/14/15) run matrix: LDS-only, IC-only, IC+LDS.
pub fn main_matrix(scale: Scale) -> Matrix {
    main_matrix_opts(scale, false)
}

/// [`main_matrix`] with distribution recording optionally armed on
/// every cell (`all --percentiles` uses this to export schema-v2
/// histograms; the timing results are identical either way).
pub fn main_matrix_opts(scale: Scale, distributions: bool) -> Matrix {
    main_matrix_mode(scale, distributions, &RunMode::exact())
}

/// [`main_matrix_opts`] under an explicit execution [`RunMode`] —
/// `all --sample` runs the matrix through this with checkpointed
/// interval sampling.
pub fn main_matrix_mode(scale: Scale, distributions: bool, mode: &RunMode) -> Matrix {
    let variant = |label: &str, reach| {
        let v = Variant::new(label, reach);
        if distributions {
            v.with_distributions()
        } else {
            v
        }
    };
    Matrix::run_with_mode(
        scale,
        variant("baseline", ReachConfig::baseline()),
        vec![
            variant("LDS", ReachConfig::lds_only()),
            variant("IC", ReachConfig::ic_only()),
            variant("IC+LDS", ReachConfig::ic_plus_lds()),
        ],
        mode,
    )
}

/// The sampling windows `--sample` uses at a given scale: the
/// paper-default windows shrunk by the workload factor (floored at
/// 512 instructions — see [`SamplingConfig::scaled`]).
pub fn sampling_for(scale: Scale) -> SamplingConfig {
    SamplingConfig::paper_default().scaled(scale.factor())
}

/// Figure 13a: reconfigurable I-cache design variants.
pub fn fig13a(scale: Scale) -> String {
    let ic = |tx, repl, flush| {
        ReachConfig::ic_only()
            .with_tx_per_line(tx)
            .with_replacement(repl)
            .with_flush(flush)
    };
    let m = Matrix::run(
        scale,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("IC-1tx/way", ic(TxPerLine::One, Replacement::InstructionAware, false)),
            Variant::new("IC-8tx-naive-repl", ic(TxPerLine::Eight, Replacement::NaiveLru, false)),
            Variant::new("IC-8tx-instr-aware", ic(TxPerLine::Eight, Replacement::InstructionAware, false)),
            Variant::new("IC-8tx-IA+flush", ic(TxPerLine::Eight, Replacement::InstructionAware, true)),
        ],
    );
    m.improvement_table("Fig 13a: reconfigurable I-cache variants (% improvement)")
}

/// Figure 13b: LDS / IC / IC+LDS performance (from a prebuilt matrix).
pub fn fig13b_from(m: &Matrix) -> String {
    let mut out = m.improvement_table("Fig 13b: reconfigurable LDS / IC / IC+LDS (% improvement)");
    out.push_str(&m.geomean_chart());
    let high_medium = ["ATAX", "GEV", "MVT", "BICG", "GUPS", "NW", "BFS"];
    out.push_str("\nHigh+Medium-only geomeans: ");
    for v in 0..m.variants.len() {
        out.push_str(&format!(
            "{}={:+.1}% ",
            m.variants[v].0,
            m.geomean_improvement_subset(v, &high_medium)
        ));
    }
    out.push('\n');
    out
}

/// Figure 13b standalone.
pub fn fig13b(scale: Scale) -> String {
    fig13b_from(&main_matrix(scale))
}

/// Figure 13c: normalized DRAM energy (from a prebuilt matrix).
pub fn fig13c_from(m: &Matrix) -> String {
    m.normalized_table("Fig 13c: DRAM energy normalized to baseline", |s| s.dram_energy_nj)
}

/// Figure 13c standalone.
pub fn fig13c(scale: Scale) -> String {
    fig13c_from(&main_matrix(scale))
}

/// Figure 14a/14b: translation sharing across CUs and normalized page
/// walks (from a prebuilt matrix).
pub fn fig14ab_from(m: &Matrix) -> String {
    let mut out = String::from("### Fig 14a: % of translations shared across CUs\n");
    let ic_lds = m.variants.len() - 1;
    out.push_str(&row(
        "app",
        &m.apps.iter().map(String::as_str).collect::<Vec<_>>(),
        "",
    ));
    let cells: Vec<String> = m.variants[ic_lds]
        .1
        .iter()
        .map(|s| format!("{:.0}%", s.tx_shared_fraction * 100.0))
        .collect();
    out.push_str(&row(
        "shared",
        &cells.iter().map(String::as_str).collect::<Vec<_>>(),
        "",
    ));
    out.push('\n');
    out.push_str(
        &m.normalized_table("Fig 14b: page walks normalized to baseline", |s| {
            s.page_walks as f64
        }),
    );
    out
}

/// Figure 14c: IC+LDS improvement at 4 KB / 64 KB / 2 MB pages.
pub fn fig14c(scale: Scale) -> String {
    let mut out = String::from("### Fig 14c: IC+LDS geomean improvement by page size\n");
    for size in PageSize::all() {
        let gpu = GpuConfig::default().with_page_size(size);
        let m = Matrix::run(
            scale,
            Variant::with_gpu("baseline", gpu.clone(), ReachConfig::baseline()),
            vec![Variant::with_gpu("IC+LDS", gpu, ReachConfig::ic_plus_lds())],
        );
        out.push_str(&format!("{size:>5} pages: {:+.1}%\n", m.geomean_improvement(0)));
    }
    out
}

/// Figure 15: additional translation entries gained (peak resident).
pub fn fig15_from(m: &Matrix) -> String {
    let ic_lds = m.variants.len() - 1;
    let mut out = String::from(
        "### Fig 15: additional translation entries gained (peak; max 16K = 12K LDS + 4K IC)\n",
    );
    for (i, app) in m.apps.iter().enumerate() {
        out.push_str(&format!(
            "{:<10} {:>6}\n",
            app, m.variants[ic_lds].1[i].peak_tx_entries
        ));
    }
    out
}

/// Figure 15 standalone.
pub fn fig15(scale: Scale) -> String {
    fig15_from(&main_matrix(scale))
}

/// Figure 16a: sensitivity to the number of CUs sharing an I-cache
/// (total I-cache capacity constant).
pub fn fig16a(scale: Scale) -> String {
    let variants = [1usize, 2, 4, 8]
        .iter()
        .map(|&sharers| {
            Variant::with_gpu(
                format!("{sharers}-CU-sharers"),
                GpuConfig::default().with_icache_sharers(sharers),
                ReachConfig::ic_plus_lds(),
            )
        })
        .collect();
    let m = Matrix::run(scale, Variant::new("baseline", ReachConfig::baseline()), variants);
    m.improvement_table("Fig 16a: IC+LDS improvement vs CUs per I-cache (capacity constant)")
}

/// Figure 16b: sensitivity to additional datapath/wire latency.
pub fn fig16b(scale: Scale) -> String {
    let mut variants = Vec::new();
    for extra in [10u64, 50, 100] {
        variants.push(Variant::new(
            format!("IC_only+{extra}cy"),
            ReachConfig::ic_plus_lds().with_wire_latency(0, extra),
        ));
        variants.push(Variant::new(
            format!("LDS_only+{extra}cy"),
            ReachConfig::ic_plus_lds().with_wire_latency(extra, 0),
        ));
        variants.push(Variant::new(
            format!("IC_LDS+{extra}cy"),
            ReachConfig::ic_plus_lds().with_wire_latency(extra, extra),
        ));
    }
    let m = Matrix::run(scale, Variant::new("baseline", ReachConfig::baseline()), variants);
    m.improvement_table("Fig 16b: IC+LDS improvement with extra translation wire latency")
}

/// Figure 16c: composing with DUCATI.
pub fn fig16c(scale: Scale) -> String {
    let m = Matrix::run(
        scale,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("DUCATI", ReachConfig::baseline()).with_ducati(DUCATI_POM_ENTRIES),
            Variant::new("IC+LDS", ReachConfig::ic_plus_lds()),
            Variant::new("DUCATI+IC+LDS", ReachConfig::ic_plus_lds())
                .with_ducati(DUCATI_POM_ENTRIES),
        ],
    );
    m.improvement_table("Fig 16c: DUCATI vs and with the reconfigurable design")
}

/// §6.3.1: LDS segment-size ablation (32 B / 3-way vs 64 B / 6-way).
pub fn ablation_segment_size(scale: Scale) -> String {
    let m = Matrix::run(
        scale,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("IC+LDS-32B-seg", ReachConfig::ic_plus_lds()),
            Variant::new(
                "IC+LDS-64B-seg",
                ReachConfig::ic_plus_lds().with_segment_size(SegmentSize::Bytes64),
            ),
        ],
    );
    m.improvement_table("§6.3.1: LDS segment size 32 B vs 64 B (% improvement)")
}

/// Design-choice ablations beyond the paper's own sensitivity studies
/// (promised by DESIGN.md): victim-cache vs prefetch-buffer fills
/// (§4.1), page-walk caches on/off, and the SIMT coalescer on/off.
pub fn ablations(scale: Scale) -> String {
    use gtr_core::config::TxFillPolicy;
    let mut out = String::new();
    // (a) Victim cache vs prefetch buffer, irregular apps only.
    let apps: Vec<_> = ["ATAX", "GUPS", "BFS"]
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();
    let m = Matrix::run_apps(
        &apps,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("victim-cache (paper)", ReachConfig::ic_plus_lds()),
            Variant::new(
                "prefetch-buffer",
                ReachConfig::ic_plus_lds().with_fill_policy(TxFillPolicy::PrefetchBuffer),
            ),
        ],
    );
    out.push_str(&m.improvement_table(
        "Ablation §4.1: victim cache vs prefetch buffer (irregular apps)",
    ));
    out.push('\n');
    // (b) Home-node-hashed LDS: the duplication-limiting optimization
    // the paper defers. Dedup multiplies GUPS's effective reach ~8x;
    // apps whose per-CU LDS already covers their hot set mostly pay
    // the remote hop.
    let apps: Vec<_> = ["ATAX", "GUPS", "BFS"]
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();
    let m = Matrix::run_apps(
        &apps,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("IC+LDS (duplicated)", ReachConfig::ic_plus_lds()),
            Variant::new(
                "IC+LDS home-hashed",
                ReachConfig::ic_plus_lds().with_lds_home_hashing(),
            ),
        ],
    );
    out.push_str(&m.improvement_table(
        "Ablation (paper future work): home-node-hashed LDS vs per-CU duplication",
    ));
    out.push('\n');
    // (c) Page-walk caches on/off (baseline machine).
    let apps: Vec<_> = ["ATAX", "GEV", "GUPS"]
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();
    let m = Matrix::run_apps(
        &apps,
        Variant::new("with PWCs (baseline)", ReachConfig::baseline()),
        vec![Variant::with_gpu(
            "without PWCs",
            GpuConfig::default().without_page_walk_caches(),
            ReachConfig::baseline(),
        )],
    );
    out.push_str(&m.improvement_table("Ablation: split page-walk caches removed"));
    out.push('\n');
    // (d) SIMT coalescer on/off (baseline machine).
    let m = Matrix::run_apps(
        &apps,
        Variant::new("with coalescer (baseline)", ReachConfig::baseline()),
        vec![Variant::with_gpu(
            "without coalescer",
            GpuConfig::default().without_coalescing(),
            ReachConfig::baseline(),
        )],
    );
    out.push_str(&m.improvement_table("Ablation: SIMT page coalescer removed"));
    out
}

/// §7.2 multi-application scenario: ATAX and BICG interleaved in two
/// address spaces, with and without the reconfigurable architecture.
pub fn multi_app(scale: Scale) -> String {
    use gtr_gpu::kernel::AppTrace;
    let a = suite::by_name("ATAX", scale).expect("known app");
    let b = suite::by_name("BICG", scale).expect("known app");
    let merged = AppTrace::interleave(&a, &b);
    let m = Matrix::run_apps(
        std::slice::from_ref(&merged),
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("LDS", ReachConfig::lds_only()),
            Variant::new("IC", ReachConfig::ic_only()),
            Variant::new("IC+LDS", ReachConfig::ic_plus_lds()),
        ],
    );
    m.improvement_table("§7.2: two tenants (ATAX+BICG interleaved, distinct VM-IDs)")
}

/// Everything, in paper order (shares the main matrix across Figs
/// 13b/13c/14ab/15).
pub fn all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&table1());
    out.push('\n');
    out.push_str(&table2(scale));
    out.push('\n');
    out.push_str(&fig02_03(scale));
    out.push('\n');
    out.push_str(&fig04_05(scale));
    out.push('\n');
    out.push_str(&fig11(scale));
    out.push('\n');
    out.push_str(&fig13a(scale));
    out.push('\n');
    let m = main_matrix(scale);
    out.push_str(&fig13b_from(&m));
    out.push('\n');
    out.push_str(&fig13c_from(&m));
    out.push('\n');
    out.push_str(&fig14ab_from(&m));
    out.push('\n');
    out.push_str(&fig14c(scale));
    out.push('\n');
    out.push_str(&fig15_from(&m));
    out.push('\n');
    out.push_str(&fig16a(scale));
    out.push('\n');
    out.push_str(&fig16b(scale));
    out.push('\n');
    out.push_str(&fig16c(scale));
    out.push('\n');
    out.push_str(&ablation_segment_size(scale));
    out.push('\n');
    out.push_str(&ablations(scale));
    out.push('\n');
    out.push_str(&multi_app(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_table_values() {
        let t = table1();
        assert!(t.contains("8 CUs"));
        assert!(t.contains("512 entries"));
        assert!(t.contains("32 walkers"));
    }

    #[test]
    fn table2_runs_at_tiny_scale() {
        let t = table2(Scale::tiny());
        assert!(t.contains("ATAX"));
        assert!(t.contains("GUPS"));
        assert!(t.contains("PTW-PKI"));
    }
}
