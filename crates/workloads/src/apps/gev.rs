//! GESUMMV / "GEV" (Polybench): `y = α·A·x + β·B·x`.
//!
//! A single kernel (Table 2: 1 kernel, so neither the flush
//! optimization nor kernel-boundary reuse applies) sweeping *two*
//! matrices column-wise. The combined footprint (2 × 16 K pages)
//! exceeds even the reconfigurable reach per CU, giving GEV the
//! paper's highest PTW-PKI (90.7) and the lowest L1 hit ratio (27.8%).

use gtr_gpu::kernel::{AppTrace, KernelDesc};

use crate::gen::{into_workgroups, WaveBuilder};
use crate::scale::Scale;

/// Matrix dimension (3072 × 3072 × 4 B = 9216 pages per matrix; the
/// two-matrix footprint far exceeds every TLB but each wave's private
/// row block fits the per-CU reconfigurable reach).
pub const N: u64 = 3072;

/// VA base of matrix A.
pub const A_BASE: u64 = 0x1_0000_0000;

/// VA base of matrix B (allocated right after A, 36 MB later — tag
/// deltas stay inside the base-delta compression windows).
pub const B_BASE: u64 = A_BASE + 0x240_0000;

/// Builds the GEV trace.
pub fn build(scale: Scale) -> AppTrace {
    let row_bytes = N * 4;
    let waves = 32usize;
    let cols = scale.count(48);
    let mut programs = Vec::with_capacity(waves);
    for w in 0..waves as u64 {
        let mut b = WaveBuilder::new(6);
        let block = w * 64 * row_bytes;
        for j in 0..cols as u64 {
            b.column_read(A_BASE + block + j * 4, row_bytes);
            b.column_read(B_BASE + block + j * 4, row_bytes);
        }
        programs.push(b.build());
    }
    let k = KernelDesc::new("gesummv_kernel", 128, 0, into_workgroups(programs, 4));
    AppTrace::new("GEV", vec![k])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_kernel() {
        let app = build(Scale::tiny());
        assert_eq!(app.kernels().len(), 1);
        assert_eq!(app.name(), "GEV");
    }

    #[test]
    fn touches_two_matrices() {
        let app = build(Scale::tiny());
        let wave = &app.kernels()[0].workgroups()[0].waves()[0];
        let mut in_a = false;
        let mut in_b = false;
        for op in wave.ops() {
            if let gtr_gpu::ops::Op::Global {
                pattern: gtr_gpu::ops::AccessPattern::Strided { base, .. },
                ..
            } = op
            {
                in_a |= *base >= A_BASE && *base < B_BASE;
                in_b |= *base >= B_BASE;
            }
        }
        assert!(in_a && in_b);
    }

    #[test]
    fn footprint_exceeds_atax() {
        let gev = N * N * 4 * 2;
        let atax = super::super::atax::N * super::super::atax::N * 4;
        assert!(gev > atax);
    }
}
