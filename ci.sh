#!/bin/sh
# Tier-1 gate: build, test, docs, simulator-throughput regression
# check, observability schema validation, and the host-profile smoke.
set -eu
cd "$(dirname "$0")"

cargo build --release
# The default test run includes the worker-count determinism battery
# (tests/parallel_determinism.rs): byte-identical schema-v4 exports
# for --threads 1/2/4/8, exact and sampled.
cargo test -q

# Rustdoc must build warning-free (the workspace warns on
# missing_docs: every public item is documented).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

# Simulator throughput + determinism anchor (BENCH_sim_throughput.json).
cargo run --release -p gtr-bench --bin perf -- --check

# Multi-thread anchor gate: the tiny matrix swept under an explicit
# worker count must reproduce the frozen cycle total bit for bit —
# parallelism must never change what is computed.
mkdir -p target/ci-observability
cargo run --release -q -p gtr-bench --bin perf -- --dry-run --threads 4 \
    > target/ci-observability/perf_t4.json
grep -q '"sim_cycles": 3977625' target/ci-observability/perf_t4.json || {
    echo "tiny matrix at --threads 4 lost the 3,977,625 cycle anchor:" >&2
    cat target/ci-observability/perf_t4.json >&2
    exit 1
}

# Observability schema gate: export a tiny matrix, a single traced run
# with epoch sampling + distribution recording, and a JSONL event
# stream, then validate all three against the stats schema / event
# vocabulary (including the schema-v2 distribution invariants). The
# `all` invocation runs the full 17-figure battery in exact mode and
# attaches the schema-v4 `figures` array to the matrix export.
CI_OUT=target/ci-observability
mkdir -p "$CI_OUT"
cargo run --release -q -p gtr-bench --bin all -- --tiny --percentiles --stats-out "$CI_OUT/matrix.json"
cargo run --release -q -p gtr-bench --bin run_app -- GUPS ic+lds --tiny --percentiles \
    --epochs 50000 --stats-out "$CI_OUT/run.json" --trace "$CI_OUT/trace.jsonl"
cargo run --release -q -p gtr-bench --bin validate_stats -- \
    "$CI_OUT/matrix.json" "$CI_OUT/run.json"
cargo run --release -q -p gtr-bench --bin validate_stats -- --jsonl "$CI_OUT/trace.jsonl"

# Trace-replay consistency oracle: the fresh trace must independently
# reproduce the fresh stats, and the fresh stats must match the
# committed golden fixture exactly (the simulator is deterministic).
cargo run --release -q -p gtr-bench --bin gtr-analyze -- \
    --replay "$CI_OUT/trace.jsonl" --stats "$CI_OUT/run.json"
cargo run --release -q -p gtr-bench --bin gtr-analyze -- \
    --diff "$CI_OUT/run.json" experiments/gups_ic_lds_tiny.json

# Tenancy smoke: the 2-tenant tiny sweep under all three sharing
# policies (TENANCY.md) plus the shootdown-storm churn scenario. The
# sweep matrices export as schema-v5 documents whose per-tenant
# records validate_stats checks against the tenancy invariants
# (counters sum to run totals, VM-IDs ordered, slowdowns finite); the
# untenanted solo anchor must still stamp schema v4. Budget-gated
# like the other smokes (locally ~4 s).
TENANCY_BUDGET_S=120
TENANCY_START=$(date +%s)
rm -rf "$CI_OUT/tenancy"
cargo run --release -q -p gtr-bench --bin tenancy -- --tiny --tenants 2 --policy all \
    --stats-out "$CI_OUT/tenancy" > "$CI_OUT/tenancy_smoke.txt" 2>/dev/null
TENANCY_ELAPSED=$(( $(date +%s) - TENANCY_START ))
grep -q "pages migrated" "$CI_OUT/tenancy_smoke.txt" || {
    echo "tenancy smoke output is missing the shootdown storm" >&2; exit 1; }
grep -q '"schema_version":5' "$CI_OUT/tenancy/tenancy_2t_subentry.json" || {
    echo "tenanted matrix export lost its schema-v5 stamp" >&2; exit 1; }
grep -q '"schema_version":4' "$CI_OUT/tenancy/tenancy_solo.json" || {
    echo "untenanted solo export must stay schema v4" >&2; exit 1; }
cargo run --release -q -p gtr-bench --bin validate_stats -- "$CI_OUT"/tenancy/*.json
if [ "$TENANCY_ELAPSED" -gt "$TENANCY_BUDGET_S" ]; then
    echo "tenancy smoke took ${TENANCY_ELAPSED}s (budget ${TENANCY_BUDGET_S}s)" >&2
    exit 1
fi
echo "tenancy smoke: ${TENANCY_ELAPSED}s (budget ${TENANCY_BUDGET_S}s)"

# Contiguity smoke: the page-backing-mode comparison ({4 KB, 2 MB,
# fragmented-2 MB, coalesced} x {baseline, LDS, IC, IC+LDS}) at tiny
# scale under a pinned 4-worker pool. The coalesced matrix must stamp
# schema v6 and carry the `coalescing` object validate_stats checks
# against the coalescing invariants; the plain-4K matrix must stay
# schema v4 — coalescing is strictly opt-in. Budget-gated (locally
# ~3 s).
CONTIG_BUDGET_S=120
CONTIG_START=$(date +%s)
rm -rf "$CI_OUT/contiguity"
cargo run --release -q -p gtr-bench --bin contiguity -- --tiny --no-sweep --threads 4 \
    --stats-out "$CI_OUT/contiguity" > "$CI_OUT/contiguity_smoke.txt" 2>/dev/null
CONTIG_ELAPSED=$(( $(date +%s) - CONTIG_START ))
grep -q "^coalesced" "$CI_OUT/contiguity_smoke.txt" || {
    echo "contiguity smoke output is missing the coalesced mode row" >&2; exit 1; }
grep -q '"schema_version":6' "$CI_OUT/contiguity/contiguity_coalesced.json" || {
    echo "coalesced matrix export lost its schema-v6 stamp" >&2; exit 1; }
grep -q '"coalescing":{' "$CI_OUT/contiguity/contiguity_coalesced.json" || {
    echo "coalesced matrix export carries no coalescing stats" >&2; exit 1; }
grep -q '"schema_version":4' "$CI_OUT/contiguity/contiguity_4K.json" || {
    echo "plain-4K contiguity export must stay schema v4" >&2; exit 1; }
cargo run --release -q -p gtr-bench --bin validate_stats -- "$CI_OUT"/contiguity/*.json
if [ "$CONTIG_ELAPSED" -gt "$CONTIG_BUDGET_S" ]; then
    echo "contiguity smoke took ${CONTIG_ELAPSED}s (budget ${CONTIG_BUDGET_S}s)" >&2
    exit 1
fi
echo "contiguity smoke: ${CONTIG_ELAPSED}s (budget ${CONTIG_BUDGET_S}s)"

# Sampled paper-scale smoke cell: one app, two variants, full paper
# scale under interval sampling. The first run captures the warmup
# checkpoint, the second must reuse it from the cache; both stats
# records carry a schema-v3 `sampling` object that validate_stats
# checks. Budget-gated so the paper-scale fast path can't silently
# rot (locally both cells finish in ~2 s; the budget leaves headroom
# for loaded CI hosts).
SMOKE_BUDGET_S=60
SMOKE_START=$(date +%s)
rm -rf "$CI_OUT/ckpt"
cargo run --release -q -p gtr-bench --bin run_app -- GUPS baseline \
    --sample --checkpoint-dir "$CI_OUT/ckpt" --stats-out "$CI_OUT/gups_sampled_base.json"
cargo run --release -q -p gtr-bench --bin run_app -- GUPS ic+lds \
    --sample --checkpoint-dir "$CI_OUT/ckpt" --stats-out "$CI_OUT/gups_sampled_iclds.json"
SMOKE_ELAPSED=$(( $(date +%s) - SMOKE_START ))
[ "$(ls "$CI_OUT/ckpt" | wc -l)" -eq 1 ] || {
    echo "sampled smoke: expected exactly one shared checkpoint in $CI_OUT/ckpt" >&2; exit 1; }
cargo run --release -q -p gtr-bench --bin validate_stats -- \
    "$CI_OUT/gups_sampled_base.json" "$CI_OUT/gups_sampled_iclds.json"
if [ "$SMOKE_ELAPSED" -gt "$SMOKE_BUDGET_S" ]; then
    echo "sampled paper-scale smoke took ${SMOKE_ELAPSED}s (budget ${SMOKE_BUDGET_S}s)" >&2
    exit 1
fi
echo "sampled paper-scale smoke: ${SMOKE_ELAPSED}s (budget ${SMOKE_BUDGET_S}s)"

# Sampled full-battery smoke: the complete 17-figure battery at tiny
# scale under checkpointed interval sampling (the exact-mode battery
# already ran above for the matrix export). The export's `figures`
# array must validate — validate_stats checks every figure sampled
# every cell it simulated, so a silent fallback to exact simulation
# fails here. The same run records a host-side span profile
# (`--prof`, ARCHITECTURE's host-side profiling section) under a
# pinned 4-worker pool — profiling must not perturb the export, and
# the emitted Chrome trace must be well-formed. Budget-gated like the
# cell smoke (locally ~12 s).
BATTERY_BUDGET_S=300
BATTERY_START=$(date +%s)
rm -rf "$CI_OUT/battery-ckpt"
cargo run --release -q -p gtr-bench --bin all -- --scale tiny --sample --threads 4 \
    --checkpoint-dir "$CI_OUT/battery-ckpt" --stats-out "$CI_OUT/matrix_sampled.json" \
    --prof "$CI_OUT/prof_trace.json" \
    > "$CI_OUT/battery_sampled.txt"
BATTERY_ELAPSED=$(( $(date +%s) - BATTERY_START ))
cargo run --release -q -p gtr-bench --bin validate_stats -- "$CI_OUT/matrix_sampled.json"
grep -q "### Sampling summary" "$CI_OUT/battery_sampled.txt" || {
    echo "sampled battery output is missing its sampling summary" >&2; exit 1; }
if [ "$BATTERY_ELAPSED" -gt "$BATTERY_BUDGET_S" ]; then
    echo "sampled full battery took ${BATTERY_ELAPSED}s (budget ${BATTERY_BUDGET_S}s)" >&2
    exit 1
fi
echo "sampled full battery: ${BATTERY_ELAPSED}s (budget ${BATTERY_BUDGET_S}s)"

# Host-profile smoke: the battery's Chrome trace must be non-empty,
# parseable (balanced B/E per lane — gtr-analyze re-parses it with
# the repo's own JSON machinery), and carry at least one span on each
# of the four pinned worker lanes. The summary must render the
# per-phase breakdown it promises.
[ -s "$CI_OUT/prof_trace.json" ] || {
    echo "battery --prof run produced no trace" >&2; exit 1; }
cargo run --release -q -p gtr-bench --bin gtr-analyze -- \
    --prof-summary "$CI_OUT/prof_trace.json" --expect-workers 4 \
    > "$CI_OUT/prof_summary.txt"
grep -q "per-phase breakdown" "$CI_OUT/prof_summary.txt" || {
    echo "profile summary is missing its per-phase breakdown" >&2; exit 1; }

# BENCH-history rot gate: the committed perf baselines must stay
# parseable end to end — gtr-analyze fails on any record that does
# not round-trip through the report schemas (e.g. a hand-edit that
# breaks the history's JSON shape). With no file arguments the tool
# discovers every BENCH_*.json at the repo root by glob, so new
# baseline families are gated automatically.
cargo run --release -q -p gtr-bench --bin gtr-analyze -- --bench-history

# gtr-serve smoke: start the sweep service on a loopback port, submit
# a tiny batch containing a duplicate cell, and prove the dedupe
# layer end to end: the counters must show exactly one simulation for
# the duplicated pair, every streamed stats document must validate,
# and a resubmission must be answered 100% from the cache without
# re-entering the simulator. The server binary is invoked directly
# from target/release — a background `cargo run` would contend on the
# build lock, so build it by name first (the root `cargo build` only
# covers the root package's targets). Budget-gated (locally ~1 s).
cargo build --release -q -p gtr-bench --bin gtr-serve
SERVE_BUDGET_S=120
SERVE_START=$(date +%s)
rm -rf "$CI_OUT/serve" "$CI_OUT/serve-cache"
mkdir -p "$CI_OUT/serve"
target/release/gtr-serve --listen 127.0.0.1:0 --port-file "$CI_OUT/serve/addr" \
    --cache-dir "$CI_OUT/serve-cache" 2> "$CI_OUT/serve/server.log" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
i=0
while [ ! -s "$CI_OUT/serve/addr" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
[ -s "$CI_OUT/serve/addr" ] || {
    echo "gtr-serve never wrote its --port-file" >&2; exit 1; }
SERVE_ADDR=$(cat "$CI_OUT/serve/addr")

# One batch: two distinct cells plus an exact duplicate, then a
# counters probe. The blank line flushes the batch before the probe.
printf '%s\n' \
    '{"app":"GUPS","config":"baseline","scale":"tiny","mode":"exact"}' \
    '{"app":"GUPS","config":"ic+lds","scale":"tiny","mode":"exact"}' \
    '{"app":"GUPS","config":"ic+lds","scale":"tiny","mode":"exact"}' \
    '' \
    '{"cmd":"stats"}' > "$CI_OUT/serve/batch.jsonl"
target/release/gtr-serve --connect "$SERVE_ADDR" --submit "$CI_OUT/serve/batch.jsonl" \
    --out-dir "$CI_OUT/serve/cold" > "$CI_OUT/serve/cold.txt"
grep -q '"source":"coalesced"' "$CI_OUT/serve/cold.txt" || {
    echo "serve smoke: the duplicate cell did not coalesce" >&2
    cat "$CI_OUT/serve/cold.txt" >&2; exit 1; }
grep -q '"simulations":2' "$CI_OUT/serve/cold.txt" || {
    echo "serve smoke: expected exactly one simulation for the duplicated pair" >&2
    cat "$CI_OUT/serve/cold.txt" >&2; exit 1; }
[ "$(ls "$CI_OUT/serve/cold" | wc -l)" -eq 3 ] || {
    echo "serve smoke: expected three streamed documents" >&2; exit 1; }
cargo run --release -q -p gtr-bench --bin validate_stats -- "$CI_OUT"/serve/cold/resp_*.json

# Resubmission: 100% cache hits, and the simulation counter is frozen
# — memoized cells never re-enter the simulator.
target/release/gtr-serve --connect "$SERVE_ADDR" --submit "$CI_OUT/serve/batch.jsonl" \
    --out-dir "$CI_OUT/serve/hot" > "$CI_OUT/serve/hot.txt"
if grep -q '"source":"computed"\|"source":"coalesced"' "$CI_OUT/serve/hot.txt"; then
    echo "serve smoke: resubmitted cells must be pure cache hits" >&2
    cat "$CI_OUT/serve/hot.txt" >&2; exit 1
fi
[ "$(grep -c '"source":"cache"' "$CI_OUT/serve/hot.txt")" -eq 3 ] || {
    echo "serve smoke: expected three cache-sourced responses" >&2; exit 1; }
grep -q '"simulations":2' "$CI_OUT/serve/hot.txt" || {
    echo "serve smoke: the hot pass re-entered the simulator" >&2
    cat "$CI_OUT/serve/hot.txt" >&2; exit 1; }
cargo run --release -q -p gtr-bench --bin validate_stats -- "$CI_OUT"/serve/hot/resp_*.json
cmp -s "$CI_OUT/serve/cold/resp_000.json" "$CI_OUT/serve/hot/resp_000.json" || {
    echo "serve smoke: cached response bytes differ from the computed ones" >&2; exit 1; }

printf '{"cmd":"shutdown"}\n' > "$CI_OUT/serve/shutdown.jsonl"
target/release/gtr-serve --connect "$SERVE_ADDR" --submit "$CI_OUT/serve/shutdown.jsonl" \
    > "$CI_OUT/serve/shutdown.txt"
grep -q '"ok":"shutdown"' "$CI_OUT/serve/shutdown.txt" || {
    echo "serve smoke: shutdown was not acknowledged" >&2; exit 1; }
wait "$SERVE_PID" || { echo "gtr-serve exited non-zero" >&2; exit 1; }
trap - EXIT
SERVE_ELAPSED=$(( $(date +%s) - SERVE_START ))
if [ "$SERVE_ELAPSED" -gt "$SERVE_BUDGET_S" ]; then
    echo "serve smoke took ${SERVE_ELAPSED}s (budget ${SERVE_BUDGET_S}s)" >&2
    exit 1
fi
echo "serve smoke: ${SERVE_ELAPSED}s (budget ${SERVE_BUDGET_S}s)"

# Serve-latency invariants (BENCH_serve_latency.json): the tiny exact
# sweep served cold then hot, gated on machine-independent facts —
# 100% hot hit rate, one simulation per distinct cell, hot p50 at
# least 100x faster than cold.
cargo run --release -p gtr-bench --bin perf -- --serve --check

# Paper-scale anchors: the sampled main-matrix cycle sum must match
# the committed BENCH_matrix_paper.json bit for bit, and --exact
# additionally sweeps the unsampled paper matrix and gates its own
# cycle anchor + cells/sec against the last committed record.
# Budget-gated: every exact cell simulates in full (locally the
# sampled + exact pair is ~35 s; the budget leaves headroom).
PAPER_BUDGET_S=600
PAPER_START=$(date +%s)
cargo run --release -p gtr-bench --bin perf -- --paper --exact --check
PAPER_ELAPSED=$(( $(date +%s) - PAPER_START ))
if [ "$PAPER_ELAPSED" -gt "$PAPER_BUDGET_S" ]; then
    echo "paper-scale perf gate took ${PAPER_ELAPSED}s (budget ${PAPER_BUDGET_S}s)" >&2
    exit 1
fi
echo "paper-scale perf gate: ${PAPER_ELAPSED}s (budget ${PAPER_BUDGET_S}s)"
