//! Design-space study: is it better to grow the L2 TLB, or to
//! repurpose idle on-chip SRAM (the paper's §3.3 argument)?
//!
//! Sweeps L2 TLB capacity on the baseline and compares each point
//! against the reconfigurable IC+LDS design at the *original* 512
//! entries, over the TLB-sensitive Polybench apps.
//!
//! ```sh
//! cargo run --release --example tlb_sizing_study
//! ```

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::sim::stats::geomean;
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn main() {
    let scale = Scale::quick();
    let apps: Vec<_> = ["ATAX", "BICG", "MVT", "GEV"]
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();

    let baselines: Vec<u64> = apps
        .iter()
        .map(|app| {
            System::new(GpuConfig::default(), ReachConfig::baseline())
                .run(app)
                .total_cycles
        })
        .collect();

    println!("option                          geomean speedup   extra SRAM");
    for entries in [1024usize, 2048, 4096, 8192] {
        let speedups = apps.iter().zip(&baselines).map(|(app, &base)| {
            let s = System::new(
                GpuConfig::default().with_l2_tlb_entries(entries),
                ReachConfig::baseline(),
            )
            .run(app);
            base as f64 / s.total_cycles as f64
        });
        // Each TLB entry is ~16 bytes of dedicated SRAM (tag+data+LRU).
        let extra_kb = (entries - 512) * 16 / 1024;
        println!(
            "grow L2 TLB to {entries:>5} entries  {:>14.2}x   +{extra_kb} KB dedicated",
            geomean(speedups)
        );
    }

    let speedups = apps.iter().zip(&baselines).map(|(app, &base)| {
        let s = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(app);
        base as f64 / s.total_cycles as f64
    });
    println!(
        "reconfigurable IC+LDS (paper)  {:>14.2}x   +1.5 KB tags + mode bits (~0.4% LDS)",
        geomean(speedups)
    );
    println!("\nThe paper's point (§3.3): the reconfigurable design competes with");
    println!("multi-KB TLB growth while adding almost no dedicated SRAM.");
}
