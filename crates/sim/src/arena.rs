//! A minimal length-framed little-endian byte arena for on-disk
//! snapshot serialization (warmup checkpoints).
//!
//! Dependency-free by design, mirroring the hand-rolled philosophy of
//! [`crate::json`]: a writer appends fixed-width little-endian scalars
//! and length-prefixed strings into one contiguous buffer, and a
//! reader consumes them back with checked (`Option`-returning) reads,
//! so a truncated or corrupted file can never panic the loader.
//!
//! # Example
//!
//! ```
//! use gtr_sim::arena::{ArenaReader, ArenaWriter};
//!
//! let mut w = ArenaWriter::new();
//! w.put_u64(42);
//! w.put_str("GUPS");
//! let bytes = w.into_bytes();
//!
//! let mut r = ArenaReader::new(&bytes);
//! assert_eq!(r.get_u64(), Some(42));
//! assert_eq!(r.get_str(), Some("GUPS"));
//! assert_eq!(r.get_u64(), None, "checked reads fail cleanly at EOF");
//! ```

/// Append-only serializer over one growable byte buffer.
#[derive(Debug, Default)]
pub struct ArenaWriter {
    buf: Vec<u8>,
}

impl ArenaWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer pre-sized for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a UTF-8 string as a `u32` byte length plus the bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no framing (callers frame themselves).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked deserializer over a byte slice. Every read returns `None`
/// once the buffer is exhausted (or a string is not valid UTF-8)
/// instead of panicking, so loaders can reject truncated files.
#[derive(Debug)]
pub struct ArenaReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ArenaReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Option<&'a str> {
        let len = self.get_u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A way a serialized arena can be damaged on disk. Test utility for
/// loader-robustness batteries: every loader built on [`ArenaReader`]
/// (warmup checkpoints in particular) must treat any of these as
/// "file absent — regenerate", never panic and never return partially
/// decoded state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Keep only the first `n` bytes (a write that died mid-file).
    Truncate(usize),
    /// Flip the bit at index `i` (taken modulo the buffer's bit
    /// length), as a single-bit storage error would.
    FlipBit(usize),
    /// Append `n` bytes of `0xA5` garbage after the framed payload
    /// (a file that grew past its frame).
    Trailing(usize),
}

/// Returns a damaged copy of `bytes` for robustness tests — the
/// injection is deterministic so failures reproduce exactly.
pub fn corrupt(bytes: &[u8], way: Corruption) -> Vec<u8> {
    match way {
        Corruption::Truncate(n) => bytes[..n.min(bytes.len())].to_vec(),
        Corruption::FlipBit(i) => {
            let mut out = bytes.to_vec();
            if !out.is_empty() {
                let bit = i % (out.len() * 8);
                out[bit / 8] ^= 1 << (bit % 8);
            }
            out
        }
        Corruption::Trailing(n) => {
            let mut out = bytes.to_vec();
            out.extend(std::iter::repeat(0xA5).take(n));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_helper_damages_deterministically() {
        let bytes = vec![1u8, 2, 3, 4];
        assert_eq!(corrupt(&bytes, Corruption::Truncate(2)), vec![1, 2]);
        assert_eq!(corrupt(&bytes, Corruption::Truncate(99)), bytes);
        let flipped = corrupt(&bytes, Corruption::FlipBit(9));
        assert_eq!(flipped, vec![1, 0, 3, 4]);
        assert_eq!(corrupt(&bytes, Corruption::FlipBit(9)), flipped);
        assert_eq!(corrupt(&bytes, Corruption::Trailing(2)), vec![1, 2, 3, 4, 0xA5, 0xA5]);
        assert!(corrupt(&[], Corruption::FlipBit(3)).is_empty());
    }

    #[test]
    fn round_trips_scalars_and_strings() {
        let mut w = ArenaWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_str("checkpoint");
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = ArenaReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Some(u64::MAX - 1));
        assert_eq!(r.get_str(), Some("checkpoint"));
        assert_eq!(r.get_str(), Some(""));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_buffer_reads_none_not_panic() {
        let mut w = ArenaWriter::new();
        w.put_u64(123);
        w.put_str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ArenaReader::new(&bytes[..cut]);
            // Either read may fail, but nothing panics.
            let _ = r.get_u64();
            let _ = r.get_str();
        }
        // A string whose declared length exceeds the buffer fails too.
        let mut w = ArenaWriter::new();
        w.put_u32(1_000_000);
        w.put_bytes(b"short");
        let bytes = w.into_bytes();
        let mut r = ArenaReader::new(&bytes);
        assert_eq!(r.get_str(), None);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ArenaWriter::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ArenaReader::new(&bytes);
        assert_eq!(r.get_str(), None);
    }
}
