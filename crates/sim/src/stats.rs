//! Measurement utilities: samplers, histograms, ratio helpers.
//!
//! The paper reports three kinds of data that these types back:
//! box-and-whisker distributions (Figs 4 and 5), per-app scalar series
//! (Figs 2, 3, 13–16) and geometric means over speedups.

/// Collects scalar samples and answers order statistics.
///
/// All samples are retained (simulation sample counts are modest), so
/// quantiles are exact.
///
/// # Example
///
/// ```
/// use gtr_sim::stats::Sampler;
/// let mut s = Sampler::new();
/// for v in [4.0, 1.0, 3.0, 2.0] { s.record(v); }
/// assert_eq!(s.median(), 2.5);
/// assert_eq!(s.quantile(0.25), 1.75);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    samples: Vec<f64>,
    sorted: bool,
}

impl Sampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// Exact quantile via linear interpolation; `q` in `[0, 1]`.
    ///
    /// Returns 0.0 for an empty sampler.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest sample, or 0.0 if empty.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY).pipe_finite()
    }

    /// Largest sample, or 0.0 if empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max).pipe_finite()
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Five-number summary `(min, q1, median, q3, max)` matching the
    /// paper's box-and-whisker plots ("S.P", "IQR", "L.P").
    pub fn five_number_summary(&mut self) -> FiveNumberSummary {
        FiveNumberSummary {
            min: self.min(),
            q1: self.quantile(0.25),
            median: self.median(),
            q3: self.quantile(0.75),
            max: self.max(),
        }
    }

    /// Immutable view of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// The five numbers behind one box-and-whisker glyph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FiveNumberSummary {
    /// Smallest point ("S.P" in Fig 4a).
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest point ("L.P" in Fig 4a).
    pub max: f64,
}

impl std::fmt::Display for FiveNumberSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.1} q1={:.1} med={:.1} q3={:.1} max={:.1}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Power-of-two bucketed histogram for latency/gap distributions.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also includes 0.
#[derive(Debug, Clone, Default)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = if v <= 1 { 0 } else { 63 - v.leading_zeros() as usize };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(bucket_floor, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }
}

/// Geometric mean of a series of (positive) values.
///
/// Returns 1.0 for an empty series; values `<= 0` are clamped to a tiny
/// positive epsilon so that a degenerate speedup cannot poison a whole
/// series.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Speedup of `new` relative to `baseline` cycle counts (>1 is faster).
pub fn speedup(baseline_cycles: u64, new_cycles: u64) -> f64 {
    if new_cycles == 0 {
        return 1.0;
    }
    baseline_cycles as f64 / new_cycles as f64
}

/// Percentage improvement (`speedup - 1`) * 100.
pub fn improvement_pct(baseline_cycles: u64, new_cycles: u64) -> f64 {
    (speedup(baseline_cycles, new_cycles) - 1.0) * 100.0
}

/// A hit/miss counter pair with ratio helpers, used by every cache-like
/// structure in the workspace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
}

impl HitMiss {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0.0 when no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_quantiles_exact() {
        let mut s = Sampler::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.median() - 50.5).abs() < 1e-9);
        assert!((s.quantile(0.0) - 1.0).abs() < 1e-9);
        assert!((s.quantile(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_empty_is_safe() {
        let mut s = Sampler::new();
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.mean(), 0.0);
        let f = s.five_number_summary();
        assert_eq!(f, FiveNumberSummary::default());
    }

    #[test]
    fn sampler_five_number_summary() {
        let mut s = Sampler::new();
        for v in [2.0, 4.0, 6.0, 8.0, 10.0] {
            s.record(v);
        }
        let f = s.five_number_summary();
        assert_eq!(f.min, 2.0);
        assert_eq!(f.median, 6.0);
        assert_eq!(f.max, 10.0);
        assert_eq!(f.q1, 4.0);
        assert_eq!(f.q3, 8.0);
    }

    #[test]
    fn sampler_record_after_quantile() {
        let mut s = Sampler::new();
        s.record(1.0);
        assert_eq!(s.median(), 1.0);
        s.record(3.0);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn log2_histogram_buckets() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        let buckets: Vec<_> = h.buckets().collect();
        // 0,1 -> bucket 1(floor=1); 2,3 -> 2; 4,7 -> 4; 8 -> 8; 1024 -> 1024
        assert_eq!(buckets, vec![(1, 2), (2, 2), (4, 2), (8, 1), (1024, 1)]);
        assert!((h.mean() - (1 + 2 + 3 + 4 + 7 + 8 + 1024) as f64 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        // non-positive values do not poison the result
        assert!(geomean([0.0, 1.0]) > 0.0);
    }

    #[test]
    fn speedup_and_improvement() {
        assert_eq!(speedup(200, 100), 2.0);
        assert!((improvement_pct(130, 100) - 30.0).abs() < 1e-9);
        assert_eq!(speedup(100, 0), 1.0);
    }

    #[test]
    fn hitmiss_ratio() {
        let mut hm = HitMiss::new();
        for _ in 0..3 {
            hm.hit();
        }
        hm.miss();
        assert_eq!(hm.total(), 4);
        assert!((hm.hit_ratio() - 0.75).abs() < 1e-9);
        let mut other = HitMiss::new();
        other.miss();
        hm.merge(other);
        assert_eq!(hm.total(), 5);
    }
}
