//! One module per Table-2 application.
//!
//! | Module | Suite | Kernels | B2B | LDS | Category | Pattern |
//! |--------|-------|---------|-----|-----|----------|---------|
//! | [`atax`] | Polybench | 2 | no | – | High | row stream + column stride |
//! | [`bicg`] | Polybench | 2 | no | – | High | column stride both kernels |
//! | [`mvt`]  | Polybench | 2 | no | – | High | row + column |
//! | [`gev`]  | Polybench | 1 | n/a | – | High | column stride over two matrices |
//! | [`gups`] | µ-bm | 3 | no | – | High | uniform random RMW |
//! | [`nw`]   | Rodinia | 255 | yes | 2112 B | Medium | tiled diagonal band |
//! | [`srad`] | Rodinia | 1 | n/a | 4608 B | Low | dense stencil |
//! | [`bfs`]  | Rodinia | 24 | no | – | Medium | frontier graph traversal |
//! | [`sssp`] | Pannotia | ~512 | no | 512 B | Low | many tiny relaxations |
//! | [`prk`]  | Pannotia | 41 | no | 1024 B | Low | CSR rank streaming |

pub mod atax;
pub mod bfs;
pub mod bicg;
pub mod gev;
pub mod gups;
pub mod mvt;
pub mod nw;
pub mod prk;
pub mod srad;
pub mod sssp;
