#!/bin/sh
# Tier-1 gate: build, test, and simulator-throughput regression check.
set -eu
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo run --release -p gtr-bench --bin perf -- --check
