//! Generic set-associative, write-back, write-allocate cache.
//!
//! Instantiated as the per-CU 32 KB 8-way L1 data cache and the
//! GPU-shared 4 MB 16-way L2 (Table 1). Addresses are 64-byte line
//! indices; the cache itself is data-less (timing/occupancy only).

use gtr_sim::stats::HitMiss;

/// Cache geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Ways per set.
    pub assoc: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// GPU L1 data cache per Table 1: 32 KB, 8-way.
    pub fn gpu_l1d() -> Self {
        Self { capacity_bytes: 32 * 1024, line_bytes: 64, assoc: 8, latency: 28 }
    }

    /// GPU shared L2 per Table 1: 4 MB, 16-way.
    pub fn gpu_l2() -> Self {
        Self { capacity_bytes: 4 * 1024 * 1024, line_bytes: 64, assoc: 16, latency: 120 }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let lines = self.lines();
        assert!(self.assoc > 0 && lines.is_multiple_of(self.assoc), "lines must divide into ways");
        lines / self.assoc
    }
}

/// Empty-way sentinel: tags are `line / sets`, far below `u64::MAX`
/// for any address this workspace generates.
const EMPTY: u64 = u64::MAX;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was resident.
    pub hit: bool,
    /// A dirty victim line (by line index) that must be written back.
    pub writeback: Option<u64>,
}

/// A set-associative LRU cache addressed by line index.
///
/// # Example
///
/// ```
/// use gtr_mem::cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { capacity_bytes: 256, line_bytes: 64, assoc: 2, latency: 4 });
/// assert!(!c.access(7, false).hit);
/// assert!(c.access(7, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    nsets: usize,
    /// Way tags, one flat arena (`set * assoc + way`), [`EMPTY`] when
    /// the way is invalid. Kept separate from the other per-way arrays
    /// so the hit-path scan touches the fewest host cache lines.
    tags: Vec<u64>,
    /// LRU ticks, parallel to `tags`.
    last_use: Vec<u64>,
    /// Full line index per way (for writeback address reconstruction
    /// under the hashed set index), parallel to `tags`.
    lines: Vec<u64>,
    /// Dirty bits, parallel to `tags`.
    dirty: Vec<bool>,
    resident: usize,
    tick: u64,
    stats: HitMiss,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.sets() * config.assoc;
        Self {
            nsets: config.sets(),
            config,
            tags: vec![EMPTY; n],
            last_use: vec![0; n],
            lines: vec![0; n],
            dirty: vec![false; n],
            resident: 0,
            tick: 0,
            stats: HitMiss::new(),
            writebacks: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    fn split(&self, line: u64) -> (usize, u64) {
        // XOR-folded set index: without it, every page's line `c`
        // (fixed in-page offset) lands in sets `{64k + c}` only —
        // column-strided kernels would thrash 64 of 4096 L2 sets while
        // the rest idle. Real LLCs hash their index bits for the same
        // reason. The tag keeps the full upper bits, so (set, tag)
        // still uniquely identifies the line.
        let sets = self.nsets as u64;
        let hashed = line ^ (line >> 7) ^ (line >> 14);
        ((hashed % sets) as usize, line / sets)
    }

    /// Accesses `line` (a 64-byte line index), allocating on miss.
    pub fn access(&mut self, line: u64, is_write: bool) -> CacheAccess {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.split(line);
        let base = set_idx * self.config.assoc;
        let ways = base..base + self.config.assoc;
        if let Some(i) = self.tags[ways.clone()].iter().position(|&t| t == tag) {
            let i = base + i;
            self.last_use[i] = tick;
            self.dirty[i] |= is_write;
            self.stats.hit();
            return CacheAccess { hit: true, writeback: None };
        }
        self.stats.miss();
        let mut writeback = None;
        // First empty way, else the LRU way (ticks are unique, so the
        // victim choice is deterministic).
        let slot = match self.tags[ways.clone()].iter().position(|&t| t == EMPTY) {
            Some(i) => {
                self.resident += 1;
                base + i
            }
            None => {
                let lru = ways
                    .clone()
                    .min_by_key(|&i| self.last_use[i])
                    .expect("assoc > 0");
                if self.dirty[lru] {
                    writeback = Some(self.lines[lru]);
                    self.writebacks += 1;
                }
                lru
            }
        };
        self.tags[slot] = tag;
        self.lines[slot] = line;
        self.dirty[slot] = is_write;
        self.last_use[slot] = tick;
        CacheAccess { hit: false, writeback }
    }

    /// Checks residency without updating LRU or counters.
    pub fn probe(&self, line: u64) -> bool {
        let (set_idx, tag) = self.split(line);
        let base = set_idx * self.config.assoc;
        self.tags[base..base + self.config.assoc].contains(&tag)
    }

    /// Invalidates one line; returns whether it was present (dirty data
    /// is dropped — used for functional invalidations only).
    pub fn invalidate(&mut self, line: u64) -> bool {
        let (set_idx, tag) = self.split(line);
        let base = set_idx * self.config.assoc;
        match self.tags[base..base + self.config.assoc].iter().position(|&t| t == tag) {
            Some(i) => {
                self.tags[base + i] = EMPTY;
                self.resident -= 1;
                true
            }
            None => false,
        }
    }

    /// Flushes everything (no writeback accounting — kernel-boundary
    /// flushes in GPUs invalidate clean instruction/data state).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.resident = 0;
    }

    /// Valid lines resident.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Dirty writebacks generated.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Resets counters, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::new();
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig { capacity_bytes: 512, line_bytes: 64, assoc: 2, latency: 1 })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::gpu_l2();
        assert_eq!(c.lines(), 65536);
        assert_eq!(c.sets(), 4096);
        assert_eq!(CacheConfig::gpu_l1d().sets(), 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(42, false).hit);
        assert!(c.access(42, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny(); // 4 sets, 2-way: lines 0,4,8 share set 0
        c.access(0, false);
        c.access(4, false);
        c.access(0, false); // 4 is now LRU
        c.access(8, false); // evicts 4
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(4, false);
        let res = c.access(8, false); // evicts line 0 (dirty)
        assert_eq!(res.writeback, Some(0));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(4, false);
        let res = c.access(8, false);
        assert_eq!(res.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.access(4, false);
        let res = c.access(8, false);
        assert_eq!(res.writeback, Some(0));
    }

    #[test]
    fn writeback_reconstructs_correct_line_index() {
        let mut c = tiny(); // 4 sets
        c.access(5, true); // set 1, tag 1
        c.access(9, false); // set 1, tag 2
        let res = c.access(13, false); // set 1, tag 3: evicts 5
        assert_eq!(res.writeback, Some(5));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        c.access(1, false);
        c.access(2, false);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1));
        assert_eq!(c.len(), 1);
        c.flush();
        assert!(c.is_empty());
    }
}
