//! Developer calibration snapshot: Table 2 + the main result matrix.
fn main() {
    let scale = if std::env::args().any(|a| a == "--paper") {
        gtr_workloads::scale::Scale::paper()
    } else {
        gtr_workloads::scale::Scale::quick()
    };
    println!("{}", gtr_bench::figures::table2(scale));
    let m = gtr_bench::figures::main_matrix(scale);
    println!("{}", gtr_bench::figures::fig13b_from(&m));
    println!("{}", gtr_bench::figures::fig14ab_from(&m));
    println!("{}", gtr_bench::figures::fig15_from(&m));
}
