//! Multi-application scenario (§7.2): two tenants' kernels interleave
//! on the GPU, each in its own address space, sharing the TLBs and the
//! reconfigurable structures.
//!
//! The paper argues the private per-CU LDS keeps working in
//! multi-application deployments while the shared I-cache simply has
//! less idle capacity — the scheme must still win, and it must never
//! mix the tenants' translations (distinct VM-IDs).
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::AppTrace;
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn main() {
    let scale = Scale::quick();
    let a = suite::by_name("ATAX", scale).unwrap();
    let b = suite::by_name("BICG", scale).unwrap();
    let merged = AppTrace::interleave(&a, &b);
    println!(
        "tenants: {} + {} => {} ({} interleaved kernel launches)",
        a.name(),
        b.name(),
        merged.name(),
        merged.kernels().len()
    );

    let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&merged);
    let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds());
    let reach = sys.run(&merged);

    println!(
        "baseline: {:>10} cycles, {:>7} walks",
        base.total_cycles, base.page_walks
    );
    println!(
        "IC+LDS:   {:>10} cycles, {:>7} walks, {} victim hits",
        reach.total_cycles,
        reach.page_walks,
        reach.victim_hits()
    );
    println!(
        "multi-tenant speedup: {:.2}x (walks at {:.0}% of baseline)",
        base.total_cycles as f64 / reach.total_cycles as f64,
        reach.page_walks as f64 * 100.0 / base.page_walks.max(1) as f64
    );

    // Both tenants map their matrices at the same virtual base; the
    // VM-ID keeps every cached translation coherent with the right
    // tenant's page table.
    let checked = sys.check_translation_coherence();
    println!("coherence check: {checked} cached translations verified across both address spaces");
}
