//! Seeded `SplitMix64` pseudo-random generator.
//!
//! Core simulation code (replacement tie-breaks, hashed indexing) must
//! be deterministic and dependency-free, so the engine carries its own
//! tiny generator instead of pulling `rand` into every crate.
//! Workload generation, which benefits from richer distributions, uses
//! the `rand` crate in `gtr-workloads`.

/// A `SplitMix64` generator (Steele et al., "Fast Splittable
/// Pseudorandom Number Generators").
///
/// # Example
///
/// ```
/// use gtr_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes (bias < 2^-64 * bound).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a double uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SplitMix64::new(5);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
