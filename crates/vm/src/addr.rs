//! Address-space newtypes: virtual/physical addresses, page numbers,
//! page sizes, and the address-space identifiers the paper's tag
//! layouts carry (Fig 7a / Fig 10b: a VM-ID and a 2-bit VRF-ID).
//!
//! The paper's tag layout reserves 2 bits of VM-ID; the tenancy model
//! ([`crate::tenancy`], after arXiv 2404.18361's MIG-style
//! multi-instance scenarios) widens it to 3 bits so up to eight
//! concurrent address spaces fit. The widening is hash-compatible:
//! VM-IDs below 4 produce exactly the [`FastKey::hash64`] values the
//! 2-bit layout produced.

use std::fmt;

use gtr_sim::fastmap::FastKey;

/// Width of the virtual address space in bits (x86-64 canonical, as
/// assumed by the paper's 25-bit VA tags after removing offset/index).
pub const VA_BITS: u32 = 48;

/// Bytes in a cache line throughout the system.
pub const CACHE_LINE_BYTES: u64 = 64;

/// A 48-bit virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address, masking to [`VA_BITS`].
    pub fn new(raw: u64) -> Self {
        Self(raw & ((1u64 << VA_BITS) - 1))
    }

    /// Raw address value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Virtual page number at the given page size.
    pub fn vpn(self, size: PageSize) -> Vpn {
        Vpn(self.0 >> size.bits())
    }

    /// Offset within the page at the given page size.
    pub fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Index of the 64-byte cache line containing this address.
    pub fn line(self) -> u64 {
        self.0 / CACHE_LINE_BYTES
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA:{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

/// A physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw address value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Index of the 64-byte cache line containing this address.
    pub fn line(self) -> u64 {
        self.0 / CACHE_LINE_BYTES
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// Base virtual address of this page at the given page size.
    pub fn base(self, size: PageSize) -> VirtAddr {
        VirtAddr::new(self.0 << size.bits())
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VPN:{:#x}", self.0)
    }
}

impl FastKey for Vpn {
    fn hash64(self) -> u64 {
        self.0
    }
}

/// A physical page number (frame number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

impl Ppn {
    /// Base physical address of this frame at the given page size.
    pub fn base(self, size: PageSize) -> PhysAddr {
        PhysAddr::new(self.0 << size.bits())
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PPN:{:#x}", self.0)
    }
}

/// Page granularities evaluated by the paper (§6.2): the 4 KB default,
/// the 64 KB dGPU size, and 2 MB large pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// 4 KiB pages (baseline).
    #[default]
    Size4K,
    /// 64 KiB pages (discrete-GPU granularity).
    Size64K,
    /// 2 MiB large pages.
    Size2M,
}

impl PageSize {
    /// log2 of the page size in bytes.
    pub fn bits(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size64K => 16,
            PageSize::Size2M => 21,
        }
    }

    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        1u64 << self.bits()
    }

    /// Number of radix levels a full page walk traverses. A 2 MB
    /// mapping terminates at the PMD (3 levels); 4 KB and 64 KB walk
    /// all four levels (64 KB pages are PTE-level blocks on AMD GPUs).
    pub fn walk_levels(self) -> usize {
        match self {
            PageSize::Size4K | PageSize::Size64K => 4,
            PageSize::Size2M => 3,
        }
    }

    /// All supported sizes, smallest first.
    pub fn all() -> [PageSize; 3] {
        [PageSize::Size4K, PageSize::Size64K, PageSize::Size2M]
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size64K => write!(f, "64KB"),
            PageSize::Size2M => write!(f, "2MB"),
        }
    }
}

/// Address-space identifier carried in every translation tag (Fig 7a;
/// 2 bits in the paper, widened to 3 bits for the tenancy model of
/// [`crate::tenancy`] so up to [`crate::tenancy::MAX_TENANTS`] address
/// spaces coexist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VmId(u8);

impl VmId {
    /// Creates a VM-ID, keeping the low 3 bits.
    pub fn new(raw: u8) -> Self {
        Self(raw & 0b111)
    }

    /// Raw 3-bit value.
    pub fn raw(self) -> u8 {
        self.0
    }
}

/// 2-bit SR-IOV virtual-function identifier (Fig 7a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VrfId(u8);

impl VrfId {
    /// Creates a VRF-ID, keeping the low 2 bits.
    pub fn new(raw: u8) -> Self {
        Self(raw & 0b11)
    }

    /// Raw 2-bit value.
    pub fn raw(self) -> u8 {
        self.0
    }
}

/// The lookup key of a translation: VPN plus the address-space
/// identifiers that must match for a tag hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TranslationKey {
    /// Virtual page number.
    pub vpn: Vpn,
    /// Address-space (process) identifier.
    pub vmid: VmId,
    /// SR-IOV virtual-function identifier.
    pub vrf: VrfId,
}

impl TranslationKey {
    /// Convenience constructor with zero VM-ID/VRF-ID (the
    /// single-tenant case used by most experiments).
    pub fn for_vpn(vpn: Vpn) -> Self {
        Self { vpn, vmid: VmId::default(), vrf: VrfId::default() }
    }
}

impl fmt::Display for TranslationKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/vm{}/vrf{}", self.vpn, self.vmid.raw(), self.vrf.raw())
    }
}

impl FastKey for TranslationKey {
    fn hash64(self) -> u64 {
        // VPNs are at most 36 bits (48-bit VA, >=4 KB pages), so the
        // identifiers pack losslessly into the top byte. The VM-ID's
        // low 2 bits keep the paper's Fig-7a positions (bits 56-57);
        // the tenancy widening's third bit goes to bit 61 so every
        // VM-ID < 4 hashes exactly as it did under the 2-bit layout.
        self.vpn.0
            ^ (((self.vmid.raw() & 0b11) as u64) << 56)
            ^ ((self.vrf.raw() as u64) << 58)
            ^ (((self.vmid.raw() >> 2) as u64) << 61)
    }
}

/// A completed translation: key plus the physical frame it maps to.
///
/// A translation may be *coalesced* (arXiv 2110.08613): `span_log2`
/// says it covers the whole power-of-two-aligned run of
/// `2^span_log2` contiguous pages starting at `key.vpn`, with
/// physically contiguous frames starting at `ppn`. The stored form is
/// always *base-normalized* — `key.vpn` is aligned to the span and
/// `ppn` is the base page's frame — so `span_log2 == 0` (the value
/// [`Translation::new`] produces) is exactly the classic one-page
/// translation and every pre-coalescing call site is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Translation {
    /// The virtual side (the base page of the covered run).
    pub key: TranslationKey,
    /// The physical frame of the base page.
    pub ppn: Ppn,
    /// log2 of the number of contiguous pages this entry covers.
    pub span_log2: u8,
}

impl Translation {
    /// Creates a classic single-page translation (`span_log2 == 0`).
    pub fn new(key: TranslationKey, ppn: Ppn) -> Self {
        Self { key, ppn, span_log2: 0 }
    }

    /// Creates a coalesced translation covering `2^span_log2` pages,
    /// normalizing `(key, ppn)` to the base of the aligned run the
    /// page belongs to (so any covered page may be passed in).
    pub fn with_span(key: TranslationKey, ppn: Ppn, span_log2: u8) -> Self {
        debug_assert!(span_log2 < 32, "span exceeds any plausible region");
        let base = key.vpn.0 & !((1u64 << span_log2) - 1);
        let delta = key.vpn.0 - base;
        Self {
            key: TranslationKey { vpn: Vpn(base), ..key },
            ppn: Ppn(ppn.0 - delta),
            span_log2,
        }
    }

    /// Number of pages this entry covers (`2^span_log2`).
    pub fn pages(&self) -> u64 {
        1u64 << self.span_log2
    }

    /// Whether `vpn` falls inside the covered run.
    pub fn covers(&self, vpn: Vpn) -> bool {
        vpn.0.wrapping_sub(self.key.vpn.0) < self.pages()
    }

    /// The frame of a covered page (contiguity arithmetic).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `vpn` is outside the covered run.
    pub fn ppn_for(&self, vpn: Vpn) -> Ppn {
        debug_assert!(self.covers(vpn), "page outside coalesced span");
        Ppn(self.ppn.0 + (vpn.0 - self.key.vpn.0))
    }

    /// Translates a full virtual address to its physical counterpart.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `va` is not inside this translation's span.
    pub fn apply(&self, va: VirtAddr, size: PageSize) -> PhysAddr {
        let vpn = va.vpn(size);
        debug_assert!(self.covers(vpn), "address outside mapped span");
        PhysAddr::new(self.ppn_for(vpn).base(size).raw() + va.page_offset(size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_masks_to_48_bits() {
        let va = VirtAddr::new(u64::MAX);
        assert_eq!(va.raw(), (1u64 << 48) - 1);
    }

    #[test]
    fn vpn_and_offset_roundtrip() {
        let va = VirtAddr::new(0x1234_5678);
        for size in PageSize::all() {
            let reassembled = va.vpn(size).base(size).raw() + va.page_offset(size);
            assert_eq!(reassembled, va.raw(), "size {size}");
        }
    }

    #[test]
    fn page_size_properties() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size64K.bytes(), 65536);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size4K.walk_levels(), 4);
        assert_eq!(PageSize::Size64K.walk_levels(), 4);
        assert_eq!(PageSize::Size2M.walk_levels(), 3);
    }

    #[test]
    fn vmid_vrf_clamp() {
        assert_eq!(VmId::new(0xFF).raw(), 0b111, "VM-ID is 3 bits");
        assert_eq!(VmId::new(0b1000).raw(), 0);
        assert_eq!(VrfId::new(0b100).raw(), 0, "VRF-ID stays 2 bits");
    }

    #[test]
    fn widened_vmid_hash_is_backward_compatible() {
        // The 3-bit widening must not move any hash the old 2-bit
        // layout produced: FastMap layouts (and therefore every
        // deterministic structure walk) stay bit-identical for
        // single-tenant and 4-way multi-app runs.
        for vm in 0..4u8 {
            for vrf in 0..4u8 {
                let key = TranslationKey {
                    vpn: Vpn(0xABCD),
                    vmid: VmId::new(vm),
                    vrf: VrfId::new(vrf),
                };
                let legacy = 0xABCDu64 ^ ((vm as u64) << 56) ^ ((vrf as u64) << 58);
                assert_eq!(key.hash64(), legacy, "vm{vm}/vrf{vrf}");
            }
        }
        // And VM-IDs 4..8 must not collide with their low-2-bit twins.
        for vm in 4..8u8 {
            let hi = TranslationKey { vpn: Vpn(1), vmid: VmId::new(vm), vrf: VrfId::new(0) };
            let lo = TranslationKey { vpn: Vpn(1), vmid: VmId::new(vm - 4), vrf: VrfId::new(0) };
            assert_ne!(hi.hash64(), lo.hash64(), "vm{vm} aliases vm{}", vm - 4);
        }
    }

    #[test]
    fn translation_apply() {
        let key = TranslationKey::for_vpn(Vpn(5));
        let tx = Translation::new(key, Ppn(9));
        let va = VirtAddr::new(5 * 4096 + 123);
        assert_eq!(tx.apply(va, PageSize::Size4K).raw(), 9 * 4096 + 123);
    }

    #[test]
    fn with_span_normalizes_to_the_aligned_base() {
        // Page 6 inside a 4-page run [4..8) mapped at frames [90..94).
        let tx = Translation::with_span(TranslationKey::for_vpn(Vpn(6)), Ppn(92), 2);
        assert_eq!(tx.key.vpn, Vpn(4));
        assert_eq!(tx.ppn, Ppn(90));
        assert_eq!(tx.pages(), 4);
        for (v, p) in [(4u64, 90u64), (5, 91), (6, 92), (7, 93)] {
            assert!(tx.covers(Vpn(v)));
            assert_eq!(tx.ppn_for(Vpn(v)), Ppn(p));
        }
        assert!(!tx.covers(Vpn(3)));
        assert!(!tx.covers(Vpn(8)));
        // Applying an address of a non-base covered page works.
        let va = VirtAddr::new(5 * 4096 + 7);
        assert_eq!(tx.apply(va, PageSize::Size4K).raw(), 91 * 4096 + 7);
        // Span 0 via with_span is exactly `new`.
        let single = Translation::with_span(TranslationKey::for_vpn(Vpn(9)), Ppn(3), 0);
        assert_eq!(single, Translation::new(TranslationKey::for_vpn(Vpn(9)), Ppn(3)));
    }

    #[test]
    fn cache_line_index() {
        assert_eq!(VirtAddr::new(0).line(), 0);
        assert_eq!(VirtAddr::new(63).line(), 0);
        assert_eq!(VirtAddr::new(64).line(), 1);
        assert_eq!(PhysAddr::new(128).line(), 2);
    }

    #[test]
    fn display_impls_nonempty() {
        assert!(!format!("{}", VirtAddr::new(1)).is_empty());
        assert!(!format!("{}", PhysAddr::new(1)).is_empty());
        assert!(!format!("{}", Vpn(1)).is_empty());
        assert!(!format!("{}", Ppn(1)).is_empty());
        assert!(!format!("{}", PageSize::Size64K).is_empty());
        assert!(!format!("{}", TranslationKey::for_vpn(Vpn(3))).is_empty());
    }
}
