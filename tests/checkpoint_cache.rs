//! On-disk checkpoint cache robustness: damaged cache files must be
//! silently re-captured — never a panic, never a poisoned result.
//!
//! The cache is a pure accelerator: `load_or_capture` treats any file
//! it cannot fully decode (truncated write, bit rot, a version bump
//! from an older binary) exactly like a missing file, re-captures,
//! and rewrites it. These tests damage a real cache file every way
//! [`Corruption`] knows and assert the sampled results stay
//! bit-identical to a cold capture.

use gpu_translation_reach::bench::figures;
use gpu_translation_reach::bench::harness::{Matrix, RunMode, Variant};
use gpu_translation_reach::core_arch::checkpoint::Checkpoint;
use gpu_translation_reach::core_arch::config::{ReachConfig, SamplingConfig};
use gpu_translation_reach::sim::arena::{corrupt, Corruption};
use gpu_translation_reach::workloads::scale::Scale;
use gpu_translation_reach::workloads::suite;

/// A unique, self-cleaning scratch directory per test.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("gtr-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sampled_into(dir: &std::path::Path) -> RunMode {
    RunMode::sampled(SamplingConfig::new(1_000, 2_000, 1_000))
        .with_checkpoint_dir(dir.to_str().expect("utf-8 temp path"))
}

fn run_matrix(mode: &RunMode) -> Matrix {
    let apps = vec![suite::by_name("GUPS", Scale::tiny()).expect("known app")];
    Matrix::run_apps_with_mode(
        &apps,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
        mode,
        2,
    )
}

fn cycle_sum(m: &Matrix) -> u64 {
    m.baseline
        .iter()
        .chain(m.variants.iter().flat_map(|(_, v)| v.iter()))
        .map(|s| s.total_cycles)
        .sum()
}

/// The one cache file a single-app, timing-side-only matrix writes.
fn the_cache_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read cache dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one checkpoint file in {dir:?}: {files:?}");
    files.pop().expect("one file")
}

#[test]
fn corrupted_cache_files_are_silently_recaptured() {
    let scratch = ScratchDir::new("corrupt");
    let mode = sampled_into(scratch.path());
    let clean = run_matrix(&mode);
    let clean_sum = cycle_sum(&clean);
    let file = the_cache_file(scratch.path());
    let good_bytes = std::fs::read(&file).expect("read checkpoint");
    assert!(Checkpoint::from_bytes(&good_bytes).is_some(), "fresh capture must decode");

    let damage = [
        Corruption::Truncate(0),
        Corruption::Truncate(3),
        Corruption::Truncate(good_bytes.len() / 2),
        Corruption::Truncate(good_bytes.len() - 1),
        Corruption::FlipBit(5),                       // inside the magic
        Corruption::FlipBit(good_bytes.len() * 4),    // mid-payload
        Corruption::FlipBit(good_bytes.len() * 8 - 1),
        Corruption::Trailing(1),
        Corruption::Trailing(64),
    ];
    for way in damage {
        std::fs::write(&file, corrupt(&good_bytes, way)).expect("write damage");
        let rerun = run_matrix(&mode);
        assert_eq!(
            cycle_sum(&rerun),
            clean_sum,
            "{way:?}: results must match a cold capture exactly"
        );
        let rewritten = std::fs::read(&file).expect("read rewritten checkpoint");
        assert!(
            Checkpoint::from_bytes(&rewritten).is_some(),
            "{way:?}: the damaged file must be replaced by a valid capture"
        );
    }
}

/// An on-disk file from a different serialization version (e.g. an
/// older binary's cache surviving an upgrade) is re-captured, not
/// trusted and not fatal.
#[test]
fn version_bumped_cache_file_is_recaptured() {
    let scratch = ScratchDir::new("version");
    let mode = sampled_into(scratch.path());
    let clean_sum = cycle_sum(&run_matrix(&mode));
    let file = the_cache_file(scratch.path());
    let mut bytes = std::fs::read(&file).expect("read checkpoint");
    // Layout starts `magic: u32, version: u32`, little-endian; bump
    // the version in place so the file is otherwise perfectly formed.
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    bytes[4..8].copy_from_slice(&(version + 1).to_le_bytes());
    std::fs::write(&file, &bytes).expect("write bumped file");

    let rerun = run_matrix(&mode);
    assert_eq!(cycle_sum(&rerun), clean_sum, "future-versioned file must be ignored, not used");
    let rewritten = std::fs::read(&file).expect("read rewritten checkpoint");
    let ck = Checkpoint::from_bytes(&rewritten).expect("rewritten file decodes");
    assert_eq!(ck.app(), "GUPS");
}

/// Two writers racing on the same cache directory can never leave a
/// torn capture behind: `atomic_write` stages into a unique temp file
/// and renames into place, so every observable file state is either
/// absent or a complete, decodable capture. Interleaved concurrent
/// sweeps (the serve workers' situation, or two `all` invocations
/// sharing `--checkpoint-dir`) must agree with a cold run exactly.
#[test]
fn two_concurrent_writers_never_tear_the_cache() {
    let scratch = ScratchDir::new("two-writers");
    let mode = sampled_into(scratch.path());
    let clean_sum = cycle_sum(&run_matrix(&mode));
    // Fresh directory per round so both writers genuinely capture.
    for round in 0..3 {
        let _ = std::fs::remove_dir_all(scratch.path());
        std::fs::create_dir_all(scratch.path()).expect("recreate scratch dir");
        let sums: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| s.spawn(|| cycle_sum(&run_matrix(&mode))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("writer thread")).collect()
        });
        for sum in sums {
            assert_eq!(sum, clean_sum, "round {round}: racing writers must match a cold run");
        }
        // Whichever writer renamed last, the surviving file is whole
        // and no temp staging files leak.
        let files: Vec<_> = std::fs::read_dir(scratch.path())
            .expect("read cache dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        assert_eq!(files.len(), 1, "round {round}: staging files must not leak: {files:?}");
        let bytes = std::fs::read(&files[0]).expect("read survivor");
        assert!(
            Checkpoint::from_bytes(&bytes).is_some(),
            "round {round}: the surviving cache file must decode completely"
        );
    }
}

/// A cache shared across figure families never poisons results: the
/// same directory serves an exact run (which must ignore it) and a
/// second sampled run (which must reuse it without re-capturing).
#[test]
fn cache_reuse_is_inert_for_exact_runs_and_stable_for_sampled_ones() {
    let scratch = ScratchDir::new("reuse");
    let mode = sampled_into(scratch.path());
    let first = cycle_sum(&run_matrix(&mode));
    let file = the_cache_file(scratch.path());
    let mtime = std::fs::metadata(&file).expect("stat").modified().expect("mtime");

    // Exact runs neither read nor write the cache.
    let exact_mode = RunMode::exact();
    let exact = run_matrix(&exact_mode);
    assert!(exact.baseline[0].sampling.is_none(), "exact run must not sample");
    assert_eq!(
        std::fs::metadata(&file).expect("stat").modified().expect("mtime"),
        mtime,
        "an exact run must not touch the cache"
    );

    // A second sampled run hits the cache and reproduces the results.
    let second = cycle_sum(&run_matrix(&mode));
    assert_eq!(second, first, "a cache hit must reproduce the cold-capture results");

    // And the sampled figure text built on this machinery is stable
    // across cache states too.
    let a = figures::fig13a_mode(Scale::tiny(), &mode);
    let b = figures::fig13a_mode(Scale::tiny(), &mode);
    assert_eq!(a, b);
}
