//! Worker-count determinism battery: the matrix harness must produce
//! **byte-identical** exported stats for any `--threads` value.
//!
//! Each matrix cell is an independent deterministic simulation; the
//! worker pool only changes which OS thread runs which cell, and the
//! `(cycle, shard, seq)` merge (`gtr_sim::shard`, ARCHITECTURE §8)
//! makes result assembly order-independent. These tests pin that
//! contract end to end: the full schema-v4 JSON document — every
//! counter, histogram, and epoch series of every cell across all four
//! reach variants — compares equal as a string across worker counts,
//! in both exact and interval-sampled modes.

use gpu_translation_reach::bench::figures;
use gpu_translation_reach::bench::harness::RunMode;
use gpu_translation_reach::core_arch::export::STATS_SCHEMA_VERSION_UNTENANTED;
use gpu_translation_reach::sim::shard::{merge_ordered, ShardEntry};
use gpu_translation_reach::workloads::scale::Scale;

/// The tiny main matrix (baseline + lds + ic + ic+lds over the
/// Table-2 suite) under `workers` threads, exported as one compact
/// schema-v4 JSON document.
fn matrix_json(workers: usize, sampled: bool) -> String {
    let mode = if sampled {
        // In-memory checkpoints only: a shared disk cache would let
        // one run observe another's files, which is a separate
        // concern (covered by the checkpoint_cache tests).
        RunMode::sampled(figures::sampling_for(Scale::tiny()))
    } else {
        RunMode::exact()
    };
    let m = figures::main_matrix_mode(Scale::tiny(), false, &mode.with_workers(workers));
    let mut s = String::new();
    m.to_json().write_compact(&mut s);
    s
}

#[test]
fn exact_matrix_is_byte_identical_across_worker_counts() {
    let reference = matrix_json(1, false);
    // An untenanted matrix stamps the untenanted version (TENANCY.md
    // §4; the tenanted twin of this battery lives in harness.rs).
    let v = STATS_SCHEMA_VERSION_UNTENANTED;
    assert!(
        reference.contains(&format!("\"schema_version\":{v}"))
            || reference.contains(&format!("\"schema_version\": {v}")),
        "untenanted exported document must carry schema v{v}"
    );
    for workers in [2, 4, 8] {
        assert_eq!(
            matrix_json(workers, false),
            reference,
            "exact matrix diverged at --threads {workers}"
        );
    }
}

#[test]
fn sampled_matrix_is_byte_identical_across_worker_counts() {
    let reference = matrix_json(1, true);
    for workers in [2, 4, 8] {
        assert_eq!(
            matrix_json(workers, true),
            reference,
            "sampled matrix diverged at --threads {workers}"
        );
    }
}

/// Exact and sampled documents must *differ* — otherwise the sampled
/// test above would be vacuously re-checking the exact path.
#[test]
fn sampled_and_exact_documents_are_distinct() {
    assert_ne!(matrix_json(1, false), matrix_json(1, true));
}

/// Property: [`merge_ordered`] is invariant under permutation of the
/// shard buffer list — whichever order workers hand their buffers
/// back (finish order is scheduler-dependent), the merged sequence is
/// the same `(cycle, shard, seq)` total order.
#[test]
fn shard_merge_is_invariant_under_shard_permutation() {
    // A deterministic pseudo-random workload: 240 entries over 6
    // shards with heavily colliding cycles, so ordering actually
    // exercises the (shard, seq) tie-breakers.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const SHARDS: usize = 6;
    let mut shards: Vec<Vec<ShardEntry<u64>>> = vec![Vec::new(); SHARDS];
    for i in 0..240u64 {
        let s = (rand() % SHARDS as u64) as u32;
        let seq = shards[s as usize].len() as u64;
        shards[s as usize].push(ShardEntry { cycle: rand() % 16, shard: s, seq, payload: i });
    }

    let key_seq = |merged: Vec<ShardEntry<u64>>| -> Vec<(u64, u32, u64, u64)> {
        merged.into_iter().map(|e| (e.cycle, e.shard, e.seq, e.payload)).collect()
    };
    let reference = key_seq(merge_ordered(shards.clone()));
    assert!(reference.windows(2).all(|w| (w[0].0, w[0].1, w[0].2) < (w[1].0, w[1].1, w[1].2)));

    // Rotations and a reversal cover distinct buffer-arrival orders.
    for rotation in 1..SHARDS {
        let mut permuted = shards.clone();
        permuted.rotate_left(rotation);
        assert_eq!(
            key_seq(merge_ordered(permuted)),
            reference,
            "merge depends on buffer order (rotation {rotation})"
        );
    }
    let mut reversed = shards.clone();
    reversed.reverse();
    assert_eq!(key_seq(merge_ordered(reversed)), reference);
}
