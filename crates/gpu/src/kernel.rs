//! Kernel, workgroup and wavefront descriptors.
//!
//! An [`AppTrace`] is a sequence of kernel launches (the unit of the
//! paper's Figure 11 and of the I-cache flush optimization §4.3.3).
//! Each kernel carries its instruction footprint (`code_lines`), its
//! per-workgroup LDS request (Figure 4a), and the wavefront op streams.

use gtr_vm::addr::VmId;

use crate::ops::Op;

/// Instructions per 64-byte I-cache line (8-byte instructions).
pub const INSTS_PER_LINE: u32 = 8;

/// The op stream of one wavefront.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaveProgram {
    ops: Vec<Op>,
}

impl WaveProgram {
    /// Creates a wave program from its op list.
    pub fn new(ops: Vec<Op>) -> Self {
        Self { ops }
    }

    /// The ops, in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops (instructions).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A workgroup: wavefronts guaranteed to run on the same CU, sharing
/// one LDS allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkgroupDesc {
    waves: Vec<WaveProgram>,
}

impl WorkgroupDesc {
    /// Creates a workgroup from its wavefronts.
    pub fn new(waves: Vec<WaveProgram>) -> Self {
        Self { waves }
    }

    /// The wavefront programs.
    pub fn waves(&self) -> &[WaveProgram] {
        &self.waves
    }

    /// Number of wavefronts.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }
}

/// One kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDesc {
    name: String,
    /// Instruction footprint in 64-byte I-cache lines.
    code_lines: u32,
    /// LDS bytes requested per workgroup.
    lds_bytes_per_wg: u32,
    /// Address space this kernel translates in (§7.2 multi-application
    /// scenarios; single-app traces use the default space 0).
    vm_id: VmId,
    workgroups: Vec<WorkgroupDesc>,
}

impl KernelDesc {
    /// Creates a kernel descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `code_lines == 0` (every kernel has at least one line
    /// of code).
    pub fn new(
        name: impl Into<String>,
        code_lines: u32,
        lds_bytes_per_wg: u32,
        workgroups: Vec<WorkgroupDesc>,
    ) -> Self {
        assert!(code_lines > 0, "a kernel needs at least one instruction line");
        Self {
            name: name.into(),
            code_lines,
            lds_bytes_per_wg,
            vm_id: VmId::default(),
            workgroups,
        }
    }

    /// Assigns this kernel to a different address space (§7.2).
    pub fn with_vm_id(mut self, vm_id: VmId) -> Self {
        self.vm_id = vm_id;
        self
    }

    /// The address space this kernel runs in.
    pub fn vm_id(&self) -> VmId {
        self.vm_id
    }

    /// Kernel name (used for back-to-back detection, Table 2).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instruction footprint in I-cache lines.
    pub fn code_lines(&self) -> u32 {
        self.code_lines
    }

    /// LDS bytes requested per workgroup.
    pub fn lds_bytes_per_wg(&self) -> u32 {
        self.lds_bytes_per_wg
    }

    /// The workgroups to dispatch.
    pub fn workgroups(&self) -> &[WorkgroupDesc] {
        &self.workgroups
    }

    /// Total wavefronts across all workgroups.
    pub fn total_waves(&self) -> usize {
        self.workgroups.iter().map(WorkgroupDesc::wave_count).sum()
    }

    /// Total ops across all wavefronts.
    pub fn total_ops(&self) -> u64 {
        self.workgroups
            .iter()
            .flat_map(|wg| wg.waves())
            .map(|w| w.len() as u64)
            .sum()
    }
}

/// A full application: an ordered sequence of kernel launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppTrace {
    name: String,
    kernels: Vec<KernelDesc>,
}

impl AppTrace {
    /// Creates an application trace.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelDesc>) -> Self {
        Self { name: name.into(), kernels }
    }

    /// Application name (e.g. "ATAX").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel launches, in order.
    pub fn kernels(&self) -> &[KernelDesc] {
        &self.kernels
    }

    /// Total ops across the whole application.
    pub fn total_ops(&self) -> u64 {
        self.kernels.iter().map(KernelDesc::total_ops).sum()
    }

    /// Whether any kernel is launched back-to-back with itself
    /// (Table 2's "B-2-B Kernels?" column; governs the flush
    /// optimization §4.3.3).
    pub fn has_back_to_back_kernels(&self) -> bool {
        self.kernels.windows(2).any(|w| w[0].name() == w[1].name())
    }

    /// Interleaves two applications' kernel launches into one trace for
    /// §7.2 multi-application studies: kernels alternate, each keeps
    /// (or is assigned) its own address space, and names are prefixed
    /// with the source application so instruction footprints stay
    /// distinct.
    pub fn interleave(a: &AppTrace, b: &AppTrace) -> AppTrace {
        let tag = |app: &AppTrace, k: &KernelDesc, vm: u8| {
            KernelDesc::new(
                format!("{}::{}", app.name(), k.name()),
                k.code_lines(),
                k.lds_bytes_per_wg(),
                k.workgroups().to_vec(),
            )
            .with_vm_id(VmId::new(vm))
        };
        let mut kernels = Vec::with_capacity(a.kernels.len() + b.kernels.len());
        let mut ia = a.kernels.iter();
        let mut ib = b.kernels.iter();
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (ka, kb) => {
                    if let Some(k) = ka {
                        kernels.push(tag(a, k, 0));
                    }
                    if let Some(k) = kb {
                        kernels.push(tag(b, k, 1));
                    }
                }
            }
        }
        AppTrace::new(format!("{}+{}", a.name(), b.name()), kernels)
    }

    /// Number of distinct kernel names.
    pub fn distinct_kernels(&self) -> usize {
        let mut names: Vec<&str> = self.kernels.iter().map(KernelDesc::name).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> WaveProgram {
        WaveProgram::new(vec![Op::compute(1); n])
    }

    #[test]
    fn counts_roll_up() {
        let wg = WorkgroupDesc::new(vec![wave(3), wave(5)]);
        let k = KernelDesc::new("k", 4, 256, vec![wg.clone(), wg]);
        assert_eq!(k.total_waves(), 4);
        assert_eq!(k.total_ops(), 16);
        let app = AppTrace::new("a", vec![k.clone(), k]);
        assert_eq!(app.total_ops(), 32);
    }

    #[test]
    fn back_to_back_detection() {
        let k = |n: &str| KernelDesc::new(n, 1, 0, vec![]);
        let b2b = AppTrace::new("nw", vec![k("nw_kernel1"), k("nw_kernel1"), k("nw_kernel2")]);
        assert!(b2b.has_back_to_back_kernels());
        let alt = AppTrace::new("atax", vec![k("k1"), k("k2"), k("k1")]);
        assert!(!alt.has_back_to_back_kernels());
        assert_eq!(alt.distinct_kernels(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one instruction line")]
    fn zero_code_lines_rejected() {
        let _ = KernelDesc::new("bad", 0, 0, vec![]);
    }

    #[test]
    fn interleave_alternates_and_tags_address_spaces() {
        let k = |n: &str| KernelDesc::new(n, 1, 0, vec![]);
        let a = AppTrace::new("A", vec![k("x"), k("x"), k("x")]);
        let b = AppTrace::new("B", vec![k("y")]);
        let m = AppTrace::interleave(&a, &b);
        assert_eq!(m.name(), "A+B");
        assert_eq!(m.kernels().len(), 4);
        assert_eq!(m.kernels()[0].name(), "A::x");
        assert_eq!(m.kernels()[1].name(), "B::y");
        assert_eq!(m.kernels()[0].vm_id(), VmId::new(0));
        assert_eq!(m.kernels()[1].vm_id(), VmId::new(1));
        // The tail of the longer app keeps flowing.
        assert_eq!(m.kernels()[3].name(), "A::x");
    }
}
