//! Randomized property tests over the core data structures'
//! invariants.
//!
//! Formerly written with `proptest`; now driven by the workspace's own
//! seeded [`SplitMix64`] generator so the test suite builds and runs
//! with no registry access. Each property samples many random cases
//! per run and every case is fully determined by its seed, so a
//! failure message's seed reproduces the exact failing input.

use gpu_translation_reach::core_arch::compress::TagGroup;
use gpu_translation_reach::core_arch::config::{Replacement, SegmentSize, TxPerLine};
use gpu_translation_reach::core_arch::icache_tx::TxIcache;
use gpu_translation_reach::core_arch::lds_tx::{LdsInsert, SegmentMode, TxLds};
use gpu_translation_reach::sim::resource::Timeline;
use gpu_translation_reach::sim::rng::SplitMix64;
use gpu_translation_reach::vm::addr::{PageSize, Ppn, Translation, TranslationKey, VirtAddr, Vpn};
use gpu_translation_reach::vm::coalescer::CoalescedAccess;
use gpu_translation_reach::vm::page_table::PageTable;
use gpu_translation_reach::vm::tlb::{Tlb, TlbConfig};

fn tx(v: u64) -> Translation {
    Translation::new(TranslationKey::for_vpn(Vpn(v)), Ppn(v ^ 0xABCD))
}

/// Runs `case` once per seed; panics carry the seed for replay.
fn check_cases(cases: u64, case: impl Fn(&mut SplitMix64)) {
    for seed in 0..cases {
        let mut rng = SplitMix64::new(0xC0FFEE ^ seed);
        case(&mut rng);
    }
}

/// A random vector of `1..max_len` values drawn from `[lo, hi)`.
fn random_vec(rng: &mut SplitMix64, max_len: u64, lo: u64, hi: u64) -> Vec<u64> {
    let len = 1 + rng.next_below(max_len.max(2) - 1);
    (0..len).map(|_| lo + rng.next_below(hi - lo)).collect()
}

/// Every admitted tag lies within the signed delta window of the
/// group's base; conflicts are rejected, never mis-stored.
#[test]
fn tag_group_window_invariant() {
    check_cases(64, |rng| {
        let delta_bits = 2 + rng.next_below(22) as u32;
        let tags = random_vec(rng, 64, 0, 1 << 40);
        let mut g = TagGroup::new(delta_bits);
        for t in tags {
            let admitted = g.try_admit(t);
            if admitted {
                let base = g.base().expect("non-empty group has a base");
                let delta = t as i128 - base as i128;
                let half = 1i128 << (delta_bits - 1);
                assert!(
                    (-half..half).contains(&delta),
                    "admitted tag {t} outside window of base {base} ({delta_bits} bits)"
                );
            }
        }
    });
}

/// A TLB never exceeds its capacity, and a just-inserted key is
/// always findable.
#[test]
fn tlb_capacity_and_residency() {
    check_cases(64, |rng| {
        let entries = 1usize << (2 + rng.next_below(5));
        let assoc = (1usize << rng.next_below(4)).min(entries);
        let keys = random_vec(rng, 300, 0, 10_000);
        let mut tlb = Tlb::new(TlbConfig::set_associative(entries, assoc, 1));
        for v in keys {
            tlb.insert(tx(v));
            assert!(tlb.len() <= entries);
            assert!(
                tlb.probe(TranslationKey::for_vpn(Vpn(v))).is_some(),
                "freshly inserted key must be resident"
            );
        }
    });
}

/// Timeline reservations never overlap, regardless of arrival order
/// and skew.
#[test]
fn timeline_reservations_disjoint() {
    check_cases(48, |rng| {
        let n = 1 + rng.next_below(199);
        let mut tl = Timeline::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let at = rng.next_below(100_000);
            let service = 1 + rng.next_below(199);
            let start = tl.reserve(at, service);
            assert!(start >= at, "reservation cannot start before arrival");
            let end = start + service;
            for &(s, e) in &intervals {
                assert!(end <= s || start >= e, "overlap: [{start},{end}) with [{s},{e})");
            }
            intervals.push((start, end));
        }
    });
}

/// Coalescing yields unique pages covering exactly the lanes' pages.
#[test]
fn coalescer_pages_exact() {
    check_cases(64, |rng| {
        let addrs = random_vec(rng, 64, 0, 1 << 44);
        let lanes: Vec<VirtAddr> = addrs.iter().map(|&a| VirtAddr::new(a)).collect();
        let c = CoalescedAccess::from_lanes(&lanes, PageSize::Size4K);
        let expected: std::collections::HashSet<u64> =
            lanes.iter().map(|a| a.vpn(PageSize::Size4K).0).collect();
        let got: std::collections::HashSet<u64> = c.pages.iter().map(|p| p.0).collect();
        assert_eq!(expected, got);
        assert_eq!(c.pages.len(), expected.len(), "no duplicates");
    });
}

/// Page-table mapping is a bijection onto distinct frames, and walk
/// paths always end at the mapped frame.
#[test]
fn page_table_bijective_and_walkable() {
    check_cases(32, |rng| {
        let vpns: std::collections::HashSet<u64> =
            random_vec(rng, 100, 0, 1 << 30).into_iter().collect();
        let mut pt = PageTable::new(PageSize::Size4K);
        let mut frames = std::collections::HashSet::new();
        for &v in &vpns {
            let t = pt.map_vpn(Vpn(v));
            assert!(frames.insert(t.ppn), "frame reused");
        }
        for &v in &vpns {
            let path = pt.walk_path(Vpn(v)).expect("mapped");
            assert_eq!(path.steps().len(), 4);
            assert_eq!(Some(path.ppn), pt.translate(Vpn(v)));
        }
    });
}

/// The reconfigurable LDS never stores translations in App-mode
/// segments and never exceeds its way capacity; app allocate /
/// release round-trips restore usable capacity.
#[test]
fn tx_lds_mode_safety() {
    check_cases(48, |rng| {
        let n = 1 + rng.next_below(399);
        let mut lds = TxLds::new(16 * 1024, SegmentSize::Bytes32);
        let cap = lds.segment_count() * lds.ways();
        // Live application allocations, mirroring the front-end
        // scheduler's contract: only allocated blocks are released.
        let mut live: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for _ in 0..n {
            let v = rng.next_below(4096);
            match rng.next_below(4) {
                0 | 1 => {
                    let _ = lds.insert(tx(v));
                }
                2 => {
                    let base = (((v as u32) % 512) * 32) & !255;
                    if live.insert(base) {
                        lds.on_app_allocate(base, 256);
                    }
                }
                _ => {
                    let base = (((v as u32) % 512) * 32) & !255;
                    if live.remove(&base) {
                        lds.on_app_release(base, 256);
                    }
                }
            }
            assert!(lds.resident() <= cap);
            // An App segment must always bypass inserts.
            if lds.segment_mode(tx(v).key) == SegmentMode::App {
                assert_eq!(lds.insert(tx(v)), LdsInsert::Bypassed);
            }
        }
    });
}

/// The reconfigurable I-cache keeps instruction fetches correct no
/// matter how translations churn: a fetched line always hits
/// immediately afterwards.
#[test]
fn tx_icache_instruction_correctness() {
    check_cases(48, |rng| {
        let n = 1 + rng.next_below(399);
        let mut ic = TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
        for _ in 0..n {
            let v = rng.next_below(2048);
            if rng.next_below(2) == 0 {
                ic.fetch(v);
                assert!(ic.fetch(v), "immediate refetch must hit");
            } else {
                let _ = ic.insert_tx(tx(v));
            }
            assert!(ic.resident_tx() <= ic.line_count() * ic.tx_slots());
        }
    });
}

/// Under the instruction-aware policy translations NEVER evict
/// instruction lines (§4.3.2 rule 2).
#[test]
fn instruction_aware_never_evicts_instructions() {
    check_cases(48, |rng| {
        let inst_lines = random_vec(rng, 64, 0, 2048);
        let tx_vpns = random_vec(rng, 256, 0, 1 << 20);
        let mut ic = TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
        for &l in &inst_lines {
            ic.fetch(l);
        }
        let inst_before = ic.inst_lines();
        for v in tx_vpns {
            let _ = ic.insert_tx(tx(v));
        }
        assert_eq!(ic.inst_lines(), inst_before);
        assert_eq!(ic.stats().inst_evicted_by_tx, 0);
    });
}

// ---------------------------------------------------------------------------
// CheckpointKey: which config fields invalidate a warmup capture.
// ---------------------------------------------------------------------------

use gpu_translation_reach::core_arch::checkpoint::{stream_fingerprint, Checkpoint, CheckpointKey};
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::vm::alloc::PageLayout;
use gpu_translation_reach::workloads::scale::Scale;
use gpu_translation_reach::workloads::suite;

/// Capture window for the stream-comparison properties, in wavefront
/// instructions (small: functional warming only, no timing).
const CAPTURE_WARMUP: u64 = 2_000;

/// Applies one random timing-side perturbation — config changes that
/// by design must NOT invalidate a capture.
fn perturb_timing_side(gpu: &mut GpuConfig, rng: &mut SplitMix64) {
    match rng.next_below(6) {
        0 => gpu.l2_tlb.entries = 1 << (8 + rng.next_below(9)),
        1 => *gpu = gpu.clone().with_perfect_l2_tlb(),
        2 => *gpu = gpu.clone().with_icache_sharers(1 << rng.next_below(4)),
        3 => *gpu = gpu.clone().without_page_walk_caches(),
        4 => gpu.l1_tlb.latency = 1 + rng.next_below(20),
        _ => gpu.l2_tlb.latency = 1 + rng.next_below(50),
    }
}

/// The apps the stream-comparison properties sample (cheap at tiny
/// scale, spanning latency-bound, irregular and regular behavior).
const STREAM_APPS: [&str; 3] = ["ATAX", "GUPS", "SRAD"];

fn capture_stream(app: &str, gpu: &GpuConfig) -> Vec<u8> {
    let trace = suite::by_name(app, Scale::tiny()).expect("known app");
    Checkpoint::capture(&trace, gpu, CAPTURE_WARMUP).to_bytes()
}

/// Timing-side sweeps never invalidate a capture: any stack of
/// timing-side perturbations keys identically to the default machine.
#[test]
fn checkpoint_key_ignores_timing_side_config() {
    let base = CheckpointKey::new("GUPS", &GpuConfig::default(), CAPTURE_WARMUP);
    check_cases(64, |rng| {
        let mut gpu = GpuConfig::default();
        for _ in 0..=rng.next_below(3) {
            perturb_timing_side(&mut gpu, rng);
        }
        assert_eq!(
            CheckpointKey::new("GUPS", &gpu, CAPTURE_WARMUP),
            base,
            "timing-side perturbation changed the key: {gpu:?}"
        );
    });
}

/// The safety direction of sharing: whenever two random
/// configurations agree on the key, their captured translation
/// streams are bit-identical — a shared checkpoint can never feed a
/// variant a stream it would not have produced itself.
#[test]
fn checkpoint_key_equality_implies_identical_streams() {
    check_cases(8, |rng| {
        let app = STREAM_APPS[rng.next_below(STREAM_APPS.len() as u64) as usize];
        let mut a = GpuConfig::default();
        let mut b = GpuConfig::default();
        perturb_timing_side(&mut a, rng);
        perturb_timing_side(&mut b, rng);
        perturb_timing_side(&mut b, rng);
        assert_eq!(
            CheckpointKey::new(app, &a, CAPTURE_WARMUP),
            CheckpointKey::new(app, &b, CAPTURE_WARMUP),
            "timing-side machines must share a key"
        );
        let (sa, sb) = (capture_stream(app, &a), capture_stream(app, &b));
        assert_eq!(sa, sb, "{app}: equal keys must capture identical streams");
    });
}

/// The necessity direction of invalidation: page-size changes (and
/// the other stream-shaping knobs, coalescing and CU count) always
/// change the key AND provably change the captured stream — the
/// invalidation is empirical fact, not assumption.
#[test]
fn stream_shaping_config_changes_key_and_stream() {
    let default_gpu = GpuConfig::default();
    let shaped: Vec<(&str, GpuConfig)> = vec![
        ("page_size=64K", GpuConfig::default().with_page_size(PageSize::Size64K)),
        ("page_size=2M", GpuConfig::default().with_page_size(PageSize::Size2M)),
        ("coalescing=off", GpuConfig::default().without_coalescing()),
        ("cus=4", {
            let mut g = GpuConfig::default();
            g.cus = 4;
            g
        }),
        ("layout=contig(0)", GpuConfig::default().with_page_layout(PageLayout::contig(0.0, 1))),
        (
            "layout=contig(0.25)",
            GpuConfig::default().with_page_layout(PageLayout::contig(0.25, 1)),
        ),
    ];
    for app in STREAM_APPS {
        let base_key = CheckpointKey::new(app, &default_gpu, CAPTURE_WARMUP);
        let base_stream = capture_stream(app, &default_gpu);
        for (what, gpu) in &shaped {
            assert_ne!(
                CheckpointKey::new(app, gpu, CAPTURE_WARMUP),
                base_key,
                "{app}: {what} must invalidate the checkpoint key"
            );
            assert_ne!(
                capture_stream(app, gpu),
                base_stream,
                "{app}: {what} keyed differently but captured the same \
                 stream — invalidation would be unnecessary"
            );
        }
    }
}

/// The allocator's fragmentation fraction AND its break-out seed are
/// both stream-shaping: any two distinct `(f, seed)` layouts key
/// differently and provably capture different translation streams — a
/// checkpoint captured under one layout can never warm a run under
/// another (the PPNs themselves differ).
#[test]
fn page_layout_fraction_and_seed_are_stream_shaping() {
    let layouts: Vec<(String, GpuConfig)> = [(0.0, 7u64), (0.25, 7), (0.25, 8), (0.5, 7)]
        .iter()
        .map(|&(f, seed)| {
            (
                format!("contig({f}, seed {seed})"),
                GpuConfig::default().with_page_layout(PageLayout::contig(f, seed)),
            )
        })
        .collect();
    for app in STREAM_APPS {
        let mut seen: Vec<(String, CheckpointKey, Vec<u8>)> = vec![(
            "scatter".to_string(),
            CheckpointKey::new(app, &GpuConfig::default(), CAPTURE_WARMUP),
            capture_stream(app, &GpuConfig::default()),
        )];
        for (what, gpu) in &layouts {
            let key = CheckpointKey::new(app, gpu, CAPTURE_WARMUP);
            let stream = capture_stream(app, gpu);
            for (prev, pkey, pstream) in &seen {
                assert_ne!(&key, pkey, "{app}: {what} must key differently from {prev}");
                assert_ne!(
                    &stream, pstream,
                    "{app}: {what} keyed differently from {prev} but captured \
                     the same stream — invalidation would be unnecessary"
                );
            }
            seen.push((what.clone(), key, stream));
        }
    }
}

/// The coalesced-TLB-entry knob is timing-side: it changes which
/// entries the TLBs *hold*, never which translations the workload
/// *requests* — so it shares warmup checkpoints (same
/// `stream_fingerprint`) while producing its own result-cache entries
/// (different `timing_fingerprint`). This is the CheckpointKey hazard
/// the contiguity sweep rests on: page layouts capture per-layout
/// checkpoints, the coalescing sweep on top of each layout reuses
/// them.
#[test]
fn coalescing_knob_is_timing_side_in_the_cell_key() {
    use gpu_translation_reach::core_arch::cell::CellKey;
    use gpu_translation_reach::core_arch::config::ReachConfig;
    for gpu in [
        GpuConfig::default(),
        GpuConfig::default().with_page_layout(PageLayout::contig(0.25, 7)),
    ] {
        let plain = CellKey::new("GUPS", &gpu, &ReachConfig::ic_plus_lds(), "exact");
        for max in [1u8, 9] {
            let co = CellKey::new(
                "GUPS",
                &gpu,
                &ReachConfig::ic_plus_lds().with_tlb_coalescing(max),
                "exact",
            );
            assert_eq!(
                co.stream_fingerprint, plain.stream_fingerprint,
                "coalescing (max {max}) must stay in the checkpoint-sharing class"
            );
            assert_ne!(
                co.fingerprint(),
                plain.fingerprint(),
                "coalescing (max {max}) must be its own result cell"
            );
        }
    }
}

/// Conservative over-invalidation is allowed (a redundant capture is
/// safe; a wrong share is not) — but the fingerprint must stay a pure
/// function of the configuration: equal configs, equal fingerprints.
#[test]
fn stream_fingerprint_is_deterministic() {
    check_cases(32, |rng| {
        let mut gpu = GpuConfig::default();
        perturb_timing_side(&mut gpu, rng);
        assert_eq!(stream_fingerprint(&gpu), stream_fingerprint(&gpu.clone()));
    });
}
