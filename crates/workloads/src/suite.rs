//! The full benchmark suite with Table-2 metadata.

use gtr_gpu::kernel::AppTrace;

use crate::apps;
use crate::scale::Scale;

/// Table-2 metadata for one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Application name used throughout the harnesses.
    pub name: &'static str,
    /// Originating suite.
    pub suite: &'static str,
    /// Kernel launches at paper scale.
    pub kernels_per_app: usize,
    /// Whether the same kernel launches back-to-back.
    pub back_to_back: bool,
    /// Paper-reported PTW-PKI category (H/M/L).
    pub category: &'static str,
    /// Whether the app requests LDS.
    pub uses_lds: bool,
}

/// Table 2, one row per application.
pub const TABLE2: [BenchmarkInfo; 10] = [
    BenchmarkInfo { name: "ATAX", suite: "Polybench", kernels_per_app: 2, back_to_back: false, category: "H", uses_lds: false },
    BenchmarkInfo { name: "GEV", suite: "Polybench", kernels_per_app: 1, back_to_back: false, category: "H", uses_lds: false },
    BenchmarkInfo { name: "MVT", suite: "Polybench", kernels_per_app: 2, back_to_back: false, category: "H", uses_lds: false },
    BenchmarkInfo { name: "BICG", suite: "Polybench", kernels_per_app: 2, back_to_back: false, category: "H", uses_lds: false },
    BenchmarkInfo { name: "NW", suite: "Rodinia", kernels_per_app: 255, back_to_back: true, category: "M", uses_lds: true },
    BenchmarkInfo { name: "SRAD", suite: "Rodinia", kernels_per_app: 1, back_to_back: false, category: "L", uses_lds: true },
    BenchmarkInfo { name: "BFS", suite: "Rodinia", kernels_per_app: 24, back_to_back: false, category: "M", uses_lds: false },
    BenchmarkInfo { name: "SSSP", suite: "Pannotia", kernels_per_app: 512, back_to_back: false, category: "L", uses_lds: true },
    BenchmarkInfo { name: "PRK", suite: "Pannotia", kernels_per_app: 41, back_to_back: false, category: "L", uses_lds: true },
    BenchmarkInfo { name: "GUPS", suite: "u-bm", kernels_per_app: 3, back_to_back: false, category: "H", uses_lds: false },
];

/// Builds one application by name.
pub fn by_name(name: &str, scale: Scale) -> Option<AppTrace> {
    Some(match name {
        "ATAX" => apps::atax::build(scale),
        "GEV" => apps::gev::build(scale),
        "MVT" => apps::mvt::build(scale),
        "BICG" => apps::bicg::build(scale),
        "NW" => apps::nw::build(scale),
        "SRAD" => apps::srad::build(scale),
        "BFS" => apps::bfs::build(scale),
        "SSSP" => apps::sssp::build(scale),
        "PRK" => apps::prk::build(scale),
        "GUPS" => apps::gups::build(scale),
        _ => return None,
    })
}

/// Builds the whole suite in Table-2 order.
pub fn all(scale: Scale) -> Vec<AppTrace> {
    TABLE2
        .iter()
        .map(|info| by_name(info.name, scale).expect("known name"))
        .collect()
}

/// The subset the paper calls High and Medium TLB-miss apps.
pub fn high_medium(scale: Scale) -> Vec<AppTrace> {
    TABLE2
        .iter()
        .filter(|i| i.category != "L")
        .map(|i| by_name(i.name, scale).expect("known name"))
        .collect()
}

/// Metadata lookup by name.
pub fn info(name: &str) -> Option<&'static BenchmarkInfo> {
    TABLE2.iter().find(|i| i.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_build() {
        let apps = all(Scale::tiny());
        assert_eq!(apps.len(), 10);
        for (app, info) in apps.iter().zip(TABLE2.iter()) {
            assert_eq!(app.name(), info.name);
            assert!(app.total_ops() > 0, "{} is empty", info.name);
        }
    }

    #[test]
    fn b2b_metadata_matches_traces() {
        for info in &TABLE2 {
            let app = by_name(info.name, Scale::tiny()).unwrap();
            assert_eq!(
                app.has_back_to_back_kernels(),
                info.back_to_back,
                "B2B mismatch for {}",
                info.name
            );
        }
    }

    #[test]
    fn lds_metadata_matches_traces() {
        for info in &TABLE2 {
            let app = by_name(info.name, Scale::tiny()).unwrap();
            let uses = app.kernels().iter().any(|k| k.lds_bytes_per_wg() > 0);
            assert_eq!(uses, info.uses_lds, "LDS mismatch for {}", info.name);
        }
    }

    #[test]
    fn kernel_counts_at_paper_scale() {
        for info in &TABLE2 {
            if info.kernels_per_app <= 3 {
                let app = by_name(info.name, Scale::paper()).unwrap();
                assert_eq!(app.kernels().len(), info.kernels_per_app, "{}", info.name);
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("NOPE", Scale::tiny()).is_none());
        assert!(info("NOPE").is_none());
        assert_eq!(info("ATAX").unwrap().suite, "Polybench");
    }

    #[test]
    fn high_medium_subset() {
        let hm = high_medium(Scale::tiny());
        assert_eq!(hm.len(), 7); // 5 High + 2 Medium
    }
}
