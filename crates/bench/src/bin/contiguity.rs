//! `contiguity` — the contiguity-aware-reach sweep (allocator page
//! layouts × coalesced TLB entries).
//!
//! Runs the page-backing-mode comparison ({4 KB, 2 MB,
//! fragmented-2 MB, coalesced} × {baseline, LDS, IC, IC+LDS}) and the
//! allocator-fragmentation sweep (f ∈ 0..1 × {baseline,
//! IC+LDS+coalesce}), then prints both figures.
//!
//! ```sh
//! cargo run --release -p gtr-bench --bin contiguity -- --tiny
//! cargo run --release -p gtr-bench --bin contiguity -- --scale paper --sample
//! cargo run --release -p gtr-bench --bin contiguity -- --tiny --no-sweep
//! ```
//!
//! Flags:
//!
//! * `--scale <tiny|quick|paper>` (or `--tiny`/`--quick`) — workload
//!   scale (default paper).
//! * `--no-modes` / `--no-sweep` — skip the page-mode comparison or
//!   the fragmentation sweep.
//! * `--sample` — run under checkpointed interval sampling;
//!   `--checkpoint-dir <dir>` caches warmup checkpoints (default
//!   `target/ckpt-cache`). Each page layout captures its own
//!   checkpoints (the layout is stream-shaping); the coalescing knob
//!   is timing-side and shares them.
//! * `--threads N` — pin the matrix worker count; results are
//!   bit-identical for any value.
//! * `--stats-out <dir>` — write each matrix as a JSON document
//!   (`contiguity_<mode>.json`, `contiguity_frag<permille>.json`;
//!   schema v6 where coalescing ran, v4 otherwise) for
//!   `validate_stats`; `--pretty` indents the documents.
//! * `--prof <out.json>` — record a host-side span profile (Chrome
//!   trace). Simulated results stay byte-identical.

use gtr_bench::figures;
use gtr_bench::harness::RunMode;
use gtr_bench::profile;
use gtr_sim::prof;
use gtr_workloads::scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let prof_out = profile::arm_from_args(&args);
    let scale = scale_from_args(&args);
    let sample = args.iter().any(|a| a == "--sample");
    let pretty = args.iter().any(|a| a == "--pretty");
    let no_modes = args.iter().any(|a| a == "--no-modes");
    let no_sweep = args.iter().any(|a| a == "--no-sweep");
    let stats_out = str_flag(&args, "--stats-out");
    let mut mode = if sample {
        let dir = str_flag(&args, "--checkpoint-dir")
            .unwrap_or_else(|| "target/ckpt-cache".to_string());
        RunMode::sampled(figures::sampling_for(scale)).with_checkpoint_dir(dir)
    } else {
        RunMode::exact()
    };
    if let Some(v) = str_flag(&args, "--threads") {
        let n = v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--threads needs a worker count");
            std::process::exit(2);
        });
        mode = mode.with_workers(n);
    }

    let t = prof::Stopwatch::start();
    let mut cells = 0usize;
    let mut exports: Vec<(String, gtr_sim::json::Json)> = Vec::new();
    if !no_modes {
        let ms = figures::contiguity_matrices(scale, &mode);
        println!("{}", figures::contiguity_page_modes_from(&ms));
        for (label, m) in &ms {
            cells += m.baseline.len() + m.variants.iter().map(|(_, v)| v.len()).sum::<usize>();
            exports.push((format!("contiguity_{label}.json"), m.to_json()));
        }
    }
    if !no_sweep {
        let ms = figures::fragmentation_matrices(scale, &mode);
        println!("{}", figures::contiguity_frag_sweep_from(&ms));
        for (f, m) in &ms {
            cells += m.baseline.len() + m.variants.iter().map(|(_, v)| v.len()).sum::<usize>();
            exports.push((
                format!("contiguity_frag{:03}.json", (f * 1000.0).round() as u32),
                m.to_json(),
            ));
        }
    }
    eprintln!("contiguity sweep: {cells} cells in {}", t.report());

    if let Some(dir) = stats_out {
        std::fs::create_dir_all(&dir).expect("create stats dir");
        let _span = prof::span("export:stats");
        for (name, j) in exports {
            let mut doc = if pretty {
                j.to_string()
            } else {
                let mut s = String::new();
                j.write_compact(&mut s);
                s
            };
            doc.push('\n');
            let path = format!("{dir}/{name}");
            std::fs::write(&path, doc).expect("write stats JSON");
            eprintln!("stats written to {path}");
        }
    }
    profile::finish(prof_out.as_deref());
}

/// Reads the value of `--flag value`.
fn str_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
            .to_string()
    })
}

fn scale_from_args(args: &[String]) -> Scale {
    if let Some(v) = str_flag(args, "--scale") {
        return match v.as_str() {
            "tiny" => Scale::tiny(),
            "quick" => Scale::quick(),
            "paper" => Scale::paper(),
            other => {
                eprintln!("--scale needs tiny|quick|paper (got {other:?})");
                std::process::exit(2);
            }
        };
    }
    if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else if args.iter().any(|a| a == "--tiny") {
        Scale::tiny()
    } else {
        Scale::paper()
    }
}
