//! TLB shootdowns with the reconfigurable structures (§7.1).
//!
//! With translations cached in the LDS and I-cache, the driver's
//! PM4-style shootdown packet must invalidate those structures too.
//! This example migrates pages mid-workload and shows (a) the
//! shootdown finding stale entries in every structure and (b) the
//! page-table migration being picked up by subsequent walks.
//!
//! ```sh
//! cargo run --release --example shootdown_storm
//! ```

use gpu_translation_reach::core_arch::config::SegmentSize;
use gpu_translation_reach::core_arch::icache_tx::TxIcache;
use gpu_translation_reach::core_arch::lds_tx::TxLds;
use gpu_translation_reach::core_arch::config::{Replacement, TxPerLine};
use gpu_translation_reach::vm::addr::{PageSize, TranslationKey, VirtAddr, Vpn};
use gpu_translation_reach::vm::page_table::PageTable;
use gpu_translation_reach::vm::shootdown::{run_shootdown, ShootdownConfig, TranslationSink};
use gpu_translation_reach::vm::tlb::{Tlb, TlbConfig};

/// Adapter: the reconfigurable LDS as a shootdown sink.
struct LdsSink<'a>(&'a mut TxLds);
impl TranslationSink for LdsSink<'_> {
    fn shootdown(&mut self, key: TranslationKey) -> bool {
        self.0.shootdown(key)
    }
    fn sink_name(&self) -> &'static str {
        "reconfigurable-lds"
    }
}

/// Adapter: the reconfigurable I-cache as a shootdown sink.
struct IcSink<'a>(&'a mut TxIcache);
impl TranslationSink for IcSink<'_> {
    fn shootdown(&mut self, key: TranslationKey) -> bool {
        self.0.shootdown(key)
    }
    fn sink_name(&self) -> &'static str {
        "reconfigurable-icache"
    }
}

fn main() {
    let mut pt = PageTable::new(PageSize::Size4K);
    pt.map_range(VirtAddr::new(0), 1024);

    // Populate every structure with translations for a hot region.
    let mut l1 = Tlb::new(TlbConfig::fully_associative(32, 108));
    let mut l2 = Tlb::new(TlbConfig::set_associative(512, 16, 188));
    let mut lds = TxLds::new(16 * 1024, SegmentSize::Bytes32);
    let mut ic = TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
    for v in 0..1024u64 {
        let tx = pt.map_vpn(Vpn(v));
        l1.insert(tx);
        l2.insert(tx);
        lds.insert(tx);
        ic.insert_tx(tx);
    }
    println!(
        "populated: L1={} L2={} LDS={} IC={} cached translations",
        l1.len(),
        l2.len(),
        lds.resident(),
        ic.resident_tx()
    );

    // The OS migrates the 32 hottest pages (the ones still resident
    // in every structure, including the 32-entry L1 TLB); every cached
    // copy must die.
    let cfg = ShootdownConfig::default();
    let mut total_hits = 0;
    let mut t = 0;
    for v in 992..1024u64 {
        let key = TranslationKey::for_vpn(Vpn(v));
        let old = pt.translate(Vpn(v)).expect("page was mapped");
        let migrated = pt.migrate(Vpn(v)).expect("page was mapped");
        let outcome = run_shootdown(
            t,
            key,
            &cfg,
            &mut [&mut l1, &mut l2, &mut LdsSink(&mut lds), &mut IcSink(&mut ic)],
        );
        total_hits += outcome.sinks_hit;
        t = outcome.done;
        // The re-walked translation must point at the new frame.
        assert_ne!(migrated.ppn, old, "migration moved the frame");
    }
    println!(
        "32 migrations: {total_hits} stale copies invalidated across 4 structures, \
         storm completed at cycle {t}"
    );
    println!(
        "remaining: L1={} L2={} LDS={} IC={}",
        l1.len(),
        l2.len(),
        lds.resident(),
        ic.resident_tx()
    );
    assert_eq!(total_hits, 32 * 4, "every structure held every migrated page");
}
