//! Smoke tests over the experiment harnesses: every figure generator
//! must run at tiny scale and produce the rows the paper reports.

use gpu_translation_reach::bench::figures;
use gpu_translation_reach::workloads::scale::Scale;

fn tiny() -> Scale {
    Scale::tiny()
}

#[test]
fn table1_lists_the_machine() {
    let t = figures::table1();
    for needle in ["8 CUs", "512 entries", "16-way", "32 walkers", "DDR3-1600"] {
        assert!(t.contains(needle), "Table 1 missing {needle:?}:\n{t}");
    }
}

#[test]
fn table2_covers_all_apps() {
    let t = figures::table2(tiny());
    for app in ["ATAX", "GEV", "MVT", "BICG", "NW", "SRAD", "BFS", "SSSP", "PRK", "GUPS"] {
        assert!(t.contains(app), "Table 2 missing {app}");
    }
}

#[test]
fn fig02_03_sweeps_l2_sizes() {
    let t = figures::fig02_03(tiny());
    for needle in ["Fig 2", "Fig 3", "L2-TLB-8K", "Perfect-L2-TLB", "GeoMean"] {
        assert!(t.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig04_05_reports_distributions() {
    let t = figures::fig04_05(tiny());
    for needle in ["Fig 4a", "Fig 4b", "Fig 5a", "Fig 5b", "med"] {
        assert!(t.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn fig11_reports_per_kernel_series() {
    let t = figures::fig11(tiny());
    assert!(t.contains("NW"));
    assert!(t.contains("kernels]"));
}

#[test]
fn fig13a_has_all_four_variants() {
    let t = figures::fig13a(tiny());
    for needle in ["IC-1tx/way", "IC-8tx-naive-repl", "IC-8tx-instr-aware", "IC-8tx-IA+flush"] {
        assert!(t.contains(needle), "missing {needle:?}");
    }
}

#[test]
fn main_matrix_feeds_fig13b_13c_14_15() {
    let m = figures::main_matrix(tiny());
    let f13b = figures::fig13b_from(&m);
    assert!(f13b.contains("IC+LDS"));
    assert!(f13b.contains("High+Medium-only geomeans"));
    let f13c = figures::fig13c_from(&m);
    assert!(f13c.contains("DRAM energy"));
    let f14 = figures::fig14ab_from(&m);
    assert!(f14.contains("Fig 14a"));
    assert!(f14.contains("Fig 14b"));
    let f15 = figures::fig15_from(&m);
    assert!(f15.contains("Fig 15"));
}

#[test]
fn fig16_sections_render() {
    let a = figures::fig16a(tiny());
    assert!(a.contains("1-CU-sharers") && a.contains("8-CU-sharers"));
    let b = figures::fig16b(tiny());
    assert!(b.contains("IC_LDS+100cy"));
    let c = figures::fig16c(tiny());
    assert!(c.contains("DUCATI+IC+LDS"));
    let s = figures::ablation_segment_size(tiny());
    assert!(s.contains("64B-seg"));
}

#[test]
fn figure_output_is_deterministic() {
    assert_eq!(figures::table2(tiny()), figures::table2(tiny()));
    assert_eq!(figures::fig13b(tiny()), figures::fig13b(tiny()));
}

#[test]
fn multi_app_experiment_renders() {
    let t = figures::multi_app(tiny());
    assert!(t.contains("ATAX+BICG"));
    assert!(t.contains("IC+LDS"));
}

#[test]
fn ablations_render() {
    let t = figures::ablations(tiny());
    assert!(t.contains("prefetch-buffer"));
    assert!(t.contains("without PWCs"));
    assert!(t.contains("without coalescer"));
}
