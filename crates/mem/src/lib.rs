//! # gtr-mem
//!
//! Memory-hierarchy substrate for the `gpu-translation-reach`
//! workspace: a generic set-associative write-back cache, a DDR3-1600
//! DRAM timing model (2 channels × 2 ranks × 16 banks, Table 1), and a
//! DRAMPower-style energy estimator behind the paper's Figure 13c.
//!
//! [`system::MemorySystem`] composes the GPU-shared L2 data cache with
//! DRAM and is the single sink for data, instruction and page-table
//! traffic.
//!
//! # Example
//!
//! ```
//! use gtr_mem::system::{MemorySystem, MemorySystemConfig};
//!
//! let mut mem = MemorySystem::new(MemorySystemConfig::default());
//! let cold = mem.read(0, 0x1000);     // L2 miss -> DRAM
//! let warm = mem.read(cold, 0x1000);  // L2 hit
//! assert!(warm - cold < cold);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod energy;
pub mod system;
