//! A std-only work-stealing worker pool over indexed work items.
//!
//! The experiment harness sweeps an (application × variant) matrix of
//! independent, deterministic simulations. The seed scheduler spawned
//! one thread per application, each running every variant
//! sequentially — so the slowest application serialized the whole
//! tail of the sweep. Here instead every cell is an independent work
//! item in a single shared queue; idle workers steal the next
//! unclaimed index, so the tail of the sweep is bounded by one cell,
//! not one application's whole row.
//!
//! Determinism: workers only decide *which thread* runs a cell, never
//! what the cell computes — each item is a pure function of its index
//! and results are returned in index order, so output is bit-identical
//! for any worker count (asserted by the harness's determinism test).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: the machine's available
/// parallelism (1 when it cannot be queried).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Computes `f(0..n)` on `workers` threads via a shared steal queue
/// and returns the results in index order.
///
/// `f` must be pure per index (it may run on any worker). With
/// `workers <= 1` (or `n <= 1`) everything runs inline on the calling
/// thread — no spawn overhead, same results.
pub fn run_indexed<T: Send>(
    n: usize,
    workers: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Steal the next unclaimed cell.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                slots.lock().expect("worker panicked holding results")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker panicked holding results")
        .into_iter()
        .map(|r| r.expect("every cell claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        run_indexed(100, 8, |i| {
            assert!(seen.lock().unwrap().insert(i), "item {i} ran twice");
        });
        assert_eq!(seen.lock().unwrap().len(), 100);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 41), vec![41]);
    }

    #[test]
    fn uneven_items_keep_workers_busy() {
        // A slow first item must not serialize the rest behind it.
        let max_concurrent = AtomicU64::new(0);
        let live = AtomicU64::new(0);
        run_indexed(16, 4, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            max_concurrent.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(if i == 0 { 30 } else { 2 }));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        // On a single-core machine the OS still timeslices the pool,
        // so >1 worker must have been in flight at some point.
        assert!(max_concurrent.load(Ordering::SeqCst) >= 2);
    }
}
