//! End-to-end integration tests: the full Table-2 suite through the
//! complete system, checking the paper's qualitative claims.

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::stats::RunStats;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn run(name: &str, reach: ReachConfig) -> RunStats {
    let app = suite::by_name(name, Scale::tiny()).expect("known app");
    System::new(GpuConfig::default(), reach).run(&app)
}

#[test]
fn every_app_runs_to_completion_under_every_config() {
    for info in &suite::TABLE2 {
        for reach in [
            ReachConfig::baseline(),
            ReachConfig::lds_only(),
            ReachConfig::ic_only(),
            ReachConfig::ic_plus_lds(),
        ] {
            let stats = run(info.name, reach);
            assert!(stats.total_cycles > 0, "{} produced no cycles", info.name);
            assert!(stats.instructions > 0, "{} executed nothing", info.name);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    for name in ["ATAX", "NW", "GUPS"] {
        let a = run(name, ReachConfig::ic_plus_lds());
        let b = run(name, ReachConfig::ic_plus_lds());
        assert_eq!(a.total_cycles, b.total_cycles, "{name} cycles diverged");
        assert_eq!(a.page_walks, b.page_walks, "{name} walks diverged");
        assert_eq!(a.dram_accesses, b.dram_accesses, "{name} DRAM diverged");
        assert_eq!(a.victim_hits(), b.victim_hits(), "{name} hits diverged");
    }
}

#[test]
fn tlb_sensitive_apps_improve_with_ic_plus_lds() {
    // The paper's headline: High-category apps gain substantially.
    for name in ["ATAX", "BICG", "MVT", "GEV"] {
        let base = run(name, ReachConfig::baseline());
        let reach = run(name, ReachConfig::ic_plus_lds());
        assert!(
            reach.total_cycles < base.total_cycles,
            "{name} should speed up: base={} reach={}",
            base.total_cycles,
            reach.total_cycles
        );
        assert!(
            reach.page_walks * 2 < base.page_walks,
            "{name} walks should at least halve: base={} reach={}",
            base.page_walks,
            reach.page_walks
        );
    }
}

#[test]
fn tlb_insensitive_apps_are_not_degraded() {
    // "...while not negatively impacting applications that do not
    // require additional TLB reach."
    for name in ["SRAD", "SSSP", "PRK"] {
        let base = run(name, ReachConfig::baseline());
        let reach = run(name, ReachConfig::ic_plus_lds());
        let ratio = reach.total_cycles as f64 / base.total_cycles as f64;
        assert!(ratio < 1.05, "{name} degraded by {:.1}%", (ratio - 1.0) * 100.0);
    }
}

#[test]
fn victim_structures_actually_cache_translations() {
    let stats = run("ATAX", ReachConfig::ic_plus_lds());
    assert!(stats.lds_tx.hits > 0, "LDS victim cache never hit");
    assert!(stats.peak_tx_entries > 100, "peak entries {}", stats.peak_tx_entries);
}

#[test]
fn lds_using_apps_still_get_ic_reach() {
    // NW holds LDS allocations; the I-cache side must still help.
    let base = run("NW", ReachConfig::baseline());
    let reach = run("NW", ReachConfig::ic_plus_lds());
    assert!(reach.page_walks <= base.page_walks);
    assert!(reach.victim_hits() > 0);
}

#[test]
fn table2_categories_match_metadata_shape() {
    // High-category apps must measure at least Medium, and Low apps
    // must measure Low (the paper's Table-2 classification).
    for info in &suite::TABLE2 {
        let stats = run(info.name, ReachConfig::baseline());
        let pki = stats.ptw_pki();
        match info.category {
            "H" => assert!(pki >= 1.0, "{} measured PKI {pki}, expected High-ish", info.name),
            "M" => assert!(pki >= 0.5, "{} measured PKI {pki}, expected Medium-ish", info.name),
            _ => assert!(pki < 1.0, "{} measured PKI {pki}, expected Low", info.name),
        }
    }
}

#[test]
fn perfect_l2_tlb_eliminates_walks() {
    let app = suite::by_name("GUPS", Scale::tiny()).unwrap();
    let stats = System::new(
        GpuConfig::default().with_perfect_l2_tlb(),
        ReachConfig::baseline(),
    )
    .run(&app);
    assert_eq!(stats.page_walks, 0, "perfect L2 TLB must never walk");
}

#[test]
fn page_size_reduces_translation_pressure() {
    use gpu_translation_reach::vm::addr::PageSize;
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let small = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
    let large = System::new(
        GpuConfig::default().with_page_size(PageSize::Size2M),
        ReachConfig::baseline(),
    )
    .run(&app);
    assert!(
        large.page_walks < small.page_walks / 4,
        "2MB pages should slash walks: 4K={} 2M={}",
        small.page_walks,
        large.page_walks
    );
}

#[test]
fn ducati_composes_with_the_reconfigurable_design() {
    use gpu_translation_reach::ducati::Ducati;
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
    let ducati = System::new(GpuConfig::default(), ReachConfig::baseline())
        .with_side_cache(Box::new(Ducati::new(1 << 19)))
        .run(&app);
    let combined = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_side_cache(Box::new(Ducati::new(1 << 19)))
        .run(&app);
    assert!(ducati.page_walks < base.page_walks, "DUCATI should cut walks");
    assert!(combined.total_cycles <= ducati.total_cycles, "IC+LDS should add on top");
}

#[test]
fn icache_sharer_sweep_runs_all_points() {
    let app = suite::by_name("BICG", Scale::tiny()).unwrap();
    let mut cycles = Vec::new();
    for sharers in [1usize, 2, 4, 8] {
        let stats = System::new(
            GpuConfig::default().with_icache_sharers(sharers),
            ReachConfig::ic_plus_lds(),
        )
        .run(&app);
        cycles.push(stats.total_cycles);
    }
    assert_eq!(cycles.len(), 4);
    assert!(cycles.iter().all(|&c| c > 0));
}

#[test]
fn wire_latency_monotonically_degrades() {
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let fast = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    let slow = System::new(
        GpuConfig::default(),
        ReachConfig::ic_plus_lds().with_wire_latency(100, 100),
    )
    .run(&app);
    assert!(
        slow.total_cycles >= fast.total_cycles,
        "extra wire latency cannot speed things up"
    );
    // But it must still beat the baseline (the paper's §6.3.3 claim).
    let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
    assert!(slow.total_cycles < base.total_cycles);
}

#[test]
fn every_run_ends_translation_coherent() {
    for name in ["ATAX", "NW", "GUPS", "SSSP"] {
        let app = suite::by_name(name, Scale::tiny()).unwrap();
        let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds());
        sys.run(&app);
        assert!(sys.check_translation_coherence() > 0, "{name} cached nothing");
    }
}

#[test]
#[should_panic(expected = "can never fit")]
fn oversized_workgroup_is_rejected() {
    use gpu_translation_reach::gpu::kernel::{KernelDesc, WaveProgram, WorkgroupDesc};
    use gpu_translation_reach::gpu::ops::Op;
    let wave = WaveProgram::new(vec![Op::compute(1)]);
    let wg = WorkgroupDesc::new(vec![wave; 41]); // > 40 slots per CU
    let app = gpu_translation_reach::gpu::kernel::AppTrace::new(
        "bad",
        vec![KernelDesc::new("k", 1, 0, vec![wg])],
    );
    let _ = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
}

#[test]
#[should_panic(expected = "B of LDS")]
fn oversized_lds_request_is_rejected() {
    use gpu_translation_reach::gpu::kernel::{KernelDesc, WaveProgram, WorkgroupDesc};
    use gpu_translation_reach::gpu::ops::Op;
    let wave = WaveProgram::new(vec![Op::compute(1)]);
    let wg = WorkgroupDesc::new(vec![wave]);
    let app = gpu_translation_reach::gpu::kernel::AppTrace::new(
        "bad",
        vec![KernelDesc::new("k", 1, 64 * 1024, vec![wg])],
    );
    let _ = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
}

#[test]
fn home_hashed_lds_beats_duplication_for_random_access() {
    // The paper defers "optimizations to limit the translation
    // duplication" (§6.1.1); our home-node-hashed LDS implements one.
    // For uniform-random GUPS the deduplicated reach (12K unique
    // entries) must capture more than per-CU duplication (1.5K each).
    let app = suite::by_name("GUPS", Scale::tiny()).unwrap();
    let dup = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    let hashed = System::new(
        GpuConfig::default(),
        ReachConfig::ic_plus_lds().with_lds_home_hashing(),
    )
    .run(&app);
    assert!(
        hashed.lds_tx.hits > dup.lds_tx.hits * 2,
        "dedup should multiply victim hits: {} vs {}",
        hashed.lds_tx.hits,
        dup.lds_tx.hits
    );
    assert!(hashed.page_walks < dup.page_walks);
}
