//! Criterion micro-benchmarks of the hot simulation structures.
//!
//! These measure *simulator* throughput (how fast the models run), not
//! simulated performance — the paper's figures come from the `figures`
//! bench target and the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gtr_core::compress::TagGroup;
use gtr_core::config::{Replacement, SegmentSize, TxPerLine};
use gtr_core::icache_tx::TxIcache;
use gtr_core::lds_tx::TxLds;
use gtr_mem::dram::{Dram, DramConfig};
use gtr_vm::addr::{PageSize, Ppn, Translation, TranslationKey, VirtAddr, Vpn};
use gtr_vm::coalescer::CoalescedAccess;
use gtr_vm::page_table::PageTable;
use gtr_vm::tlb::{Tlb, TlbConfig};

fn key(v: u64) -> TranslationKey {
    TranslationKey::for_vpn(Vpn(v))
}

fn tx(v: u64) -> Translation {
    Translation::new(key(v), Ppn(v + 1))
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_lookup_hit_512e_16w", |b| {
        let mut tlb = Tlb::new(TlbConfig::set_associative(512, 16, 188));
        for v in 0..512 {
            tlb.insert(tx(v));
        }
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 512;
            black_box(tlb.lookup(key(v)))
        });
    });
    c.bench_function("tlb_insert_evict_cycle", |b| {
        let mut tlb = Tlb::new(TlbConfig::set_associative(512, 16, 188));
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(tlb.insert(tx(v)))
        });
    });
}

fn bench_compression(c: &mut Criterion) {
    c.bench_function("base_delta_admit_retire", |b| {
        let mut g = TagGroup::icache();
        b.iter(|| {
            if g.try_admit(black_box(1000)) {
                g.retire();
            }
        });
    });
}

fn bench_lds_tx(c: &mut Criterion) {
    c.bench_function("tx_lds_insert_lookup", |b| {
        let mut lds = TxLds::new(16 * 1024, SegmentSize::Bytes32);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            lds.insert(tx(v));
            black_box(lds.lookup(key(v)))
        });
    });
}

fn bench_icache_tx(c: &mut Criterion) {
    c.bench_function("tx_icache_fetch_hit", |b| {
        let mut ic =
            TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
        ic.fetch(7);
        b.iter(|| black_box(ic.fetch(7)));
    });
    c.bench_function("tx_icache_insert_lookup", |b| {
        let mut ic =
            TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            ic.insert_tx(tx(v));
            black_box(ic.lookup_tx(key(v)))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_access_streaming", |b| {
        let mut dram = Dram::new(DramConfig::default());
        let mut t = 0u64;
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            t = black_box(dram.read_line(t, line).0);
        });
    });
}

fn bench_page_table(c: &mut Criterion) {
    c.bench_function("page_table_walk_path", |b| {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.map_range(VirtAddr::new(0), 4096);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 4096;
            black_box(pt.walk_path(Vpn(v)))
        });
    });
}

fn bench_system(c: &mut Criterion) {
    use gtr_core::config::ReachConfig;
    use gtr_core::system::System;
    use gtr_gpu::config::GpuConfig;
    use gtr_workloads::{scale::Scale, suite};
    let app = suite::by_name("SRAD", Scale::tiny()).expect("known app");
    c.bench_function("system_run_srad_tiny_baseline", |b| {
        b.iter(|| {
            let stats =
                System::new(GpuConfig::default(), ReachConfig::baseline()).run(black_box(&app));
            black_box(stats.total_cycles)
        });
    });
    c.bench_function("system_run_srad_tiny_ic_lds", |b| {
        b.iter(|| {
            let stats =
                System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(black_box(&app));
            black_box(stats.total_cycles)
        });
    });
}

fn bench_coalescer(c: &mut Criterion) {
    c.bench_function("coalesce_64_divergent_lanes", |b| {
        let addrs: Vec<VirtAddr> =
            (0..64u64).map(|i| VirtAddr::new(i * 4096 * 3)).collect();
        b.iter(|| black_box(CoalescedAccess::from_lanes(&addrs, PageSize::Size4K)));
    });
}

criterion_group!(
    benches,
    bench_tlb,
    bench_compression,
    bench_lds_tx,
    bench_icache_tx,
    bench_dram,
    bench_page_table,
    bench_coalescer,
    bench_system
);
criterion_main!(benches);
