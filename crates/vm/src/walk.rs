//! Page-table walker: turns a walk path plus the page-walk-cache state
//! into a timed sequence of PTE memory accesses.

use gtr_sim::Cycle;

use crate::addr::{PhysAddr, Translation};
use crate::page_table::PageTable;
use crate::pwc::PageWalkCaches;

/// Timing interface for PTE memory accesses.
///
/// In the full system this is implemented by the GPU memory hierarchy
/// (L2 data cache + DRAM); tests use [`FixedLatencyPte`].
pub trait PteAccess {
    /// Performs one PTE read starting at `now` and returns the cycle at
    /// which the data is available.
    fn access(&mut self, now: Cycle, addr: PhysAddr) -> Cycle;
}

/// A [`PteAccess`] with a constant latency — handy for unit tests and
/// analytical experiments.
#[derive(Debug, Clone)]
pub struct FixedLatencyPte {
    latency: Cycle,
    accesses: u64,
}

impl FixedLatencyPte {
    /// Creates a fixed-latency PTE memory.
    pub fn new(latency: Cycle) -> Self {
        Self { latency, accesses: 0 }
    }

    /// Number of PTE accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

impl PteAccess for FixedLatencyPte {
    fn access(&mut self, now: Cycle, addr: PhysAddr) -> Cycle {
        let _ = addr;
        self.accesses += 1;
        now + self.latency
    }
}

impl<T: PteAccess + ?Sized> PteAccess for &mut T {
    fn access(&mut self, now: Cycle, addr: PhysAddr) -> Cycle {
        (**self).access(now, addr)
    }
}

/// Result of one page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The translation, or `None` on a page fault (unmapped VPN).
    pub translation: Option<Translation>,
    /// Cycle at which the walk finished.
    pub done: Cycle,
    /// Number of PTE memory accesses the walk issued.
    pub memory_accesses: usize,
    /// Radix level the walk started at thanks to the PWCs (0 = root).
    pub start_level: usize,
}

/// Walks the page table for `key.vpn`, consulting and filling the
/// split page-walk caches, charging one serialized [`PteAccess`] per
/// remaining level.
///
/// A fault (unmapped page) is charged a full walk from the deepest
/// cached level — the hardware still reads the tables to discover the
/// absence.
pub fn walk(
    now: Cycle,
    key: crate::addr::TranslationKey,
    table: &PageTable,
    pwc: &mut PageWalkCaches,
    mem: &mut impl PteAccess,
) -> WalkResult {
    let mut t = now + pwc.latency();
    match table.walk_path(key.vpn) {
        Some(path) => {
            let start = pwc.first_uncached_level(&path);
            let mut accesses = 0;
            for step in &path.steps()[start..] {
                t = mem.access(t, step.pte_addr);
                accesses += 1;
            }
            pwc.fill(&path);
            WalkResult {
                translation: Some(Translation::new(key, path.ppn)),
                done: t,
                memory_accesses: accesses,
                start_level: start,
            }
        }
        None => {
            // Fault: walk the full depth that exists (model as the
            // table's level count of reads from the root region).
            let levels = table.levels();
            for i in 0..levels {
                t = mem.access(t, PhysAddr::new((1 << 44) + (i as u64) * 8));
            }
            WalkResult { translation: None, done: t, memory_accesses: levels, start_level: 0 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PageSize, VirtAddr, Vpn};
    use crate::pwc::PwcConfig;

    #[test]
    fn cold_walk_costs_four_accesses() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let tx = pt.map(VirtAddr::new(0x1000));
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        let mut mem = FixedLatencyPte::new(100);
        let r = walk(0, tx.key, &pt, &mut pwc, &mut mem);
        assert_eq!(r.memory_accesses, 4);
        assert_eq!(r.done, pwc.latency() + 400);
        assert_eq!(r.translation.unwrap().ppn, tx.ppn);
    }

    #[test]
    fn warm_walk_costs_one_access() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let a = pt.map(VirtAddr::new(0x1000));
        let b = pt.map(VirtAddr::new(0x2000));
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        let mut mem = FixedLatencyPte::new(100);
        walk(0, a.key, &pt, &mut pwc, &mut mem);
        let r = walk(0, b.key, &pt, &mut pwc, &mut mem);
        assert_eq!(r.memory_accesses, 1);
        assert_eq!(r.start_level, 3);
    }

    #[test]
    fn two_mb_cold_walk_costs_three() {
        let mut pt = PageTable::new(PageSize::Size2M);
        let tx = pt.map(VirtAddr::new(0x20_0000));
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        let mut mem = FixedLatencyPte::new(50);
        let r = walk(0, tx.key, &pt, &mut pwc, &mut mem);
        assert_eq!(r.memory_accesses, 3);
    }

    #[test]
    fn fault_reports_none_but_still_costs() {
        let pt = PageTable::new(PageSize::Size4K);
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        let mut mem = FixedLatencyPte::new(10);
        let r = walk(5, crate::addr::TranslationKey::for_vpn(Vpn(12345)), &pt, &mut pwc, &mut mem);
        assert!(r.translation.is_none());
        assert!(r.done > 5);
        assert_eq!(r.memory_accesses, 4);
    }

    #[test]
    fn walk_serializes_accesses() {
        // Each level depends on the previous: total = levels * latency.
        let mut pt = PageTable::new(PageSize::Size4K);
        let tx = pt.map(VirtAddr::new(0));
        let mut pwc = PageWalkCaches::new(PwcConfig {
            pgd_entries: 0,
            pud_entries: 0,
            pmd_entries: 0,
            latency: 0,
        });
        let mut mem = FixedLatencyPte::new(7);
        let r = walk(100, tx.key, &pt, &mut pwc, &mut mem);
        assert_eq!(r.done, 100 + 4 * 7);
    }
}
