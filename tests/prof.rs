//! Host-profiler integration battery: profiling must observe, never
//! perturb.
//!
//! The span profiler (`gtr_sim::prof`, ARCHITECTURE's host-side
//! profiling section) hooks the hottest paths of the harness — worker
//! claims, checkpoint capture/replay, every matrix cell — so the one
//! property that matters above all is that turning it on changes
//! *nothing* observable in simulated results: exported schema-v4 and
//! schema-v5 documents must stay byte-identical, and the tiny-matrix
//! cycle anchor must hold exactly. The trace itself must also be
//! well-formed: parseable by the repo's own JSON machinery, balanced
//! begin/end per lane, and carrying one populated timeline per worker
//! slot.
//!
//! Everything lives in one `#[test]` because the profiler's enabled
//! flag is process-global and sticky: the prof-off runs must complete
//! before the first `enable()`, which parallel test threads could not
//! guarantee.

use gpu_translation_reach::bench::harness::RunMode;
use gpu_translation_reach::bench::{figures, profile};
use gpu_translation_reach::sim::prof;
use gpu_translation_reach::vm::tenancy::SharingPolicy;
use gpu_translation_reach::workloads::scale::Scale;

/// The tiny-scale main-matrix cycle anchor (`perf --check` and ci.sh
/// gate the same constant).
const TINY_ANCHOR: u64 = 3_977_625;

/// The exact tiny main matrix under 4 workers: its compact schema-v4
/// document and its summed cycle anchor.
fn main_matrix_json() -> (String, u64) {
    let mode = RunMode::exact().with_workers(4);
    let m = figures::main_matrix_mode(Scale::tiny(), false, &mode);
    let cycles = m
        .baseline
        .iter()
        .chain(m.variants.iter().flat_map(|(_, stats)| stats.iter()))
        .map(|s| s.total_cycles)
        .sum();
    let mut s = String::new();
    m.to_json().write_compact(&mut s);
    (s, cycles)
}

/// One tenanted matrix (2 tenants, first sharing policy) plus the
/// untenanted solo anchor: compact schema-v5 and schema-v4 documents.
fn tenancy_json() -> (String, String) {
    let policy = SharingPolicy::all()[0];
    let (solo, ms) =
        figures::tenancy_matrices_subset(Scale::tiny(), &[2], &[policy], &RunMode::exact());
    let mut v4 = String::new();
    solo.to_json().write_compact(&mut v4);
    let mut v5 = String::new();
    ms[0].2.to_json().write_compact(&mut v5);
    (v4, v5)
}

#[test]
fn profiling_is_invisible_to_results_and_emits_a_wellformed_trace() {
    // -- Prof OFF: reference documents. ------------------------------
    assert!(!prof::is_enabled(), "profiler must start disabled");
    let (matrix_off, cycles_off) = main_matrix_json();
    let (solo_off, tenancy_off) = tenancy_json();
    assert_eq!(cycles_off, TINY_ANCHOR, "tiny main-matrix anchor moved");

    // -- Prof ON: identical bytes, identical anchor. -----------------
    prof::enable();
    let (matrix_on, cycles_on) = main_matrix_json();
    assert_eq!(cycles_on, TINY_ANCHOR, "profiling perturbed the cycle anchor");
    assert_eq!(
        matrix_on, matrix_off,
        "schema-v4 export must be byte-identical with profiling on"
    );
    let (solo_on, tenancy_on) = tenancy_json();
    assert_eq!(
        solo_on, solo_off,
        "solo (schema-v4) tenancy export must be byte-identical with profiling on"
    );
    assert_eq!(
        tenancy_on, tenancy_off,
        "schema-v5 tenancy export must be byte-identical with profiling on"
    );

    // -- The emitted Chrome trace is well-formed. --------------------
    // Fresh window so the trace covers exactly one 4-worker sweep.
    prof::reset();
    let (_, cycles) = main_matrix_json();
    assert_eq!(cycles, TINY_ANCHOR);
    let path = std::env::temp_dir().join(format!("gtr_prof_test_{}.json", std::process::id()));
    let stats = prof::write_chrome_trace(&path).expect("write chrome trace");
    assert!(stats.spans > 0, "trace carries no spans");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let _ = std::fs::remove_file(&path);
    // parse_chrome_trace re-parses with gtr_sim::json and rejects any
    // unbalanced B/E pair per lane — both CI smoke properties.
    let trace = profile::parse_chrome_trace(&text).expect("trace parses with balanced B/E");
    profile::expect_workers(&trace, 4)
        .expect("all four worker lanes must carry at least one span");
    assert!(
        trace.spans.iter().any(|s| s.cat == "cell"),
        "worker lanes must carry cell spans"
    );
    assert!(
        trace.spans.iter().any(|s| s.cat == "matrix" && s.lane == "main"),
        "the matrix span must sit on the main lane"
    );
    // The summary renderer must digest its own writer's output.
    let summary = profile::summary(&trace);
    assert!(summary.contains("per-worker utilization"), "{summary}");
    assert!(summary.contains("per-phase breakdown"), "{summary}");
}
