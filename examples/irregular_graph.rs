//! Irregular-application study: drive a custom frontier-based graph
//! traversal (built directly from the public API, not the packaged
//! suite) through every reconfigurable-architecture configuration.
//!
//! Demonstrates how a downstream user would model their own workload:
//! generate a CSR graph, write wavefront op streams with the
//! `WaveBuilder`, assemble kernels, and sweep configurations.
//!
//! ```sh
//! cargo run --release --example irregular_graph
//! ```

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::{AppTrace, KernelDesc};
use gpu_translation_reach::sim::rng::SplitMix64;
use gpu_translation_reach::workloads::gen::{into_workgroups, WaveBuilder, PAGE};
use gpu_translation_reach::workloads::graph::CsrGraph;

fn main() {
    // A mid-sized power-law graph: ~1.4 M edges, ~1.7 K page footprint.
    let graph = CsrGraph::generate(7, 160_000, 8);
    println!(
        "graph: {} vertices, {} edges, {} page footprint",
        graph.vertices,
        graph.edges,
        graph.footprint_pages()
    );

    // Two alternating relaxation kernels over random frontiers: the
    // neighbor gathers are the TLB-hostile part.
    let mut rng = SplitMix64::new(99);
    let mut kernels = Vec::new();
    for launch in 0..16 {
        let name = if launch % 2 == 0 { "expand" } else { "settle" };
        let mut programs = Vec::new();
        for _ in 0..16 {
            let mut b = WaveBuilder::new(6);
            for _ in 0..24 {
                let v = rng.next_below(graph.vertices);
                b.stream_read(graph.row_ptr_addr(v));
                b.gather(&mut rng, graph.edges_base, graph.edges * 4 / PAGE, 24);
                b.gather(&mut rng, graph.props_base, graph.vertices * 4 / PAGE, 12);
            }
            programs.push(b.build());
        }
        kernels.push(KernelDesc::new(name, 88, 0, into_workgroups(programs, 4)));
    }
    let app = AppTrace::new("custom-graph", kernels);

    let configs = [
        ("baseline", ReachConfig::baseline()),
        ("LDS-only", ReachConfig::lds_only()),
        ("IC-only", ReachConfig::ic_only()),
        ("IC+LDS", ReachConfig::ic_plus_lds()),
    ];
    let mut baseline_cycles = 0u64;
    println!("{:<10} {:>12} {:>10} {:>12} {:>10}", "config", "cycles", "walks", "victim hits", "speedup");
    for (name, reach) in configs {
        let stats = System::new(GpuConfig::default(), reach).run(&app);
        if name == "baseline" {
            baseline_cycles = stats.total_cycles;
        }
        println!(
            "{:<10} {:>12} {:>10} {:>12} {:>9.2}x",
            name,
            stats.total_cycles,
            stats.page_walks,
            stats.victim_hits(),
            baseline_cycles as f64 / stats.total_cycles as f64,
        );
    }
}
