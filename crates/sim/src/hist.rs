//! Dependency-free log-linear histograms and per-component cycle
//! attribution — the distribution-metrics layer behind the paper's
//! "where does translation latency go?" arguments (§4–§6).
//!
//! [`crate::stats`] answers with scalars (counts, means, five-number
//! summaries of *sampled* values); this module answers with full
//! distributions recorded at zero allocation per sample:
//!
//! * [`Hist`] — a fixed 64-bucket log-linear histogram of `u64`
//!   values. Values 0–15 get exact unit buckets; larger values share
//!   two buckets per power-of-two octave up to 2^28, beyond which a
//!   single overflow bucket catches everything (the tracked exact
//!   [`Hist::max`] bounds it). Recording is O(1) with no allocation,
//!   histograms merge bucket-wise, and quantiles are exact to within
//!   the bounds of the bucket containing the requested rank.
//! * [`CycleAttribution`] — charges each completed translation's
//!   latency to the Fig-12 service point that resolved it
//!   ([`crate::trace::TracePath`]), so "X% of translation cycles were
//!   spent in full walks" is a first-class, exportable metric.

use crate::trace::TracePath;

/// Number of buckets in a [`Hist`] (fixed so histograms merge and
/// serialize positionally).
pub const HIST_BUCKETS: usize = 64;

/// Unit-bucket region: values below this get one bucket each.
const LINEAR_CUTOFF: u64 = 16;

/// A mergeable log-linear histogram of `u64` samples.
///
/// Designed for latency-in-cycles distributions: the unit buckets
/// resolve small constants exactly, the log-linear region keeps
/// relative bucket width ≤ 50% (two buckets per octave), and the
/// overflow bucket plus the exactly-tracked [`Hist::max`] bound the
/// tail. `merge(a, b)` produces bucket-for-bucket the same histogram
/// as recording the concatenated samples, so quantiles of a merged
/// histogram equal quantiles of the concatenation exactly (the
/// property test in this module asserts both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            return value as usize;
        }
        let e = 63 - value.leading_zeros() as usize; // value in [2^e, 2^{e+1})
        let sub = ((value >> (e - 1)) & 1) as usize; // which half-octave
        (LINEAR_CUTOFF as usize + (e - 4) * 2 + sub).min(HIST_BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `idx`.
    pub fn bucket_lo(idx: usize) -> u64 {
        if idx < LINEAR_CUTOFF as usize {
            return idx as u64;
        }
        let k = (idx - LINEAR_CUTOFF as usize) / 2;
        let sub = ((idx - LINEAR_CUTOFF as usize) % 2) as u64;
        (2 + sub) << (k + 3)
    }

    /// Exclusive upper bound of bucket `idx` (`u64::MAX` for the
    /// overflow bucket).
    pub fn bucket_hi(idx: usize) -> u64 {
        if idx + 1 >= HIST_BUCKETS {
            u64::MAX
        } else {
            Self::bucket_lo(idx + 1)
        }
    }

    /// Records one sample. O(1), allocation-free.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds every bucket of `other` into `self` — identical to having
    /// recorded the concatenation of both sample streams.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded, exactly (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples that were exactly zero (bucket 0 is a unit bucket) —
    /// e.g. the dead-on-arrival count of a reuse-count histogram.
    pub fn zero_count(&self) -> u64 {
        self.buckets[0]
    }

    /// The quantile `q` in `[0, 1]`: the inclusive lower bound of the
    /// bucket holding the sample of rank `ceil(q·count)` (clamped to a
    /// valid rank). The true order statistic lies in
    /// `[quantile(q), min(bucket_hi, max))` — exact for unit buckets,
    /// within one bucket's width otherwise. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(idx) = self.quantile_bucket(q) else { return 0 };
        Self::bucket_lo(idx)
    }

    /// The `[lo, hi]` bounds enclosing the quantile-`q` order statistic
    /// (`hi` is clamped to the exact maximum). `None` when empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let idx = self.quantile_bucket(q)?;
        Some((Self::bucket_lo(idx), Self::bucket_hi(idx).min(self.max)))
    }

    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(i);
            }
        }
        Some(HIST_BUCKETS - 1)
    }

    /// Median (see [`Hist::quantile`] for bounds semantics).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Occupied buckets as `(bucket_index, count)` pairs in index
    /// order — the sparse form the JSON export serializes.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Rebuilds a histogram from its serialized parts. Returns `None`
    /// when a bucket index is out of range, a bucket repeats, or
    /// `count` disagrees with the bucket totals (corrupt document).
    pub fn from_parts(
        count: u64,
        sum: u64,
        max: u64,
        buckets: impl IntoIterator<Item = (usize, u64)>,
    ) -> Option<Self> {
        let mut h = Self::new();
        let mut total = 0u64;
        for (idx, c) in buckets {
            if idx >= HIST_BUCKETS || h.buckets[idx] != 0 || c == 0 {
                return None;
            }
            h.buckets[idx] = c;
            total += c;
        }
        if total != count {
            return None;
        }
        h.count = count;
        h.sum = sum;
        h.max = max;
        Some(h)
    }
}

/// One service point's share of translation traffic: how many requests
/// it resolved and how many cycles of translation latency they cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttrSlot {
    /// Requests resolved at this service point.
    pub count: u64,
    /// Total translation-latency cycles charged to it.
    pub cycles: u64,
}

/// Per-component cycle attribution over the six Fig-12 resolution
/// paths ([`TracePath::ALL`] order): every completed translation's
/// latency is charged to the component that served it, so the export
/// can answer "what fraction of translation time went to full walks?"
/// without a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleAttribution {
    /// One slot per [`TracePath`], in [`TracePath::ALL`] order.
    pub slots: [AttrSlot; 6],
}

impl CycleAttribution {
    /// An empty attribution.
    pub const fn new() -> Self {
        Self { slots: [AttrSlot { count: 0, cycles: 0 }; 6] }
    }

    /// Builds an attribution from `(count, latency_sum)` pairs in
    /// [`TracePath::ALL`] order (the simulator's internal path-stats
    /// layout).
    pub fn from_counts(parts: &[(u64, u64); 6]) -> Self {
        let mut a = Self::new();
        for (slot, &(count, cycles)) in a.slots.iter_mut().zip(parts) {
            slot.count = count;
            slot.cycles = cycles;
        }
        a
    }

    /// Charges one completed translation to path `idx`.
    pub fn charge(&mut self, idx: usize, latency: u64) {
        self.slots[idx].count += 1;
        self.slots[idx].cycles = self.slots[idx].cycles.saturating_add(latency);
    }

    /// Adds another attribution slot-wise.
    pub fn merge(&mut self, other: &CycleAttribution) {
        for (s, o) in self.slots.iter_mut().zip(&other.slots) {
            s.count += o.count;
            s.cycles = s.cycles.saturating_add(o.cycles);
        }
    }

    /// Requests across all paths.
    pub fn total_count(&self) -> u64 {
        self.slots.iter().map(|s| s.count).sum()
    }

    /// Latency cycles across all paths.
    pub fn total_cycles(&self) -> u64 {
        self.slots.iter().map(|s| s.cycles).sum()
    }

    /// Fraction of total translation cycles charged to path `idx`
    /// (0.0 when nothing was recorded).
    pub fn cycle_share(&self, idx: usize) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.slots[idx].cycles as f64 / total as f64
        }
    }

    /// The stable label of slot `idx` — [`TracePath::as_str`].
    pub fn label(idx: usize) -> &'static str {
        TracePath::ALL[idx].as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn bucket_bounds_enclose_every_value() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            23,
            24,
            31,
            32,
            100,
            108,
            815,
            4096,
            1 << 20,
            (1 << 27) - 1,
            1 << 27,
            3 << 26,
            1 << 28,
            1 << 40,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = Hist::bucket_index(v);
            assert!(idx < HIST_BUCKETS);
            assert!(Hist::bucket_lo(idx) <= v, "lo({idx}) > {v}");
            assert!(v < Hist::bucket_hi(idx) || Hist::bucket_hi(idx) == u64::MAX, "{v} escapes bucket {idx}");
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_increasing() {
        for idx in 0..HIST_BUCKETS - 1 {
            assert_eq!(Hist::bucket_hi(idx), Hist::bucket_lo(idx + 1));
            assert!(Hist::bucket_lo(idx) < Hist::bucket_lo(idx + 1));
        }
        assert_eq!(Hist::bucket_hi(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(h.bucket_count(v as usize), 1);
        }
        assert_eq!(h.zero_count(), 1);
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile_bounds(0.99), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded_by_max() {
        let mut rng = SplitMix64::new(7);
        let mut h = Hist::new();
        for _ in 0..10_000 {
            h.record(rng.next_below(1 << 20));
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
    }

    /// The satellite property test: merged quantiles equal concatenated
    /// quantiles exactly (merge is bucket-exact), and the histogram
    /// quantile brackets the true order statistic within its bucket.
    #[test]
    fn merge_equals_concatenation_and_brackets_exact_quantiles() {
        let mut rng = SplitMix64::new(0xfeed);
        for round in 0..20 {
            // Mix scales so both the unit and log-linear regions and
            // the overflow bucket are exercised.
            let bound = [50u64, 5_000, 1 << 16, 1 << 30][round % 4];
            let n_a = 1 + rng.next_below(2_000) as usize;
            let n_b = 1 + rng.next_below(2_000) as usize;
            let mut a = Hist::new();
            let mut b = Hist::new();
            let mut all: Vec<u64> = Vec::with_capacity(n_a + n_b);
            for _ in 0..n_a {
                let v = rng.next_below(bound);
                a.record(v);
                all.push(v);
            }
            for _ in 0..n_b {
                let v = rng.next_below(bound);
                b.record(v);
                all.push(v);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            let mut concat = Hist::new();
            for &v in &all {
                concat.record(v);
            }
            assert_eq!(merged, concat, "merge must equal recording the concatenation");
            all.sort_unstable();
            for &q in &[0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
                assert_eq!(merged.quantile(q), concat.quantile(q));
                // The true order statistic at the same rank definition
                // must fall inside the reported bucket.
                let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
                let exact = all[rank - 1];
                let (lo, hi) = merged.quantile_bounds(q).expect("non-empty");
                assert!(
                    lo <= exact && exact <= hi,
                    "q={q}: exact {exact} outside [{lo}, {hi}]"
                );
            }
            assert!(merged.p50() <= merged.p90());
            assert!(merged.p90() <= merged.p99());
            assert!(merged.p99() <= merged.max());
        }
    }

    #[test]
    fn from_parts_round_trips_and_rejects_corruption() {
        let mut h = Hist::new();
        for v in [0u64, 3, 108, 108, 815, 1 << 29] {
            h.record(v);
        }
        let parts: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Hist::from_parts(h.count(), h.sum(), h.max(), parts.clone()).expect("valid");
        assert_eq!(back, h);
        // Count that disagrees with the bucket totals is rejected.
        assert!(Hist::from_parts(h.count() + 1, h.sum(), h.max(), parts.clone()).is_none());
        // Out-of-range bucket index is rejected.
        assert!(Hist::from_parts(1, 0, 0, vec![(HIST_BUCKETS, 1)]).is_none());
        // Duplicate bucket is rejected.
        assert!(Hist::from_parts(2, 0, 0, vec![(4, 1), (4, 1)]).is_none());
    }

    #[test]
    fn attribution_charges_and_merges() {
        let mut a = CycleAttribution::new();
        a.charge(0, 108);
        a.charge(5, 815);
        a.charge(5, 1000);
        assert_eq!(a.slots[0], AttrSlot { count: 1, cycles: 108 });
        assert_eq!(a.slots[5], AttrSlot { count: 2, cycles: 1815 });
        assert_eq!(a.total_count(), 3);
        assert_eq!(a.total_cycles(), 1923);
        assert!((a.cycle_share(5) - 1815.0 / 1923.0).abs() < 1e-12);
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.total_count(), 6);
        let from = CycleAttribution::from_counts(&[(1, 108), (0, 0), (0, 0), (0, 0), (0, 0), (2, 1815)]);
        assert_eq!(from, a);
        assert_eq!(CycleAttribution::label(5), "walk");
    }
}
