//! Integration tests for the observability layer: epoch time-series
//! sampling, machine-readable stats export, and structured event
//! tracing — including the "tracing observes, never alters" contract.

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::export::{
    check_distribution_invariants, check_epoch_invariants, epochs_from_csv, epochs_to_csv,
    run_stats_from_json, run_stats_to_json_string, runs_to_csv, STATS_SCHEMA_VERSION,
};
use gpu_translation_reach::core_arch::stats::RunStats;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::sim::json::Json;
use gpu_translation_reach::sim::trace::{JsonlSink, MemorySink, TraceEvent};
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn traced_run(name: &str, epoch_len: u64) -> RunStats {
    let app = suite::by_name(name, Scale::tiny()).expect("known app");
    System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_epochs(epoch_len)
        .run(&app)
}

#[test]
fn epoch_counters_are_monotone_and_end_at_run_totals() {
    let s = traced_run("GUPS", 50_000);
    assert!(s.epochs.len() >= 2, "expected several epochs, got {}", s.epochs.len());
    assert_eq!(s.epoch_len, 50_000);
    for pair in s.epochs.windows(2) {
        assert!(
            pair[1].monotone_from(&pair[0]),
            "cumulative counters went backwards: {:?} -> {:?}",
            pair[0],
            pair[1]
        );
    }
    let problems = check_epoch_invariants(&s);
    assert!(problems.is_empty(), "epoch invariants violated: {problems:?}");
}

#[test]
fn epoch_delta_sum_equals_final_totals() {
    let s = traced_run("ATAX", 25_000);
    // Summing per-epoch deltas telescopes back to the final cumulative
    // snapshot, which in turn equals the run totals.
    let mut prev = Default::default();
    let mut walks = 0u64;
    let mut reqs = 0u64;
    let mut insts = 0u64;
    for e in &s.epochs {
        let d = e.delta(&prev);
        walks += d.page_walks;
        reqs += d.translation_requests;
        insts += d.instructions;
        prev = *e;
    }
    assert_eq!(walks, s.page_walks);
    assert_eq!(reqs, s.translation_requests);
    assert_eq!(insts, s.instructions);
}

#[test]
fn json_export_round_trips_a_real_run() {
    let s = traced_run("GUPS", 50_000);
    let text = run_stats_to_json_string(&s);
    let parsed = Json::parse(&text).expect("exported JSON parses");
    let back = run_stats_from_json(&parsed).expect("schema-complete document");
    assert_eq!(back, s, "JSON round-trip must be exact");
}

#[test]
fn csv_export_round_trips_the_epoch_series() {
    let s = traced_run("GUPS", 50_000);
    let csv = epochs_to_csv(&s.epochs);
    let back = epochs_from_csv(&csv).expect("exported CSV parses");
    assert_eq!(back, s.epochs, "CSV round-trip must be exact");
    // The flat per-run table keeps one row per run plus the header.
    let flat = runs_to_csv(&[&s]);
    assert_eq!(flat.lines().count(), 2);
}

#[test]
fn tracing_does_not_alter_simulation_results() {
    let app = suite::by_name("MVT", Scale::tiny()).expect("known app");
    let plain = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    let traced = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_trace(Box::new(MemorySink::new()))
        .with_epochs(50_000)
        .run(&app);
    assert_eq!(plain.total_cycles, traced.total_cycles);
    assert_eq!(plain.page_walks, traced.page_walks);
    assert_eq!(plain.dram_accesses, traced.dram_accesses);
    assert_eq!(plain.translation_requests, traced.translation_requests);
}

#[test]
fn jsonl_trace_stream_is_parseable_and_consistent() {
    let dir = std::env::temp_dir().join("gtr_observability_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.jsonl");
    let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    let sink = JsonlSink::create(&path).expect("create trace file");
    let stats = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_trace(Box::new(sink))
        .run(&app);
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let mut translations = 0u64;
    let mut begins = 0u64;
    let mut ends = 0u64;
    for line in text.lines() {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        match j.get("type").and_then(Json::as_str).expect("event has a type") {
            "translation" => {
                translations += 1;
                // Events interleave across wavefronts, so cycles are
                // not globally monotone — but every event must carry
                // a plausible cycle and a known path label.
                let c = j.get("cycle").and_then(Json::as_u64).expect("cycle field");
                assert!(c <= stats.total_cycles, "event cycle beyond the end of the run");
                let path_label = j.get("path").and_then(Json::as_str).expect("path field");
                assert!(
                    ["l1_hit", "merged", "lds_tx", "ic_tx", "l2_tlb", "walk"]
                        .contains(&path_label),
                    "unknown path {path_label:?}"
                );
            }
            "kernel_begin" => begins += 1,
            "kernel_end" => ends += 1,
            "victim_insert" | "victim_bypass" | "lds_mode" | "kernel_flush" | "shootdown" => {}
            other => panic!("unknown event type {other:?}"),
        }
    }
    assert_eq!(translations, stats.translation_requests, "one event per translation request");
    assert_eq!(begins, stats.kernels.len() as u64, "one begin per kernel launch");
    assert_eq!(ends, stats.kernels.len() as u64, "one end per kernel launch");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn memory_sink_sees_victim_traffic_under_thrashing() {
    // A footprint past both TLB levels guarantees L1 evictions, so the
    // victim fill flow must produce insert events.
    let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    // MemorySink can't be recovered from System (Box<dyn TraceSink> has
    // no downcast), so assert through the JSONL path instead.
    let dir = std::env::temp_dir().join("gtr_observability_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("victims.jsonl");
    let sink = JsonlSink::create(&path).expect("create trace file");
    let stats = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_trace(Box::new(sink))
        .run(&app);
    assert!(stats.victim_hits() > 0, "GUPS tiny must hit the victim structures");
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let inserts = text.lines().filter(|l| l.contains("\"victim_insert\"")).count();
    assert!(inserts > 0, "victim fills must be traced");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn distribution_recording_does_not_alter_simulation_results() {
    // The same "observes, never alters" contract tracing honors: a run
    // with distribution recording armed must be cycle-identical to a
    // plain run, and additionally expose histograms consistent with
    // its own scalar counters.
    let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    let plain = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
    let dist = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds())
        .with_distributions()
        .run(&app);
    assert_eq!(plain.total_cycles, dist.total_cycles);
    assert_eq!(plain.page_walks, dist.page_walks);
    assert_eq!(plain.translation_requests, dist.translation_requests);
    assert_eq!(plain.attribution, dist.attribution, "attribution is always-on in both");
    assert!(dist.dist_enabled);
    assert!(!plain.dist_enabled);
    assert!(plain.latency_hists.iter().all(|h| h.is_empty()), "disabled run records nothing");
    assert!(!dist.latency_hists[5].is_empty(), "GUPS tiny walks must populate the walk hist");
}

#[test]
fn real_run_satisfies_distribution_invariants() {
    let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    for armed in [false, true] {
        let mut sys = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds());
        if armed {
            sys = sys.with_distributions();
        }
        let s = sys.run(&app);
        let problems = check_distribution_invariants(&s, STATS_SCHEMA_VERSION);
        assert!(problems.is_empty(), "armed={armed}: {problems:?}");
        // Attribution is typed repackaging of the always-on path
        // counters, so it re-adds to the totals either way.
        assert_eq!(s.attribution.total_count(), s.translation_requests);
        assert_eq!(s.attribution.slots[0].count, s.l1_tlb.hits);
    }
}

#[test]
fn null_trace_event_construction_is_skipped() {
    // TraceEvent construction for a kernel event allocates (name
    // String); the enabled() gate means a default System never pays
    // it. This can't be observed from outside directly, so assert the
    // contract the gate relies on: a NullSink reports disabled.
    use gpu_translation_reach::sim::trace::{NullSink, TraceSink};
    assert!(!NullSink.enabled());
    let _ = TraceEvent::KernelBegin { cycle: 0, index: 0, name: String::new() };
}
