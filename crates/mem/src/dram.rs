//! DDR3-1600 DRAM timing model.
//!
//! Table 1: DDR3-1600 (800 MHz bus), 2 channels, 2 ranks per channel,
//! 16 banks per rank, with the GPU core at 2 GHz. The model tracks
//! per-bank row-buffer state and ready times, a per-channel data bus,
//! and open-page row-buffer policy; latencies are expressed in GPU
//! cycles (1 DRAM cycle = 2.5 GPU cycles).

use gtr_sim::resource::Timeline;
use gtr_sim::Cycle;

use crate::energy::EnergyCounters;

/// DRAM organization and timing (all latencies in GPU cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Lines (64 B) per row buffer — DDR3 2 KB rows hold 32 lines.
    pub lines_per_row: u64,
    /// Activate (tRCD) latency.
    pub t_rcd: Cycle,
    /// Precharge (tRP) latency.
    pub t_rp: Cycle,
    /// Column access (CAS) latency.
    pub t_cas: Cycle,
    /// Data-burst occupancy of the channel bus per 64-byte line.
    pub t_burst: Cycle,
    /// Fixed controller/queueing overhead per request.
    pub t_controller: Cycle,
}

impl Default for DramConfig {
    /// DDR3-1600 per Table 1, converted at 2.5 GPU cycles per DRAM
    /// cycle (11-11-11 timing).
    fn default() -> Self {
        Self {
            channels: 2,
            ranks: 2,
            banks: 16,
            lines_per_row: 32,
            t_rcd: 28,
            t_rp: 28,
            t_cas: 28,
            t_burst: 10,
            t_controller: 20,
        }
    }
}

impl DramConfig {
    /// Total banks across the device.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }
}

#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
    timeline: Timeline,
}

/// Classification of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Row buffer hit: CAS only.
    Hit,
    /// Bank had no open row: ACT + CAS.
    Empty,
    /// Conflict: PRE + ACT + CAS.
    Conflict,
}

/// The DRAM device: banks, buses, counters.
///
/// # Example
///
/// ```
/// use gtr_mem::dram::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.read(0, 0);   // row empty: ACT + CAS
/// let again = d.read(first, 1); // same row: CAS only
/// assert!(again - first < first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    bus: Vec<Timeline>,
    energy: EnergyCounters,
    reads: u64,
    writes: u64,
    row_hits: u64,
    row_conflicts: u64,
    last_cycle: Cycle,
}

impl Dram {
    /// Creates an idle DRAM device.
    pub fn new(config: DramConfig) -> Self {
        Self {
            banks: vec![Bank::default(); config.total_banks()],
            bus: vec![Timeline::new(); config.channels],
            config,
            energy: EnergyCounters::default(),
            reads: 0,
            writes: 0,
            row_hits: 0,
            row_conflicts: 0,
            last_cycle: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Maps a line index to `(channel, global bank index, row)`.
    ///
    /// Channels interleave on the lowest line bit; whole row-buffers
    /// (32 lines) then interleave across banks with the row bits XORed
    /// into the bank index (permutation-based page interleaving, Zhang
    /// et al. MICRO'00). The XOR prevents structures with
    /// power-of-two-aligned hot lines — page-table nodes above all —
    /// from aliasing onto a single bank and serializing the machine.
    pub fn map(&self, line: u64) -> (usize, usize, u64) {
        let ch = (line % self.config.channels as u64) as usize;
        let after_ch = line / self.config.channels as u64;
        let banks_per_ch = (self.config.ranks * self.config.banks) as u64;
        let chunk = after_ch / self.config.lines_per_row;
        let row = chunk / banks_per_ch;
        let bank_in_ch = ((chunk ^ row) % banks_per_ch) as usize;
        (ch, ch * banks_per_ch as usize + bank_in_ch, row)
    }

    fn access(&mut self, now: Cycle, line: u64, is_write: bool) -> (Cycle, RowOutcome) {
        let (ch, bank_idx, row) = self.map(line);
        let cfg = self.config;
        let bank = &mut self.banks[bank_idx];
        // Note: with gap-filling reservation the row-buffer outcome is
        // classified by request-processing order, a deliberate
        // approximation that keeps out-of-order arrivals from blocking
        // earlier traffic (see `gtr_sim::resource::Timeline`).
        let (array_cycles, outcome) = match bank.open_row {
            Some(open) if open == row => (cfg.t_cas, RowOutcome::Hit),
            Some(_) => (cfg.t_rp + cfg.t_rcd + cfg.t_cas, RowOutcome::Conflict),
            None => (cfg.t_rcd + cfg.t_cas, RowOutcome::Empty),
        };
        bank.open_row = Some(row);
        let start = bank.timeline.reserve(now + cfg.t_controller, array_cycles);
        let array_done = start + array_cycles;
        // Data burst on the channel bus.
        let bus_start = self.bus[ch].reserve(array_done, cfg.t_burst);
        let done = bus_start + cfg.t_burst;
        // Bookkeeping.
        match outcome {
            RowOutcome::Hit => self.row_hits += 1,
            RowOutcome::Conflict => {
                self.row_conflicts += 1;
                self.energy.precharges += 1;
                self.energy.activates += 1;
            }
            RowOutcome::Empty => self.energy.activates += 1,
        }
        if is_write {
            self.writes += 1;
            self.energy.writes += 1;
        } else {
            self.reads += 1;
            self.energy.reads += 1;
        }
        self.last_cycle = self.last_cycle.max(done);
        (done, outcome)
    }

    /// Reads the line containing `addr` (byte address); returns the
    /// completion cycle.
    pub fn read(&mut self, now: Cycle, addr: u64) -> Cycle {
        self.access(now, addr / 64, false).0
    }

    /// Writes the line containing `addr`; returns the completion cycle.
    pub fn write(&mut self, now: Cycle, addr: u64) -> Cycle {
        self.access(now, addr / 64, true).0
    }

    /// Reads a line by line index, also reporting the row outcome.
    pub fn read_line(&mut self, now: Cycle, line: u64) -> (Cycle, RowOutcome) {
        self.access(now, line, false)
    }

    /// Writes a line by line index, also reporting the row outcome.
    pub fn write_line(&mut self, now: Cycle, line: u64) -> (Cycle, RowOutcome) {
        self.access(now, line, true)
    }

    /// Total reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Row-buffer hit count.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer conflict count.
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Energy-relevant event counters.
    pub fn energy_counters(&self) -> &EnergyCounters {
        &self.energy
    }

    /// Latest completion cycle observed (for background energy).
    pub fn last_cycle(&self) -> Cycle {
        self.last_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_faster_than_conflict() {
        let mut d = Dram::new(DramConfig::default());
        let (t1, o1) = d.read_line(0, 0);
        assert_eq!(o1, RowOutcome::Empty);
        let (t2, o2) = d.read_line(t1, 0); // same line, same row
        assert_eq!(o2, RowOutcome::Hit);
        // conflict: same bank, different row (search via the mapping)
        let (_, bank0, row0) = d.map(0);
        let far = (1..1_000_000u64)
            .find(|&l| {
                let (_, b, r) = d.map(l);
                b == bank0 && r != row0
            })
            .expect("a conflicting line exists");
        let (_, o3) = d.read_line(t2, far);
        assert_eq!(o3, RowOutcome::Conflict);
        let hit_cost = t2 - t1;
        let cfg = *d.config();
        assert_eq!(hit_cost, cfg.t_controller + cfg.t_cas + cfg.t_burst);
    }

    #[test]
    fn banks_operate_in_parallel() {
        let mut d = Dram::new(DramConfig::default());
        // Two accesses to different channels at cycle 0 complete at the
        // same time.
        let (ta, _) = d.read_line(0, 0);
        let (tb, _) = d.read_line(0, 1);
        assert_eq!(ta, tb);
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = Dram::new(DramConfig::default());
        let (ta, _) = d.read_line(0, 0);
        // Same channel+bank, different row => waits for bank ready.
        let (_, bank0, row0) = d.map(0);
        let far = (1..1_000_000u64)
            .find(|&l| {
                let (_, b, r) = d.map(l);
                b == bank0 && r != row0
            })
            .expect("a conflicting line exists");
        let (tb, o) = d.read_line(0, far);
        assert_eq!(o, RowOutcome::Conflict);
        assert!(tb > ta);
    }

    #[test]
    fn mapping_is_stable_and_in_range() {
        let d = Dram::new(DramConfig::default());
        for line in 0..10_000u64 {
            let (ch, bank, _row) = d.map(line);
            assert!(ch < d.config().channels);
            assert!(bank < d.config().total_banks());
            assert_eq!(d.map(line), d.map(line));
        }
    }

    #[test]
    fn energy_counters_track_events() {
        let mut d = Dram::new(DramConfig::default());
        d.read(0, 0);
        d.write(0, 64);
        let e = d.energy_counters();
        assert_eq!(e.reads, 1);
        assert_eq!(e.writes, 1);
        assert!(e.activates >= 1);
    }

    #[test]
    fn streaming_gets_row_hits() {
        let mut d = Dram::new(DramConfig::default());
        let mut t = 0;
        for line in 0..256 {
            t = d.read_line(t, line).0;
        }
        assert!(d.row_hit_rate() > 0.5, "streaming should hit rows: {}", d.row_hit_rate());
    }
}
