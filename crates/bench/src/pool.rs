//! A std-only work-stealing worker pool over indexed work items.
//!
//! The experiment harness sweeps an (application × variant) matrix of
//! independent, deterministic simulations. The seed scheduler spawned
//! one thread per application, each running every variant
//! sequentially — so the slowest application serialized the whole
//! tail of the sweep. Here instead every cell is an independent work
//! item in a single shared queue; idle workers steal the next
//! unclaimed index, so the tail of the sweep is bounded by one cell,
//! not one application's whole row.
//!
//! Determinism: workers only decide *which thread* runs a cell, never
//! what the cell computes — each item is a pure function of its index,
//! and the per-worker result buffers are combined through
//! [`gtr_sim::shard::merge_ordered`], whose `(cycle, shard, seq)` key
//! is stamped with the item index. The merged order is therefore a
//! pure function of the work items, bit-identical for any worker count
//! or steal interleaving (asserted by the harness's determinism test
//! and the shard module's permutation property test).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use gtr_sim::prof;
use gtr_sim::shard::{merge_ordered, ShardEntry};

/// Number of workers to use by default: the machine's available
/// parallelism (1 when it cannot be queried).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Computes `f(0..n)` on `workers` threads via a shared steal queue
/// and returns the results in index order.
///
/// `f` must be pure per index (it may run on any worker). With
/// `workers <= 1` (or `n <= 1`) everything runs inline on the calling
/// thread — no spawn overhead, same results. Each worker accumulates
/// its results in a private shard buffer stamped with the item index;
/// the deterministic shard merge restores index order regardless of
/// which worker computed what.
pub fn run_indexed<T: Send>(
    n: usize,
    workers: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let buffers: Mutex<Vec<Vec<ShardEntry<T>>>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for worker in 0..workers as u32 {
            let buffers = &buffers;
            let next = &next;
            let f = &f;
            s.spawn(move || {
                // Lanes are keyed by name, so worker slot N keeps one
                // profiler timeline even though the scoped threads are
                // respawned for every sweep. Work items run under this
                // binding: any spans the item opens (the harness's
                // per-cell spans) land on this worker's lane.
                if prof::is_enabled() {
                    prof::set_lane(&format!("worker-{worker}"));
                }
                let mut mine: Vec<ShardEntry<T>> = Vec::new();
                let mut prev: Option<usize> = None;
                loop {
                    // Steal the next unclaimed cell.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if prof::is_enabled() {
                        // A non-contiguous claim means another worker
                        // took the item in between — a steal in the
                        // shared-queue sense.
                        if prev.is_some_and(|p| i != p + 1) {
                            prof::add("pool.steals", 1);
                        }
                        prof::counter("pool.queue_depth", n.saturating_sub(i + 1) as u64);
                    }
                    prev = Some(i);
                    // The merge key is the item index (as the cycle
                    // stamp): indices are unique across workers, so
                    // the merged order is exactly index order.
                    mine.push(ShardEntry {
                        cycle: i as u64,
                        shard: worker,
                        seq: mine.len() as u64,
                        payload: f(i),
                    });
                }
                buffers.lock().expect("worker panicked holding results").push(mine);
            });
        }
    });
    let buffers = buffers.into_inner().expect("worker panicked holding results");
    let _merge_span = prof::span("pool:merge");
    let merged = merge_ordered(buffers);
    assert_eq!(merged.len(), n, "every cell claimed exactly once");
    merged.into_iter().map(|e| e.payload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        run_indexed(100, 8, |i| {
            assert!(seen.lock().unwrap().insert(i), "item {i} ran twice");
        });
        assert_eq!(seen.lock().unwrap().len(), 100);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 41), vec![41]);
    }

    #[test]
    fn uneven_items_keep_workers_busy() {
        // A slow first item must not serialize the rest behind it.
        let max_concurrent = AtomicU64::new(0);
        let live = AtomicU64::new(0);
        run_indexed(16, 4, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            max_concurrent.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(if i == 0 { 30 } else { 2 }));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        // On a single-core machine the OS still timeslices the pool,
        // so >1 worker must have been in flight at some point.
        assert!(max_concurrent.load(Ordering::SeqCst) >= 2);
    }
}
