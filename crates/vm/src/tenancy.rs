//! The multi-tenancy model: how victim structures share capacity
//! between concurrent address spaces.
//!
//! One GPU serving several untrusted clients gives every tenant its
//! own VM-ID ([`crate::addr::VmId`]) and page table; the question this
//! module answers is what happens when their translations compete for
//! the same L1/L2 TLBs and reconfigurable LDS/I-cache victim
//! structures. Three policies are modeled (TENANCY.md §3):
//!
//! * [`SharingPolicy::Partitioned`] — victim capacity is statically
//!   divided: each tenant owns `capacity / tenants` of every structure
//!   (per-set quotas in the TLBs, a segment/line stripe in the
//!   reconfigurable structures) and can never evict another tenant's
//!   entries. The MIG-style hard-isolation baseline of arXiv
//!   2404.18361 §2.
//! * [`SharingPolicy::Shared`] — free-for-all capacity with VM-ID
//!   checked hits: every entry carries its tenant's VM-ID in the tag
//!   (Fig 7a) and a hit requires a full-key match. This is exactly the
//!   behavior of the untenanted structures — a 1-tenant `Shared`
//!   configuration is bit-identical to tenancy-off.
//! * [`SharingPolicy::SubEntry`] — sub-entry sharing after arXiv
//!   2404.18361 §4: entries are tagged by a canonical key (VM-ID
//!   zeroed, see [`canonical`]) plus a per-tenant valid mask; tenants
//!   whose VPN maps to the *same* PPN share one physical entry, each
//!   owning one mask bit. A hit requires both the canonical tag match
//!   and the requester's mask bit; a shootdown clears only the
//!   shooting tenant's bit and the entry dies when its mask empties.
//!
//! Determinism: all three policies are pure functions of the structure
//! state and the request stream — no randomness, no wall-clock — so
//! multi-tenant matrix cells stay bit-identical for any `--threads N`
//! (ARCHITECTURE §8).

use std::fmt;

use crate::addr::{TranslationKey, VmId};

/// Maximum concurrent tenants: one per 3-bit VM-ID.
pub const MAX_TENANTS: usize = 8;

/// How victim-structure capacity is shared between tenants
/// (TENANCY.md §3; see the module docs for the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingPolicy {
    /// Static partitioning: per-tenant capacity quotas, no cross-tenant
    /// eviction (arXiv 2404.18361 §2's MIG baseline).
    Partitioned,
    /// Free sharing with VM-ID-checked hits (the untenanted tag check,
    /// Fig 7a).
    #[default]
    Shared,
    /// Sub-entry sharing: PPN-matching tenants share one entry under a
    /// per-tenant valid mask (arXiv 2404.18361 §4).
    SubEntry,
}

impl SharingPolicy {
    /// All policies, in the order figures sweep them.
    pub fn all() -> [SharingPolicy; 3] {
        [SharingPolicy::Partitioned, SharingPolicy::Shared, SharingPolicy::SubEntry]
    }

    /// Parses a CLI spelling (`partitioned` | `shared` | `subentry`).
    pub fn parse(s: &str) -> Option<SharingPolicy> {
        match s {
            "partitioned" => Some(SharingPolicy::Partitioned),
            "shared" => Some(SharingPolicy::Shared),
            "subentry" | "sub-entry" => Some(SharingPolicy::SubEntry),
            _ => None,
        }
    }
}

impl fmt::Display for SharingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingPolicy::Partitioned => write!(f, "partitioned"),
            SharingPolicy::Shared => write!(f, "shared"),
            SharingPolicy::SubEntry => write!(f, "subentry"),
        }
    }
}

/// One tenancy configuration: how many concurrent tenants share the
/// GPU and under which [`SharingPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenancyConfig {
    /// Concurrent tenants (1..=[`MAX_TENANTS`]); tenant *i* runs in
    /// address space [`VmId::new`]`(i)`.
    pub tenants: u8,
    /// Capacity-sharing policy of every tagged structure.
    pub policy: SharingPolicy,
}

impl TenancyConfig {
    /// Creates a tenancy configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= tenants <= MAX_TENANTS`.
    pub fn new(tenants: u8, policy: SharingPolicy) -> Self {
        assert!(
            (1..=MAX_TENANTS as u8).contains(&tenants),
            "tenants must be 1..={MAX_TENANTS}, got {tenants}"
        );
        Self { tenants, policy }
    }

    /// The per-tenant valid-mask bit of a VM-ID (sub-entry sharing).
    pub fn mask_bit(vmid: VmId) -> u8 {
        1u8 << vmid.raw()
    }

    /// Whether this configuration tags entries with a canonical key
    /// plus per-tenant mask instead of a full per-tenant key.
    pub fn sub_entry(&self) -> bool {
        self.policy == SharingPolicy::SubEntry
    }

    /// Whether this configuration statically partitions capacity.
    /// A single tenant owns everything, so partitioning degenerates to
    /// free sharing and is treated as such.
    pub fn partitioned(&self) -> bool {
        self.policy == SharingPolicy::Partitioned && self.tenants > 1
    }
}

/// The canonical (VM-ID-zeroed) form of a key: the shared tag under
/// [`SharingPolicy::SubEntry`]. Tenants that map the same VPN to the
/// same PPN collapse onto one canonical entry; the VRF-ID stays in the
/// tag because SR-IOV functions never share mappings.
pub fn canonical(key: TranslationKey) -> TranslationKey {
    TranslationKey { vpn: key.vpn, vmid: VmId::new(0), vrf: key.vrf }
}

/// Reconstructs the representative owner of a sub-entry victim: when a
/// shared entry with valid mask `mask` is evicted, it is forwarded
/// down the victim chain (L1 TLB → LDS → I-cache → L2 TLB, Fig 12) on
/// behalf of its lowest-numbered sharer; the other sharers re-merge on
/// their next miss. Forwarding one copy per sharer would multiply
/// victim traffic by the sharing degree — the opposite of what
/// sub-entry sharing buys (TENANCY.md §3.3).
pub fn representative(key: TranslationKey, mask: u8) -> TranslationKey {
    let vm = if mask == 0 { 0 } else { mask.trailing_zeros() as u8 };
    TranslationKey { vpn: key.vpn, vmid: VmId::new(vm), vrf: key.vrf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Vpn, VrfId};

    #[test]
    fn policy_parse_round_trips() {
        for p in SharingPolicy::all() {
            assert_eq!(SharingPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(SharingPolicy::parse("sub-entry"), Some(SharingPolicy::SubEntry));
        assert_eq!(SharingPolicy::parse("nope"), None);
    }

    #[test]
    fn config_validates_tenant_range() {
        let t = TenancyConfig::new(4, SharingPolicy::SubEntry);
        assert!(t.sub_entry());
        assert!(!t.partitioned());
        assert!(TenancyConfig::new(2, SharingPolicy::Partitioned).partitioned());
        assert!(
            !TenancyConfig::new(1, SharingPolicy::Partitioned).partitioned(),
            "a single tenant owns all capacity"
        );
    }

    #[test]
    #[should_panic(expected = "tenants must be")]
    fn config_rejects_zero_tenants() {
        let _ = TenancyConfig::new(0, SharingPolicy::Shared);
    }

    #[test]
    #[should_panic(expected = "tenants must be")]
    fn config_rejects_too_many_tenants() {
        let _ = TenancyConfig::new(9, SharingPolicy::Shared);
    }

    #[test]
    fn canonical_zeroes_vmid_only() {
        let key = TranslationKey { vpn: Vpn(9), vmid: VmId::new(5), vrf: VrfId::new(1) };
        let c = canonical(key);
        assert_eq!(c.vpn, key.vpn);
        assert_eq!(c.vmid.raw(), 0);
        assert_eq!(c.vrf, key.vrf, "VRF stays in the tag");
    }

    #[test]
    fn representative_is_lowest_sharer() {
        let key = canonical(TranslationKey::for_vpn(Vpn(3)));
        assert_eq!(representative(key, 0b0110).vmid.raw(), 1);
        assert_eq!(representative(key, 0b1000_0000).vmid.raw(), 7);
        assert_eq!(representative(key, 0).vmid.raw(), 0, "empty mask defaults to 0");
    }

    #[test]
    fn mask_bits_cover_all_tenants() {
        let seen: u8 = (0..MAX_TENANTS as u8)
            .map(|i| TenancyConfig::mask_bit(VmId::new(i)))
            .fold(0, |a, b| a | b);
        assert_eq!(seen, 0xFF);
    }
}
