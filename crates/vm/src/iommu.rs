//! IOMMU model: device-level L1/L2 TLBs, split page-walk caches, and a
//! pool of concurrent page-table walkers (Table 1: 32 walkers, 32/256
//! device TLB entries, 4/8/32 PWC entries).
//!
//! The IOMMU additionally merges concurrent walks to the same VPN —
//! the burst behaviour of SIMT execution means one divergent wavefront
//! can issue tens of misses to the same page within a few cycles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gtr_sim::fastmap::FastMap;
use gtr_sim::resource::Server;
use gtr_sim::stats::{HitMiss, Log2Histogram};
use gtr_sim::Cycle;

use crate::addr::{Translation, TranslationKey};
use crate::page_table::PageTable;
use crate::pwc::{PageWalkCaches, PwcConfig};
use crate::tlb::{Tlb, TlbConfig};
use crate::walk::{walk, PteAccess};

/// IOMMU configuration (defaults mirror Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IommuConfig {
    /// Concurrent page-table walkers.
    pub walkers: usize,
    /// Device-side L1 TLB entries (fully associative).
    pub l1_entries: usize,
    /// Device-side L2 TLB entries (fully associative).
    pub l2_entries: usize,
    /// Device L1 TLB latency.
    pub l1_latency: Cycle,
    /// Device L2 TLB latency.
    pub l2_latency: Cycle,
    /// Split page-walk-cache configuration.
    pub pwc: PwcConfig,
}

impl Default for IommuConfig {
    fn default() -> Self {
        Self {
            walkers: 32,
            l1_entries: 32,
            l2_entries: 256,
            l1_latency: 4,
            l2_latency: 10,
            pwc: PwcConfig::default(),
        }
    }
}

/// How a translation request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IommuHitLevel {
    /// Device L1 TLB hit.
    DeviceL1,
    /// Device L2 TLB hit.
    DeviceL2,
    /// Merged into an in-flight walk for the same VPN.
    MergedWalk,
    /// Required a page-table walk.
    Walk,
}

impl IommuHitLevel {
    /// All levels, indexable by [`IommuHitLevel::index`] — the layout
    /// the observability layer uses to tag per-level walk-latency
    /// histograms.
    pub const ALL: [IommuHitLevel; 4] = [
        IommuHitLevel::DeviceL1,
        IommuHitLevel::DeviceL2,
        IommuHitLevel::MergedWalk,
        IommuHitLevel::Walk,
    ];

    /// Stable lowercase label used in the stats export.
    pub fn as_str(self) -> &'static str {
        match self {
            IommuHitLevel::DeviceL1 => "dev_l1",
            IommuHitLevel::DeviceL2 => "dev_l2",
            IommuHitLevel::MergedWalk => "merged_walk",
            IommuHitLevel::Walk => "walk",
        }
    }

    /// Position of this level in [`IommuHitLevel::ALL`].
    pub fn index(self) -> usize {
        match self {
            IommuHitLevel::DeviceL1 => 0,
            IommuHitLevel::DeviceL2 => 1,
            IommuHitLevel::MergedWalk => 2,
            IommuHitLevel::Walk => 3,
        }
    }
}

/// Outcome of an IOMMU translation request.
#[derive(Debug, Clone, Copy)]
pub struct IommuOutcome {
    /// The translation, `None` on fault.
    pub translation: Option<Translation>,
    /// Completion cycle.
    pub done: Cycle,
    /// How the request was satisfied.
    pub level: IommuHitLevel,
    /// PTE memory accesses charged (walks only).
    pub memory_accesses: usize,
}

/// Aggregate IOMMU statistics.
#[derive(Debug, Clone, Default)]
pub struct IommuStats {
    /// Device L1 TLB hits/misses.
    pub dev_l1: HitMiss,
    /// Device L2 TLB hits/misses.
    pub dev_l2: HitMiss,
    /// Completed page walks.
    pub walks: u64,
    /// Requests merged into in-flight walks.
    pub merged: u64,
    /// Total PTE memory accesses.
    pub pte_accesses: u64,
    /// Walk latency distribution.
    pub walk_latency: Log2Histogram,
}

/// The IOMMU: device TLBs + PWCs + walker pool.
#[derive(Debug)]
pub struct Iommu {
    config: IommuConfig,
    dev_l1: Tlb,
    dev_l2: Tlb,
    pwc: PageWalkCaches,
    walkers: Server,
    pending: FastMap<TranslationKey, (Cycle, Option<Translation>)>,
    /// Completion times of `pending` entries, oldest first, so the
    /// periodic purge pops expired walks in O(log n) instead of
    /// scanning the whole map on every insert. Entries are lazily
    /// dropped when they no longer match the map (removed or merged).
    expiry: BinaryHeap<Reverse<(Cycle, TranslationKey)>>,
    stats: IommuStats,
}

impl Iommu {
    /// Creates an IOMMU from a configuration.
    pub fn new(config: IommuConfig) -> Self {
        Self {
            config,
            dev_l1: Tlb::new(TlbConfig::fully_associative(config.l1_entries, config.l1_latency)),
            dev_l2: Tlb::new(TlbConfig::fully_associative(config.l2_entries, config.l2_latency)),
            pwc: PageWalkCaches::new(config.pwc),
            walkers: Server::new(config.walkers),
            pending: FastMap::with_capacity(8 * config.walkers),
            expiry: BinaryHeap::with_capacity(8 * config.walkers),
            stats: IommuStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &IommuConfig {
        &self.config
    }

    /// Translates `key`, starting at `now`, walking `table` on device
    /// TLB misses with PTE reads timed by `mem`.
    pub fn translate(
        &mut self,
        now: Cycle,
        key: TranslationKey,
        table: &PageTable,
        mem: &mut impl PteAccess,
    ) -> IommuOutcome {
        // A device-TLB hit on an entry whose walk is still in flight
        // must wait for that walk to finish (fills happen at issue time
        // for determinism; the pending map restores correct timing).
        let in_flight = |pending: &FastMap<TranslationKey, (Cycle, Option<Translation>)>,
                         done: Cycle| {
            pending.get(key).map_or(done, |&(walk_done, _)| done.max(walk_done))
        };

        // Device L1 TLB.
        let t_l1 = now + self.config.l1_latency;
        if let Some(tx) = self.dev_l1.lookup(key) {
            self.stats.dev_l1.hit();
            return IommuOutcome {
                translation: Some(tx),
                done: in_flight(&self.pending, t_l1),
                level: IommuHitLevel::DeviceL1,
                memory_accesses: 0,
            };
        }
        self.stats.dev_l1.miss();

        // Device L2 TLB.
        let t_l2 = t_l1 + self.config.l2_latency;
        if let Some(tx) = self.dev_l2.lookup(key) {
            self.stats.dev_l2.hit();
            self.dev_l1.insert(tx);
            return IommuOutcome {
                translation: Some(tx),
                done: in_flight(&self.pending, t_l2),
                level: IommuHitLevel::DeviceL2,
                memory_accesses: 0,
            };
        }
        self.stats.dev_l2.miss();

        // Merge with an in-flight walk to the same page.
        if let Some(&(done, tx)) = self.pending.get(key) {
            if done > t_l2 {
                self.stats.merged += 1;
                return IommuOutcome {
                    translation: tx,
                    done,
                    level: IommuHitLevel::MergedWalk,
                    memory_accesses: 0,
                };
            }
            self.pending.remove(key);
        }

        // Full walk on an available walker.
        let start = self.walkers.acquire(t_l2, 0);
        let result = walk(start, key, table, &mut self.pwc, mem);
        // Re-reserve the walker for the actual walk duration (service
        // time was unknown before the walk was simulated).
        let _ = self.walkers.acquire(start, result.done.saturating_sub(start));
        self.stats.walks += 1;
        self.stats.pte_accesses += result.memory_accesses as u64;
        self.stats.walk_latency.record(result.done.saturating_sub(t_l2));
        if let Some(tx) = result.translation {
            self.dev_l1.insert(tx);
            self.dev_l2.insert(tx);
        }
        self.pending.insert(key, (result.done, result.translation));
        self.expiry.push(Reverse((result.done, key)));
        if self.pending.len() > 4 * self.config.walkers {
            // Equivalent to `retain(|_, (done, _)| *done > now)`: every
            // resident entry's exact (done, key) pair is in `expiry`,
            // so popping everything at or before `now` removes exactly
            // the expired entries. A popped pair whose `done` no longer
            // matches the map is stale (merged/invalidated since) and
            // is skipped.
            let horizon = now;
            while let Some(&Reverse((done, k))) = self.expiry.peek() {
                if done > horizon {
                    break;
                }
                self.expiry.pop();
                if self.pending.get(k).is_some_and(|&(d, _)| d == done) {
                    self.pending.remove(k);
                }
            }
        }
        IommuOutcome {
            translation: result.translation,
            done: result.done,
            level: IommuHitLevel::Walk,
            memory_accesses: result.memory_accesses,
        }
    }

    /// Translates `key` functionally, at zero modeled latency: the
    /// device TLBs and walk caches are probed and filled exactly as in
    /// [`Self::translate`] (hit/miss counters included), but no walker
    /// occupancy, request merging, or PTE memory timing is modeled.
    /// Fast-forward intervals of sampled simulation use this to keep
    /// IOMMU state warm at functional cost.
    pub fn translate_functional(&mut self, key: TranslationKey, table: &PageTable) -> IommuOutcome {
        if let Some(tx) = self.dev_l1.lookup(key) {
            self.stats.dev_l1.hit();
            return IommuOutcome {
                translation: Some(tx),
                done: 0,
                level: IommuHitLevel::DeviceL1,
                memory_accesses: 0,
            };
        }
        self.stats.dev_l1.miss();
        if let Some(tx) = self.dev_l2.lookup(key) {
            self.stats.dev_l2.hit();
            self.dev_l1.insert(tx);
            return IommuOutcome {
                translation: Some(tx),
                done: 0,
                level: IommuHitLevel::DeviceL2,
                memory_accesses: 0,
            };
        }
        self.stats.dev_l2.miss();
        let mut pte = crate::walk::FixedLatencyPte::new(0);
        let result = walk(0, key, table, &mut self.pwc, &mut pte);
        self.stats.walks += 1;
        self.stats.pte_accesses += result.memory_accesses as u64;
        self.stats.walk_latency.record(0);
        if let Some(tx) = result.translation {
            self.dev_l1.insert(tx);
            self.dev_l2.insert(tx);
        }
        IommuOutcome {
            translation: result.translation,
            done: 0,
            level: IommuHitLevel::Walk,
            memory_accesses: result.memory_accesses,
        }
    }

    /// Zeroes every statistic counter while keeping all cached
    /// translation state (device TLBs, walk caches). Checkpoint restore
    /// uses this to re-baseline measurement on warm state.
    pub fn reset_stats(&mut self) {
        self.stats = IommuStats::default();
        self.dev_l1.reset_stats();
        self.dev_l2.reset_stats();
        self.pwc.reset_stats();
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &IommuStats {
        &self.stats
    }

    /// Page-walk-cache hit/miss counters `(pgd, pud, pmd)`.
    pub fn pwc_stats(&self) -> (HitMiss, HitMiss, HitMiss) {
        self.pwc.stats()
    }

    /// Invalidates one key everywhere in the IOMMU (shootdown).
    pub fn invalidate(&mut self, key: TranslationKey) {
        self.dev_l1.invalidate(key);
        self.dev_l2.invalidate(key);
        self.pending.remove(key);
    }

    /// Flushes all device TLBs and walk caches.
    pub fn flush(&mut self) {
        self.dev_l1.flush();
        self.dev_l2.flush();
        self.pwc.flush();
        self.pending.clear();
        self.expiry.clear();
    }

    /// Completed page walks.
    pub fn walks(&self) -> u64 {
        self.stats.walks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PageSize, VirtAddr};
    use crate::walk::FixedLatencyPte;

    fn setup() -> (PageTable, Iommu, FixedLatencyPte) {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.map_range(VirtAddr::new(0), 4096);
        (pt, Iommu::new(IommuConfig::default()), FixedLatencyPte::new(100))
    }

    #[test]
    fn first_access_walks_then_hits_device_tlb() {
        let (pt, mut iommu, mut mem) = setup();
        let key = pt.key(VirtAddr::new(0x3000));
        let first = iommu.translate(0, key, &pt, &mut mem);
        assert_eq!(first.level, IommuHitLevel::Walk);
        assert!(first.memory_accesses >= 1);
        let second = iommu.translate(first.done, key, &pt, &mut mem);
        assert_eq!(second.level, IommuHitLevel::DeviceL1);
        assert_eq!(second.translation, first.translation);
        assert_eq!(iommu.walks(), 1);
    }

    #[test]
    fn concurrent_same_page_misses_merge() {
        let (pt, mut iommu, mut mem) = setup();
        let key = pt.key(VirtAddr::new(0x5000));
        let a = iommu.translate(0, key, &pt, &mut mem);
        // Arrives while the walk is still in flight, after missing the
        // device TLBs (fills happen at issue; force-mimic by querying a
        // second IOMMU-path before completion).
        iommu.dev_l1.invalidate(key);
        iommu.dev_l2.invalidate(key);
        let b = iommu.translate(1, key, &pt, &mut mem);
        assert_eq!(b.level, IommuHitLevel::MergedWalk);
        assert_eq!(b.done, a.done);
        assert_eq!(iommu.walks(), 1);
    }

    #[test]
    fn walker_pool_saturates() {
        let (pt, mut iommu, mut mem) = setup();
        // Issue 64 distinct-page misses at cycle 0: with 32 walkers the
        // 33rd walk must queue behind the first.
        let mut dones: Vec<Cycle> = (0..64u64)
            .map(|i| {
                let key = pt.key(VirtAddr::new(i * 4096));
                iommu.translate(0, key, &pt, &mut mem).done
            })
            .collect();
        dones.sort_unstable();
        assert!(
            dones[63] > dones[0],
            "later walks should queue: first={} last={}",
            dones[0],
            dones[63]
        );
        assert_eq!(iommu.walks(), 64);
    }

    #[test]
    fn pwc_reduces_walk_cost_for_neighbors() {
        let (pt, mut iommu, mut mem) = setup();
        let a = iommu.translate(0, pt.key(VirtAddr::new(0x0000)), &pt, &mut mem);
        let b = iommu.translate(a.done, pt.key(VirtAddr::new(0x1000)), &pt, &mut mem);
        assert!(b.memory_accesses < a.memory_accesses);
    }

    #[test]
    fn fault_returns_none() {
        let (pt, mut iommu, mut mem) = setup();
        let out = iommu.translate(0, pt.key(VirtAddr::new(1 << 40)), &pt, &mut mem);
        assert!(out.translation.is_none());
    }

    #[test]
    fn invalidate_forces_rewalk() {
        let (pt, mut iommu, mut mem) = setup();
        let key = pt.key(VirtAddr::new(0x7000));
        let first = iommu.translate(0, key, &pt, &mut mem);
        iommu.invalidate(key);
        let again = iommu.translate(first.done + 10_000, key, &pt, &mut mem);
        assert_eq!(again.level, IommuHitLevel::Walk);
        assert_eq!(iommu.walks(), 2);
    }

    #[test]
    fn flush_clears_everything() {
        let (pt, mut iommu, mut mem) = setup();
        let key = pt.key(VirtAddr::new(0x9000));
        let o = iommu.translate(0, key, &pt, &mut mem);
        iommu.flush();
        let again = iommu.translate(o.done + 10_000, key, &pt, &mut mem);
        assert_eq!(again.level, IommuHitLevel::Walk);
        // PWC also flushed: cold walk again costs full depth.
        assert_eq!(again.memory_accesses, 4);
    }
}
