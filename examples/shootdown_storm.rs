//! TLB shootdowns with the reconfigurable structures (§7.1,
//! TENANCY.md §6) — driven through the first-class driver API.
//!
//! With translations cached in the LDS and I-cache, the driver's
//! PM4-style shootdown packet must invalidate those structures too.
//! This example attaches a [`DriverSchedule`] to a two-tenant system
//! and churns tenant 1 — migrating slices of its resident footprint
//! mid-run — showing (a) the shootdown finding stale entries in every
//! structure (per-CU L1 TLBs, shared L2 TLB, LDS segments, I-cache
//! lines), (b) the per-tenant attribution of the shootdowns, and
//! (c) post-run coherence: no stale frame survives anywhere.
//!
//! ```sh
//! cargo run --release --example shootdown_storm
//! ```

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::driver::{DriverSchedule, MigrationEvent};
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::AppTrace;
use gpu_translation_reach::vm::addr::{VmId, Vpn};
use gpu_translation_reach::vm::tenancy::SharingPolicy;
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn main() {
    let app = AppTrace::replicate(&suite::by_name("ATAX", Scale::quick()).unwrap(), 2);
    let reach = ReachConfig::ic_plus_lds().with_tenancy(2, SharingPolicy::Shared);

    // Undisturbed run: fixes the churn trigger points and the victim
    // pool (pages tenant 1 actually demand-maps — migrating an
    // unmapped page is a no-op).
    let mut quiet_sys = System::new(GpuConfig::default(), reach);
    let quiet = quiet_sys.run(&app);
    let pool = quiet_sys.mapped_vpns(VmId::new(1));
    println!(
        "quiet run: {} cycles, {} walks; tenant 1 maps {} pages",
        quiet.total_cycles,
        quiet.page_walks,
        pool.len()
    );

    // The storm: four churn events, each migrating 32 pages spread
    // across tenant 1's footprint, triggered at 2/6 .. 5/6 of the
    // quiet run's translation volume.
    let stride = (pool.len() / 32).max(1);
    let pages: Vec<(VmId, Vpn)> =
        pool.iter().step_by(stride).take(32).map(|&v| (VmId::new(1), v)).collect();
    let mut schedule = DriverSchedule::new();
    for k in 2..=5u64 {
        schedule = schedule.migrate(MigrationEvent {
            after_translations: quiet.translation_requests * k / 6,
            pages: pages.clone(),
        });
    }

    let mut sys = System::new(GpuConfig::default(), reach).with_driver_schedule(schedule);
    let stormed = sys.run(&app);
    let report = sys.shootdown_report();
    println!(
        "storm: {} events, {} pages migrated, {} stale copies invalidated",
        report.events, report.pages_migrated, report.total_hits()
    );
    println!(
        "  stale copies by structure: L1 TLB {} / L2 TLB {} / LDS {} / I-cache {}",
        report.l1_hits, report.l2_hits, report.lds_hits, report.ic_hits
    );
    println!(
        "  per-tenant shootdowns: t0={} t1={} (churn hits only tenant 1)",
        stormed.tenants[0].shootdowns, stormed.tenants[1].shootdowns
    );
    println!(
        "  churn overhead: {:+.2}% cycles, {:+.1}% walks",
        (stormed.total_cycles as f64 / quiet.total_cycles as f64 - 1.0) * 100.0,
        (stormed.page_walks as f64 / quiet.page_walks.max(1) as f64 - 1.0) * 100.0
    );
    assert_eq!(stormed.tenants[0].shootdowns, 0, "tenant 0 was never migrated");
    assert!(report.pages_migrated > 0, "the storm must hit resident pages");

    // After the shootdown protocol has run, every cached translation
    // must agree with the (migrated) page tables.
    let checked = sys.check_translation_coherence();
    println!("coherence: {checked} cached translations verified against the migrated tables");
}
