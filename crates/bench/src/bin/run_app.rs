//! Run one application under one configuration and dump its full
//! statistics — the workhorse CLI for exploring the design space.
//!
//! ```sh
//! cargo run --release -p gtr-bench --bin run_app -- ATAX ic+lds --quick
//! cargo run --release -p gtr-bench --bin run_app -- GUPS baseline
//! cargo run --release -p gtr-bench --bin run_app -- NW lds --sharers 8 --pages 2m
//! cargo run --release -p gtr-bench --bin run_app -- GUPS ic+lds --tiny \
//!     --epochs 100000 --stats-out gups.json --trace gups.jsonl
//! ```

use gtr_bench::profile;
use gtr_core::config::ReachConfig;
use gtr_core::system::System;
use gtr_gpu::config::GpuConfig;
use gtr_sim::prof;
use gtr_sim::trace::JsonlSink;
use gtr_vm::addr::PageSize;
use gtr_vm::alloc::PageLayout;
use gtr_workloads::scale::Scale;
use gtr_workloads::suite;

fn usage() -> ! {
    eprintln!(
        "usage: run_app <APP> <CONFIG> [--quick|--tiny] [--sharers N] [--pages 4k|64k|2m] [--l2-tlb N] [--ducati]\n\
         \x20              [--frag F] [--frag-seed N] [--coalesce [MAX]]\n\
         \x20              [--epochs N] [--stats-out FILE.json] [--pretty] [--trace FILE.jsonl] [--percentiles]\n\
         \x20              [--sample] [--checkpoint-dir DIR] [--threads N] [--prof FILE.json]\n\
         APP:    {}\n\
         CONFIG: baseline | lds | ic | ic+lds\n\
         --frag F            back the footprint with the contiguity-aware allocator at\n\
         \x20                 fragmentation F in [0,1] (0 = fully contiguous, 1 = 4 KB scatter)\n\
         --frag-seed N       permutation seed for --frag (default: the sweep's frozen seed)\n\
         --coalesce [MAX]    let TLB entries coalesce contiguous runs up to 2^MAX pages\n\
         \x20                 (default MAX covers a full 2 MB region)\n\
         --threads N         accepted for sweep-script uniformity; a single-app run is one\n\
         \x20                 deterministic simulation (matrix parallelism lives in all/perf)\n\
         --epochs N          sample cumulative counters every N cycles into the stats epoch series\n\
         --stats-out FILE    write the run's full statistics as JSON (parse back with gtr_core::export)\n\
         --pretty            indent the --stats-out JSON (default is compact)\n\
         --trace FILE        stream structured lifecycle events as JSON Lines\n\
         --percentiles       record latency/lifetime distributions; print the per-path latency table\n\
         --sample            interval-sampled run: warmup, then alternating detailed/fast-forward windows\n\
         --checkpoint-dir D  cache the warmup as a checkpoint in D; later runs on the same (app, GPU)\n\
         \x20                 restore it instead of re-warming\n\
         --prof FILE         write a host-side span profile of the run as a Chrome trace\n\
         \x20                 (Perfetto-loadable; summarize with gtr-analyze --prof-summary)",
        suite::TABLE2.iter().map(|i| i.name).collect::<Vec<_>>().join(" | ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prof_out = profile::arm_from_args(&args);
    // Flag values (paths, counts) must not shadow the two leading
    // positionals, so APP and CONFIG have to come first — as in every
    // usage example above.
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let Some(app_name) = positional.next() else { usage() };
    let config_name = positional.next().map(String::as_str).unwrap_or("ic+lds");

    let scale = if args.iter().any(|a| a == "--tiny") {
        Scale::tiny()
    } else if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let mut reach = match config_name {
        "baseline" => ReachConfig::baseline(),
        "lds" => ReachConfig::lds_only(),
        "ic" => ReachConfig::ic_only(),
        "ic+lds" | "ic_lds" => ReachConfig::ic_plus_lds(),
        other => {
            eprintln!("unknown config {other:?}");
            usage()
        }
    };
    let mut gpu = GpuConfig::default();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse::<usize>().expect("numeric flag value"))
    };
    // Validated but otherwise unused: one app × one config is a single
    // deterministic simulation, so there is nothing to parallelize.
    // Accepting the flag lets sweep scripts pass a uniform `--threads`
    // to every binary.
    let _ = flag_value("--threads");
    if let Some(sharers) = flag_value("--sharers") {
        gpu = gpu.with_icache_sharers(sharers);
    }
    if let Some(entries) = flag_value("--l2-tlb") {
        gpu = gpu.with_l2_tlb_entries(entries);
    }
    if let Some(i) = args.iter().position(|a| a == "--pages") {
        gpu = gpu.with_page_size(match args.get(i + 1).map(String::as_str) {
            Some("4k") | Some("4K") => PageSize::Size4K,
            Some("64k") | Some("64K") => PageSize::Size64K,
            Some("2m") | Some("2M") => PageSize::Size2M,
            other => {
                eprintln!("unknown page size {other:?}");
                usage()
            }
        });
    }
    if let Some(i) = args.iter().position(|a| a == "--frag") {
        let f = args
            .get(i + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|f| (0.0..=1.0).contains(f))
            .unwrap_or_else(|| {
                eprintln!("--frag needs a fraction in [0, 1]");
                usage()
            });
        let seed = flag_value("--frag-seed")
            .map(|n| n as u64)
            .unwrap_or(gtr_bench::figures::CONTIGUITY_FRAG_SEED);
        gpu = gpu.with_page_layout(PageLayout::contig(f, seed));
    } else if args.iter().any(|a| a == "--frag-seed") {
        eprintln!("--frag-seed requires --frag");
        usage()
    }
    if let Some(i) = args.iter().position(|a| a == "--coalesce") {
        // The span cap is optional: bare `--coalesce` covers a full
        // 2 MB region, `--coalesce MAX` caps runs at 2^MAX pages.
        let max = args
            .get(i + 1)
            .and_then(|v| v.parse::<u8>().ok())
            .unwrap_or(gtr_bench::figures::COALESCE_MAX_SPAN_LOG2);
        reach = reach.with_tlb_coalescing(max);
    }

    let Some(app) = suite::by_name(app_name, scale) else {
        eprintln!("unknown app {app_name:?}");
        usage()
    };

    let str_flag = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        })
    };

    let mut sys = System::new(gpu.clone(), reach);
    if args.iter().any(|a| a == "--ducati") {
        sys = sys.with_side_cache(Box::new(gtr_ducati::Ducati::new(512 * 1024)));
    }
    if let Some(n) = flag_value("--epochs") {
        sys = sys.with_epochs(n as u64);
    }
    let percentiles = args.iter().any(|a| a == "--percentiles");
    if percentiles {
        sys = sys.with_distributions();
    }
    let trace_path = str_flag("--trace");
    if let Some(path) = &trace_path {
        let sink = JsonlSink::create(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
        sys = sys.with_trace(Box::new(sink));
    }
    if args.iter().any(|a| a == "--sample") {
        let mut cfg = gtr_bench::figures::sampling_for(scale);
        if let Some(dir) = str_flag("--checkpoint-dir") {
            let ck = gtr_bench::harness::load_or_capture(
                &app,
                &gpu,
                cfg.warmup,
                Some(std::path::Path::new(&dir)),
            );
            sys.restore_checkpoint(&ck);
            cfg = cfg.without_warmup();
        }
        sys = sys.with_sampling(cfg);
    } else if args.iter().any(|a| a == "--checkpoint-dir") {
        eprintln!("--checkpoint-dir requires --sample");
        usage()
    }
    let start = prof::Stopwatch::start();
    let s = {
        let _span = prof::span_with("run", || format!("{app_name}:{config_name}"));
        sys.run(&app)
    };

    println!("app: {} | config: {config_name} | {} kernels, {} wave-ops", s.app, s.kernels.len(), s.instructions);
    println!("cycles:              {}", s.total_cycles);
    println!("thread instructions: {}", s.thread_instructions);
    println!("translation reqs:    {}", s.translation_requests);
    println!("L1 TLB:              {}/{} ({:.1}%)", s.l1_tlb.hits, s.l1_tlb.total(), s.l1_hit_ratio() * 100.0);
    println!("LDS victim cache:    {}/{} hits", s.lds_tx.hits, s.lds_tx.total());
    println!("I-cache victim:      {}/{} hits", s.ic_tx.hits, s.ic_tx.total());
    println!("L2 TLB:              {}/{} ({:.1}%)", s.l2_tlb.hits, s.l2_tlb.total(), s.l2_hit_ratio() * 100.0);
    println!("page walks:          {} (PTW-PKI {:.2}, category {})", s.page_walks, s.ptw_pki(), s.category());
    println!("inst fetches:        {}/{} hits", s.inst_fetch.hits, s.inst_fetch.total());
    println!("DRAM accesses:       {} | energy {:.1} uJ", s.dram_accesses, s.dram_energy_nj / 1000.0);
    println!("peak extra reach:    {} translations", s.peak_tx_entries);
    println!("tx shared across CUs: {:.0}%", s.tx_shared_fraction * 100.0);
    println!("LDS req/WG:          {}", s.lds_request_summary);
    println!("IC utilization:      {}", s.icache_utilization_summary);
    if let Some(co) = &s.coalescing {
        println!(
            "coalesced reach:     {:.2}x ({} of {} inserts coalesced, {} covered hits, {} shootdown splits)",
            co.reach_multiplier(),
            co.entries_coalesced,
            co.inserts,
            co.coalesced_hits,
            co.shootdown_splits
        );
    }
    if !s.epochs.is_empty() {
        println!("epochs:              {} samples every {} cycles", s.epochs.len(), s.epoch_len);
    }
    if let Some(meta) = &s.sampling {
        println!(
            "sampling:            {} detail intervals ({} insts detailed, {} fast-forwarded{}), \
             {} measured + {} extrapolated cycles, error bound {:.1}%",
            meta.detail_intervals,
            meta.detail_insts,
            meta.fastforward_insts + meta.warmup_insts,
            if meta.checkpoint_restored { ", warmup from checkpoint" } else { "" },
            meta.detail_cycles,
            meta.extrapolated_cycles,
            meta.error_bound_pct
        );
    }
    if percentiles {
        println!();
        println!("translation latency by resolution path:");
        println!("  {:<8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}", "path", "count", "p50", "p90", "p99", "max", "share");
        for (i, h) in s.latency_hists.iter().enumerate() {
            if h.is_empty() {
                continue;
            }
            println!(
                "  {:<8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>6.1}%",
                gtr_sim::hist::CycleAttribution::label(i),
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max(),
                s.attribution.cycle_share(i) * 100.0
            );
        }
        for (name, lifetime, reuse) in [
            ("LDS", &s.victim_lifetime_lds, &s.victim_reuse_lds),
            ("I-cache", &s.victim_lifetime_ic, &s.victim_reuse_ic),
        ] {
            if reuse.count() > 0 {
                println!(
                    "{name} victim entries:  {} evicted, lifetime p50 {} cycles, \
                     {} dead on arrival ({:.1}%)",
                    reuse.count(),
                    lifetime.p50(),
                    reuse.zero_count(),
                    reuse.zero_count() as f64 / reuse.count() as f64 * 100.0
                );
            }
        }
    }
    println!("(simulated in {})", start.report());
    if let Some(path) = str_flag("--stats-out") {
        let _span = prof::span("export:stats");
        let doc = if args.iter().any(|a| a == "--pretty") {
            gtr_core::export::run_stats_to_json_string_pretty(&s)
        } else {
            gtr_core::export::run_stats_to_json_string(&s)
        };
        std::fs::write(&path, doc)
            .unwrap_or_else(|e| panic!("cannot write stats to {path}: {e}"));
        eprintln!("stats written to {path}");
    }
    if let Some(path) = trace_path {
        eprintln!("trace written to {path}");
    }
    profile::finish(prof_out.as_deref());
}
