//! Base-delta tag compression (Figs 7b and 10c).
//!
//! Both reconfigurable structures must squeeze several wide translation
//! tags into the narrow tag storage they inherit:
//!
//! * **LDS** (Fig 7b): three 25-bit VA tags compress into one 8-byte
//!   word as a 16-bit base plus three 16-bit deltas.
//! * **I-cache** (Fig 10c): eight 30-bit VA tags compress into the
//!   widened 12-byte tag as a 32-bit base plus eight 8-bit deltas.
//!
//! A new tag can only join a populated group if its delta from the
//! group's base fits the delta width; otherwise the hardware must evict
//! the residents and re-base (the "compression conflict" path this
//! module surfaces).

/// A base-delta compressed tag group with fixed-width signed deltas.
///
/// # Example
///
/// ```
/// use gtr_core::compress::TagGroup;
/// let mut g = TagGroup::new(8); // 8-bit deltas (I-cache layout)
/// assert!(g.try_admit(1000));
/// assert!(g.try_admit(1100));  // delta 100 fits i8? no -> rejected
/// assert!(g.try_admit(1050));  // delta 50 fits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagGroup {
    base: Option<u64>,
    delta_bits: u32,
    residents: u32,
    conflicts: u64,
}

impl TagGroup {
    /// Creates an empty group with signed deltas of `delta_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= delta_bits <= 63`.
    pub fn new(delta_bits: u32) -> Self {
        assert!((1..=63).contains(&delta_bits), "delta width out of range");
        Self { base: None, delta_bits, residents: 0, conflicts: 0 }
    }

    /// LDS layout (Fig 7b): 16-bit deltas.
    pub fn lds() -> Self {
        Self::new(16)
    }

    /// I-cache layout (Fig 10c): 8-bit deltas.
    pub fn icache() -> Self {
        Self::new(8)
    }

    /// Whether `tag` can be represented against the current base.
    /// Always true when the group is empty.
    pub fn fits(&self, tag: u64) -> bool {
        match self.base {
            None => true,
            Some(base) => {
                let delta = tag as i128 - base as i128;
                let half = 1i128 << (self.delta_bits - 1);
                (-half..half).contains(&delta)
            }
        }
    }

    /// Attempts to admit `tag`. On success the group's resident count
    /// grows (and the base is set on first admit). Returns `false` on
    /// a compression conflict, counting it.
    pub fn try_admit(&mut self, tag: u64) -> bool {
        if self.fits(tag) {
            if self.base.is_none() {
                self.base = Some(tag);
            }
            self.residents += 1;
            true
        } else {
            self.conflicts += 1;
            false
        }
    }

    /// Removes one resident; when the last leaves, the base resets so
    /// the next admit re-bases freely.
    ///
    /// # Panics
    ///
    /// Panics if the group is empty.
    pub fn retire(&mut self) {
        assert!(self.residents > 0, "retire from empty tag group");
        self.residents -= 1;
        if self.residents == 0 {
            self.base = None;
        }
    }

    /// Clears the group entirely (hardware re-base after a conflict
    /// eviction).
    pub fn clear(&mut self) {
        self.base = None;
        self.residents = 0;
    }

    /// Current base, if any resident.
    pub fn base(&self) -> Option<u64> {
        self.base
    }

    /// Resident tag count.
    pub fn residents(&self) -> u32 {
        self.residents
    }

    /// Compression conflicts observed (rejections).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Signed-delta width in bits.
    pub fn delta_bits(&self) -> u32 {
        self.delta_bits
    }

    /// The signed delta `tag` occupies against the current base, when
    /// the group is populated and the delta fits — the value the
    /// hardware actually stores in one delta lane of Fig 7b/10c.
    pub fn encode(&self, tag: u64) -> Option<i64> {
        let base = self.base?;
        let delta = tag as i128 - base as i128;
        let half = 1i128 << (self.delta_bits - 1);
        if (-half..half).contains(&delta) {
            Some(delta as i64)
        } else {
            None
        }
    }

    /// Reconstructs a full tag from a stored signed delta — one lane of
    /// the parallel base+delta adders the compressed-tag compare runs
    /// through before the equality check.
    pub fn decode(&self, delta: i64) -> Option<u64> {
        self.base.map(|b| (b as i128 + delta as i128) as u64)
    }
}

/// Compares a compressed tag group's *decoded* residents against one
/// wanted tag, eight lanes at a time.
///
/// The hardware (Figs 7b/10c) decodes every delta lane against the
/// group base in parallel and feeds all comparators at once; the
/// simulator keeps the decoded tags (`stored`) resident in a
/// struct-of-arrays slab, so the whole-group compare is this branchless
/// fixed-width loop instead of an early-exit pointer chase. Lane `i`
/// of the result is set when `stored[i] == wanted` and bit `i` of
/// `valid` is set.
///
/// Comparing decoded tags (not raw deltas) matters for correctness:
/// under LDS home-hashing the low `index_shift` bits differ between a
/// CU's own keys and the shootdown probes it receives for other CUs'
/// homes, so a delta-only compare against a foreign base would
/// false-hit.
pub fn match_mask(stored: &[u64], valid: u32, wanted: u64) -> u32 {
    debug_assert!(stored.len() <= 32, "mask is 32 bits wide");
    let mut mask = 0u32;
    let mut shift = 0u32;
    for chunk in stored.chunks(8) {
        // Fixed-trip inner loop over one 8-lane decode group: no early
        // exit, so the compiler vectorizes the compare + bit pack.
        let mut m = 0u32;
        for (i, &t) in chunk.iter().enumerate() {
            m |= u32::from(t == wanted) << i;
        }
        mask |= m << shift;
        shift += 8;
    }
    mask & valid
}

/// Storage accounting for the paper's overhead claims.
pub mod overhead {
    /// Bits per uncompressed LDS translation tag (Fig 7a):
    /// 25 VA + 2 VM-ID + 2 VRF-ID + 2 LRU + 1 valid.
    pub const LDS_TAG_BITS: u32 = 25 + 2 + 2 + 2 + 1;

    /// Bits per uncompressed I-cache translation tag (Fig 10b):
    /// 30 VA + 2 VM-ID + 2 VRF-ID + 4 LRU + 1 valid.
    pub const IC_TAG_BITS: u32 = 30 + 2 + 2 + 4 + 1;

    /// Compressed LDS tag word: 16-bit base + 3 × 16-bit deltas = 64
    /// bits (one 8-byte way of a 32-byte segment).
    pub const LDS_COMPRESSED_BITS: u32 = 16 + 3 * 16;

    /// Compressed I-cache tag block: 32-bit base + 8 × 8-bit deltas =
    /// 96 bits, fitting the widened 12-byte tag.
    pub const IC_COMPRESSED_BITS: u32 = 32 + 8 * 8;

    /// Mode-bit overhead of the reconfigurable LDS: 1 bit per 32-byte
    /// segment = 1/256 of capacity ≈ 0.4% (§4.2.4).
    pub fn lds_mode_bit_overhead() -> f64 {
        1.0 / 256.0
    }

    /// Tag-widening overhead of the reconfigurable I-cache: tags grow
    /// from 6 to 12 bytes for each of the 256 lines of a 16 KB
    /// instance = 1.5 KB (§4.3.1).
    pub fn icache_tag_widening_bytes(lines: usize) -> usize {
        6 * lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_group_admits_anything() {
        let mut g = TagGroup::lds();
        assert!(g.try_admit(u64::MAX >> 1));
        assert_eq!(g.base(), Some(u64::MAX >> 1));
        assert_eq!(g.residents(), 1);
    }

    #[test]
    fn delta_window_is_signed() {
        let mut g = TagGroup::new(8); // deltas in [-128, 127]
        assert!(g.try_admit(1000));
        assert!(g.try_admit(1000 + 127));
        assert!(g.try_admit(1000 - 128));
        assert!(!g.try_admit(1000 + 128));
        assert!(!g.try_admit(1000 - 129));
        assert_eq!(g.conflicts(), 2);
    }

    #[test]
    fn lds_window_wider_than_icache() {
        let mut lds = TagGroup::lds();
        let mut ic = TagGroup::icache();
        lds.try_admit(0x8000);
        ic.try_admit(0x8000);
        let far = 0x8000 + 1000;
        assert!(lds.fits(far));
        assert!(!ic.fits(far));
    }

    #[test]
    fn retire_to_empty_resets_base() {
        let mut g = TagGroup::icache();
        assert!(g.try_admit(5000));
        g.retire();
        assert_eq!(g.base(), None);
        // Far-away tag now fits: re-based.
        assert!(g.try_admit(5));
        assert_eq!(g.base(), Some(5));
    }

    #[test]
    fn clear_resets_residents_and_base() {
        let mut g = TagGroup::lds();
        g.try_admit(10);
        g.try_admit(11);
        g.clear();
        assert_eq!(g.residents(), 0);
        assert!(g.try_admit(1 << 40));
    }

    #[test]
    #[should_panic(expected = "retire from empty")]
    fn retire_empty_panics() {
        TagGroup::lds().retire();
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut g = TagGroup::icache();
        assert_eq!(g.encode(7), None); // empty group stores nothing
        assert!(g.try_admit(5000));
        for tag in [5000u64, 5000 + 127, 5000 - 128] {
            let d = g.encode(tag).expect("fits the 8-bit window");
            assert_eq!(g.decode(d), Some(tag));
        }
        assert_eq!(g.encode(5000 + 128), None); // out of window
        assert_eq!(TagGroup::lds().decode(3), None); // no base
    }

    #[test]
    fn match_mask_agrees_with_naive_scan() {
        // 12 residents spans two 8-lane decode groups.
        let stored: Vec<u64> = (0..12u64).map(|i| 900 + (i * 7) % 5).collect();
        for wanted in 898..=906u64 {
            for valid in [0u32, 0xFFF, 0b1010_1010_1010, 0x3F] {
                let naive = stored
                    .iter()
                    .enumerate()
                    .filter(|&(i, &t)| t == wanted && valid & (1 << i) != 0)
                    .fold(0u32, |m, (i, _)| m | 1 << i);
                assert_eq!(match_mask(&stored, valid, wanted), naive);
            }
        }
        assert_eq!(match_mask(&[], u32::MAX, 0), 0);
    }

    #[test]
    fn overhead_constants_match_paper() {
        use overhead::*;
        assert_eq!(LDS_TAG_BITS, 32); // "each address translation in LDS contains 32-bits"
        assert_eq!(IC_TAG_BITS, 39); // "a total of 39-bits"
        assert_eq!(LDS_COMPRESSED_BITS, 64); // fits the 8-byte tag way
        assert_eq!(IC_COMPRESSED_BITS, 96); // fits the widened 12-byte tag
        assert_eq!(icache_tag_widening_bytes(256), 1536); // 1.5 KB per I-cache
        assert!((lds_mode_bit_overhead() - 0.004).abs() < 0.001); // ~0.4%
    }
}
