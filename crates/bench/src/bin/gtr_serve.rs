//! `gtr-serve` — the sweep service: experiment cells as queries.
//!
//! Server mode binds a TCP listener and answers JSONL cell requests
//! from the memoized result cache, coalescing duplicates and batching
//! cold cells onto the work-stealing pool (see
//! [`gtr_bench::serve`]). Client mode submits a request file to a
//! running server and prints (or saves) the streamed responses.
//!
//! ```text
//! gtr-serve --listen 127.0.0.1:0 --port-file target/serve.addr \
//!           --cache-dir target/serve-cache --checkpoint-dir target/ckpt
//! gtr-serve --connect 127.0.0.1:45817 --submit batch.jsonl --out-dir target/resp
//! ```

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

use gtr_bench::harness::atomic_write;
use gtr_bench::serve::{run_server, submit_lines, ServeState};
use gtr_sim::json::Json;
use gtr_sim::prof;

fn usage() -> ! {
    eprintln!(
        "usage: gtr-serve --listen ADDR [--threads N] [--cache-dir DIR] \
         [--checkpoint-dir DIR] [--port-file PATH] [--prof PATH]\n\
         \x20      gtr-serve --connect ADDR --submit FILE [--out-dir DIR]\n\
         \n\
         Server mode accepts line-delimited JSON cell requests\n\
         ({{\"app\":..,\"config\":..,\"scale\":..,\"mode\":..,\"tenants\":..,\"policy\":..}})\n\
         plus {{\"cmd\":\"stats\"}} and {{\"cmd\":\"shutdown\"}} control lines, and\n\
         streams back a header line + stats document per cell.\n\
         \n\
         --listen ADDR          bind address (port 0 picks a free port)\n\
         --threads N            cold-cell pool workers (default: machine)\n\
         --cache-dir DIR        on-disk memoized result cache\n\
         --checkpoint-dir DIR   warmup checkpoint cache for sampled cells\n\
         --port-file PATH       write the bound address here (atomic rename)\n\
         --prof PATH            profile the server; Chrome trace on shutdown\n\
         \n\
         Client mode:\n\
         --connect ADDR         server address\n\
         --submit FILE          JSONL request file to send\n\
         --out-dir DIR          also save each stats document as resp_NNN.json"
    );
    std::process::exit(2);
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("gtr-serve: {flag} needs a value");
        usage();
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let listen = take_value(&mut args, "--listen");
    let connect = take_value(&mut args, "--connect");
    let submit = take_value(&mut args, "--submit");
    let out_dir = take_value(&mut args, "--out-dir").map(PathBuf::from);
    let threads: usize = take_value(&mut args, "--threads")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let cache_dir = take_value(&mut args, "--cache-dir").map(PathBuf::from);
    let checkpoint_dir = take_value(&mut args, "--checkpoint-dir").map(PathBuf::from);
    let port_file = take_value(&mut args, "--port-file").map(PathBuf::from);
    let prof_out = take_value(&mut args, "--prof").map(PathBuf::from);
    if !args.is_empty() {
        eprintln!("gtr-serve: unknown argument {:?}", args[0]);
        usage();
    }
    match (listen, connect) {
        (Some(addr), None) => serve(addr, threads, cache_dir, checkpoint_dir, port_file, prof_out),
        (None, Some(addr)) => {
            let Some(file) = submit else {
                eprintln!("gtr-serve: --connect needs --submit FILE");
                usage();
            };
            client(addr, file, out_dir);
        }
        _ => usage(),
    }
}

fn serve(
    addr: String,
    threads: usize,
    cache_dir: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    port_file: Option<PathBuf>,
    prof_out: Option<PathBuf>,
) {
    if prof_out.is_some() {
        prof::enable();
        prof::set_lane("serve-main");
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("gtr-serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("bound listener has an address");
    if let Some(pf) = &port_file {
        // Atomic rename: a polling launcher never reads a half-written
        // address.
        if let Err(e) = atomic_write(pf, format!("{local}\n").as_bytes()) {
            eprintln!("gtr-serve: cannot write --port-file {}: {e}", pf.display());
            std::process::exit(1);
        }
    }
    eprintln!("gtr-serve: listening on {local}");
    let state = Arc::new(ServeState::new(threads, cache_dir, checkpoint_dir));
    if let Err(e) = run_server(Arc::clone(&state), listener) {
        eprintln!("gtr-serve: server error: {e}");
        std::process::exit(1);
    }
    if let Some(path) = prof_out {
        match prof::write_chrome_trace(&path) {
            Ok(_) => eprintln!("gtr-serve: wrote profile to {}", path.display()),
            Err(e) => eprintln!("gtr-serve: cannot write profile: {e}"),
        }
    }
}

fn client(addr: String, file: String, out_dir: Option<PathBuf>) {
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("gtr-serve: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    let sock_addr = addr.parse().unwrap_or_else(|e| {
        eprintln!("gtr-serve: invalid address {addr}: {e}");
        std::process::exit(1);
    });
    let responses = submit_lines(sock_addr, &lines).unwrap_or_else(|e| {
        eprintln!("gtr-serve: submit failed: {e}");
        std::process::exit(1);
    });
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("gtr-serve: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        });
    }
    let mut doc_idx = 0usize;
    let mut expect_doc = false;
    for line in &responses {
        println!("{line}");
        if expect_doc {
            // The line after a cell header is that cell's stats
            // document — save it byte-identically (compact + '\n').
            if let Some(dir) = &out_dir {
                let path = dir.join(format!("resp_{doc_idx:03}.json"));
                if let Err(e) = std::fs::write(&path, format!("{line}\n")) {
                    eprintln!("gtr-serve: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
            doc_idx += 1;
            expect_doc = false;
            continue;
        }
        expect_doc = Json::parse(line)
            .ok()
            .is_some_and(|j| j.get("cell").is_some());
    }
}
