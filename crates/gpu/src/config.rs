//! Baseline machine configuration (the paper's Table 1).

use gtr_mem::cache::CacheConfig;
use gtr_mem::system::MemorySystemConfig;
use gtr_vm::addr::PageSize;
use gtr_vm::alloc::PageLayout;
use gtr_vm::iommu::IommuConfig;
use gtr_vm::tlb::TlbConfig;

/// Full baseline GPU configuration. Defaults reproduce Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Compute units.
    pub cus: usize,
    /// SIMD units per CU.
    pub simds_per_cu: usize,
    /// Wave slots per SIMD.
    pub waves_per_simd: usize,
    /// SIMD lane width.
    pub simd_width: usize,
    /// Threads per wavefront.
    pub threads_per_wave: usize,
    /// Per-CU L1 TLB (32 entries, fully associative, 108 cycles).
    pub l1_tlb: TlbConfig,
    /// GPU-shared L2 TLB (512 entries, 16-way, 188 cycles).
    pub l2_tlb: TlbConfig,
    /// I-cache capacity in bytes (16 KB shared by `cus_per_icache`).
    pub icache_bytes: u32,
    /// I-cache associativity (8-way).
    pub icache_assoc: usize,
    /// CUs sharing one I-cache (4 in Table 1; swept in Fig 16a).
    pub cus_per_icache: usize,
    /// IC-mode tag access latency (16 cycles).
    pub ic_tag_latency: u64,
    /// LDS bytes per CU (16 KB in the scaled Table-1 system).
    pub lds_bytes: u32,
    /// LDS-mode access latency (31 cycles).
    pub lds_latency: u64,
    /// Per-CU L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2 data cache + DRAM.
    pub memory: MemorySystemConfig,
    /// IOMMU (32 walkers; device TLBs; PWCs).
    pub iommu: IommuConfig,
    /// System page size.
    pub page_size: PageSize,
    /// Model a perfect (always-hitting) L2 TLB — the Figs 2–3 upper
    /// bound configuration.
    pub l2_tlb_perfect: bool,
    /// SIMT page-level coalescing before the L1 TLB (ablation knob;
    /// always on in real hardware and in the paper's baseline).
    pub coalescing: bool,
    /// Frame-allocation policy of every page table in the system:
    /// the historical odd-multiplier scatter (the default, matching
    /// all frozen anchors) or a contiguity-aware allocator with a
    /// fragmentation knob (`gtr_vm::alloc`). Stream-shaping: the
    /// layout changes every PPN the page walker returns, so it is part
    /// of `CheckpointKey`'s stream fingerprint.
    pub page_layout: PageLayout,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            cus: 8,
            simds_per_cu: 4,
            waves_per_simd: 10,
            simd_width: 16,
            threads_per_wave: 64,
            l1_tlb: TlbConfig::fully_associative(32, 108),
            l2_tlb: TlbConfig::set_associative(512, 16, 188),
            icache_bytes: 16 * 1024,
            icache_assoc: 8,
            cus_per_icache: 4,
            ic_tag_latency: 16,
            lds_bytes: 16 * 1024,
            lds_latency: 31,
            l1d: CacheConfig::gpu_l1d(),
            memory: MemorySystemConfig::default(),
            iommu: IommuConfig::default(),
            page_size: PageSize::Size4K,
            l2_tlb_perfect: false,
            coalescing: true,
            page_layout: PageLayout::Scatter,
        }
    }
}

impl GpuConfig {
    /// Wave slots per CU.
    pub fn waves_per_cu(&self) -> usize {
        self.simds_per_cu * self.waves_per_simd
    }

    /// Number of I-caches in the system.
    ///
    /// # Panics
    ///
    /// Panics if `cus` is not a multiple of `cus_per_icache`.
    pub fn icache_count(&self) -> usize {
        assert!(
            self.cus_per_icache > 0 && self.cus.is_multiple_of(self.cus_per_icache),
            "cus must divide evenly among I-caches"
        );
        self.cus / self.cus_per_icache
    }

    /// I-cache lines per instance.
    pub fn icache_lines(&self) -> usize {
        (self.icache_bytes / 64) as usize
    }

    /// Sets the number of CUs sharing an I-cache while keeping *total*
    /// I-cache capacity constant (the Fig 16a experiment).
    pub fn with_icache_sharers(mut self, sharers: usize) -> Self {
        let total_bytes = self.icache_bytes as u64 * self.icache_count() as u64;
        assert!(self.cus.is_multiple_of(sharers), "sharers must divide CU count");
        self.cus_per_icache = sharers;
        let instances = (self.cus / sharers) as u64;
        self.icache_bytes = (total_bytes / instances) as u32;
        self
    }

    /// Sets the page size everywhere it matters.
    pub fn with_page_size(mut self, size: PageSize) -> Self {
        self.page_size = size;
        self
    }

    /// Sets the frame-allocation policy of every page table (see
    /// [`PageLayout`]). `PageLayout::contig(0.0, seed)` emulates a
    /// contiguity-aware allocator; intermediate fragmentation
    /// fractions emulate a fragmented huge-page backing.
    pub fn with_page_layout(mut self, layout: PageLayout) -> Self {
        self.page_layout = layout;
        self
    }

    /// Sets the L2 TLB entry count keeping 16-way associativity where
    /// possible (the Figs 2–3 sweep).
    pub fn with_l2_tlb_entries(mut self, entries: usize) -> Self {
        let assoc = if entries.is_multiple_of(16) { 16 } else { entries };
        self.l2_tlb = TlbConfig::set_associative(entries, assoc, self.l2_tlb.latency);
        self
    }

    /// Makes the L2 TLB perfect (always hits; zero page walks) — the
    /// upper-bound series of Figs 2–3.
    pub fn with_perfect_l2_tlb(mut self) -> Self {
        self.l2_tlb_perfect = true;
        self
    }

    /// Disables SIMT page coalescing (ablation: quantifies how much
    /// the coalescer shields the TLBs).
    pub fn without_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }

    /// Disables the IOMMU's split page-walk caches (ablation: shows
    /// how much walk traffic the PGD/PUD/PMD caches absorb).
    pub fn without_page_walk_caches(mut self) -> Self {
        self.iommu.pwc.pgd_entries = 0;
        self.iommu.pwc.pud_entries = 0;
        self.iommu.pwc.pmd_entries = 0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = GpuConfig::default();
        assert_eq!(c.cus, 8);
        assert_eq!(c.waves_per_cu(), 40);
        assert_eq!(c.icache_count(), 2);
        assert_eq!(c.icache_lines(), 256);
        assert_eq!(c.l1_tlb.entries, 32);
        assert_eq!(c.l1_tlb.latency, 108);
        assert_eq!(c.l2_tlb.entries, 512);
        assert_eq!(c.l2_tlb.latency, 188);
    }

    #[test]
    fn sharer_sweep_keeps_total_capacity() {
        for sharers in [1usize, 2, 4, 8] {
            let c = GpuConfig::default().with_icache_sharers(sharers);
            let total = c.icache_bytes as usize * c.icache_count();
            assert_eq!(total, 32 * 1024, "sharers={sharers}");
        }
    }

    #[test]
    fn l2_tlb_sweep() {
        let c = GpuConfig::default().with_l2_tlb_entries(8192);
        assert_eq!(c.l2_tlb.entries, 8192);
        assert_eq!(c.l2_tlb.assoc, 16);
    }
}
