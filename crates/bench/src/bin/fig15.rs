//! Regenerates Figure 15 (entries gained). `--quick`/`--tiny` reduce scale.
fn main() {
    println!("{}", gtr_bench::figures::fig15(scale_from_args()));
}

fn scale_from_args() -> gtr_workloads::scale::Scale {
    if std::env::args().any(|a| a == "--quick") {
        gtr_workloads::scale::Scale::quick()
    } else if std::env::args().any(|a| a == "--tiny") {
        gtr_workloads::scale::Scale::tiny()
    } else {
        gtr_workloads::scale::Scale::paper()
    }
}
