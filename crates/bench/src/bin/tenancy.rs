//! `tenancy` — the first-class multi-tenancy sweep (TENANCY.md).
//!
//! Runs the tenant-count sweep (per-tenant slowdown vs solo across
//! tenant counts × sharing policies × {baseline, IC+LDS}) and the
//! shootdown-storm churn stress scenario, then prints both figures.
//!
//! ```sh
//! cargo run --release -p gtr-bench --bin tenancy -- --tiny
//! cargo run --release -p gtr-bench --bin tenancy -- --scale paper --sample
//! cargo run --release -p gtr-bench --bin tenancy -- --tiny --tenants 2 --policy subentry
//! ```
//!
//! Flags:
//!
//! * `--scale <tiny|quick|paper>` (or `--tiny`/`--quick`) — workload
//!   scale (default paper).
//! * `--tenants <2..8>` — sweep a single tenant count instead of the
//!   default 2/4/8 axis.
//! * `--policy <partitioned|shared|subentry|all>` — sweep one sharing
//!   policy (default all three).
//! * `--sample` — run the sweep under checkpointed interval sampling
//!   (the storm stays exact: it stresses the invalidation path, not
//!   the estimator); `--checkpoint-dir <dir>` caches warmup
//!   checkpoints (default `target/ckpt-cache`).
//! * `--threads N` — pin the matrix worker count; results are
//!   bit-identical for any value (TENANCY.md §5).
//! * `--no-storm` — skip the churn stress scenario.
//! * `--stats-out <dir>` — write each sweep matrix as a schema-v5
//!   JSON document (`tenancy_<N>t_<policy>.json`) plus the untenanted
//!   solo anchor (`tenancy_solo.json`, schema v4) for
//!   `validate_stats`; `--pretty` indents the documents.
//! * `--prof <out.json>` — record a host-side span profile of the
//!   sweep and write it as a Chrome trace (Perfetto-loadable;
//!   summarize with `gtr-analyze --prof-summary`). Simulated results
//!   stay byte-identical.

use gtr_bench::figures::{self, TENANCY_COUNTS};
use gtr_bench::harness::RunMode;
use gtr_bench::profile;
use gtr_sim::prof;
use gtr_vm::tenancy::SharingPolicy;
use gtr_workloads::scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let prof_out = profile::arm_from_args(&args);
    let scale = scale_from_args(&args);
    let sample = args.iter().any(|a| a == "--sample");
    let pretty = args.iter().any(|a| a == "--pretty");
    let no_storm = args.iter().any(|a| a == "--no-storm");
    let counts: Vec<u8> = match str_flag(&args, "--tenants") {
        Some(v) => match v.parse::<u8>() {
            Ok(n) if (2..=8).contains(&n) => vec![n],
            _ => {
                eprintln!("--tenants needs a count in 2..=8 (got {v:?})");
                std::process::exit(2);
            }
        },
        None => TENANCY_COUNTS.to_vec(),
    };
    let policies: Vec<SharingPolicy> = match str_flag(&args, "--policy") {
        None => SharingPolicy::all().to_vec(),
        Some(ref v) if v == "all" => SharingPolicy::all().to_vec(),
        Some(ref v) => match SharingPolicy::parse(v) {
            Some(p) => vec![p],
            None => {
                eprintln!("--policy needs partitioned|shared|subentry|all (got {v:?})");
                std::process::exit(2);
            }
        },
    };
    let stats_out = str_flag(&args, "--stats-out");
    let mut mode = if sample {
        let dir = str_flag(&args, "--checkpoint-dir")
            .unwrap_or_else(|| "target/ckpt-cache".to_string());
        RunMode::sampled(figures::sampling_for(scale)).with_checkpoint_dir(dir)
    } else {
        RunMode::exact()
    };
    if let Some(v) = str_flag(&args, "--threads") {
        let n = v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--threads needs a worker count");
            std::process::exit(2);
        });
        mode = mode.with_workers(n);
    }

    let t = prof::Stopwatch::start();
    let (solo, ms) = figures::tenancy_matrices_subset(scale, &counts, &policies, &mode);
    println!("{}", figures::tenancy_sweep_from(&ms));
    if !no_storm {
        println!("{}", figures::tenancy_storm(scale));
    }
    eprintln!(
        "tenancy sweep: {} matrices ({} cells) in {}",
        ms.len(),
        ms.iter().map(|(_, _, m)| m.baseline.len() + m.variants[0].1.len()).sum::<usize>(),
        t.report()
    );

    if let Some(dir) = stats_out {
        std::fs::create_dir_all(&dir).expect("create stats dir");
        let write = |path: String, j: gtr_sim::json::Json| {
            let mut doc = if pretty {
                j.to_string()
            } else {
                let mut s = String::new();
                j.write_compact(&mut s);
                s
            };
            doc.push('\n');
            std::fs::write(&path, doc).expect("write stats JSON");
            eprintln!("stats written to {path}");
        };
        let _span = prof::span("export:stats");
        write(format!("{dir}/tenancy_solo.json"), solo.to_json());
        for (n, policy, m) in &ms {
            write(format!("{dir}/tenancy_{n}t_{policy}.json"), m.to_json());
        }
    }
    profile::finish(prof_out.as_deref());
}

/// Reads the value of `--flag value`.
fn str_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
            .to_string()
    })
}

fn scale_from_args(args: &[String]) -> Scale {
    if let Some(v) = str_flag(args, "--scale") {
        return match v.as_str() {
            "tiny" => Scale::tiny(),
            "quick" => Scale::quick(),
            "paper" => Scale::paper(),
            other => {
                eprintln!("--scale needs tiny|quick|paper (got {other:?})");
                std::process::exit(2);
            }
        };
    }
    if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else if args.iter().any(|a| a == "--tiny") {
        Scale::tiny()
    } else {
        Scale::paper()
    }
}
