//! Configuration of the reconfigurable translation-reach architecture.

use gtr_sim::Cycle;

pub use gtr_vm::tenancy::{SharingPolicy, TenancyConfig, MAX_TENANTS};

/// Replacement policy of the reconfigurable I-cache (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Translations may replace instruction lines (Fig 13a, second
    /// bar — shown by the paper to *hurt* performance).
    NaiveLru,
    /// Instruction-aware: a translation fill may only claim an invalid
    /// line or replace translations in its direct-mapped line;
    /// instruction fills prefer Tx-mode victims (the paper's design).
    #[default]
    InstructionAware,
}

/// How many translations one 64-byte I-cache line stores in Tx-mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxPerLine {
    /// One 8-byte translation per line (Fig 8b, the naive design —
    /// wastes 56 of 64 bytes).
    One,
    /// Eight translations packed per line with widened, base-delta
    /// compressed tags (Fig 8c, the paper's design).
    #[default]
    Eight,
}

impl TxPerLine {
    /// Entry slots per line.
    pub fn slots(self) -> usize {
        match self {
            TxPerLine::One => 1,
            TxPerLine::Eight => 8,
        }
    }
}

/// How the reconfigurable structures are *filled* (§4.1's design
/// argument: the paper chooses a victim cache "as opposed to a
/// prefetch buffer because the access patterns of irregular
/// applications are hard to predict" — the prefetch-buffer variant is
/// provided as an ablation to test exactly that claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxFillPolicy {
    /// Store L1-TLB victims (the paper's design).
    #[default]
    VictimCache,
    /// Drop L1-TLB victims to the L2 TLB; instead, on every page walk
    /// prefetch the next two pages' translations into the structures.
    PrefetchBuffer,
}

/// LDS segment size (§6.3.1 sensitivity study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentSize {
    /// 32-byte segments: 3 translation ways + 1 compressed tag word.
    #[default]
    Bytes32,
    /// 64-byte segments: 6 translation ways + 2 tag words (same 3:1
    /// data:tag ratio, doubled associativity, half the sets).
    Bytes64,
}

impl SegmentSize {
    /// Segment size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            SegmentSize::Bytes32 => 32,
            SegmentSize::Bytes64 => 64,
        }
    }

    /// Translation ways per segment.
    pub fn ways(self) -> usize {
        match self {
            SegmentSize::Bytes32 => 3,
            SegmentSize::Bytes64 => 6,
        }
    }
}

/// The full knob set of the reconfigurable architecture.
///
/// Use the provided constructors for the paper's named configurations:
///
/// * [`ReachConfig::baseline`] — everything off (the Table-1 GPU).
/// * [`ReachConfig::lds_only`] — translations in idle LDS (Fig 13b).
/// * [`ReachConfig::ic_only`] — translations in idle I-cache lines
///   (Fig 13a, best variant).
/// * [`ReachConfig::ic_plus_lds`] — the headline combined scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachConfig {
    /// Store victims in idle LDS segments.
    pub lds_enabled: bool,
    /// Store victims in idle I-cache lines.
    pub icache_enabled: bool,
    /// Translations per Tx-mode I-cache line.
    pub tx_per_line: TxPerLine,
    /// I-cache replacement policy.
    pub replacement: Replacement,
    /// Flush instruction lines at kernel boundaries when the next
    /// kernel differs (§4.3.3).
    pub flush_opt: bool,
    /// LDS segment size.
    pub segment_size: SegmentSize,
    /// Extra datapath/wire latency added to LDS Tx lookups (Fig 16b).
    pub lds_wire_latency: Cycle,
    /// Extra datapath/wire latency added to I-cache Tx lookups
    /// (Fig 16b).
    pub ic_wire_latency: Cycle,
    /// Tx-mode I-cache tag access latency (Table 1: 20 cycles).
    pub ic_tx_tag_latency: Cycle,
    /// Serialized way-scan penalty for 8-per-line tag comparison
    /// (§4.3.1: 16 cycles).
    pub ic_tx_scan_latency: Cycle,
    /// LDS Tx-mode access latency (Table 1: 35 cycles).
    pub lds_tx_latency: Cycle,
    /// MUX latency (Table 1: 1 cycle).
    pub mux_latency: Cycle,
    /// Base-delta decompression latency (Table 1: 4 cycles).
    pub decompress_latency: Cycle,
    /// Fill policy: victim cache (paper) vs next-page prefetch buffer
    /// (ablation).
    pub fill_policy: TxFillPolicy,
    /// Home-node hashing for the LDS victim store: each VPN lives in
    /// exactly one CU's LDS (`vpn % CUs`), eliminating the cross-CU
    /// duplication of Fig 14a at the price of a remote-LDS hop. This
    /// implements the optimization the paper explicitly defers ("we
    /// leave optimizations to limit the translation duplication for
    /// future investigations", §6.1.1).
    pub lds_home_hashing: bool,
    /// Extra latency of a remote (other-CU) LDS access under home
    /// hashing.
    pub lds_remote_latency: Cycle,
    /// Multi-tenant capacity sharing across every tagged structure
    /// (L1/L2 TLB, LDS-Tx, IC-Tx); `None` — the default, and the only
    /// configuration the paper evaluates — leaves the structures
    /// untenanted and bit-identical to the frozen anchors. See
    /// TENANCY.md and [`TenancyConfig`].
    pub tenancy: Option<TenancyConfig>,
    /// Coalesced (variable-reach) TLB entries (arXiv 2110.08613):
    /// `Some(max)` lets one entry in every tagged structure (L1/L2
    /// TLB, LDS-Tx, IC-Tx) map up to `2^max` physically contiguous
    /// pages, with the span detected at page-walk time from the
    /// allocator's layout (see `gtr_vm::alloc::PageLayout`). `None` —
    /// the default and the paper's configuration — is bit-identical to
    /// the frozen anchors. Timing-side: this knob never shapes the
    /// memory stream, so it is deliberately absent from
    /// `CheckpointKey`'s stream fingerprint.
    pub tlb_coalescing: Option<u8>,
}

impl Default for ReachConfig {
    fn default() -> Self {
        Self::ic_plus_lds()
    }
}

impl ReachConfig {
    fn base() -> Self {
        Self {
            lds_enabled: false,
            icache_enabled: false,
            tx_per_line: TxPerLine::Eight,
            replacement: Replacement::InstructionAware,
            flush_opt: false,
            segment_size: SegmentSize::Bytes32,
            lds_wire_latency: 0,
            ic_wire_latency: 0,
            ic_tx_tag_latency: 20,
            ic_tx_scan_latency: 16,
            lds_tx_latency: 35,
            mux_latency: 1,
            decompress_latency: 4,
            fill_policy: TxFillPolicy::VictimCache,
            lds_home_hashing: false,
            lds_remote_latency: 20,
            tenancy: None,
            tlb_coalescing: None,
        }
    }

    /// The unmodified Table-1 GPU.
    pub fn baseline() -> Self {
        Self::base()
    }

    /// Reconfigurable LDS only (§6.1.1).
    pub fn lds_only() -> Self {
        Self { lds_enabled: true, ..Self::base() }
    }

    /// Reconfigurable I-cache only, instruction-aware 8-per-line with
    /// flush (§6.1.2's best variant).
    pub fn ic_only() -> Self {
        Self { icache_enabled: true, flush_opt: true, ..Self::base() }
    }

    /// The combined headline scheme (§6.1.3).
    pub fn ic_plus_lds() -> Self {
        Self { lds_enabled: true, icache_enabled: true, flush_opt: true, ..Self::base() }
    }

    /// Effective LDS Tx lookup latency (structure + MUX + decompression
    /// + wire).
    pub fn lds_tx_lookup_latency(&self) -> Cycle {
        self.lds_tx_latency + self.mux_latency + self.decompress_latency + self.lds_wire_latency
    }

    /// Effective I-cache Tx lookup latency. The 8-per-line design pays
    /// the serialized way scan and decompression; the 1-per-line design
    /// reuses the instruction comparators directly.
    pub fn ic_tx_lookup_latency(&self) -> Cycle {
        let packing = match self.tx_per_line {
            TxPerLine::One => 0,
            TxPerLine::Eight => self.ic_tx_scan_latency + self.decompress_latency,
        };
        self.ic_tx_tag_latency + self.mux_latency + packing + self.ic_wire_latency
    }

    /// Builder-style: set both wire latencies (Fig 16b).
    pub fn with_wire_latency(mut self, lds: Cycle, ic: Cycle) -> Self {
        self.lds_wire_latency = lds;
        self.ic_wire_latency = ic;
        self
    }

    /// Builder-style: set the LDS segment size (§6.3.1).
    pub fn with_segment_size(mut self, size: SegmentSize) -> Self {
        self.segment_size = size;
        self
    }

    /// Builder-style: set the I-cache packing density (Fig 13a).
    pub fn with_tx_per_line(mut self, tx: TxPerLine) -> Self {
        self.tx_per_line = tx;
        self
    }

    /// Builder-style: set the replacement policy (Fig 13a).
    pub fn with_replacement(mut self, r: Replacement) -> Self {
        self.replacement = r;
        self
    }

    /// Builder-style: enable/disable the kernel-boundary flush.
    pub fn with_flush(mut self, flush: bool) -> Self {
        self.flush_opt = flush;
        self
    }

    /// Builder-style: set the fill policy (§4.1 ablation).
    pub fn with_fill_policy(mut self, policy: TxFillPolicy) -> Self {
        self.fill_policy = policy;
        self
    }

    /// Builder-style: enable home-node-hashed LDS placement (the
    /// paper's deferred duplication-limiting optimization).
    pub fn with_lds_home_hashing(mut self) -> Self {
        self.lds_home_hashing = true;
        self
    }

    /// Builder-style: run `tenants` concurrent address spaces under a
    /// [`SharingPolicy`] (TENANCY.md; arXiv 2404.18361's multi-instance
    /// scenario).
    pub fn with_tenancy(mut self, tenants: u8, policy: SharingPolicy) -> Self {
        self.tenancy = Some(TenancyConfig::new(tenants, policy));
        self
    }

    /// Builder-style: enable coalesced TLB entries with runs of up to
    /// `2^max_span_log2` pages. Pair with a contiguity-aware
    /// `gtr_vm::alloc::PageLayout` on the GPU config — under the
    /// default scatter layout no run ever exceeds one page and the
    /// knob changes nothing but lookup order.
    pub fn with_tlb_coalescing(mut self, max_span_log2: u8) -> Self {
        self.tlb_coalescing = Some(max_span_log2);
        self
    }

    /// Whether any reconfigurable structure is active.
    pub fn any_enabled(&self) -> bool {
        self.lds_enabled || self.icache_enabled
    }
}

/// Interval-sampling parameters for `System::with_sampling`
/// (SMARTS-style sampled simulation with functional warming; see
/// PAPERS.md). All three windows are measured in executed wavefront
/// instructions.
///
/// A sampled run alternates *detailed* intervals (fully timed, exactly
/// the normal simulation) with *fast-forward* intervals (functional
/// warming: translations and cache state update at zero modeled
/// latency). The optional leading warmup window also runs in
/// fast-forward mode; the cycle cost of warmup + fast-forward
/// instructions is extrapolated from the mean detailed-interval CPI,
/// and the spread of per-interval CPIs bounds the extrapolation error
/// (`SamplingMeta::error_bound_pct`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Functional-warming instructions before the first detailed
    /// interval. `0` starts detailed immediately (the right choice
    /// when restoring from a warmup checkpoint).
    pub warmup: u64,
    /// Instructions per detailed (fully timed) interval.
    pub detail: u64,
    /// Instructions per fast-forward interval between detailed
    /// intervals.
    pub fastforward: u64,
}

impl SamplingConfig {
    /// Creates a sampling configuration.
    ///
    /// # Panics
    ///
    /// Panics when `detail` or `fastforward` is zero (a run with no
    /// detailed interval has no CPI to extrapolate from; a zero
    /// fast-forward window never skips anything).
    pub fn new(warmup: u64, detail: u64, fastforward: u64) -> Self {
        assert!(detail > 0, "sampling detail window must be positive");
        assert!(fastforward > 0, "sampling fast-forward window must be positive");
        Self { warmup, detail, fastforward }
    }

    /// Defaults tuned for the paper-scale benchmark suite: 10 k
    /// instructions of warming, then 40 k detailed / 10 k fast-forward.
    ///
    /// The duty cycle is deliberately detail-heavy: the suite's traces
    /// are short (tens of thousands of wave-ops) with extreme
    /// per-phase CPI variance, so a SMARTS-style 1:10 duty cycle
    /// misses whole translation-storm phases and understates the
    /// variant improvements by tens of points. At this ratio the
    /// tiny-scale matrix geomeans land within 2 points of the exact
    /// run and paper-scale within ~4; the wall-clock win comes from
    /// the shared warmup checkpoints rather than the fast-forward
    /// windows.
    pub fn paper_default() -> Self {
        Self::new(10_000, 40_000, 10_000)
    }

    /// The same configuration scaled for a reduced-scale suite (e.g.
    /// `Scale::tiny` multiplies workload sizes by 0.1, so the windows
    /// shrink proportionally). Windows never drop below 512
    /// instructions.
    pub fn scaled(self, factor: f64) -> Self {
        let s = |v: u64| (((v as f64) * factor).round() as u64).max(512);
        Self::new(
            if self.warmup == 0 { 0 } else { s(self.warmup) },
            s(self.detail),
            s(self.fastforward),
        )
    }

    /// Builder-style: drop the warmup window (checkpoint restore
    /// already provides warm state).
    pub fn without_warmup(mut self) -> Self {
        self.warmup = 0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_config_validates_and_scales() {
        let c = SamplingConfig::paper_default();
        assert!(c.warmup > 0 && c.detail > 0 && c.fastforward > 0);
        let t = c.scaled(0.1);
        assert_eq!(t.detail, 4_000);
        assert_eq!(t.fastforward, 1_000);
        assert_eq!(t.warmup, 1_000);
        let floor = c.scaled(1e-9);
        assert_eq!(floor.detail, 512, "windows never collapse to zero");
        assert_eq!(c.without_warmup().warmup, 0);
        assert_eq!(c.without_warmup().scaled(0.5).warmup, 0);
    }

    #[test]
    #[should_panic(expected = "detail window must be positive")]
    fn sampling_config_rejects_zero_detail() {
        let _ = SamplingConfig::new(0, 0, 100);
    }

    #[test]
    fn named_configs() {
        assert!(!ReachConfig::baseline().any_enabled());
        assert!(ReachConfig::lds_only().lds_enabled);
        assert!(!ReachConfig::lds_only().icache_enabled);
        assert!(ReachConfig::ic_only().icache_enabled);
        let both = ReachConfig::ic_plus_lds();
        assert!(both.lds_enabled && both.icache_enabled && both.flush_opt);
        assert!(both.tenancy.is_none(), "the paper's configs are untenanted");
        let mt = ReachConfig::ic_plus_lds().with_tenancy(4, SharingPolicy::SubEntry);
        assert_eq!(mt.tenancy, Some(TenancyConfig::new(4, SharingPolicy::SubEntry)));
    }

    #[test]
    fn table1_latencies() {
        let c = ReachConfig::ic_plus_lds();
        // LDS: 35 + 1 + 4 = 40.
        assert_eq!(c.lds_tx_lookup_latency(), 40);
        // IC (8/line): 20 + 1 + 16 + 4 = 41.
        assert_eq!(c.ic_tx_lookup_latency(), 41);
        // IC (1/line): 20 + 1 = 21.
        assert_eq!(c.with_tx_per_line(TxPerLine::One).ic_tx_lookup_latency(), 21);
    }

    #[test]
    fn wire_latency_adds() {
        let c = ReachConfig::ic_plus_lds().with_wire_latency(50, 100);
        assert_eq!(c.lds_tx_lookup_latency(), 90);
        assert_eq!(c.ic_tx_lookup_latency(), 141);
    }

    #[test]
    fn segment_sizes() {
        assert_eq!(SegmentSize::Bytes32.ways(), 3);
        assert_eq!(SegmentSize::Bytes64.ways(), 6);
        assert_eq!(TxPerLine::One.slots(), 1);
        assert_eq!(TxPerLine::Eight.slots(), 8);
    }
}
