//! DRAMPower-style energy estimation (Chandrasekar et al.).
//!
//! The paper's Figure 13c reports *normalized* DRAM energy, which is a
//! function of command counts (ACT/PRE/RD/WR) and elapsed time
//! (background + refresh). We use representative DDR3-1600 per-command
//! energies derived from IDD currents; absolute joules are not the
//! reproduction target, ratios are.

/// Raw event counts that determine DRAM energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// Row activations.
    pub activates: u64,
    /// Precharges issued on row conflicts.
    pub precharges: u64,
    /// Read bursts.
    pub reads: u64,
    /// Write bursts.
    pub writes: u64,
}

impl EnergyCounters {
    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

/// Per-command energies in nanojoules and background power in
/// nanojoules per GPU cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per ACT+implicit-restore pair.
    pub e_activate_nj: f64,
    /// Energy per PRE.
    pub e_precharge_nj: f64,
    /// Energy per 64-byte read burst.
    pub e_read_nj: f64,
    /// Energy per 64-byte write burst.
    pub e_write_nj: f64,
    /// Background (standby + refresh) energy per GPU cycle.
    pub e_background_nj_per_cycle: f64,
}

impl Default for EnergyModel {
    /// Representative DDR3-1600 x8 2Gb device values (from Micron
    /// datasheet IDD figures via the DRAMPower methodology), scaled to
    /// a 2-channel, 2-rank module.
    fn default() -> Self {
        Self {
            e_activate_nj: 2.5,
            e_precharge_nj: 1.3,
            e_read_nj: 4.2,
            e_write_nj: 4.4,
            e_background_nj_per_cycle: 0.04,
        }
    }
}

impl EnergyModel {
    /// Total energy in nanojoules for `counters` over `cycles` of
    /// elapsed simulated time.
    pub fn total_nj(&self, counters: &EnergyCounters, cycles: u64) -> f64 {
        counters.activates as f64 * self.e_activate_nj
            + counters.precharges as f64 * self.e_precharge_nj
            + counters.reads as f64 * self.e_read_nj
            + counters.writes as f64 * self.e_write_nj
            + cycles as f64 * self.e_background_nj_per_cycle
    }

    /// Dynamic (command) energy only, in nanojoules.
    pub fn dynamic_nj(&self, counters: &EnergyCounters) -> f64 {
        self.total_nj(counters, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counters_zero_dynamic() {
        let m = EnergyModel::default();
        assert_eq!(m.dynamic_nj(&EnergyCounters::default()), 0.0);
        assert!(m.total_nj(&EnergyCounters::default(), 1000) > 0.0, "background accrues");
    }

    #[test]
    fn energy_monotonic_in_events() {
        let m = EnergyModel::default();
        let a = EnergyCounters { activates: 10, precharges: 5, reads: 100, writes: 50 };
        let mut b = a;
        b.reads += 1;
        assert!(m.dynamic_nj(&b) > m.dynamic_nj(&a));
    }

    #[test]
    fn merge_adds() {
        let mut a = EnergyCounters { activates: 1, precharges: 2, reads: 3, writes: 4 };
        a.merge(&EnergyCounters { activates: 10, precharges: 20, reads: 30, writes: 40 });
        assert_eq!(a, EnergyCounters { activates: 11, precharges: 22, reads: 33, writes: 44 });
    }

    #[test]
    fn fewer_accesses_less_energy_at_same_runtime() {
        // The mechanism behind Fig 13c: removing page-walk DRAM traffic
        // reduces energy even at equal runtime.
        let m = EnergyModel::default();
        let baseline = EnergyCounters { activates: 1000, precharges: 800, reads: 10_000, writes: 100 };
        let reconfigured =
            EnergyCounters { activates: 700, precharges: 500, reads: 7_000, writes: 100 };
        let cycles = 1_000_000;
        assert!(m.total_nj(&reconfigured, cycles) < m.total_nj(&baseline, cycles));
    }
}
