//! Workload scale presets.
//!
//! Like the paper ("we had to scale down the simulated GPU
//! configuration significantly and simulate smaller datasets"), traces
//! are sized for a laptop-scale simulator. [`Scale::paper`] is the
//! default experiment size; [`Scale::quick`] and [`Scale::tiny`] shrink
//! per-kernel work for CI and micro-benchmarks while preserving each
//! app's access structure and footprint-vs-reach relationships.

/// A work multiplier applied to iteration counts (never to footprints
/// or kernel counts, which define an app's identity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    factor: f64,
    seed: u64,
}

impl Scale {
    /// Full experiment scale (figures in EXPERIMENTS.md).
    pub fn paper() -> Self {
        Self { factor: 1.0, seed: 0xC0FFEE }
    }

    /// Roughly a third of the work — used by `cargo bench` figure
    /// regeneration.
    pub fn quick() -> Self {
        Self { factor: 0.35, seed: 0xC0FFEE }
    }

    /// Minimal traces for unit/integration tests.
    pub fn tiny() -> Self {
        Self { factor: 0.1, seed: 0xC0FFEE }
    }

    /// A custom factor in `(0, 4]`.
    ///
    /// # Panics
    ///
    /// Panics when the factor is out of range.
    pub fn custom(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 4.0, "scale factor out of range");
        Self { factor, seed: 0xC0FFEE }
    }

    /// Same scale with a different generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The work multiplier (used e.g. to scale sampling windows in
    /// proportion to the workload).
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Scales an iteration count, never below 1.
    pub fn count(&self, base: usize) -> usize {
        ((base as f64 * self.factor).round() as usize).max(1)
    }

    /// Scales a kernel count, never below 2 (so back-to-back structure
    /// survives) unless the base itself is smaller.
    pub fn kernels(&self, base: usize) -> usize {
        if base <= 2 {
            base
        } else {
            self.count(base).max(2)
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(Scale::paper().count(100), 100);
        assert_eq!(Scale::quick().count(100), 35);
        assert_eq!(Scale::tiny().count(100), 10);
        assert_eq!(Scale::tiny().count(3), 1, "never below 1");
    }

    #[test]
    fn kernels_preserve_structure() {
        assert_eq!(Scale::tiny().kernels(2), 2);
        assert_eq!(Scale::tiny().kernels(1), 1);
        assert!(Scale::tiny().kernels(255) >= 2);
    }

    #[test]
    #[should_panic(expected = "scale factor out of range")]
    fn zero_factor_rejected() {
        let _ = Scale::custom(0.0);
    }

    #[test]
    #[should_panic(expected = "scale factor out of range")]
    fn oversized_factor_rejected() {
        let _ = Scale::custom(4.1);
    }

    #[test]
    fn seed_override() {
        let s = Scale::paper().with_seed(7);
        assert_eq!(s.seed(), 7);
        assert_eq!(Scale::paper().seed(), 0xC0FFEE);
    }

    /// Trace generation must be a pure function of `(app, scale)`:
    /// checkpoint reuse and sampled-vs-exact comparisons both assume
    /// two generations of the same app are bit-identical.
    #[test]
    fn custom_scale_generation_is_deterministic() {
        let s = Scale::custom(0.2);
        for name in ["GUPS", "ATAX", "BFS"] {
            let a = crate::suite::by_name(name, s).unwrap();
            let b = crate::suite::by_name(name, s).unwrap();
            assert_eq!(a, b, "{name} regenerated differently under the same scale");
        }
    }

    #[test]
    fn seed_changes_trace_but_stays_deterministic() {
        let base = Scale::tiny();
        let reseeded = Scale::tiny().with_seed(0xDEAD_BEEF);
        let a = crate::suite::by_name("GUPS", reseeded).unwrap();
        let b = crate::suite::by_name("GUPS", reseeded).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same trace");
        let c = crate::suite::by_name("GUPS", base).unwrap();
        assert_ne!(a, c, "a different seed must actually change the random accesses");
    }
}
