//! Host-side span profiler: wall/CPU timelines for the harness.
//!
//! Everything else in this workspace measures *guest* time — simulated
//! GPU cycles ([`crate::trace`], `gtr_core::obs`). This module measures
//! *host* time: where the harness process itself spends its wall clock
//! and CPU while sweeping a matrix — checkpoint capture and replay,
//! interval-sampling transitions, the work-stealing cell pool, figure
//! construction, export. It follows the same zero-cost-when-off
//! discipline as [`crate::trace::TraceSink`]: every emission site
//! checks [`is_enabled`] (one relaxed atomic load) before constructing
//! anything, so a run without `--prof` pays a predictable
//! never-taken branch and nothing else. Profiling never feeds back
//! into simulation state, so enabling it cannot perturb determinism:
//! stats exports are byte-identical with profiling on or off.
//!
//! # Model
//!
//! * A **span** is an RAII guard ([`span`] / [`span_with`]) with a
//!   `&'static str` name and an optional dynamic label; it records
//!   wall time (and per-thread CPU time where the platform exposes
//!   it) from construction to drop.
//! * A **lane** is a named append-only buffer of spans, counter
//!   samples and instant marks. Each thread writes to exactly one
//!   lane (default `"main"`); pool workers call [`set_lane`] with
//!   `"worker-N"` so that worker *N* owns one timeline across every
//!   matrix in the run, matching the Chrome-trace convention of one
//!   row per thread.
//! * [`counter`] records a timestamped sample (a Chrome `C` event:
//!   queue depth over time), [`add`] bumps a monotonic total (steal
//!   events, checkpoint cache hits), and [`mark`] drops an instant
//!   event (sampling interval transitions).
//! * [`write_chrome_trace`] serializes everything as a Chrome Trace
//!   Event Format document — loadable in Perfetto or
//!   `chrome://tracing` — via the workspace's own [`crate::json`]
//!   tree (no serde; the environment is offline).
//!
//! # Example
//!
//! ```
//! use gtr_sim::prof;
//!
//! prof::enable();
//! {
//!     let _outer = prof::span("battery");
//!     let _inner = prof::span_with("figure", || "fig02_03".to_string());
//!     prof::add("ckpt.cache_hit", 1);
//! }
//! let snap = prof::snapshot();
//! assert!(snap.lanes.iter().any(|l| l.spans.len() >= 2));
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;

// ---------------------------------------------------------------------------
// Global state: enabled flag, epoch, lane registry.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Lane>>>>> = OnceLock::new();

thread_local! {
    static CURRENT_LANE: RefCell<Option<Arc<Mutex<Lane>>>> = const { RefCell::new(None) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Lane>>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Microseconds since the profiler epoch (first [`enable`] call).
fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Turns profiling on for the whole process. Idempotent. The first
/// call pins the trace epoch (timestamp zero).
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether profiling is on. Emission sites must check this before
/// constructing labels or events — when it returns `false` the caller
/// should do nothing (the `TraceSink` discipline).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every lane's recorded spans, samples, marks and counter
/// totals. Lanes stay registered (threads keep their lane binding)
/// and the enabled flag and epoch are untouched. Used between
/// measurement passes that want a fresh window.
pub fn reset() {
    let reg = registry().lock().expect("prof registry poisoned");
    for lane in reg.iter() {
        let mut lane = lane.lock().expect("prof lane poisoned");
        lane.spans.clear();
        lane.samples.clear();
        lane.marks.clear();
        lane.adds.clear();
    }
}

// ---------------------------------------------------------------------------
// Lanes.
// ---------------------------------------------------------------------------

/// One thread's timeline: spans, counter samples and instant marks.
#[derive(Debug, Default)]
struct Lane {
    name: String,
    spans: Vec<SpanRec>,
    samples: Vec<CounterSample>,
    marks: Vec<MarkRec>,
    /// Monotonic totals bumped by [`add`], merged across lanes at
    /// snapshot time.
    adds: Vec<(&'static str, u64)>,
}

/// Binds the calling thread to the lane named `name`, creating it on
/// first use. Threads that never call this write to the `"main"`
/// lane. Lanes are keyed by *name*, not thread identity: a pool that
/// respawns its workers per sweep still produces one `worker-N`
/// timeline per worker slot. No-op while profiling is off.
pub fn set_lane(name: &str) {
    if !is_enabled() {
        return;
    }
    let lane = lane_by_name(name);
    CURRENT_LANE.with(|c| *c.borrow_mut() = Some(lane));
}

fn lane_by_name(name: &str) -> Arc<Mutex<Lane>> {
    let mut reg = registry().lock().expect("prof registry poisoned");
    for lane in reg.iter() {
        if lane.lock().expect("prof lane poisoned").name == name {
            return Arc::clone(lane);
        }
    }
    let lane = Arc::new(Mutex::new(Lane { name: name.to_string(), ..Lane::default() }));
    reg.push(Arc::clone(&lane));
    lane
}

/// Runs `f` with the calling thread's lane (binding `"main"` first if
/// the thread has none yet).
fn with_lane(f: impl FnOnce(&mut Lane)) {
    CURRENT_LANE.with(|c| {
        let mut cur = c.borrow_mut();
        if cur.is_none() {
            *cur = Some(lane_by_name("main"));
        }
        let lane = cur.as_ref().expect("lane just bound");
        f(&mut lane.lock().expect("prof lane poisoned"));
    });
}

// ---------------------------------------------------------------------------
// CPU-time probes (std-only; Linux procfs, None elsewhere).
// ---------------------------------------------------------------------------

/// Parses a Linux `/proc/*/stat` line into CPU milliseconds
/// (utime + stime, USER_HZ = 100 on every Linux ABI). Returns `None`
/// on any shape surprise.
fn stat_line_cpu_ms(stat: &str) -> Option<f64> {
    // Fields 14 (utime) and 15 (stime), counted 1-based from the pid;
    // the comm field can contain spaces, so split after the last ')'.
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut it = rest.split_whitespace();
    let utime: f64 = it.nth(11)?.parse().ok()?;
    let stime: f64 = it.next()?.parse().ok()?;
    Some((utime + stime) * 10.0)
}

static PROC_CPU_OK: AtomicBool = AtomicBool::new(true);
static THREAD_CPU_OK: AtomicBool = AtomicBool::new(true);

fn procfs_cpu_ms(path: &str, ok: &AtomicBool) -> Option<f64> {
    if !ok.load(Ordering::Relaxed) {
        return None;
    }
    match std::fs::read_to_string(path).ok().as_deref().and_then(stat_line_cpu_ms) {
        Some(ms) => Some(ms),
        None => {
            // Cache the failure: off-Linux every probe would otherwise
            // retry the filesystem on each span.
            ok.store(false, Ordering::Relaxed);
            None
        }
    }
}

/// CPU time consumed by the whole process so far, in milliseconds, or
/// `None` where the platform does not expose it (non-Linux). Callers
/// that persist the value should record an explicit `null` rather
/// than silently substituting wall time.
pub fn process_cpu_ms() -> Option<f64> {
    procfs_cpu_ms("/proc/self/stat", &PROC_CPU_OK)
}

/// CPU time consumed by the calling thread so far, in milliseconds,
/// or `None` where unavailable.
pub fn thread_cpu_ms() -> Option<f64> {
    procfs_cpu_ms("/proc/thread-self/stat", &THREAD_CPU_OK)
}

// ---------------------------------------------------------------------------
// Spans, counters, marks.
// ---------------------------------------------------------------------------

/// One completed span as recorded in a lane.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Static span name (the aggregation key), e.g. `"cell"`.
    pub name: &'static str,
    /// Dynamic label, e.g. `"GUPS×IC+LDS#3"`. Empty when unlabeled.
    pub label: String,
    /// Start, microseconds since the profiler epoch.
    pub start_us: f64,
    /// End, microseconds since the profiler epoch.
    pub end_us: f64,
    /// Thread CPU time spent inside the span, if the platform
    /// exposes per-thread CPU clocks.
    pub cpu_ms: Option<f64>,
}

/// One timestamped counter sample ([`counter`]).
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Counter name, e.g. `"pool.queue_depth"`.
    pub name: &'static str,
    /// Sample time, microseconds since the profiler epoch.
    pub ts_us: f64,
    /// Sampled value.
    pub value: u64,
}

/// One instant event ([`mark`]).
#[derive(Debug, Clone)]
pub struct MarkRec {
    /// Mark name, e.g. `"sample:detail"`.
    pub name: &'static str,
    /// Event time, microseconds since the profiler epoch.
    pub ts_us: f64,
}

struct SpanLive {
    name: &'static str,
    label: String,
    start: Instant,
    start_us: f64,
    cpu0: Option<f64>,
}

/// RAII span guard: records a [`SpanRec`] into the calling thread's
/// lane on drop. Inert (records nothing) when profiling is off.
pub struct Span {
    live: Option<SpanLive>,
    /// Spans time a single thread's work; keep the guard on the
    /// thread that opened it.
    _not_send: PhantomData<*const ()>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let end_us = live.start_us + live.start.elapsed().as_secs_f64() * 1e6;
            let cpu_ms = match (live.cpu0, thread_cpu_ms()) {
                (Some(a), Some(b)) => Some(b - a),
                _ => None,
            };
            with_lane(|lane| {
                lane.spans.push(SpanRec {
                    name: live.name,
                    label: live.label,
                    start_us: live.start_us,
                    end_us,
                    cpu_ms,
                });
            });
        }
    }
}

/// Opens an unlabeled span. Zero-cost when profiling is off.
pub fn span(name: &'static str) -> Span {
    span_inner(name, String::new())
}

/// Opens a span whose label is computed only when profiling is on —
/// the closure is never called (no formatting, no allocation) while
/// the profiler is off.
pub fn span_with(name: &'static str, label: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span { live: None, _not_send: PhantomData };
    }
    span_inner(name, label())
}

fn span_inner(name: &'static str, label: String) -> Span {
    if !is_enabled() {
        return Span { live: None, _not_send: PhantomData };
    }
    Span {
        live: Some(SpanLive {
            name,
            label,
            start: Instant::now(),
            start_us: now_us(),
            cpu0: thread_cpu_ms(),
        }),
        _not_send: PhantomData,
    }
}

/// Records a timestamped counter sample (a Chrome `C` event) in the
/// calling thread's lane. No-op when profiling is off.
pub fn counter(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let ts_us = now_us();
    with_lane(|lane| lane.samples.push(CounterSample { name, ts_us, value }));
}

/// Bumps a monotonic total (steal events, cache hits). Totals are
/// merged across lanes in [`ProfSnapshot::counters`]. No-op when
/// profiling is off.
pub fn add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_lane(|lane| {
        if let Some(slot) = lane.adds.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
        } else {
            lane.adds.push((name, delta));
        }
    });
}

/// Drops an instant event (a Chrome `i` event) in the calling
/// thread's lane. No-op when profiling is off.
pub fn mark(name: &'static str) {
    if !is_enabled() {
        return;
    }
    let ts_us = now_us();
    with_lane(|lane| lane.marks.push(MarkRec { name, ts_us }));
}

// ---------------------------------------------------------------------------
// Stopwatch: the one way binaries report elapsed time.
// ---------------------------------------------------------------------------

/// Wall + process-CPU stopwatch backing every binary's "ran in ..."
/// print, so they all report the same two numbers the same way
/// (instead of ad-hoc `Instant::now()` wall-only prints).
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    cpu0: Option<f64>,
}

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now(), cpu0: process_cpu_ms() }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    pub fn wall(&self) -> Duration {
        self.start.elapsed()
    }

    /// Process CPU time elapsed since [`Stopwatch::start`], or `None`
    /// where the platform does not expose CPU clocks.
    pub fn cpu_ms(&self) -> Option<f64> {
        match (self.cpu0, process_cpu_ms()) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }

    /// `"3.21s wall, 11.84s cpu"` — or `"3.21s wall, cpu n/a"` where
    /// CPU time is unavailable (the absence is stated, not papered
    /// over with wall time).
    pub fn report(&self) -> String {
        let wall = self.wall().as_secs_f64();
        match self.cpu_ms() {
            Some(cpu) => format!("{:.2}s wall, {:.2}s cpu", wall, cpu / 1e3),
            None => format!("{wall:.2}s wall, cpu n/a"),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots and aggregation.
// ---------------------------------------------------------------------------

/// A copy of one lane's recorded timeline.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Lane name (`"main"`, `"worker-0"`, ...).
    pub name: String,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRec>,
    /// Counter samples, in emission order.
    pub samples: Vec<CounterSample>,
    /// Instant marks, in emission order.
    pub marks: Vec<MarkRec>,
}

/// A copy of the whole profiler state at one moment.
#[derive(Debug, Clone)]
pub struct ProfSnapshot {
    /// All lanes, ordered `"main"` first, then `worker-N` by N, then
    /// the rest by name — the Chrome-trace row order.
    pub lanes: Vec<LaneSnapshot>,
    /// Monotonic totals from [`add`], merged across lanes and sorted
    /// by name.
    pub counters: Vec<(String, u64)>,
}

fn lane_sort_key(name: &str) -> (u8, u64, String) {
    if name == "main" {
        return (0, 0, String::new());
    }
    if let Some(n) = name.strip_prefix("worker-").and_then(|s| s.parse::<u64>().ok()) {
        return (1, n, String::new());
    }
    (2, 0, name.to_string())
}

/// Copies out the current profiler state (non-destructive: recording
/// continues unaffected).
pub fn snapshot() -> ProfSnapshot {
    let reg = registry().lock().expect("prof registry poisoned");
    let mut lanes: Vec<LaneSnapshot> = Vec::new();
    let mut totals: Vec<(String, u64)> = Vec::new();
    for lane in reg.iter() {
        let lane = lane.lock().expect("prof lane poisoned");
        lanes.push(LaneSnapshot {
            name: lane.name.clone(),
            spans: lane.spans.clone(),
            samples: lane.samples.clone(),
            marks: lane.marks.clone(),
        });
        for (name, v) in &lane.adds {
            if let Some(slot) = totals.iter_mut().find(|(n, _)| n == name) {
                slot.1 += v;
            } else {
                totals.push((name.to_string(), *v));
            }
        }
    }
    lanes.sort_by_key(|l| lane_sort_key(&l.name));
    totals.sort();
    ProfSnapshot { lanes, counters: totals }
}

/// Aggregate wall/CPU totals for one span name across all lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct NameTotal {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Summed span wall time, ms. Spans on different workers overlap
    /// in real time, so this is *thread-seconds*, not elapsed wall.
    pub wall_ms: f64,
    /// Summed per-thread CPU time, ms; `None` when no span on this
    /// name had a CPU reading (non-Linux hosts).
    pub cpu_ms: Option<f64>,
}

/// Sums completed spans by name across all lanes, sorted by name.
/// Non-destructive; diff two calls to attribute one phase of a run.
pub fn totals_by_name() -> Vec<NameTotal> {
    let snap = snapshot();
    let mut out: Vec<NameTotal> = Vec::new();
    for lane in &snap.lanes {
        for s in &lane.spans {
            let wall = (s.end_us - s.start_us) / 1e3;
            match out.iter_mut().find(|t| t.name == s.name) {
                Some(t) => {
                    t.count += 1;
                    t.wall_ms += wall;
                    if let Some(c) = s.cpu_ms {
                        t.cpu_ms = Some(t.cpu_ms.unwrap_or(0.0) + c);
                    }
                }
                None => out.push(NameTotal {
                    name: s.name.to_string(),
                    count: 1,
                    wall_ms: wall,
                    cpu_ms: s.cpu_ms,
                }),
            }
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

// ---------------------------------------------------------------------------
// Chrome Trace Event Format writer.
// ---------------------------------------------------------------------------

/// What [`write_chrome_trace`] wrote, for log lines and smoke checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of timeline lanes emitted.
    pub lanes: usize,
    /// Number of completed spans across all lanes.
    pub spans: usize,
    /// Total Chrome events emitted (metadata + B/E + C + i).
    pub events: usize,
}

fn ev(ph: &str, name: Option<&str>, tid: usize, ts: Option<f64>) -> Vec<(String, Json)> {
    let mut fields = vec![("ph".to_string(), Json::from(ph))];
    if let Some(n) = name {
        fields.push(("name".to_string(), Json::from(n)));
    }
    fields.push(("pid".to_string(), Json::from(1u64)));
    fields.push(("tid".to_string(), Json::from(tid)));
    if let Some(t) = ts {
        fields.push(("ts".to_string(), Json::from(t)));
    }
    fields
}

/// Serializes a snapshot as a Chrome Trace Event Format document
/// (`{"traceEvents": [...]}`), loadable in Perfetto or
/// `chrome://tracing`. Span events are emitted as balanced `B`/`E`
/// pairs per lane; the static span name rides in `cat` (the
/// aggregation key) and labeled spans render as `name:label`.
/// Aggregate counter totals land in a `gtrCounters` root key that
/// trace viewers ignore.
pub fn chrome_trace(snap: &ProfSnapshot) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (tid, lane) in snap.lanes.iter().enumerate() {
        // Lane name row header.
        let mut meta = ev("M", Some("thread_name"), tid, None);
        meta.push((
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::from(lane.name.as_str()))]),
        ));
        events.push(Json::Obj(meta));

        // RAII guarantees spans on one thread nest properly; rebuild
        // the B/E stream by sweeping spans in start order (ties:
        // longest first, so parents open before children) and closing
        // every span that ends at or before the next one starts.
        let mut order: Vec<&SpanRec> = lane.spans.iter().collect();
        order.sort_by(|a, b| {
            a.start_us
                .total_cmp(&b.start_us)
                .then(b.end_us.total_cmp(&a.end_us))
        });
        let mut open: Vec<f64> = Vec::new();
        for s in &order {
            while open.last().is_some_and(|&end| end <= s.start_us) {
                let end = open.pop().expect("non-empty checked");
                events.push(Json::Obj(ev("E", None, tid, Some(end))));
            }
            let display = if s.label.is_empty() {
                s.name.to_string()
            } else {
                format!("{}:{}", s.name, s.label)
            };
            let mut b = ev("B", Some(&display), tid, Some(s.start_us));
            b.push(("cat".to_string(), Json::from(s.name)));
            if let Some(cpu) = s.cpu_ms {
                b.push((
                    "args".to_string(),
                    Json::Obj(vec![("cpu_ms".to_string(), Json::from(cpu))]),
                ));
            }
            events.push(Json::Obj(b));
            open.push(s.end_us);
        }
        while let Some(end) = open.pop() {
            events.push(Json::Obj(ev("E", None, tid, Some(end))));
        }

        for m in &lane.marks {
            let mut i = ev("i", Some(m.name), tid, Some(m.ts_us));
            i.push(("s".to_string(), Json::from("t")));
            events.push(Json::Obj(i));
        }
        for c in &lane.samples {
            let mut e = ev("C", Some(c.name), tid, Some(c.ts_us));
            e.push((
                "args".to_string(),
                Json::Obj(vec![("value".to_string(), Json::from(c.value))]),
            ));
            events.push(Json::Obj(e));
        }
    }
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), Json::from(*v)))
        .collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::from("ms")),
        ("gtrCounters".to_string(), Json::Obj(counters)),
    ])
}

/// Snapshots the profiler and writes the Chrome trace to `path`.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<TraceStats> {
    let snap = snapshot();
    let doc = chrome_trace(&snap);
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .unwrap_or(0);
    let mut text = String::new();
    doc.write_compact(&mut text);
    text.push('\n');
    std::fs::write(path, text)?;
    Ok(TraceStats {
        lanes: snap.lanes.len(),
        spans: snap.lanes.iter().map(|l| l.spans.len()).sum(),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_line_parses_utime_stime() {
        // comm contains spaces and a ')': split must use the LAST ')'.
        let line = "1234 (weird) name) S 1 1 1 0 -1 4194560 100 0 0 0 250 75 0 0 20 0 1 0 100 0 0";
        assert_eq!(stat_line_cpu_ms(line), Some((250.0 + 75.0) * 10.0));
        assert_eq!(stat_line_cpu_ms("garbage"), None);
    }

    #[test]
    fn lane_order_is_main_then_workers_then_rest() {
        let mut names = vec!["worker-10", "aux", "worker-2", "main", "worker-0"];
        names.sort_by_key(|n| lane_sort_key(n));
        assert_eq!(names, vec!["main", "worker-0", "worker-2", "worker-10", "aux"]);
    }

    #[test]
    fn chrome_trace_emits_balanced_nested_events() {
        // Hand-built snapshot: a parent span enclosing two children,
        // plus a disjoint later span — B/E counts must balance and
        // the document must round-trip through the JSON parser.
        let snap = ProfSnapshot {
            lanes: vec![LaneSnapshot {
                name: "main".to_string(),
                spans: vec![
                    SpanRec { name: "child", label: "a".into(), start_us: 10.0, end_us: 20.0, cpu_ms: None },
                    SpanRec { name: "parent", label: String::new(), start_us: 0.0, end_us: 50.0, cpu_ms: Some(1.0) },
                    SpanRec { name: "child", label: "b".into(), start_us: 30.0, end_us: 40.0, cpu_ms: None },
                    SpanRec { name: "late", label: String::new(), start_us: 60.0, end_us: 70.0, cpu_ms: None },
                ],
                samples: vec![CounterSample { name: "q", ts_us: 5.0, value: 3 }],
                marks: vec![MarkRec { name: "m", ts_us: 15.0 }],
            }],
            counters: vec![("pool.steals".to_string(), 2)],
        };
        let doc = chrome_trace(&snap);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("trace JSON parses");
        let events = back.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(p))
                .count()
        };
        assert_eq!(ph("B"), 4);
        assert_eq!(ph("E"), 4);
        assert_eq!(ph("M"), 1);
        assert_eq!(ph("C"), 1);
        assert_eq!(ph("i"), 1);
        // Nesting: sweep the B/E stream, depth must never go negative
        // and must end at zero.
        let mut depth: i64 = 0;
        for e in events {
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => depth += 1,
                Some("E") => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(
            back.get("gtrCounters").and_then(|c| c.get("pool.steals")).and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn spans_record_once_enabled() {
        enable();
        set_lane("prof-unit-test");
        {
            let _outer = span("outer");
            let _inner = span_with("inner", || "label".to_string());
            add("hits", 2);
            add("hits", 3);
            counter("depth", 7);
            mark("tick");
        }
        let snap = snapshot();
        let lane = snap
            .lanes
            .iter()
            .find(|l| l.name == "prof-unit-test")
            .expect("lane registered");
        assert!(lane.spans.iter().any(|s| s.name == "outer"));
        assert!(lane.spans.iter().any(|s| s.name == "inner" && s.label == "label"));
        assert!(lane.spans.iter().all(|s| s.end_us >= s.start_us));
        assert_eq!(lane.samples.len(), 1);
        assert_eq!(lane.marks.len(), 1);
        assert!(snap.counters.iter().any(|(n, v)| n == "hits" && *v >= 5));
        let totals = totals_by_name();
        assert!(totals.iter().any(|t| t.name == "outer" && t.count >= 1));
    }
}
