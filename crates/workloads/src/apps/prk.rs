//! PageRank / "PRK" (Pannotia): iterative rank propagation over a CSR
//! graph.
//!
//! Table 2: 41 launches of two alternating kernels, Low PTW-PKI
//! (0.16), 99.9% L2 TLB hit ratio, small LDS use. Rank updates stream
//! the CSR arrays with high locality; the footprint is modest and
//! hot — the third "must not regress" control.

use gtr_gpu::kernel::{AppTrace, KernelDesc};
use gtr_sim::rng::SplitMix64;

use crate::gen::{into_workgroups, WaveBuilder, PAGE};
use crate::graph::CsrGraph;
use crate::scale::Scale;

/// Vertex count.
pub const VERTICES: u64 = 65_536;

/// LDS bytes per workgroup (per-wavefront rank reduction buffer).
pub const LDS_BYTES: u32 = 1024;

/// Builds the PRK trace.
pub fn build(scale: Scale) -> AppTrace {
    let graph = CsrGraph::generate(scale.seed() ^ 0x9912, VERTICES, 8);
    let mut rng = SplitMix64::new(scale.seed() ^ 0x99120);
    let launches = scale.kernels(41).max(2);
    let mut kernels = Vec::with_capacity(launches);
    for i in 0..launches {
        let name = if i % 2 == 0 { "pagerank_kernel1" } else { "pagerank_kernel2" };
        // Fig 11g: PRK's per-kernel I-cache footprint varies launch to
        // launch.
        let code = 64 + ((i as u32 * 37) % 160);
        let waves = 8usize;
        let mut programs = Vec::with_capacity(waves);
        for w in 0..waves as u64 {
            let mut b = WaveBuilder::new(9);
            b.lds_write(((w % 2) as u32) * 256);
            for j in 0..scale.count(30) as u64 {
                // Stream rank and row-pointer arrays (hot, sequential).
                b.stream_read(graph.props_base + ((w * 13 + j) * 256) % (VERTICES * 4));
                b.stream_read(graph.row_ptr_addr((w * 640 + j * 64) % graph.vertices));
                if j % 4 == 0 {
                    // Occasional neighbor gather with low divergence.
                    b.gather(&mut rng, graph.edges_base, graph.edges * 4 / PAGE, 4);
                }
            }
            b.lds_read(((w % 2) as u32) * 256);
            programs.push(b.build());
        }
        kernels.push(KernelDesc::new(name, code, LDS_BYTES, into_workgroups(programs, 4)));
    }
    AppTrace::new("PRK", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let app = build(Scale::tiny());
        assert!(app.kernels().len() >= 2);
        assert!(!app.has_back_to_back_kernels());
        assert_eq!(app.distinct_kernels(), 2);
    }

    #[test]
    fn paper_scale_launch_count() {
        assert_eq!(build(Scale::paper()).kernels().len(), 41);
    }

    #[test]
    fn code_footprint_varies_across_launches() {
        let app = build(Scale::paper());
        let lines: std::collections::HashSet<u32> =
            app.kernels().iter().map(|k| k.code_lines()).collect();
        assert!(lines.len() > 4, "Fig 11g needs varying I-cache footprints");
    }
}
