//! Generic set-associative TLB with true-LRU replacement.
//!
//! Instantiated as the paper's per-CU fully-associative 32-entry L1
//! TLB, the GPU-shared 16-way 512-entry L2 TLB, and the IOMMU's device
//! TLBs (Table 1). Evictions are surfaced to the caller because the
//! reconfigurable architecture routes L1-TLB victims into the idle
//! LDS segments (§4.2) and I-cache lines (§4.3) organized as a victim
//! cache between the two TLB levels (Fig 12).

use gtr_sim::fastmap::FastMap;
use gtr_sim::stats::HitMiss;

use crate::addr::{Ppn, Translation, TranslationKey, VmId};

/// Configuration of one TLB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity; `entries` for fully associative.
    pub assoc: usize,
    /// Access latency in cycles (hit latency; charged by the caller).
    pub latency: u64,
}

impl TlbConfig {
    /// Fully-associative configuration.
    pub fn fully_associative(entries: usize, latency: u64) -> Self {
        Self { entries, assoc: entries, latency }
    }

    /// Set-associative configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` divides evenly into sets of `assoc`.
    pub fn set_associative(entries: usize, assoc: usize, latency: u64) -> Self {
        assert!(assoc > 0 && entries.is_multiple_of(assoc), "entries must be a multiple of assoc");
        Self { entries, assoc, latency }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.entries / self.assoc).max(1)
    }
}

/// Sentinel for "no slot" in the intrusive LRU lists.
const NIL: u32 = u32::MAX;

/// One TLB way: the entry plus its position in the owning set's
/// doubly-linked recency list (or the free list when unused).
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: TranslationKey,
    ppn: Ppn,
    prev: u32,
    next: u32,
    used: bool,
}

impl Slot {
    fn empty() -> Self {
        Self {
            key: TranslationKey::default(),
            ppn: Ppn::default(),
            prev: NIL,
            next: NIL,
            used: false,
        }
    }
}

/// A set-associative, true-LRU TLB.
///
/// # Example
///
/// ```
/// use gtr_vm::tlb::{Tlb, TlbConfig};
/// use gtr_vm::addr::{Ppn, Translation, TranslationKey, Vpn};
///
/// let mut tlb = Tlb::new(TlbConfig::fully_associative(2, 1));
/// let k = |v| TranslationKey::for_vpn(Vpn(v));
/// tlb.insert(Translation::new(k(1), Ppn(10)));
/// tlb.insert(Translation::new(k(2), Ppn(20)));
/// assert!(tlb.lookup(k(1)).is_some());
/// // inserting a third entry evicts the LRU (vpn 2)
/// let victim = tlb.insert(Translation::new(k(3), Ppn(30))).unwrap();
/// assert_eq!(victim.key, k(2));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    nsets: usize,
    /// Flat slot arena: set `s` owns slots `s*assoc .. (s+1)*assoc`.
    slots: Vec<Slot>,
    /// Per-set MRU end of the recency list.
    head: Vec<u32>,
    /// Per-set LRU end of the recency list (the eviction victim).
    tail: Vec<u32>,
    /// Per-set free-list head (unused slots chained through `next`).
    free: Vec<u32>,
    /// key -> slot id, so lookups never scan ways.
    index: FastMap<TranslationKey, u32>,
    len: usize,
    stats: HitMiss,
    evictions: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let nsets = config.sets();
        let cap = nsets * config.assoc;
        let mut tlb = Self {
            config,
            nsets,
            slots: vec![Slot::empty(); cap],
            head: vec![NIL; nsets],
            tail: vec![NIL; nsets],
            free: vec![NIL; nsets],
            index: FastMap::with_capacity(cap.min(1 << 16)),
            len: 0,
            stats: HitMiss::new(),
            evictions: 0,
        };
        tlb.init_lists();
        tlb
    }

    /// Resets every slot to empty and rebuilds the per-set free lists.
    fn init_lists(&mut self) {
        let assoc = self.config.assoc;
        for s in 0..self.nsets {
            self.head[s] = NIL;
            self.tail[s] = NIL;
            let base = (s * assoc) as u32;
            self.free[s] = if assoc == 0 { NIL } else { base };
            for j in 0..assoc {
                let i = base + j as u32;
                self.slots[i as usize] = Slot::empty();
                if j + 1 < assoc {
                    self.slots[i as usize].next = i + 1;
                }
            }
        }
    }

    /// Unlinks a used slot from its set's recency list.
    fn detach(&mut self, s: usize, i: u32) {
        let (p, n) = {
            let sl = &self.slots[i as usize];
            (sl.prev, sl.next)
        };
        if p != NIL {
            self.slots[p as usize].next = n;
        } else {
            self.head[s] = n;
        }
        if n != NIL {
            self.slots[n as usize].prev = p;
        } else {
            self.tail[s] = p;
        }
    }

    /// Links a slot at the MRU end of its set's recency list.
    fn push_mru(&mut self, s: usize, i: u32) {
        let h = self.head[s];
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = h;
        if h != NIL {
            self.slots[h as usize].prev = i;
        } else {
            self.tail[s] = i;
        }
        self.head[s] = i;
    }

    /// This TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    fn set_index(&self, key: TranslationKey) -> usize {
        // XOR-folded index (commercial TLBs hash set bits) so that
        // power-of-two VPN strides — page-sized matrix rows above all —
        // do not collapse onto a handful of sets.
        let v = key.vpn.0;
        ((v ^ (v >> 7) ^ (v >> 14)) as usize) % self.nsets
    }

    /// Looks up a key, updating LRU state and hit/miss counters.
    pub fn lookup(&mut self, key: TranslationKey) -> Option<Translation> {
        match self.index.get(key).copied() {
            Some(i) => {
                let s = i as usize / self.config.assoc;
                self.detach(s, i);
                self.push_mru(s, i);
                self.stats.hit();
                let sl = &self.slots[i as usize];
                Some(Translation::new(sl.key, sl.ppn))
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Checks presence without perturbing LRU or counters.
    pub fn probe(&self, key: TranslationKey) -> Option<Translation> {
        self.index.get(key).map(|&i| {
            let sl = &self.slots[i as usize];
            Translation::new(sl.key, sl.ppn)
        })
    }

    /// Batched [`Self::probe`] over one wavefront's deduped keys: bit
    /// `i` of the result is set when `keys[i]` is resident. Like
    /// `probe`, touches no LRU state and no counters — the whole-batch
    /// tag compare runs as one struct-of-arrays pass over the index
    /// (see [`FastMap::contains_many`]) instead of one dependent
    /// hash-probe chain per page.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > 64`.
    pub fn probe_many(&self, keys: &[TranslationKey]) -> u64 {
        self.index.contains_many(keys)
    }

    /// Inserts a translation, returning the evicted victim if the set
    /// was full. Re-inserting an existing key refreshes its frame and
    /// LRU position without eviction.
    ///
    /// The returned victim is what the reconfigurable architecture
    /// feeds into the Fig-12 fill flow: an L1-TLB eviction tries the
    /// victim's LDS segment (§4.2), then its direct-mapped I-cache
    /// line (§4.3), then the L2 TLB.
    pub fn insert(&mut self, tx: Translation) -> Option<Translation> {
        if let Some(&i) = self.index.get(tx.key) {
            let s = i as usize / self.config.assoc;
            self.slots[i as usize].ppn = tx.ppn;
            self.detach(s, i);
            self.push_mru(s, i);
            return None;
        }
        let s = self.set_index(tx.key);
        let fi = self.free[s];
        if fi != NIL {
            self.free[s] = self.slots[fi as usize].next;
            let sl = &mut self.slots[fi as usize];
            sl.key = tx.key;
            sl.ppn = tx.ppn;
            sl.used = true;
            self.push_mru(s, fi);
            self.index.insert(tx.key, fi);
            self.len += 1;
            return None;
        }
        let v = self.tail[s];
        debug_assert_ne!(v, NIL, "full set is non-empty");
        let victim = {
            let sl = &self.slots[v as usize];
            Translation::new(sl.key, sl.ppn)
        };
        self.index.remove(victim.key);
        self.detach(s, v);
        {
            let sl = &mut self.slots[v as usize];
            sl.key = tx.key;
            sl.ppn = tx.ppn;
        }
        self.push_mru(s, v);
        self.index.insert(tx.key, v);
        self.evictions += 1;
        Some(victim)
    }

    /// Invalidates a single key (TLB shootdown, §7.1 — the runtime
    /// page-migration protocol must also reach translations cached in
    /// the reconfigurable structures); returns whether it was present.
    pub fn invalidate(&mut self, key: TranslationKey) -> bool {
        match self.index.remove(key) {
            Some(i) => {
                let s = i as usize / self.config.assoc;
                self.detach(s, i);
                let sl = &mut self.slots[i as usize];
                sl.used = false;
                sl.prev = NIL;
                sl.next = self.free[s];
                self.free[s] = i;
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Invalidates every entry belonging to an address space.
    pub fn invalidate_vmid(&mut self, vmid: VmId) -> usize {
        let doomed: Vec<TranslationKey> = self
            .slots
            .iter()
            .filter(|sl| sl.used && sl.key.vmid == vmid)
            .map(|sl| sl.key)
            .collect();
        for &key in &doomed {
            self.invalidate(key);
        }
        doomed.len()
    }

    /// Removes all entries.
    pub fn flush(&mut self) {
        self.index.clear();
        self.len = 0;
        self.init_lists();
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.config.entries
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Number of evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::new();
        self.evictions = 0;
    }

    /// Iterates over all resident translations (for duplication
    /// analysis, Fig 14a).
    pub fn iter(&self) -> impl Iterator<Item = Translation> + '_ {
        self.slots
            .iter()
            .filter(|sl| sl.used)
            .map(|sl| Translation::new(sl.key, sl.ppn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Vpn;

    fn k(v: u64) -> TranslationKey {
        TranslationKey::for_vpn(Vpn(v))
    }

    fn tx(v: u64) -> Translation {
        Translation::new(k(v), Ppn(v + 1000))
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut t = Tlb::new(TlbConfig::fully_associative(4, 1));
        assert!(t.lookup(k(1)).is_none());
        t.insert(tx(1));
        assert!(t.lookup(k(1)).is_some());
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(TlbConfig::fully_associative(3, 1));
        t.insert(tx(1));
        t.insert(tx(2));
        t.insert(tx(3));
        t.lookup(k(1)); // 1 is now MRU; LRU is 2
        let victim = t.insert(tx(4)).unwrap();
        assert_eq!(victim.key, k(2));
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn set_associative_conflicts() {
        // 4 entries, 2-way => 2 sets; vpns 0,2,4 all map to set 0.
        let mut t = Tlb::new(TlbConfig::set_associative(4, 2, 1));
        assert!(t.insert(tx(0)).is_none());
        assert!(t.insert(tx(2)).is_none());
        let victim = t.insert(tx(4)).unwrap();
        assert_eq!(victim.key, k(0));
        // Set 1 still has room.
        assert!(t.insert(tx(1)).is_none());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut t = Tlb::new(TlbConfig::fully_associative(2, 1));
        t.insert(tx(1));
        t.insert(tx(2));
        assert!(t.insert(Translation::new(k(1), Ppn(77))).is_none());
        assert_eq!(t.lookup(k(1)).unwrap().ppn, Ppn(77));
        // vpn 2 became LRU after the vpn-1 refresh + lookup
        let v = t.insert(tx(3)).unwrap();
        assert_eq!(v.key, k(2));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut t = Tlb::new(TlbConfig::fully_associative(2, 1));
        t.insert(tx(1));
        t.insert(tx(2));
        t.probe(k(1)); // no LRU update: 1 stays LRU
        let v = t.insert(tx(3)).unwrap();
        assert_eq!(v.key, k(1));
        assert_eq!(t.stats().total(), 0, "probe must not count");
    }

    #[test]
    fn probe_many_matches_single_probes() {
        let mut t = Tlb::new(TlbConfig::set_associative(32, 4, 1));
        for v in 0..24 {
            t.insert(tx(v * 3));
        }
        let keys: Vec<TranslationKey> = (0..64).map(|v| k(v)).collect();
        let mask = t.probe_many(&keys);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(mask & (1 << i) != 0, t.probe(key).is_some(), "lane {i}");
        }
        assert_eq!(t.stats().total(), 0, "probe_many must not count");
        assert_eq!(t.probe_many(&[]), 0);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(TlbConfig::set_associative(8, 4, 1));
        for v in 0..8 {
            t.insert(tx(v));
        }
        assert!(t.invalidate(k(3)));
        assert!(!t.invalidate(k(3)));
        assert_eq!(t.len(), 7);
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    fn invalidate_vmid_scopes_to_address_space() {
        use crate::addr::{VmId, VrfId};
        let mut t = Tlb::new(TlbConfig::fully_associative(8, 1));
        for v in 0..4 {
            t.insert(Translation::new(
                TranslationKey { vpn: Vpn(v), vmid: VmId::new(1), vrf: VrfId::default() },
                Ppn(v),
            ));
        }
        t.insert(tx(100)); // vmid 0
        assert_eq!(t.invalidate_vmid(VmId::new(1)), 4);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn vrf_and_vmid_distinguish_same_vpn() {
        use crate::addr::{VmId, VrfId};
        let mut t = Tlb::new(TlbConfig::fully_associative(8, 1));
        let mk = |vm: u8, vrf: u8| TranslationKey {
            vpn: Vpn(7),
            vmid: VmId::new(vm),
            vrf: VrfId::new(vrf),
        };
        t.insert(Translation::new(mk(0, 0), Ppn(1)));
        t.insert(Translation::new(mk(1, 0), Ppn(2)));
        t.insert(Translation::new(mk(0, 1), Ppn(3)));
        // Same VPN, three address-space identities: three entries.
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(mk(0, 0)).unwrap().ppn, Ppn(1));
        assert_eq!(t.lookup(mk(1, 0)).unwrap().ppn, Ppn(2));
        assert_eq!(t.lookup(mk(0, 1)).unwrap().ppn, Ppn(3));
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut t = Tlb::new(TlbConfig::set_associative(16, 4, 1));
        for v in 0..10 {
            t.insert(tx(v));
        }
        let keys: std::collections::HashSet<_> = t.iter().map(|e| e.key.vpn.0).collect();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    #[should_panic(expected = "multiple of assoc")]
    fn bad_geometry_panics() {
        let _ = TlbConfig::set_associative(10, 4, 1);
    }
}
