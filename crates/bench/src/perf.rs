//! Simulator-throughput measurement: the perf regression harness.
//!
//! Every figure of the paper reproduction is a sweep of the app ×
//! variant matrix through the cycle-level simulator, so the number
//! that gates iteration speed is *simulated cycles per second* on the
//! main matrix. Each measurement runs the sweep [`MEASURE_PASSES`]
//! times and keeps the fastest pass by process CPU time (wall clock
//! is also recorded), making the gate robust to co-tenant machine
//! load. This module measures it on a fixed
//! tiny-scale workload and serializes the result to
//! `BENCH_sim_throughput.json` at the repository root, giving every
//! future PR a committed baseline to compare against (`perf --check`
//! fails CI when throughput regresses more than
//! [`REGRESSION_TOLERANCE_PCT`]).
//!
//! No external dependencies: JSON is emitted by hand and parsed
//! through [`gtr_sim::json`] (the schema is owned by this module), so
//! the harness works in fully offline environments.
//!
//! Baseline files hold a **history**: a JSON array of records, one
//! per measured commit, newest last. `--check` gates against the last
//! record; the default (re-baseline) mode appends a record instead of
//! overwriting, so throughput evolution stays reviewable in-repo
//! (`gtr-analyze --bench-history` prints the trend). Files written
//! before the history format (a bare object) still parse as a
//! one-record history.
//!
//! Measurements run with the host profiler ([`gtr_sim::prof`])
//! enabled, and each record carries a `phases` object — the fastest
//! pass's wall/CPU time attributed to checkpoint acquisition, cell
//! simulation, and result merging — so a regression can be localized
//! from the committed history alone. On platforms without CPU clocks
//! the `cpu_ms` fields are an explicit JSON `null` (the gate falls
//! back to wall time and warns once); older records without a
//! `cpu_ms` key parse as CPU = wall, matching how they were measured.

use std::path::{Path, PathBuf};
use std::time::Instant;

use gtr_sim::json::Json;
use gtr_sim::prof;
use gtr_workloads::scale::Scale;

use crate::figures;
use crate::harness::RunMode;

/// File name of the committed throughput baseline, at the repo root.
pub const BASELINE_FILE: &str = "BENCH_sim_throughput.json";

/// `--check` fails when measured throughput falls more than this far
/// below the committed baseline.
pub const REGRESSION_TOLERANCE_PCT: f64 = 20.0;

/// Number of back-to-back sweeps per measurement; the fastest is
/// reported. Repeating suppresses one-off scheduler/co-tenant noise.
pub const MEASURE_PASSES: usize = 3;

/// Wall/CPU time attributed to one named phase of a measured sweep
/// (the fastest pass), from host-profiler span totals.
///
/// `wall_ms` sums span durations **across worker threads**, so on a
/// parallel sweep it is thread-milliseconds, not elapsed wall clock
/// (the `replay` phase additionally nests inside `cells` — phases
/// attribute time, they do not partition it).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTotal {
    /// Phase name (`"checkpoint"`, `"cells"`, `"replay"`, `"merge"`).
    pub name: String,
    /// Summed span wall time, ms.
    pub wall_ms: f64,
    /// Summed per-thread CPU time, ms; `None` where the platform has
    /// no per-thread CPU clocks (serialized as JSON `null`).
    pub cpu_ms: Option<f64>,
}

/// One throughput measurement of the tiny-scale main matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Git commit the measurement was taken at (or `"unknown"`).
    pub commit: String,
    /// Workload scale label (`"tiny"` for the committed baseline).
    pub scale: String,
    /// Wall-clock time of the fastest sweep in milliseconds.
    pub wall_ms: f64,
    /// Process CPU time (utime + stime) of the fastest sweep in
    /// milliseconds; `None` (serialized as JSON `null`) where the
    /// platform exposes no CPU clocks. CPU time is what the
    /// regression gate tracks when present: unlike wall clock it is
    /// insensitive to co-tenant machine load.
    pub cpu_ms: Option<f64>,
    /// Total simulated cycles across every matrix cell.
    pub sim_cycles: u64,
    /// `sim_cycles / cpu seconds` (wall seconds where CPU time is
    /// unavailable) — the tracked throughput metric.
    pub cycles_per_sec: f64,
    /// Per-phase breakdown of the fastest pass. Empty when measured
    /// with the profiler off (records older than the `phases` field).
    pub phases: Vec<PhaseTotal>,
}

fn fmt_opt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.1}"),
        None => "null".to_string(),
    }
}

fn phases_json(phases: &[PhaseTotal]) -> String {
    let body: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "    \"{}\": {{\"wall_ms\": {:.1}, \"cpu_ms\": {}}}",
                p.name,
                p.wall_ms,
                fmt_opt_ms(p.cpu_ms)
            )
        })
        .collect();
    format!(",\n  \"phases\": {{\n{}\n  }}", body.join(",\n"))
}

fn parse_opt_ms(j: &Json, key: &str, legacy: Option<f64>) -> Option<Option<f64>> {
    match j.get(key) {
        None => Some(legacy),     // key absent: pre-CPU-tracking record
        Some(Json::Null) => Some(None), // explicit null: no CPU clocks
        Some(v) => Some(Some(v.as_f64()?)),
    }
}

fn parse_phases(j: &Json) -> Vec<PhaseTotal> {
    let Some(fields) = j.get("phases").and_then(Json::fields) else {
        return Vec::new();
    };
    fields
        .iter()
        .filter_map(|(name, v)| {
            Some(PhaseTotal {
                name: name.clone(),
                wall_ms: v.get("wall_ms")?.as_f64()?,
                cpu_ms: match v.get("cpu_ms") {
                    None | Some(Json::Null) => None,
                    Some(c) => Some(c.as_f64()?),
                },
            })
        })
        .collect()
}

impl PerfReport {
    /// Serializes the report as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"commit\": \"{}\",\n  \"scale\": \"{}\",\n  \"wall_ms\": {:.1},\n  \"cpu_ms\": {},\n  \"sim_cycles\": {},\n  \"cycles_per_sec\": {:.0}",
            self.commit,
            self.scale,
            self.wall_ms,
            fmt_opt_ms(self.cpu_ms),
            self.sim_cycles,
            self.cycles_per_sec
        );
        if !self.phases.is_empty() {
            s.push_str(&phases_json(&self.phases));
        }
        s.push_str("\n}\n");
        s
    }

    /// Parses a report written by [`PerfReport::to_json`]. Returns
    /// `None` when a field is missing or malformed. A record without
    /// a `cpu_ms` key predates CPU tracking and parses as CPU = wall
    /// (how it was measured); an explicit `null` parses as `None`.
    pub fn from_json(s: &str) -> Option<Self> {
        let j = Json::parse(s).ok()?;
        let wall_ms = j.get("wall_ms")?.as_f64()?;
        Some(Self {
            commit: j.get("commit")?.as_str()?.to_string(),
            scale: j.get("scale")?.as_str()?.to_string(),
            wall_ms,
            cpu_ms: parse_opt_ms(&j, "cpu_ms", Some(wall_ms))?,
            sim_cycles: j.get("sim_cycles")?.as_u64()?,
            cycles_per_sec: j.get("cycles_per_sec")?.as_f64()?,
            phases: parse_phases(&j),
        })
    }
}

/// Splits a baseline document into per-record object substrings, in
/// file order (oldest first, newest last). Accepts both the history
/// format (a JSON array of records) and the pre-history format (one
/// bare object, which yields a one-element history). Brace depth is
/// tracked (records contain a nested `phases` object) and string
/// contents are skipped, so any record this module emits splits
/// exactly.
pub fn split_history(s: &str) -> Vec<&str> {
    let mut records = Vec::new();
    let mut start = None;
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_str {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(b) = start.take() {
                        records.push(&s[b..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    records
}

/// Appends `record` (one object, as emitted by a `to_json`) to a
/// baseline history document, returning the new document. When the
/// last existing record was taken at the same commit it is replaced
/// instead — re-measuring on a dirty tree keeps one record per
/// commit, as the history is meant to read as one point per PR.
pub fn append_history(existing: &str, record: &str) -> String {
    fn record_commit(s: &str) -> Option<String> {
        Some(Json::parse(s).ok()?.get("commit")?.as_str()?.to_string())
    }
    let mut records: Vec<String> =
        split_history(existing).into_iter().map(str::to_string).collect();
    let same_commit = records
        .last()
        .zip(record_commit(record))
        .is_some_and(|(last, commit)| record_commit(last).as_ref() == Some(&commit));
    if same_commit {
        records.pop();
    }
    records.push(record.trim().to_string());
    let mut doc = String::from("[\n");
    doc.push_str(&records.join(",\n"));
    doc.push_str("\n]\n");
    doc
}

/// The newest (last) record of a [`PerfReport`] history document.
pub fn latest_report(s: &str) -> Option<PerfReport> {
    PerfReport::from_json(split_history(s).last()?)
}

/// The newest (last) record of a [`MatrixPerfReport`] history document.
pub fn latest_matrix_report(s: &str) -> Option<MatrixPerfReport> {
    MatrixPerfReport::from_json(split_history(s).last()?)
}

/// Process CPU time in milliseconds ([`prof::process_cpu_ms`]).
/// `None` on platforms without CPU clocks — warned about once, and
/// recorded as an explicit `null` rather than silently substituting
/// wall time into a field named "cpu".
fn cpu_time_ms() -> Option<f64> {
    let v = prof::process_cpu_ms();
    if v.is_none() {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "warning: process CPU time is unavailable on this platform; \
                 BENCH records will carry \"cpu_ms\": null and throughput \
                 gates fall back to wall clock"
            );
        });
    }
    v
}

/// `sim_cycles`- or `cells`-per-second denominator: CPU seconds when
/// available, wall seconds otherwise.
fn rate_seconds(wall_ms: f64, cpu_ms: Option<f64>) -> f64 {
    (cpu_ms.unwrap_or(wall_ms) / 1e3).max(1e-9)
}

/// The phase attribution of one measured pass: the delta of
/// [`prof::totals_by_name`] across the pass, mapped onto the stable
/// BENCH phase names. Span names nested inside `ckpt:acquire`
/// (probe/decode/capture) are not double-counted; `replay` nests
/// inside `cells` by construction (documented on [`PhaseTotal`]).
fn phase_delta(before: &[prof::NameTotal], after: &[prof::NameTotal]) -> Vec<PhaseTotal> {
    let find = |set: &[prof::NameTotal], name: &str| -> (f64, Option<f64>) {
        set.iter()
            .find(|t| t.name == name)
            .map_or((0.0, None), |t| (t.wall_ms, t.cpu_ms))
    };
    let mut out = Vec::new();
    for (phase, span) in [
        ("checkpoint", "ckpt:acquire"),
        ("cells", "cell"),
        ("replay", "ckpt:replay"),
        ("merge", "pool:merge"),
    ] {
        let (w0, c0) = find(before, span);
        let (w1, c1) = find(after, span);
        let wall_ms = w1 - w0;
        let cpu_ms = c1.map(|c1| c1 - c0.unwrap_or(0.0));
        if wall_ms > 0.0 {
            out.push(PhaseTotal { name: phase.to_string(), wall_ms, cpu_ms });
        }
    }
    out
}

/// One timed sweep result: fastest pass of `passes` runs of the main
/// matrix at `scale` under `mode`, with cycle totals asserted
/// identical across passes.
struct SweepTiming {
    wall_ms: f64,
    cpu_ms: Option<f64>,
    cells: u64,
    sim_cycles: u64,
    phases: Vec<PhaseTotal>,
}

fn timed_sweeps(scale: Scale, mode: &RunMode, passes: usize, what: &str) -> SweepTiming {
    // Measurements profile themselves so every BENCH record carries a
    // phase breakdown. The profiler only observes host time — it
    // cannot perturb the simulated cycle totals asserted below.
    prof::enable();
    let mut best: Option<(f64, Option<f64>, Vec<PhaseTotal>)> = None;
    let mut sim_cycles = 0u64;
    let mut cells = 0u64;
    for pass in 0..passes {
        let totals0 = prof::totals_by_name();
        let cpu0 = cpu_time_ms();
        let t = Instant::now();
        let m = figures::main_matrix_mode(scale, false, mode);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let cpu_ms = match (cpu0, cpu_time_ms()) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        };
        let phases = phase_delta(&totals0, &prof::totals_by_name());
        let cycles: u64 = m
            .baseline
            .iter()
            .chain(m.variants.iter().flat_map(|(_, stats)| stats.iter()))
            .map(|s| s.total_cycles)
            .sum();
        if pass == 0 {
            sim_cycles = cycles;
            cells = (m.baseline.len() * (1 + m.variants.len())) as u64;
        } else {
            assert_eq!(cycles, sim_cycles, "non-deterministic {what} sweep");
        }
        // Fastest pass by CPU time (wall where CPU is unavailable).
        let cost = cpu_ms.unwrap_or(wall_ms);
        if best
            .as_ref()
            .is_none_or(|(w, c, _)| cost < c.unwrap_or(*w))
        {
            best = Some((wall_ms, cpu_ms, phases));
        }
    }
    let (wall_ms, cpu_ms, phases) = best.expect("at least one measurement pass");
    SweepTiming { wall_ms, cpu_ms, cells, sim_cycles, phases }
}

/// Runs the main (Fig 13/14/15) matrix at `scale` [`MEASURE_PASSES`]
/// times and reports the fastest pass by CPU time (wall clock where
/// CPU time is unavailable). Simulated cycle counts are asserted
/// identical across passes — the sweep is deterministic. `workers`
/// pins the matrix worker-thread count (0 = available parallelism);
/// the results are bit-identical for any value.
pub fn measure_workers(scale: Scale, scale_label: &str, workers: usize) -> PerfReport {
    let mode = RunMode::exact().with_workers(workers);
    let t = timed_sweeps(scale, &mode, MEASURE_PASSES, "exact");
    PerfReport {
        commit: git_commit(),
        scale: scale_label.to_string(),
        wall_ms: t.wall_ms,
        cpu_ms: t.cpu_ms,
        sim_cycles: t.sim_cycles,
        cycles_per_sec: t.sim_cycles as f64 / rate_seconds(t.wall_ms, t.cpu_ms),
        phases: t.phases,
    }
}

/// [`measure_workers`] with the default worker count.
pub fn measure(scale: Scale, scale_label: &str) -> PerfReport {
    measure_workers(scale, scale_label, 0)
}

/// The standard committed measurement: tiny scale.
pub fn measure_tiny() -> PerfReport {
    measure(Scale::tiny(), "tiny")
}

/// File name of the committed paper-scale sampled-matrix baseline, at
/// the repo root.
pub const PAPER_BASELINE_FILE: &str = "BENCH_matrix_paper.json";

/// Passes for the paper-scale sampled measurement. The sweep is an
/// order of magnitude bigger than the tiny matrix, so fewer
/// repetitions; the second pass reuses the first pass's disk-cached
/// checkpoints, which is the steady-state cost being tracked.
pub const PAPER_MEASURE_PASSES: usize = 2;

/// One throughput measurement of the paper-scale sampled main matrix
/// (checkpointed warmup + interval sampling — the `all --sample`
/// path).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixPerfReport {
    /// Git commit the measurement was taken at (or `"unknown"`).
    pub commit: String,
    /// Workload scale label (`"paper"` for the committed baseline).
    pub scale: String,
    /// Wall-clock time of the fastest pass in milliseconds.
    pub wall_ms: f64,
    /// Process CPU time of the fastest pass in milliseconds; `None`
    /// (JSON `null`) where the platform exposes no CPU clocks. The
    /// regression gate tracks cells/sec derived from this when
    /// present (wall time otherwise).
    pub cpu_ms: Option<f64>,
    /// Matrix cells simulated per pass (apps × variants).
    pub cells: u64,
    /// Sum of every cell's `total_cycles` — the determinism anchor:
    /// sampled runs are bit-deterministic, so any drift means the
    /// model (not the machine) changed.
    pub sim_cycles: u64,
    /// `cells / cpu seconds` — the tracked throughput metric.
    pub cells_per_sec: f64,
    /// Cycle total of the **exact** (unsampled) paper-scale matrix —
    /// a second determinism anchor, recorded by `perf --paper
    /// --exact`. `None` in records measured without `--exact`.
    pub exact_sim_cycles: Option<u64>,
    /// Exact-mode matrix throughput in cells per CPU second, recorded
    /// by `perf --paper --exact`.
    pub exact_cells_per_sec: Option<f64>,
    /// Per-phase breakdown of the fastest **sampled** pass (the
    /// steady-state `all --sample` cost this baseline tracks). Empty
    /// in records older than the `phases` field.
    pub phases: Vec<PhaseTotal>,
}

impl MatrixPerfReport {
    /// Serializes the report as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"commit\": \"{}\",\n  \"scale\": \"{}\",\n  \"wall_ms\": {:.1},\n  \"cpu_ms\": {},\n  \"cells\": {},\n  \"sim_cycles\": {},\n  \"cells_per_sec\": {:.2}",
            self.commit,
            self.scale,
            self.wall_ms,
            fmt_opt_ms(self.cpu_ms),
            self.cells,
            self.sim_cycles,
            self.cells_per_sec
        );
        if let (Some(cycles), Some(rate)) = (self.exact_sim_cycles, self.exact_cells_per_sec) {
            s.push_str(&format!(
                ",\n  \"exact_sim_cycles\": {cycles},\n  \"exact_cells_per_sec\": {rate:.2}"
            ));
        }
        if !self.phases.is_empty() {
            s.push_str(&phases_json(&self.phases));
        }
        s.push_str("\n}\n");
        s
    }

    /// Parses a report written by [`MatrixPerfReport::to_json`]. The
    /// `cpu_ms` compatibility contract matches
    /// [`PerfReport::from_json`].
    pub fn from_json(s: &str) -> Option<Self> {
        let j = Json::parse(s).ok()?;
        let wall_ms = j.get("wall_ms")?.as_f64()?;
        Some(Self {
            commit: j.get("commit")?.as_str()?.to_string(),
            scale: j.get("scale")?.as_str()?.to_string(),
            wall_ms,
            cpu_ms: parse_opt_ms(&j, "cpu_ms", Some(wall_ms))?,
            cells: j.get("cells")?.as_u64()?,
            sim_cycles: j.get("sim_cycles")?.as_u64()?,
            cells_per_sec: j.get("cells_per_sec")?.as_f64()?,
            exact_sim_cycles: j.get("exact_sim_cycles").and_then(Json::as_u64),
            exact_cells_per_sec: j.get("exact_cells_per_sec").and_then(Json::as_f64),
            phases: parse_phases(&j),
        })
    }
}

/// Measures the paper-scale sampled main matrix (shared warmup
/// checkpoints, cached on disk under `target/ckpt-cache`) and reports
/// the fastest of [`PAPER_MEASURE_PASSES`] passes. Cycle counts are
/// asserted identical across passes — checkpointed sampling is as
/// deterministic as exact simulation.
///
/// `workers` pins the matrix worker-thread count (0 = available
/// parallelism). With `exact` set the **exact** (unsampled) matrix is
/// additionally swept and its cell throughput and cycle anchor are
/// recorded in the report's `exact_*` fields — this is the `perf
/// --paper --exact` path, budget-gated in CI because it simulates
/// every cell in full.
pub fn measure_paper_workers(workers: usize, exact: bool) -> MatrixPerfReport {
    let scale = Scale::paper();
    let ckpt_dir = repo_root().join("target").join("ckpt-cache");
    let mode = RunMode::sampled(figures::sampling_for(scale))
        .with_checkpoint_dir(&ckpt_dir)
        .with_workers(workers);
    let t = timed_sweeps(scale, &mode, PAPER_MEASURE_PASSES, "sampled");
    let (exact_sim_cycles, exact_cells_per_sec) = if exact {
        let mode = RunMode::exact().with_workers(workers);
        let e = timed_sweeps(scale, &mode, PAPER_MEASURE_PASSES, "exact paper");
        (Some(e.sim_cycles), Some(e.cells as f64 / rate_seconds(e.wall_ms, e.cpu_ms)))
    } else {
        (None, None)
    };
    MatrixPerfReport {
        commit: git_commit(),
        scale: "paper".to_string(),
        wall_ms: t.wall_ms,
        cpu_ms: t.cpu_ms,
        cells: t.cells,
        sim_cycles: t.sim_cycles,
        cells_per_sec: t.cells as f64 / rate_seconds(t.wall_ms, t.cpu_ms),
        exact_sim_cycles,
        exact_cells_per_sec,
        phases: t.phases,
    }
}

/// [`measure_paper_workers`] with the default worker count, sampled
/// only — the pre-`--exact` behaviour.
pub fn measure_paper() -> MatrixPerfReport {
    measure_paper_workers(0, false)
}

/// Compares a paper-scale measurement against the committed baseline;
/// same contract as [`check_against`].
pub fn check_matrix_against(
    baseline: Option<&MatrixPerfReport>,
    measured: &MatrixPerfReport,
) -> Result<String, String> {
    let Some(base) = baseline else {
        return Ok(format!(
            "no committed paper baseline; measured {:.2} cells/s",
            measured.cells_per_sec
        ));
    };
    if measured.sim_cycles != base.sim_cycles {
        return Err(format!(
            "sampled cycle total changed: baseline {} (commit {}), measured {} — \
             the model's behaviour changed; re-baseline deliberately with `--bin perf -- --paper`",
            base.sim_cycles, base.commit, measured.sim_cycles
        ));
    }
    if let (Some(b), Some(m)) = (base.exact_sim_cycles, measured.exact_sim_cycles) {
        if b != m {
            return Err(format!(
                "exact cycle total changed: baseline {b} (commit {}), measured {m} — \
                 the model's behaviour changed; re-baseline deliberately with \
                 `--bin perf -- --paper --exact`",
                base.commit
            ));
        }
    }
    let floor = base.cells_per_sec * (1.0 - REGRESSION_TOLERANCE_PCT / 100.0);
    let delta_pct = (measured.cells_per_sec / base.cells_per_sec - 1.0) * 100.0;
    let mut verdict = format!(
        "baseline {:.2} cells/s (commit {}), measured {:.2} cells/s ({:+.1}%)",
        base.cells_per_sec, base.commit, measured.cells_per_sec, delta_pct
    );
    if let (Some(b), Some(m)) = (base.exact_cells_per_sec, measured.exact_cells_per_sec) {
        verdict.push_str(&format!("; exact {b:.2} -> {m:.2} cells/s"));
        if m < b * (1.0 - REGRESSION_TOLERANCE_PCT / 100.0) {
            return Err(format!(
                "{verdict}: exact-mode regression exceeds {REGRESSION_TOLERANCE_PCT}% tolerance"
            ));
        }
    }
    if measured.cells_per_sec < floor {
        Err(format!(
            "{verdict}: regression exceeds {REGRESSION_TOLERANCE_PCT}% tolerance"
        ))
    } else {
        Ok(verdict)
    }
}

/// File name of the committed serve-latency baseline, at the repo
/// root.
pub const SERVE_BASELINE_FILE: &str = "BENCH_serve_latency.json";

/// Hot cells must answer at least this many times faster than cold
/// cells at the median — the headline `gtr-serve` invariant: a hot
/// cell is one cache probe, never a simulation.
pub const SERVE_SPEEDUP_FLOOR: u64 = 100;

/// One latency measurement of the `gtr-serve` result cache: the tiny
/// exact (app × config) sweep submitted cell-by-cell against an
/// in-process server, cold (empty cache) then hot (fully memoized).
#[derive(Debug, Clone, PartialEq)]
pub struct ServePerfReport {
    /// Git commit the measurement was taken at (or `"unknown"`).
    pub commit: String,
    /// Workload scale label (`"tiny"` for the committed baseline).
    pub scale: String,
    /// Distinct cells submitted per pass.
    pub cells: u64,
    /// Cold-pass per-cell service latency, median, microseconds.
    pub cold_p50_us: u64,
    /// Cold-pass p90 latency, microseconds.
    pub cold_p90_us: u64,
    /// Cold-pass p99 latency, microseconds.
    pub cold_p99_us: u64,
    /// Hot-pass (memoized) median latency, microseconds — the
    /// record-kind marker `gtr-analyze --bench-history` detects serve
    /// records by.
    pub hot_p50_us: u64,
    /// Hot-pass p90 latency, microseconds.
    pub hot_p90_us: u64,
    /// Hot-pass p99 latency, microseconds.
    pub hot_p99_us: u64,
    /// Percentage of hot-pass requests answered from the cache
    /// (anything under 100 means a memoized cell re-entered the
    /// simulator — a correctness failure, not a perf number).
    pub hot_hit_rate_pct: f64,
    /// Simulations the server ran across both passes; equals `cells`
    /// when dedupe/memoization worked perfectly.
    pub simulations: u64,
    /// `cold_p50_us / hot_p50_us` — the headline speedup.
    pub speedup_p50: f64,
}

impl ServePerfReport {
    /// Serializes the report as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"commit\": \"{}\",\n  \"scale\": \"{}\",\n  \"cells\": {},\n  \
             \"cold_p50_us\": {},\n  \"cold_p90_us\": {},\n  \"cold_p99_us\": {},\n  \
             \"hot_p50_us\": {},\n  \"hot_p90_us\": {},\n  \"hot_p99_us\": {},\n  \
             \"hot_hit_rate_pct\": {:.1},\n  \"simulations\": {},\n  \"speedup_p50\": {:.1}\n}}\n",
            self.commit,
            self.scale,
            self.cells,
            self.cold_p50_us,
            self.cold_p90_us,
            self.cold_p99_us,
            self.hot_p50_us,
            self.hot_p90_us,
            self.hot_p99_us,
            self.hot_hit_rate_pct,
            self.simulations,
            self.speedup_p50
        )
    }

    /// Parses a report written by [`ServePerfReport::to_json`].
    pub fn from_json(s: &str) -> Option<Self> {
        let j = Json::parse(s).ok()?;
        let u = |k: &str| j.get(k)?.as_u64();
        Some(Self {
            commit: j.get("commit")?.as_str()?.to_string(),
            scale: j.get("scale")?.as_str()?.to_string(),
            cells: u("cells")?,
            cold_p50_us: u("cold_p50_us")?,
            cold_p90_us: u("cold_p90_us")?,
            cold_p99_us: u("cold_p99_us")?,
            hot_p50_us: u("hot_p50_us")?,
            hot_p90_us: u("hot_p90_us")?,
            hot_p99_us: u("hot_p99_us")?,
            hot_hit_rate_pct: j.get("hot_hit_rate_pct")?.as_f64()?,
            simulations: u("simulations")?,
            speedup_p50: j.get("speedup_p50")?.as_f64()?,
        })
    }
}

/// The newest (last) record of a [`ServePerfReport`] history document.
pub fn latest_serve_report(s: &str) -> Option<ServePerfReport> {
    ServePerfReport::from_json(split_history(s).last()?)
}

/// Parses the cell-response header lines out of one pass's response
/// stream into a latency histogram plus the count of cache-sourced
/// answers.
fn serve_pass_latencies(responses: &[String]) -> (gtr_sim::hist::Hist, u64) {
    let mut hist = gtr_sim::hist::Hist::default();
    let mut cache_hits = 0u64;
    for line in responses {
        let Ok(j) = Json::parse(line) else { continue };
        if j.get("cell").is_none() {
            continue; // stats documents and control lines
        }
        if let Some(us) = j.get("micros").and_then(Json::as_u64) {
            hist.record(us);
        }
        if j.get("source").and_then(Json::as_str) == Some("cache") {
            cache_hits += 1;
        }
    }
    (hist, cache_hits)
}

/// Measures `gtr-serve` cell latency against an in-process server on
/// a loopback port: the tiny exact (Table-2 suite × 4 configs) sweep,
/// submitted one cell per batch so every response header's `micros`
/// is that cell's own service time. The cold pass starts from an
/// empty result cache (`target/serve-perf-cache` is cleared first);
/// the hot pass resubmits the identical cells and must be answered
/// entirely from the memo.
pub fn measure_serve(workers: usize) -> ServePerfReport {
    use crate::serve::{run_server, submit_lines, ServeState};
    use gtr_workloads::suite;

    let cache_dir = repo_root().join("target").join("serve-perf-cache");
    let _ = std::fs::remove_dir_all(&cache_dir); // the cold pass must be cold
    let state = std::sync::Arc::new(ServeState::new(workers, Some(cache_dir), None));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound listener has an address");
    let server = {
        let state = std::sync::Arc::clone(&state);
        std::thread::spawn(move || run_server(state, listener))
    };
    // One request per batch — a blank line flushes after every cell —
    // so latency percentiles measure cells, not whole-batch waits.
    let mut lines = Vec::new();
    for app in suite::all(Scale::tiny()) {
        for config in ["baseline", "lds", "ic", "ic+lds"] {
            lines.push(format!(
                "{{\"app\":\"{}\",\"config\":\"{config}\",\"scale\":\"tiny\",\"mode\":\"exact\"}}",
                app.name()
            ));
            lines.push(String::new());
        }
    }
    let cold = submit_lines(addr, &lines).expect("cold serve pass");
    let hot = submit_lines(addr, &lines).expect("hot serve pass");
    let ctl = submit_lines(
        addr,
        &["{\"cmd\":\"stats\"}".to_string(), "{\"cmd\":\"shutdown\"}".to_string()],
    )
    .expect("stats + shutdown");
    let _ = server.join();
    let (cold_hist, _) = serve_pass_latencies(&cold);
    let (hot_hist, hot_hits) = serve_pass_latencies(&hot);
    let simulations = ctl
        .first()
        .and_then(|l| Json::parse(l).ok())
        .and_then(|j| j.get("counters")?.get("simulations")?.as_u64())
        .unwrap_or(0);
    let cells = cold_hist.count();
    let hot_p50 = hot_hist.p50();
    ServePerfReport {
        commit: git_commit(),
        scale: "tiny".to_string(),
        cells,
        cold_p50_us: cold_hist.p50(),
        cold_p90_us: cold_hist.p90(),
        cold_p99_us: cold_hist.p99(),
        hot_p50_us: hot_p50,
        hot_p90_us: hot_hist.p90(),
        hot_p99_us: hot_hist.p99(),
        hot_hit_rate_pct: if cells == 0 { 0.0 } else { hot_hits as f64 * 100.0 / cells as f64 },
        simulations,
        speedup_p50: cold_hist.p50() as f64 / hot_p50.max(1) as f64,
    }
}

/// Gates a serve measurement. Unlike the throughput gates this checks
/// *invariants of the measured record itself* — they must hold on any
/// machine, so a slow CI box cannot mask a caching bug:
///
/// * the hot pass is 100% cache hits,
/// * the server ran exactly one simulation per distinct cell
///   (memoized cells never re-entered the simulator),
/// * hot-cell p50 is at least [`SERVE_SPEEDUP_FLOOR`]× faster than
///   cold-cell p50.
///
/// The committed baseline is reported for context but not gated on —
/// microsecond-scale latencies are machine noise, not regressions.
pub fn check_serve_against(
    baseline: Option<&ServePerfReport>,
    measured: &ServePerfReport,
) -> Result<String, String> {
    if measured.cells == 0 {
        return Err("serve measurement answered zero cells".to_string());
    }
    if measured.hot_hit_rate_pct < 100.0 {
        return Err(format!(
            "hot pass hit rate {:.1}% — memoized cells re-entered the simulator",
            measured.hot_hit_rate_pct
        ));
    }
    if measured.simulations != measured.cells {
        return Err(format!(
            "{} simulations for {} distinct cells — dedupe/memoization leaked",
            measured.simulations, measured.cells
        ));
    }
    if measured.hot_p50_us.max(1).saturating_mul(SERVE_SPEEDUP_FLOOR) > measured.cold_p50_us {
        return Err(format!(
            "hot p50 {} us vs cold p50 {} us — under the {SERVE_SPEEDUP_FLOOR}x floor",
            measured.hot_p50_us, measured.cold_p50_us
        ));
    }
    let mut verdict = format!(
        "cold p50 {} us -> hot p50 {} us ({:.0}x), {} cells, hot hits 100%",
        measured.cold_p50_us, measured.hot_p50_us, measured.speedup_p50, measured.cells
    );
    if let Some(base) = baseline {
        verdict.push_str(&format!(
            "; baseline hot p50 {} us (commit {})",
            base.hot_p50_us, base.commit
        ));
    }
    Ok(verdict)
}

/// Current `HEAD` commit hash, or `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The workspace root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Compares `measured` against the committed baseline. Returns
/// `Err(message)` when throughput regressed beyond the tolerance, and
/// `Ok(message)` (a human-readable verdict) otherwise — including when
/// no baseline exists yet.
pub fn check_against(baseline: Option<&PerfReport>, measured: &PerfReport) -> Result<String, String> {
    let Some(base) = baseline else {
        return Ok(format!(
            "no committed baseline; measured {:.0} cycles/s",
            measured.cycles_per_sec
        ));
    };
    if measured.sim_cycles != base.sim_cycles {
        return Err(format!(
            "simulated cycle count changed: baseline {} (commit {}), measured {} — \
             the model's behaviour changed; re-baseline deliberately with `--bin perf`",
            base.sim_cycles, base.commit, measured.sim_cycles
        ));
    }
    let floor = base.cycles_per_sec * (1.0 - REGRESSION_TOLERANCE_PCT / 100.0);
    let delta_pct = (measured.cycles_per_sec / base.cycles_per_sec - 1.0) * 100.0;
    let verdict = format!(
        "baseline {:.0} cycles/s (commit {}), measured {:.0} cycles/s ({:+.1}%)",
        base.cycles_per_sec, base.commit, measured.cycles_per_sec, delta_pct
    );
    if measured.cycles_per_sec < floor {
        Err(format!(
            "{verdict}: regression exceeds {REGRESSION_TOLERANCE_PCT}% tolerance"
        ))
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let r = PerfReport {
            commit: "abc1234".into(),
            scale: "tiny".into(),
            wall_ms: 1234.5,
            cpu_ms: Some(1200.0),
            sim_cycles: 987_654_321,
            cycles_per_sec: 800_000_000.0,
            phases: vec![
                PhaseTotal { name: "checkpoint".into(), wall_ms: 34.5, cpu_ms: Some(30.0) },
                PhaseTotal { name: "cells".into(), wall_ms: 1100.0, cpu_ms: Some(1080.0) },
            ],
        };
        let parsed = PerfReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed.commit, r.commit);
        assert_eq!(parsed.scale, r.scale);
        assert_eq!(parsed.sim_cycles, r.sim_cycles);
        assert!((parsed.wall_ms - r.wall_ms).abs() < 0.1);
        assert!((parsed.cycles_per_sec - r.cycles_per_sec).abs() < 1.0);
        assert_eq!(parsed.phases.len(), 2);
        assert_eq!(parsed.phases[0].name, "checkpoint");
        assert!((parsed.phases[1].wall_ms - 1100.0).abs() < 0.1);
        assert_eq!(parsed.phases[1].cpu_ms, Some(1080.0));
    }

    #[test]
    fn cpu_ms_null_and_legacy_shapes() {
        // Explicit null (platform without CPU clocks) parses as None…
        let mut r = PerfReport {
            commit: "abc".into(),
            scale: "tiny".into(),
            wall_ms: 100.0,
            cpu_ms: None,
            sim_cycles: 1,
            cycles_per_sec: 10.0,
            phases: vec![PhaseTotal { name: "cells".into(), wall_ms: 90.0, cpu_ms: None }],
        };
        let json = r.to_json();
        assert!(json.contains("\"cpu_ms\": null"), "explicit null, not an omitted key: {json}");
        let parsed = PerfReport::from_json(&json).expect("null cpu_ms parses");
        assert_eq!(parsed.cpu_ms, None);
        assert_eq!(parsed.phases[0].cpu_ms, None);
        // …while a record with no cpu_ms key at all (pre-CPU-tracking
        // baseline) parses as CPU = wall, how it was measured.
        r.phases.clear();
        let legacy = r.to_json().replace("  \"cpu_ms\": null,\n", "");
        assert!(!legacy.contains("cpu_ms"));
        let parsed = PerfReport::from_json(&legacy).expect("legacy record parses");
        assert_eq!(parsed.cpu_ms, Some(100.0));
    }

    #[test]
    fn history_splits_records_with_nested_phases() {
        let mut r1 = matrix_report("aaa1111");
        r1.phases = vec![
            PhaseTotal { name: "checkpoint".into(), wall_ms: 50.0, cpu_ms: Some(48.0) },
            PhaseTotal { name: "cells".into(), wall_ms: 9000.0, cpu_ms: Some(8800.0) },
        ];
        let mut r2 = matrix_report("bbb2222");
        r2.phases = r1.phases.clone();
        let doc = append_history(&r1.to_json(), &r2.to_json());
        let records = split_history(&doc);
        assert_eq!(records.len(), 2, "nested phases object must not split records: {doc}");
        let parsed = MatrixPerfReport::from_json(records[1]).expect("record parses");
        assert_eq!(parsed.commit, "bbb2222");
        assert_eq!(parsed.phases.len(), 2);
    }

    fn matrix_report(commit: &str) -> MatrixPerfReport {
        MatrixPerfReport {
            commit: commit.into(),
            scale: "paper".into(),
            wall_ms: 10000.0,
            cpu_ms: Some(9800.0),
            cells: 40,
            sim_cycles: 44_523_456,
            cells_per_sec: 4.08,
            exact_sim_cycles: None,
            exact_cells_per_sec: None,
            phases: Vec::new(),
        }
    }

    #[test]
    fn history_appends_newest_last_and_reads_legacy_single_object() {
        let r1 = matrix_report("aaa1111");
        let mut r2 = matrix_report("bbb2222");
        r2.cells_per_sec = 5.0;
        // Legacy file: a bare object is a one-record history.
        let legacy = r1.to_json();
        assert_eq!(split_history(&legacy).len(), 1);
        assert_eq!(latest_matrix_report(&legacy).unwrap().commit, "aaa1111");
        // Appending wraps into an array, newest last.
        let doc = append_history(&legacy, &r2.to_json());
        let records = split_history(&doc);
        assert_eq!(records.len(), 2);
        assert_eq!(MatrixPerfReport::from_json(records[0]).unwrap().commit, "aaa1111");
        let last = latest_matrix_report(&doc).unwrap();
        assert_eq!(last.commit, "bbb2222");
        assert!((last.cells_per_sec - 5.0).abs() < 1e-9);
        // Re-measuring at the same commit replaces the last record
        // rather than growing the history.
        let mut r2b = r2.clone();
        r2b.cells_per_sec = 6.0;
        let doc = append_history(&doc, &r2b.to_json());
        assert_eq!(split_history(&doc).len(), 2);
        assert!((latest_matrix_report(&doc).unwrap().cells_per_sec - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_history_accepts_first_record() {
        let doc = append_history("", &matrix_report("abc").to_json());
        assert_eq!(split_history(&doc).len(), 1);
        assert_eq!(latest_matrix_report(&doc).unwrap().commit, "abc");
        assert!(latest_matrix_report("").is_none());
    }

    #[test]
    fn exact_fields_round_trip_and_stay_optional() {
        let plain = matrix_report("abc");
        let parsed = MatrixPerfReport::from_json(&plain.to_json()).unwrap();
        assert_eq!(parsed.exact_sim_cycles, None);
        assert_eq!(parsed.exact_cells_per_sec, None);
        let mut exact = plain.clone();
        exact.exact_sim_cycles = Some(123_456_789);
        exact.exact_cells_per_sec = Some(3.25);
        let parsed = MatrixPerfReport::from_json(&exact.to_json()).unwrap();
        assert_eq!(parsed.exact_sim_cycles, Some(123_456_789));
        assert!((parsed.exact_cells_per_sec.unwrap() - 3.25).abs() < 1e-9);
    }

    #[test]
    fn exact_anchor_drift_fails_matrix_check() {
        let mut base = matrix_report("base");
        base.exact_sim_cycles = Some(1000);
        base.exact_cells_per_sec = Some(4.0);
        let mut m = base.clone();
        m.commit = "head".into();
        assert!(check_matrix_against(Some(&base), &m).is_ok());
        m.exact_sim_cycles = Some(1001);
        assert!(check_matrix_against(Some(&base), &m).is_err(), "exact drift must fail");
        m.exact_sim_cycles = Some(1000);
        m.exact_cells_per_sec = Some(4.0 * 0.79);
        assert!(check_matrix_against(Some(&base), &m).is_err(), "exact slowdown must fail");
        // A baseline without exact fields never gates them.
        m.exact_cells_per_sec = Some(0.01);
        assert!(check_matrix_against(Some(&matrix_report("base")), &m).is_ok());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(PerfReport::from_json("{}").is_none());
        assert!(PerfReport::from_json("not json").is_none());
        assert!(PerfReport::from_json("{\"commit\": \"x\"}").is_none());
    }

    #[test]
    fn regression_check_thresholds() {
        let base = PerfReport {
            commit: "base".into(),
            scale: "tiny".into(),
            wall_ms: 1000.0,
            cpu_ms: Some(1000.0),
            sim_cycles: 1_000_000,
            cycles_per_sec: 1000.0,
            phases: Vec::new(),
        };
        let mut m = base.clone();
        m.cycles_per_sec = 900.0; // -10%: within tolerance
        assert!(check_against(Some(&base), &m).is_ok());
        m.cycles_per_sec = 799.0; // -20.1%: regression
        assert!(check_against(Some(&base), &m).is_err());
        m.cycles_per_sec = 2000.0; // improvement
        assert!(check_against(Some(&base), &m).is_ok());
        assert!(check_against(None, &m).is_ok(), "missing baseline is not a failure");
        m.sim_cycles = 1_000_001; // determinism anchor moved
        assert!(check_against(Some(&base), &m).is_err(), "cycle drift must fail");
    }

    fn serve_report(commit: &str) -> ServePerfReport {
        ServePerfReport {
            commit: commit.into(),
            scale: "tiny".into(),
            cells: 40,
            cold_p50_us: 120_000,
            cold_p90_us: 300_000,
            cold_p99_us: 500_000,
            hot_p50_us: 80,
            hot_p90_us: 150,
            hot_p99_us: 400,
            hot_hit_rate_pct: 100.0,
            simulations: 40,
            speedup_p50: 1500.0,
        }
    }

    #[test]
    fn serve_report_round_trips_through_history() {
        let r1 = serve_report("aaa1111");
        let mut r2 = serve_report("bbb2222");
        r2.hot_p50_us = 95;
        let doc = append_history(&r1.to_json(), &r2.to_json());
        let records = split_history(&doc);
        assert_eq!(records.len(), 2);
        let parsed = ServePerfReport::from_json(records[0]).expect("record parses");
        assert_eq!(parsed, r1);
        assert_eq!(latest_serve_report(&doc).unwrap().hot_p50_us, 95);
        // Serve records are not mistakable for the other two kinds.
        assert!(PerfReport::from_json(records[0]).is_none());
        assert!(MatrixPerfReport::from_json(records[0]).is_none());
    }

    #[test]
    fn serve_check_gates_invariants_not_machines() {
        let good = serve_report("head");
        assert!(check_serve_against(None, &good).is_ok());
        assert!(check_serve_against(Some(&serve_report("base")), &good).is_ok());
        let mut m = good.clone();
        m.hot_hit_rate_pct = 97.5;
        assert!(check_serve_against(None, &m).is_err(), "hot miss must fail");
        let mut m = good.clone();
        m.simulations = 41;
        assert!(check_serve_against(None, &m).is_err(), "dedupe leak must fail");
        let mut m = good.clone();
        m.hot_p50_us = m.cold_p50_us / (SERVE_SPEEDUP_FLOOR - 1);
        assert!(check_serve_against(None, &m).is_err(), "under the speedup floor");
        let mut m = good.clone();
        m.cells = 0;
        m.simulations = 0;
        assert!(check_serve_against(None, &m).is_err(), "empty measurement");
        // A slow machine that preserves the invariants still passes:
        // the baseline is context, not a gate.
        let mut slow = good.clone();
        slow.hot_p50_us = 300;
        slow.cold_p50_us = 3_000_000;
        let mut base = serve_report("base");
        base.hot_p50_us = 10;
        assert!(check_serve_against(Some(&base), &slow).is_ok());
    }

    /// Satellite: the measurement path at tiny scale emits well-formed
    /// JSON with the full schema.
    #[test]
    fn throughput_smoke_produces_well_formed_json() {
        let report = measure_tiny();
        assert!(report.wall_ms > 0.0);
        assert!(report.sim_cycles > 0);
        assert!(report.cycles_per_sec > 0.0);
        let json = report.to_json();
        for field in ["commit", "scale", "wall_ms", "sim_cycles", "cycles_per_sec"] {
            assert!(json.contains(&format!("\"{field}\"")), "missing {field} in {json}");
        }
        let parsed = PerfReport::from_json(&json).expect("schema round-trips");
        assert_eq!(parsed.sim_cycles, report.sim_cycles);
        assert_eq!(parsed.scale, "tiny");
        // Measurements self-profile: the record must attribute the
        // sweep's cost to phases, with cell simulation dominating.
        assert!(
            parsed.phases.iter().any(|p| p.name == "cells" && p.wall_ms > 0.0),
            "missing cells phase in {json}"
        );
    }
}
