//! `perf` — the simulator-throughput regression harness.
//!
//! Measures wall-clock time and simulated-cycles-per-second for the
//! fixed tiny-scale main matrix (the sweep behind Figs 13-15) and
//! writes `BENCH_sim_throughput.json` at the repository root.
//!
//! Modes:
//!
//! * `cargo run --release -p gtr-bench --bin perf` — measure and
//!   (re)write the baseline JSON.
//! * `... --bin perf -- --check` — measure and compare against the
//!   committed baseline without rewriting it; exits non-zero when
//!   throughput regressed more than the tolerance (used by `ci.sh`).
//! * `... --bin perf -- --dry-run` — measure and print only.
//! * `... --bin perf -- --paper [...]` — same three modes, but for the
//!   checkpointed interval-sampled paper-scale matrix; the baseline is
//!   `BENCH_matrix_paper.json` and the throughput unit is matrix
//!   cells per second.
//!
//! Any mode additionally accepts `--stats-out <path>` to write the
//! measured report JSON to a chosen file (the repo-root baseline is
//! only touched by the default measure mode).

use gtr_bench::perf::{
    check_against, check_matrix_against, measure_paper, measure_tiny, MatrixPerfReport,
    PerfReport, BASELINE_FILE, PAPER_BASELINE_FILE, REGRESSION_TOLERANCE_PCT,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats_out = args.iter().position(|a| a == "--stats-out").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--stats-out needs a path");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        path
    });
    let check = args.iter().any(|a| a == "--check");
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let paper = args.iter().any(|a| a == "--paper");
    if let Some(bad) = args.iter().find(|a| *a != "--check" && *a != "--dry-run" && *a != "--paper")
    {
        eprintln!(
            "unknown argument `{bad}` (expected --check, --dry-run, --paper or --stats-out <path>)"
        );
        std::process::exit(2);
    }
    if paper {
        run_paper(check, dry_run, stats_out);
        return;
    }

    let path = gtr_bench::perf::repo_root().join(BASELINE_FILE);
    let baseline = std::fs::read_to_string(&path).ok().and_then(|s| PerfReport::from_json(&s));

    eprintln!("measuring tiny-scale main matrix (4 variants x Table-2 suite)...");
    let report = measure_tiny();
    println!(
        "wall {:.1} ms | cpu {:.1} ms | {} simulated cycles | {:.2} M simulated cycles/s (commit {})",
        report.wall_ms,
        report.cpu_ms,
        report.sim_cycles,
        report.cycles_per_sec / 1e6,
        report.commit
    );

    if let Some(out) = &stats_out {
        std::fs::write(out, report.to_json()).expect("write --stats-out JSON");
        eprintln!("report written to {out}");
    }

    if check {
        match check_against(baseline.as_ref(), &report) {
            Ok(verdict) => println!("OK: {verdict} (tolerance {REGRESSION_TOLERANCE_PCT}%)"),
            Err(msg) => {
                eprintln!("PERF REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if dry_run {
        print!("{}", report.to_json());
        return;
    }
    if let Some(base) = &baseline {
        let delta = (report.cycles_per_sec / base.cycles_per_sec - 1.0) * 100.0;
        println!("previous baseline: {:.2} M cycles/s ({delta:+.1}%)", base.cycles_per_sec / 1e6);
    }
    std::fs::write(&path, report.to_json()).expect("write baseline JSON");
    println!("wrote {}", path.display());
}

/// The `--paper` variant of the harness: the checkpointed sampled
/// paper-scale matrix, measured in matrix cells per second.
fn run_paper(check: bool, dry_run: bool, stats_out: Option<String>) {
    let path = gtr_bench::perf::repo_root().join(PAPER_BASELINE_FILE);
    let baseline =
        std::fs::read_to_string(&path).ok().and_then(|s| MatrixPerfReport::from_json(&s));

    eprintln!("measuring sampled paper-scale main matrix (shared warmup checkpoints)...");
    let report = measure_paper();
    println!(
        "wall {:.1} ms | cpu {:.1} ms | {} cells | {} simulated cycles | {:.2} cells/s (commit {})",
        report.wall_ms, report.cpu_ms, report.cells, report.sim_cycles, report.cells_per_sec,
        report.commit
    );

    if let Some(out) = &stats_out {
        std::fs::write(out, report.to_json()).expect("write --stats-out JSON");
        eprintln!("report written to {out}");
    }

    if check {
        match check_matrix_against(baseline.as_ref(), &report) {
            Ok(verdict) => println!("OK: {verdict} (tolerance {REGRESSION_TOLERANCE_PCT}%)"),
            Err(msg) => {
                eprintln!("PERF REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if dry_run {
        print!("{}", report.to_json());
        return;
    }
    if let Some(base) = &baseline {
        let delta = (report.cells_per_sec / base.cells_per_sec - 1.0) * 100.0;
        println!("previous baseline: {:.2} cells/s ({delta:+.1}%)", base.cells_per_sec);
    }
    std::fs::write(&path, report.to_json()).expect("write baseline JSON");
    println!("wrote {}", path.display());
}
