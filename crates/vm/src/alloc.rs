//! Deterministic contiguity-aware page allocation (the Mosaic-style
//! axis; arXiv 1804.11265 and arXiv 2110.08613).
//!
//! The baseline page table scatters every freshly allocated frame with
//! an odd multiplier — a fully fragmented layout in which no two
//! virtually adjacent pages are ever physically adjacent. Real
//! allocators sit somewhere between that and a contiguity-aware
//! allocator that hands out whole aligned blocks. [`PageLayout`]
//! models the spectrum with one knob:
//!
//! * [`PageLayout::Scatter`] — the historical default, bit-identical
//!   to every frozen anchor;
//! * [`PageLayout::Contig`] — VPNs map region-contiguously (one
//!   aligned run of [`REGION_PAGES_LOG2`]² pages per virtual region)
//!   except for a deterministic, seed-controlled fraction of pages
//!   that "break out" into a scattered pool, emulating fragmentation.
//!
//! The break-out predicate is a pure hash of `(seed, vpn)` compared
//! against the per-mille fragmentation threshold, so the broken-out
//! sets are *nested* across thresholds: raising `f` only ever breaks
//! more pages out, which is what makes the contiguity-run statistics
//! provably monotone (see `tests/alloc_properties.rs`).

use crate::addr::{Ppn, Vpn};

/// log2 pages per allocation region: 512 × 4 KB = one 2 MB region,
/// matching the huge-page granularity the fragmented-2 MB mode emulates
/// and bounding the reach of one coalesced TLB entry.
pub const REGION_PAGES_LOG2: u32 = 9;

/// Parameters of the contiguity-aware allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocConfig {
    /// Fragmentation threshold in per-mille: out of every 1000 hash
    /// buckets, how many break out of their region into the scattered
    /// pool. `0` = fully contiguous, `1000` = fully scattered.
    pub frag_per_mille: u16,
    /// Seed of the deterministic break-out hash. A different seed
    /// fragments a *different* page subset (a new stream-shaping
    /// identity; see `CheckpointKey`).
    pub seed: u64,
}

/// Which frame-allocation policy a page table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageLayout {
    /// Odd-multiplier scatter (the historical allocator; every frozen
    /// anchor and committed artifact was produced under this layout).
    #[default]
    Scatter,
    /// Region-contiguous allocation with a fragmentation knob.
    Contig(AllocConfig),
}

impl PageLayout {
    /// Contiguity-aware layout from a `[0.0, 1.0]` fragmentation
    /// fraction (clamped) and a break-out seed.
    pub fn contig(fragmentation: f64, seed: u64) -> Self {
        let f = if fragmentation.is_nan() { 0.0 } else { fragmentation.clamp(0.0, 1.0) };
        PageLayout::Contig(AllocConfig { frag_per_mille: (f * 1000.0).round() as u16, seed })
    }

    /// The fragmentation fraction, or `None` for [`PageLayout::Scatter`]
    /// (which is "fragmentation 1.0 without a contiguous pool" — a
    /// different thing than `contig(1.0, _)`, whose scattered pool is
    /// still deterministic per seed).
    pub fn fragmentation(&self) -> Option<f64> {
        match self {
            PageLayout::Scatter => None,
            PageLayout::Contig(c) => Some(c.frag_per_mille as f64 / 1000.0),
        }
    }
}

/// SplitMix64-style avalanche of `(seed, vpn)` — the allocator's only
/// source of "randomness", so layouts are a pure function of the
/// configuration.
pub fn hash64(seed: u64, vpn: Vpn) -> u64 {
    let mut z = seed ^ vpn.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether `vpn` breaks out of its contiguous region into the
/// scattered pool. Nested across thresholds: `breaks_out` at `f1`
/// implies `breaks_out` at every `f2 >= f1` for the same seed.
pub fn breaks_out(cfg: &AllocConfig, vpn: Vpn) -> bool {
    hash64(cfg.seed, vpn) % 1000 < cfg.frag_per_mille as u64
}

/// Contiguity-run statistics of a VPN→PPN layout: a *run* is a maximal
/// range of consecutive VPNs whose PPNs are also consecutive (the unit
/// a variable-reach TLB entry can cover).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContiguityStats {
    /// Total mapped pages measured.
    pub pages: u64,
    /// Number of maximal contiguous runs.
    pub runs: u64,
    /// Length of the longest run, in pages.
    pub max_run: u64,
}

impl ContiguityStats {
    /// Mean run length in pages (0 when nothing is mapped).
    pub fn mean_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.pages as f64 / self.runs as f64
        }
    }
}

/// Measures contiguity runs over `(vpn, ppn)` pairs sorted ascending
/// by VPN (as [`crate::page_table::PageTable::mapped_vpns`] returns
/// them).
///
/// # Panics
///
/// Panics (debug) if the pairs are not strictly VPN-sorted.
pub fn contiguity_runs(pairs: &[(Vpn, Ppn)]) -> ContiguityStats {
    let mut stats = ContiguityStats { pages: pairs.len() as u64, ..Default::default() };
    let mut run = 0u64;
    let mut prev: Option<(Vpn, Ppn)> = None;
    for &(vpn, ppn) in pairs {
        if let Some((pv, pp)) = prev {
            debug_assert!(pv.0 < vpn.0, "contiguity_runs requires VPN-sorted input");
            if vpn.0 == pv.0 + 1 && ppn.0 == pp.0 + 1 {
                run += 1;
            } else {
                stats.runs += 1;
                stats.max_run = stats.max_run.max(run);
                run = 1;
            }
        } else {
            run = 1;
        }
        prev = Some((vpn, ppn));
    }
    if run > 0 {
        stats.runs += 1;
        stats.max_run = stats.max_run.max(run);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contig_constructor_clamps_and_rounds() {
        assert_eq!(
            PageLayout::contig(0.25, 7),
            PageLayout::Contig(AllocConfig { frag_per_mille: 250, seed: 7 })
        );
        assert_eq!(
            PageLayout::contig(-3.0, 0),
            PageLayout::Contig(AllocConfig { frag_per_mille: 0, seed: 0 })
        );
        assert_eq!(
            PageLayout::contig(9.0, 0),
            PageLayout::Contig(AllocConfig { frag_per_mille: 1000, seed: 0 })
        );
        assert_eq!(PageLayout::contig(f64::NAN, 0).fragmentation(), Some(0.0));
        assert_eq!(PageLayout::Scatter.fragmentation(), None);
    }

    #[test]
    fn break_out_sets_are_nested_across_thresholds() {
        for seed in [0u64, 1, 0xC0FFEE] {
            for vpn in 0..4096u64 {
                let mut was_out = false;
                for per_mille in [0u16, 100, 500, 900, 1000] {
                    let out = breaks_out(&AllocConfig { frag_per_mille: per_mille, seed }, Vpn(vpn));
                    assert!(!was_out || out, "seed {seed} vpn {vpn}: un-broke at {per_mille}");
                    was_out = out;
                }
                assert!(was_out, "per-mille 1000 must break every page out");
            }
        }
    }

    #[test]
    fn run_statistics_count_maximal_runs() {
        // vpn: 0 1 2 | 5 6 | 9 — ppns contiguous within groups.
        let pairs = [
            (Vpn(0), Ppn(100)),
            (Vpn(1), Ppn(101)),
            (Vpn(2), Ppn(102)),
            (Vpn(5), Ppn(200)),
            (Vpn(6), Ppn(201)),
            (Vpn(9), Ppn(50)),
        ];
        let s = contiguity_runs(&pairs);
        assert_eq!(s.pages, 6);
        assert_eq!(s.runs, 3);
        assert_eq!(s.max_run, 3);
        assert!((s.mean_run() - 2.0).abs() < 1e-12);
        assert_eq!(contiguity_runs(&[]), ContiguityStats::default());
    }

    #[test]
    fn adjacent_vpns_with_noncontiguous_ppns_split_runs() {
        let pairs = [(Vpn(0), Ppn(10)), (Vpn(1), Ppn(12))];
        assert_eq!(contiguity_runs(&pairs).runs, 2);
    }
}
