//! # gpu-translation-reach
//!
//! A from-scratch Rust reproduction of *"Increasing GPU Translation
//! Reach by Leveraging Under-Utilized On-Chip Resources"* (Kotra,
//! LeBeane, Kandemir, Loh — MICRO 2021): a GPU virtual-memory timing
//! simulator whose instruction cache and LDS scratchpad can be
//! reconfigured into a TLB victim cache between the L1 and L2 TLBs.
//!
//! This facade crate re-exports the workspace so downstream users can
//! depend on one crate:
//!
//! * [`sim`] — deterministic discrete-event engine (events, gap-filling
//!   resource timelines, statistics, seeded RNG).
//! * [`vm`] — virtual-memory substrate (page tables, TLBs, coalescer,
//!   page-walk caches, IOMMU, shootdowns).
//! * [`mem`] — caches, DDR3 DRAM timing, DRAM energy.
//! * [`gpu`] — GPU execution model (kernels, wavefronts, LDS
//!   allocation, workgroup dispatch).
//! * [`core_arch`] — the paper's contribution: reconfigurable LDS and
//!   I-cache, the Fig-12 victim flows, and the full
//!   [`System`](core_arch::system::System) simulator.
//! * [`workloads`] — the ten Table-2 benchmark models.
//! * [`ducati`] — the DUCATI (TACO'19) comparison baseline.
//! * [`bench`](mod@bench) — harnesses that regenerate every table and
//!   figure.
//!
//! # Quickstart
//!
//! ```
//! use gpu_translation_reach::core_arch::config::ReachConfig;
//! use gpu_translation_reach::core_arch::system::System;
//! use gpu_translation_reach::gpu::config::GpuConfig;
//! use gpu_translation_reach::workloads::{scale::Scale, suite};
//!
//! let app = suite::by_name("SRAD", Scale::tiny()).unwrap();
//! let baseline = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
//! let reach = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&app);
//! // SRAD is TLB-insensitive: the reconfigurable design must not hurt it.
//! assert!((reach.total_cycles as f64) < baseline.total_cycles as f64 * 1.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gtr_bench as bench;
pub use gtr_core as core_arch;
pub use gtr_ducati as ducati;
pub use gtr_gpu as gpu;
pub use gtr_mem as mem;
pub use gtr_sim as sim;
pub use gtr_vm as vm;
pub use gtr_workloads as workloads;
