//! # gtr-gpu
//!
//! GPU execution-model substrate: wavefront instruction streams,
//! kernel/workgroup descriptors, the application-managed LDS scratchpad
//! allocator (with the fragmentation behaviour §2.2 describes), and the
//! front-end workgroup dispatcher.
//!
//! The baseline machine mirrors the paper's Table 1: 8 CUs, 4 SIMDs per
//! CU, 10 waves per SIMD, 64 threads per wave, 16-wide SIMDs. The
//! timing system that executes these descriptors lives in `gtr-core`'s
//! `system` module, because its translation path *is* the paper's
//! contribution.
//!
//! # Example
//!
//! ```
//! use gtr_gpu::kernel::{AppTrace, KernelDesc, WaveProgram, WorkgroupDesc};
//! use gtr_gpu::ops::Op;
//!
//! let wave = WaveProgram::new(vec![Op::compute(4), Op::global_read_strided(0x1000, 4, 64)]);
//! let wg = WorkgroupDesc::new(vec![wave]);
//! let kernel = KernelDesc::new("k0", 8, 0, vec![wg]);
//! let app = AppTrace::new("demo", vec![kernel]);
//! assert_eq!(app.total_ops(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dispatch;
pub mod kernel;
pub mod lds;
pub mod ops;
