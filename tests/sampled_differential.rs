//! Differential exact-vs-sampled battery.
//!
//! The paper-scale fast path (`all --sample`) regenerates every
//! figure from interval-sampled runs restored off shared warmup
//! checkpoints. These tests run the same figure families at tiny
//! scale in **both** modes side by side and assert the properties the
//! fast path rests on:
//!
//! * geomean speedups agree within the error bounds the sampled runs
//!   themselves report (`SamplingMeta::error_bound_pct`, plus the
//!   DUCATI divergence bound where a side cache is attached);
//! * trends across sweep axes survive sampling — wherever the exact
//!   sweep shows a clear movement (more than [`TREND_PCT`]), the
//!   sampled sweep moves the same way;
//! * exact mode is bit-identical to the committed cycle anchor, so
//!   the sampling machinery provably never leaks into exact runs.

use gpu_translation_reach::bench::figures;
use gpu_translation_reach::bench::harness::{Matrix, RunMode};
use gpu_translation_reach::workloads::scale::Scale;

/// Exact-sweep movements smaller than this are considered noise and
/// impose nothing on the sampled sweep.
const TREND_PCT: f64 = 5.0;

/// Slack allowed before a sampled movement counts as contradicting an
/// exact trend (sampled counters include functionally warmed events,
/// so tiny counter wiggles are expected).
const TREND_EPSILON_PCT: f64 = 1.0;

fn tiny() -> Scale {
    Scale::tiny()
}

fn sampled() -> RunMode {
    RunMode::sampled(figures::sampling_for(Scale::tiny()))
}

/// Worst reported bound (extrapolation + side cache) over every cell
/// of variant `v` and the baseline, in percent.
fn reported_bound(m: &Matrix, v: usize) -> f64 {
    m.baseline
        .iter()
        .chain(m.variants[v].1.iter())
        .filter_map(|s| s.sampling.as_ref())
        .map(|s| s.error_bound_pct + s.side_cache_error_bound_pct)
        .fold(0.0f64, f64::max)
}

/// The sum of every cell's `total_cycles` — one number that moves if
/// any of the 40 main-matrix cells drifts by even a cycle.
fn matrix_cycle_sum(m: &Matrix) -> u64 {
    m.baseline
        .iter()
        .chain(m.variants.iter().flat_map(|(_, v)| v.iter()))
        .map(|s| s.total_cycles)
        .sum()
}

/// (c) Exact mode must stay bit-identical to the committed anchor:
/// the checkpoint/sampling machinery must never perturb exact runs.
#[test]
fn exact_main_matrix_matches_the_committed_cycle_anchor() {
    let m = figures::main_matrix(tiny());
    assert_eq!(
        matrix_cycle_sum(&m),
        3_977_625,
        "exact tiny main matrix drifted from the committed anchor — \
         either an intentional model change (update the anchor) or the \
         sampled path leaked into exact runs"
    );
}

/// (a) Main-matrix geomean speedups: sampled within the bounds the
/// sampled run itself reports.
#[test]
fn sampled_main_matrix_geomeans_within_reported_bounds() {
    let exact = figures::main_matrix(tiny());
    let samp = figures::main_matrix_mode(tiny(), false, &sampled());
    for v in 0..exact.variants.len() {
        let (label, cells) = &samp.variants[v];
        assert!(
            cells.iter().all(|s| s.sampling.is_some()),
            "{label}: every sampled-mode cell must carry sampling metadata"
        );
        let ge = exact.geomean_improvement(v);
        let gs = samp.geomean_improvement(v);
        let bound = reported_bound(&samp, v);
        assert!(
            (ge - gs).abs() <= bound,
            "{label}: sampled geomean {gs:+.2}% vs exact {ge:+.2}% \
             exceeds the reported bound {bound:.2}%"
        );
    }
}

/// (a) for the DUCATI comparison: the composition figure must run
/// under sampling with its side-cache divergence bound populated, and
/// still land within its reported bounds.
#[test]
fn sampled_ducati_comparison_within_bounds_and_reports_divergence() {
    let exact = figures::fig16c_matrix(tiny(), &RunMode::exact());
    let samp = figures::fig16c_matrix(tiny(), &sampled());
    let ducati_variants: Vec<usize> = samp
        .variants
        .iter()
        .enumerate()
        .filter(|(_, (label, _))| label.contains("DUCATI"))
        .map(|(v, _)| v)
        .collect();
    assert_eq!(ducati_variants.len(), 2, "fig16c has two DUCATI variants");
    for v in 0..samp.variants.len() {
        let (label, cells) = &samp.variants[v];
        let sc_bound = cells
            .iter()
            .filter_map(|s| s.sampling.as_ref())
            .map(|s| s.side_cache_error_bound_pct)
            .fold(0.0f64, f64::max);
        if ducati_variants.contains(&v) {
            assert!(
                sc_bound > 0.0,
                "{label}: DUCATI cells must report a side-cache divergence bound"
            );
        } else {
            assert_eq!(
                sc_bound, 0.0,
                "{label}: cells without a side cache must not report divergence"
            );
        }
        let ge = exact.geomean_improvement(v);
        let gs = samp.geomean_improvement(v);
        let bound = reported_bound(&samp, v);
        assert!(
            (ge - gs).abs() <= bound,
            "{label}: sampled geomean {gs:+.2}% vs exact {ge:+.2}% \
             exceeds the reported bound {bound:.2}%"
        );
    }
}

/// (b) The Fig-2 axis: growing the L2 TLB monotonically removes page
/// walks under exact simulation; wherever the exact sweep shows a
/// real reduction, the sampled sweep must show one too.
#[test]
fn l2_tlb_sweep_trend_survives_sampling() {
    let exact = figures::fig02_03_matrix(tiny(), &RunMode::exact());
    let samp = figures::fig02_03_matrix(tiny(), &sampled());
    assert_eq!(exact.variants.len(), samp.variants.len());
    // Per app: walk counts along [512 (baseline), 1K, 2K, 4K, 8K,
    // 64K, Perfect] in both modes.
    let mut checked = 0usize;
    for (a, app) in exact.apps.iter().enumerate() {
        let series = |m: &Matrix| -> Vec<f64> {
            std::iter::once(m.baseline[a].page_walks as f64)
                .chain(m.variants.iter().map(|(_, v)| v[a].page_walks as f64))
                .collect()
        };
        let e = series(&exact);
        let s = series(&samp);
        for w in 1..e.len() {
            if e[w - 1] <= 0.0 {
                continue;
            }
            let exact_drop_pct = (e[w - 1] - e[w]) / e[w - 1] * 100.0;
            if exact_drop_pct > TREND_PCT {
                let samp_drop_pct = if s[w - 1] > 0.0 {
                    (s[w - 1] - s[w]) / s[w - 1] * 100.0
                } else {
                    0.0
                };
                assert!(
                    samp_drop_pct > -TREND_EPSILON_PCT,
                    "{app}: exact sweep step {w} removes {exact_drop_pct:.1}% of \
                     page walks but the sampled sweep gains {:.1}%",
                    -samp_drop_pct
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 5,
        "the exact sweep should exhibit several real page-walk reductions \
         for this test to guard (got {checked})"
    );
}

/// (b) The perfect-L2-TLB endpoint eliminates essentially all L2 TLB
/// misses; under sampling the endpoint must stay the sweep's minimum
/// for every app where the exact sweep says so.
#[test]
fn perfect_tlb_endpoint_is_the_minimum_under_sampling() {
    let exact = figures::fig02_03_matrix(tiny(), &RunMode::exact());
    let samp = figures::fig02_03_matrix(tiny(), &sampled());
    let perfect = exact.variants.len() - 1;
    for (a, app) in exact.apps.iter().enumerate() {
        let e_base = exact.baseline[a].page_walks as f64;
        let e_perfect = exact.variants[perfect].1[a].page_walks as f64;
        if e_base <= 0.0 || (e_base - e_perfect) / e_base * 100.0 <= TREND_PCT {
            continue;
        }
        let s_base = samp.baseline[a].page_walks as f64;
        let s_perfect = samp.variants[perfect].1[a].page_walks as f64;
        if s_base <= 0.0 {
            // The app's few walks all landed in the elided warmup
            // window; a zero-walk sampled sweep cannot contradict the
            // trend.
            continue;
        }
        assert!(
            s_perfect < s_base,
            "{app}: perfect L2 TLB removes walks under exact \
             ({e_base} -> {e_perfect}) but not under sampling \
             ({s_base} -> {s_perfect})"
        );
    }
}

/// Sampled mode is itself deterministic: two sampled batteries of the
/// same figure produce identical text, so figure regeneration diffs
/// stay meaningful in sampled mode too.
#[test]
fn sampled_figures_are_deterministic() {
    let a = figures::fig13a_mode(tiny(), &sampled());
    let b = figures::fig13a_mode(tiny(), &sampled());
    assert_eq!(a, b);
}

/// (a) for the new allocator-fragmentation axis: at every
/// fragmentation fraction the sampled geomean of the coalescing
/// IC+LDS variant lands within the bounds the sampled cells report.
/// Each fragmentation fraction is its own translation stream (the
/// layout decides every PPN), so this also exercises per-layout
/// checkpoint capture. Also asserts the axis's physical trend on the
/// exact sweep: the aggregate reach multiplier never *increases* as
/// fragmentation destroys contiguity.
#[test]
fn fragmentation_sweep_within_bounds_and_reach_decays() {
    let exact = figures::fragmentation_matrices(tiny(), &RunMode::exact());
    let samp = figures::fragmentation_matrices(tiny(), &sampled());
    assert_eq!(exact.len(), figures::FRAG_SWEEP.len());
    let mut prev_reach = f64::INFINITY;
    for ((f, e), (fs, s)) in exact.iter().zip(samp.iter()) {
        assert_eq!(f, fs);
        let ge = e.geomean_improvement(0);
        let gs = s.geomean_improvement(0);
        let bound = reported_bound(s, 0);
        assert!(
            (ge - gs).abs() <= bound,
            "f={f}: sampled geomean {gs:+.2}% vs exact {ge:+.2}% \
             exceeds the reported bound {bound:.2}%"
        );
        // Every coalescing cell must export v6 stats; aggregate them
        // for the trend check.
        let mut agg = gpu_translation_reach::core_arch::stats::CoalescingStats::default();
        for cell in &e.variants[0].1 {
            let co = cell.coalescing.as_ref().expect("coalescing cell exports v6 stats");
            agg.inserts += co.inserts;
            agg.span_pages += co.span_pages;
        }
        let reach = agg.span_pages as f64 / agg.inserts.max(1) as f64;
        assert!(
            reach <= prev_reach + 1e-9,
            "f={f}: reach multiplier {reach:.3} grew past {prev_reach:.3} \
             as fragmentation increased"
        );
        prev_reach = reach;
        // Baseline cells run with coalescing off on the same layout:
        // they must not carry v6 stats.
        assert!(
            e.baseline.iter().all(|c| c.coalescing.is_none()),
            "f={f}: non-coalescing baseline must not export coalescing stats"
        );
    }
    // The endpoints are meaningfully apart: full contiguity must grant
    // real multi-page reach, full fragmentation essentially none.
    let first = &exact[0].1.variants[0].1;
    let reach_at = |cells: &[gpu_translation_reach::core_arch::stats::RunStats]| {
        let (mut sp, mut ins) = (0u64, 0u64);
        for c in cells {
            let co = c.coalescing.as_ref().expect("v6");
            sp += co.span_pages;
            ins += co.inserts;
        }
        sp as f64 / ins.max(1) as f64
    };
    let last = &exact[exact.len() - 1].1.variants[0].1;
    assert!(
        reach_at(first) > 1.5,
        "f=0 should coalesce aggressively (reach {:.3})",
        reach_at(first)
    );
    // At f=1 no two adjacent pages are ever physically adjacent, so
    // every span is 0 and the multiplier collapses to exactly 1.
    assert!(
        reach_at(last) < 1.0 + 1e-9,
        "f=1 should destroy all reach (got {:.3})",
        reach_at(last)
    );
}
