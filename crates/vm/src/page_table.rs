//! Four-level x86-64-style radix page table.
//!
//! The table is *functional* (maps VPNs to PPNs) and *structural*: it
//! knows the physical address of every page-table entry a hardware
//! walker would touch, so the timing simulator can charge real memory
//! accesses for each walk step, and the split page-walk caches
//! ([`crate::pwc`]) can cache interior levels exactly as in Barr et
//! al., "Translation Caching: Skip, Don't Walk".

use gtr_sim::fastmap::FastMap;

use crate::addr::{PageSize, PhysAddr, Ppn, TranslationKey, Translation, VirtAddr, VmId, Vpn, VrfId};
use crate::alloc::{self, PageLayout};

/// Physical region where page-table pages are allocated. Keeping the
/// tables away from data frames makes walk traffic visibly distinct in
/// DRAM statistics.
const TABLE_REGION_BASE: u64 = 1 << 44;

/// Size of one page-table node in bytes (512 × 8-byte entries).
const TABLE_NODE_BYTES: u64 = 4096;

/// One step of a page walk: the radix level, the VPN prefix that
/// identifies the interior node, and the physical address of the PTE
/// the walker must read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkStep {
    /// Radix level, 0 = root (PGD), `levels-1` = leaf (PTE).
    pub level: usize,
    /// VPN prefix identifying the node at this level (used as the
    /// page-walk-cache tag).
    pub prefix: u64,
    /// Physical address of the entry read at this step.
    pub pte_addr: PhysAddr,
}

/// The full path of a page walk plus its outcome.
///
/// Steps live inline (a radix walk has at most four levels) so that
/// building a path on the simulator's walk hot path allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkPath {
    steps: [WalkStep; 4],
    len: usize,
    /// The translated frame.
    pub ppn: Ppn,
}

impl WalkPath {
    /// One step per radix level, root first.
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps[..self.len]
    }
}

/// A four-level (three for 2 MB pages) radix page table with an
/// embedded physical-frame allocator.
///
/// # Example
///
/// ```
/// use gtr_vm::addr::{PageSize, VirtAddr};
/// use gtr_vm::page_table::PageTable;
///
/// let mut pt = PageTable::new(PageSize::Size4K);
/// let tx = pt.map(VirtAddr::new(0x5000));
/// assert_eq!(pt.translate(tx.key.vpn), Some(tx.ppn));
/// let path = pt.walk_path(tx.key.vpn).unwrap();
/// assert_eq!(path.steps().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: PageSize,
    /// Bits of VPN index consumed at each level, root first.
    level_bits: Vec<u32>,
    /// Interior nodes, keyed by `prefix << 3 | level` (see
    /// [`Self::node_key`]) so the four per-walk node lookups hit a
    /// [`FastMap`] instead of a SipHash table.
    nodes: FastMap<u64, PhysAddr>,
    /// Leaf mappings. [`FastMap`] keyed by VPN: `translate` sits on
    /// the simulator's per-access critical path (demand-map check plus
    /// every walk), so leaf lookups avoid SipHash entirely.
    mappings: FastMap<Vpn, Ppn>,
    /// Per-page protection bits (defaults to 0 for every mapped page;
    /// only set explicitly by permission-boundary scenarios). A
    /// coalesced span never crosses a protection change — see
    /// [`Self::contiguity_span`].
    prots: FastMap<Vpn, u8>,
    /// Frame-allocation policy (see [`PageLayout`]).
    layout: PageLayout,
    next_data_frame: u64,
    next_table_node: u64,
    vmid: VmId,
    vrf: VrfId,
}

impl PageTable {
    /// Creates an empty page table for the given page size.
    pub fn new(page_size: PageSize) -> Self {
        let vpn_bits = crate::addr::VA_BITS - page_size.bits();
        let levels = page_size.walk_levels() as u32;
        let per = vpn_bits / levels;
        let mut level_bits = vec![per; levels as usize];
        // Give the root any remainder so the split covers all VPN bits.
        level_bits[0] += vpn_bits - per * levels;
        Self {
            page_size,
            level_bits,
            nodes: FastMap::with_capacity(256),
            mappings: FastMap::with_capacity(1024),
            prots: FastMap::with_capacity(16),
            layout: PageLayout::Scatter,
            next_data_frame: 1, // frame 0 reserved
            next_table_node: 0,
            vmid: VmId::default(),
            vrf: VrfId::default(),
        }
    }

    /// Creates a page table owned by a specific address space.
    pub fn with_ids(page_size: PageSize, vmid: VmId, vrf: VrfId) -> Self {
        Self { vmid, vrf, ..Self::new(page_size) }
    }

    /// Builder-style: sets the frame-allocation policy. Must be chosen
    /// before the first mapping (layouts are a property of the whole
    /// address space, not of individual pages).
    ///
    /// # Panics
    ///
    /// Panics if pages are already mapped.
    pub fn with_layout(mut self, layout: PageLayout) -> Self {
        assert!(
            self.mappings.len() == 0,
            "page layout must be chosen before the first mapping"
        );
        self.layout = layout;
        self
    }

    /// The frame-allocation policy in effect.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// The page size this table maps at.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of radix levels.
    pub fn levels(&self) -> usize {
        self.level_bits.len()
    }

    /// Number of leaf mappings installed.
    pub fn mapped_pages(&self) -> usize {
        self.mappings.len()
    }

    /// The currently mapped VPNs, sorted ascending (deterministic
    /// regardless of map iteration order). Driver-event scenarios use
    /// this as the victim pool when picking pages to migrate — a
    /// migration of an unmapped page is a silent no-op, so callers
    /// that want a storm to actually hit must pick resident pages.
    pub fn mapped_vpns(&self) -> Vec<Vpn> {
        let mut vpns: Vec<Vpn> = self.mappings.iter().map(|(&vpn, _)| vpn).collect();
        vpns.sort_unstable_by_key(|v| v.0);
        vpns
    }

    /// Builds the [`TranslationKey`] for a virtual address in this
    /// table's address space.
    pub fn key_for(&self, va: VirtAddr, vmid: VmId, vrf: VrfId) -> TranslationKey {
        TranslationKey { vpn: va.vpn(self.page_size), vmid, vrf }
    }

    /// Builds the key using this table's own address-space identifiers.
    pub fn key(&self, va: VirtAddr) -> TranslationKey {
        self.key_for(va, self.vmid, self.vrf)
    }

    /// Maps the page containing `va`, allocating a fresh frame if it is
    /// not already mapped, and returns the translation.
    pub fn map(&mut self, va: VirtAddr) -> Translation {
        let vpn = va.vpn(self.page_size);
        self.map_vpn(vpn)
    }

    /// Maps a specific VPN (idempotent) and returns the translation.
    pub fn map_vpn(&mut self, vpn: Vpn) -> Translation {
        self.map_vpn_inner(vpn, false)
    }

    fn map_vpn_inner(&mut self, vpn: Vpn, force_scatter: bool) -> Translation {
        let page_size = self.page_size;
        if let Some(&ppn) = self.mappings.get(vpn) {
            return Translation::new(
                TranslationKey { vpn, vmid: self.vmid, vrf: self.vrf },
                ppn,
            );
        }
        // Materialize interior nodes along the path.
        let levels = self.levels();
        for level in 0..levels {
            let prefix = self.node_prefix_at(vpn, level);
            if self.nodes.get(Self::node_key(level, prefix)).is_none() {
                let base =
                    PhysAddr::new(TABLE_REGION_BASE + self.next_table_node * TABLE_NODE_BYTES);
                self.next_table_node += 1;
                self.nodes.insert(Self::node_key(level, prefix), base);
            }
        }
        let ppn = match self.layout {
            // Scatter frames with a fixed odd multiplier so consecutive
            // virtual pages do not all land in the same DRAM bank.
            PageLayout::Scatter => {
                let frame = self.next_data_frame;
                self.next_data_frame += 1;
                let scatter =
                    frame.wrapping_mul(0x9E37_79B1) & ((1u64 << (40 - page_size.bits())) - 1);
                Ppn(scatter | 1 << (40 - page_size.bits()))
            }
            // Contiguity-aware allocation: two disjoint frame pools
            // told apart by the bit just below the data-region marker.
            // The contiguous pool maps a whole virtual region to one
            // aligned physical run (region index permuted so regions
            // scatter across DRAM while staying internally contiguous);
            // broken-out, migrated, and region-overflow pages fall into
            // a scattered pool driven by the sequential frame counter.
            PageLayout::Contig(cfg) => {
                let marker = 1u64 << (40 - page_size.bits());
                let pool_bit = marker >> 1;
                let region_bits =
                    (40 - page_size.bits() - 1).saturating_sub(alloc::REGION_PAGES_LOG2);
                let region = vpn.0 >> alloc::REGION_PAGES_LOG2;
                let contiguous = !force_scatter
                    && region < (1u64 << region_bits)
                    && !alloc::breaks_out(&cfg, vpn);
                if contiguous {
                    let perm = region.wrapping_mul(0x9E37_79B1) & ((1u64 << region_bits) - 1);
                    let slot = vpn.0 & ((1u64 << alloc::REGION_PAGES_LOG2) - 1);
                    Ppn(marker | pool_bit | (perm << alloc::REGION_PAGES_LOG2) | slot)
                } else {
                    let frame = self.next_data_frame;
                    self.next_data_frame += 1;
                    Ppn(marker | (frame.wrapping_mul(0x9E37_79B1) & (pool_bit - 1)))
                }
            }
        };
        self.mappings.insert(vpn, ppn);
        Translation::new(TranslationKey { vpn, vmid: self.vmid, vrf: self.vrf }, ppn)
    }

    /// Maps `count` consecutive pages starting at the page containing
    /// `start`.
    pub fn map_range(&mut self, start: VirtAddr, count: u64) {
        let first = start.vpn(self.page_size).0;
        for i in 0..count {
            self.map_vpn(Vpn(first + i));
        }
    }

    /// Looks up a VPN without side effects.
    pub fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        self.mappings.get(vpn).copied()
    }

    /// Removes a mapping (page swap / migration), returning the frame
    /// it occupied. The caller is responsible for shooting down TLBs.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Ppn> {
        self.mappings.remove(vpn)
    }

    /// Re-maps an existing VPN to a fresh frame (page migration),
    /// returning the new translation, or `None` if it was not mapped.
    /// Under a contiguity-aware layout the new frame always comes from
    /// the scattered pool — a migrated page leaves its region's run
    /// (which is also what guarantees the frame actually moves).
    pub fn migrate(&mut self, vpn: Vpn) -> Option<Translation> {
        self.unmap(vpn)?;
        Some(self.map_vpn_inner(vpn, true))
    }

    /// Sets a page's protection bits (permission-boundary scenarios;
    /// pages default to protection 0).
    pub fn set_prot(&mut self, vpn: Vpn, prot: u8) {
        self.prots.insert(vpn, prot);
    }

    /// A page's protection bits (0 unless [`Self::set_prot`] changed
    /// them).
    pub fn prot(&self, vpn: Vpn) -> u8 {
        self.prots.get(vpn).copied().unwrap_or(0)
    }

    /// The widest coalescible span around `vpn`: the largest
    /// `k <= max_log2` such that the whole `2^k`-aligned block
    /// containing `vpn` is mapped physically contiguously (frame
    /// arithmetic `ppn(v) = ppn(base) + (v - base)` holds for every
    /// page) with uniform protection bits. Returns 0 (a classic
    /// single-page entry) when `vpn` itself is unmapped or has no
    /// contiguous aligned neighborhood — so span detection can never
    /// *invent* reach, only discover what the allocator produced.
    pub fn contiguity_span(&self, vpn: Vpn, max_log2: u8) -> u8 {
        if self.translate(vpn).is_none() {
            return 0;
        }
        let prot = self.prot(vpn);
        let mut span: u8 = 0;
        let mut base = vpn.0; // base of the verified aligned block
        while span < max_log2 {
            let k = span + 1;
            let nb = vpn.0 & !((1u64 << k) - 1);
            let half = 1u64 << span;
            let Some(nb_ppn) = self.translate(Vpn(nb)) else { break };
            // The already-verified half must chain off the new base...
            if self.translate(Vpn(base)).map(|p| p.0) != Some(nb_ppn.0 + (base - nb)) {
                break;
            }
            // ...and every page of the sibling half must extend the run.
            let sib = if nb == base { base + half } else { nb };
            let mut ok = true;
            for o in 0..half {
                let v = Vpn(sib + o);
                match self.translate(v) {
                    Some(p) if p.0 == nb_ppn.0 + (sib + o - nb) && self.prot(v) == prot => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            base = nb;
            span = k;
        }
        span
    }

    /// VPN prefix identifying the page-table *entry* read at `level`
    /// (all VPN bits down to and including that level's index). This is
    /// the tag the page-walk caches use.
    pub fn prefix_at(&self, vpn: Vpn, level: usize) -> u64 {
        let below: u32 = self.level_bits[level + 1..].iter().sum();
        vpn.0 >> below
    }

    /// VPN prefix identifying the *node* visited at `level` (the path
    /// indices above it; the root node's prefix is always 0).
    fn node_prefix_at(&self, vpn: Vpn, level: usize) -> u64 {
        let at_and_below: u32 = self.level_bits[level..].iter().sum();
        vpn.0 >> at_and_below
    }

    /// Packs an interior-node identity into one `u64` map key. Level
    /// fits in 3 bits (≤ 4 radix levels); prefixes are at most
    /// `VA_BITS - page bits` ≤ 40 bits, so the pack is injective.
    fn node_key(level: usize, prefix: u64) -> u64 {
        (prefix << 3) | level as u64
    }

    /// Full walk path for a mapped VPN, or `None` if unmapped.
    pub fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        let ppn = self.translate(vpn)?;
        let mut steps = [WalkStep::default(); 4];
        let levels = self.levels();
        for (level, step) in steps[..levels].iter_mut().enumerate() {
            let node_prefix = self.node_prefix_at(vpn, level);
            let node = *self
                .nodes
                .get(Self::node_key(level, node_prefix))
                .expect("mapped page must have interior nodes");
            // Entry index within the node = the index bits of this level.
            let below: u32 = self.level_bits[level + 1..].iter().sum();
            let idx = (vpn.0 >> below) & ((1u64 << self.level_bits[level]) - 1);
            *step = WalkStep {
                level,
                prefix: self.prefix_at(vpn, level),
                pte_addr: PhysAddr::new(node.raw() + idx * 8),
            };
        }
        Some(WalkPath { steps, len: levels, ppn })
    }

    /// Total page-table nodes allocated (a proxy for page-table memory
    /// footprint).
    pub fn table_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_idempotent() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let a = pt.map(VirtAddr::new(0x1234));
        let b = pt.map(VirtAddr::new(0x1FFF)); // same page
        assert_eq!(a, b);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let mut frames = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let tx = pt.map(VirtAddr::new(i * 4096));
            assert!(frames.insert(tx.ppn), "frame reused at page {i}");
        }
    }

    #[test]
    fn walk_path_levels_match_page_size() {
        for size in PageSize::all() {
            let mut pt = PageTable::new(size);
            let tx = pt.map(VirtAddr::new(0xABCD_E000));
            let path = pt.walk_path(tx.key.vpn).unwrap();
            assert_eq!(path.steps().len(), size.walk_levels(), "size {size}");
            assert_eq!(path.ppn, tx.ppn);
            // Levels are strictly increasing and distinct PTE addrs.
            for (i, s) in path.steps().iter().enumerate() {
                assert_eq!(s.level, i);
            }
        }
    }

    #[test]
    fn neighbors_share_interior_nodes() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.map(VirtAddr::new(0));
        let nodes_one = pt.table_nodes();
        pt.map(VirtAddr::new(4096)); // adjacent page: same PGD/PUD/PMD/PT
        assert_eq!(pt.table_nodes(), nodes_one);
        let p0 = pt.walk_path(Vpn(0)).unwrap();
        let p1 = pt.walk_path(Vpn(1)).unwrap();
        // First three steps read the same nodes, different leaf index.
        for l in 0..3 {
            assert_eq!(p0.steps()[l].prefix, p1.steps()[l].prefix);
        }
        assert_ne!(p0.steps()[3].pte_addr, p1.steps()[3].pte_addr);
    }

    #[test]
    fn far_pages_use_distinct_leaf_tables() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.map(VirtAddr::new(0));
        pt.map(VirtAddr::new(1 << 30)); // 1 GiB away: different PMD/PT
        let p0 = pt.walk_path(Vpn(0)).unwrap();
        let p1 = pt.walk_path(Vpn((1 << 30) >> 12)).unwrap();
        assert_eq!(p0.steps()[0].prefix, p1.steps()[0].prefix); // same root node
        assert_ne!(p0.steps()[2].prefix, p1.steps()[2].prefix);
    }

    #[test]
    fn unmap_and_migrate() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let tx = pt.map(VirtAddr::new(0x8000));
        assert_eq!(pt.unmap(tx.key.vpn), Some(tx.ppn));
        assert_eq!(pt.translate(tx.key.vpn), None);
        assert_eq!(pt.migrate(tx.key.vpn), None);

        let tx2 = pt.map(VirtAddr::new(0x8000));
        let tx3 = pt.migrate(tx2.key.vpn).unwrap();
        assert_eq!(tx2.key, tx3.key);
        assert_ne!(tx2.ppn, tx3.ppn, "migration must move the frame");
    }

    #[test]
    fn walk_path_none_for_unmapped() {
        let pt = PageTable::new(PageSize::Size4K);
        assert!(pt.walk_path(Vpn(99)).is_none());
    }

    #[test]
    fn contig_layout_maps_regions_physically_contiguous() {
        let mut pt =
            PageTable::new(PageSize::Size4K).with_layout(PageLayout::contig(0.0, 1));
        pt.map_range(VirtAddr::new(0), 1024); // two full regions
        let p0 = pt.translate(Vpn(0)).unwrap();
        for v in 1..512u64 {
            assert_eq!(pt.translate(Vpn(v)), Some(Ppn(p0.0 + v)), "vpn {v}");
        }
        let p512 = pt.translate(Vpn(512)).unwrap();
        assert_ne!(p512.0, p0.0 + 512, "regions must not chain into one run");
        for v in 513..1024u64 {
            assert_eq!(pt.translate(Vpn(v)), Some(Ppn(p512.0 + (v - 512))), "vpn {v}");
        }
        assert_eq!(pt.contiguity_span(Vpn(300), 9), 9, "a full region is one max span");
    }

    #[test]
    fn broken_out_pages_leave_the_contiguous_pool() {
        let layout = PageLayout::contig(0.5, 0xC0FFEE);
        let mut pt = PageTable::new(PageSize::Size4K).with_layout(layout);
        pt.map_range(VirtAddr::new(0), 512);
        let PageLayout::Contig(cfg) = layout else { unreachable!() };
        let pool_bit = 1u64 << (40 - 12 - 1);
        let (mut seen_out, mut seen_in) = (false, false);
        for v in 0..512u64 {
            let ppn = pt.translate(Vpn(v)).unwrap();
            if crate::alloc::breaks_out(&cfg, Vpn(v)) {
                assert_eq!(ppn.0 & pool_bit, 0, "broken-out vpn {v} must scatter");
                seen_out = true;
            } else {
                assert_ne!(ppn.0 & pool_bit, 0, "kept vpn {v} must stay contiguous");
                seen_in = true;
            }
        }
        assert!(seen_out && seen_in, "f=0.5 should populate both pools");
    }

    #[test]
    fn layouts_are_bijections() {
        for layout in [
            PageLayout::Scatter,
            PageLayout::contig(0.0, 3),
            PageLayout::contig(0.3, 3),
            PageLayout::contig(1.0, 3),
        ] {
            let mut pt = PageTable::new(PageSize::Size4K).with_layout(layout);
            let mut frames = std::collections::HashSet::new();
            for i in 0..2000u64 {
                let tx = pt.map_vpn(Vpn(i * 7)); // stride keeps regions partial
                assert!(frames.insert(tx.ppn), "frame reused at page {i} under {layout:?}");
            }
        }
    }

    #[test]
    fn migrate_under_contig_layout_moves_to_the_scattered_pool() {
        let mut pt =
            PageTable::new(PageSize::Size4K).with_layout(PageLayout::contig(0.0, 9));
        let tx = pt.map(VirtAddr::new(0x8000));
        let moved = pt.migrate(tx.key.vpn).unwrap();
        assert_ne!(tx.ppn, moved.ppn, "migration must move the frame");
        let pool_bit = 1u64 << (40 - 12 - 1);
        assert_eq!(moved.ppn.0 & pool_bit, 0, "migrated page joins the scattered pool");
        // And migrating again moves again (scattered pool never reuses
        // a live frame).
        let again = pt.migrate(tx.key.vpn).unwrap();
        assert_ne!(moved.ppn, again.ppn);
    }

    #[test]
    fn contiguity_span_respects_prot_and_mapping_boundaries() {
        let mut pt =
            PageTable::new(PageSize::Size4K).with_layout(PageLayout::contig(0.0, 2));
        pt.map_range(VirtAddr::new(0), 16);
        assert_eq!(pt.contiguity_span(Vpn(5), 4), 4);
        assert_eq!(pt.contiguity_span(Vpn(5), 2), 2, "max caps the span");
        assert_eq!(pt.contiguity_span(Vpn(99), 4), 0, "unmapped page has no span");
        // A protection change at page 6 fences spans on both sides.
        pt.set_prot(Vpn(6), 1);
        assert_eq!(pt.contiguity_span(Vpn(5), 4), 1, "block [4,6) still uniform");
        assert_eq!(pt.contiguity_span(Vpn(6), 4), 0, "odd page out is alone");
        assert_eq!(pt.contiguity_span(Vpn(0), 4), 2, "block [0,4) unaffected");
        // A hole fences spans too.
        pt.unmap(Vpn(12));
        assert_eq!(pt.contiguity_span(Vpn(13), 4), 0);
        assert_eq!(pt.contiguity_span(Vpn(14), 4), 1);
        // Under the scatter layout nothing ever coalesces.
        let mut sc = PageTable::new(PageSize::Size4K);
        sc.map_range(VirtAddr::new(0), 16);
        for v in 0..16u64 {
            assert_eq!(sc.contiguity_span(Vpn(v), 4), 0, "vpn {v}");
        }
    }

    #[test]
    #[should_panic(expected = "before the first mapping")]
    fn layout_change_after_mapping_panics() {
        let mut pt = PageTable::new(PageSize::Size4K);
        pt.map(VirtAddr::new(0));
        let _ = pt.with_layout(PageLayout::contig(0.0, 0));
    }

    #[test]
    fn pte_addrs_live_in_table_region() {
        let mut pt = PageTable::new(PageSize::Size2M);
        let tx = pt.map(VirtAddr::new(0x4000_0000));
        for step in pt.walk_path(tx.key.vpn).unwrap().steps() {
            assert!(step.pte_addr.raw() >= super::TABLE_REGION_BASE);
        }
    }
}
