//! Split page-walk caches (PGD/PUD/PMD), after Barr et al.,
//! "Translation Caching: Skip, Don't Walk (the Page Table)".
//!
//! Each cache holds interior page-table entries for one radix level,
//! tagged by the VPN prefix identifying that interior node's *entry*.
//! A hit at a deep level lets the walker skip every shallower access;
//! only the leaf PTE always requires a memory access. Table 1
//! configures 4/8/32 entries for PGD/PUD/PMD.

use gtr_sim::stats::HitMiss;

use crate::page_table::WalkPath;

/// Configuration for the three split walk caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcConfig {
    /// PGD (level-0) cache entries.
    pub pgd_entries: usize,
    /// PUD (level-1) cache entries.
    pub pud_entries: usize,
    /// PMD (level-2) cache entries.
    pub pmd_entries: usize,
    /// Lookup latency in cycles (all three probed in parallel).
    pub latency: u64,
}

impl Default for PwcConfig {
    /// Table 1: PGD/PUD/PMD cache of 4/8/32 entries.
    fn default() -> Self {
        Self { pgd_entries: 4, pud_entries: 8, pmd_entries: 32, latency: 2 }
    }
}

/// A single fully-associative LRU cache of `(level, prefix)` tags.
#[derive(Debug, Clone)]
struct LevelCache {
    entries: Vec<(u64, u64)>, // (prefix, last_use)
    capacity: usize,
    tick: u64,
    stats: HitMiss,
}

impl LevelCache {
    fn new(capacity: usize) -> Self {
        Self { entries: Vec::with_capacity(capacity), capacity, tick: 0, stats: HitMiss::new() }
    }

    fn lookup(&mut self, prefix: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            e.1 = tick;
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, prefix: u64) {
        self.tick += 1;
        let tick = self.tick;
        if self.capacity == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            e.1 = tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .expect("cache full implies non-empty");
            self.entries.swap_remove(idx);
        }
        self.entries.push((prefix, tick));
    }

    fn flush(&mut self) {
        self.entries.clear();
    }
}

/// The split PGD/PUD/PMD page-walk cache assembly.
///
/// # Example
///
/// ```
/// use gtr_vm::pwc::{PageWalkCaches, PwcConfig};
/// use gtr_vm::page_table::PageTable;
/// use gtr_vm::addr::{PageSize, VirtAddr};
///
/// let mut pt = PageTable::new(PageSize::Size4K);
/// let tx = pt.map(VirtAddr::new(0x7000));
/// let path = pt.walk_path(tx.key.vpn).unwrap();
/// let mut pwc = PageWalkCaches::new(PwcConfig::default());
/// assert_eq!(pwc.first_uncached_level(&path), 0); // cold: walk all levels
/// pwc.fill(&path);
/// assert_eq!(pwc.first_uncached_level(&path), 3); // warm: only the PTE access
/// ```
#[derive(Debug, Clone)]
pub struct PageWalkCaches {
    caches: [LevelCache; 3],
    config: PwcConfig,
}

impl PageWalkCaches {
    /// Creates empty walk caches.
    pub fn new(config: PwcConfig) -> Self {
        Self {
            caches: [
                LevelCache::new(config.pgd_entries),
                LevelCache::new(config.pud_entries),
                LevelCache::new(config.pmd_entries),
            ],
            config,
        }
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Returns the index of the first walk step that must access
    /// memory: the deepest *interior* level cached lets the walker skip
    /// everything at or above it. The leaf PTE (last step) is never
    /// cached here, so the result is at most `steps.len() - 1`.
    pub fn first_uncached_level(&mut self, path: &WalkPath) -> usize {
        let interior = path.steps().len() - 1; // number of cacheable levels
        let cacheable = interior.min(self.caches.len());
        // Probe deepest-first: a PMD hit covers PGD+PUD+PMD.
        for level in (0..cacheable).rev() {
            if self.caches[level].lookup(path.steps()[level].prefix) {
                return level + 1;
            }
        }
        0
    }

    /// Fills all interior levels of a completed walk.
    pub fn fill(&mut self, path: &WalkPath) {
        let interior = path.steps().len() - 1;
        for level in 0..interior.min(self.caches.len()) {
            self.caches[level].insert(path.steps()[level].prefix);
        }
    }

    /// Per-level hit/miss counters `(pgd, pud, pmd)`.
    pub fn stats(&self) -> (HitMiss, HitMiss, HitMiss) {
        (self.caches[0].stats, self.caches[1].stats, self.caches[2].stats)
    }

    /// Zeroes the per-level hit/miss counters, keeping cached entries
    /// (checkpoint restore re-baselines measurement on warm state).
    pub fn reset_stats(&mut self) {
        for c in &mut self.caches {
            c.stats = HitMiss::new();
        }
    }

    /// Invalidates everything (address-space switch / shootdown).
    pub fn flush(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PageSize, VirtAddr, Vpn};
    use crate::page_table::PageTable;

    fn path_for(pt: &mut PageTable, va: u64) -> WalkPath {
        let tx = pt.map(VirtAddr::new(va));
        pt.walk_path(tx.key.vpn).unwrap()
    }

    #[test]
    fn cold_walk_starts_at_root() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let path = path_for(&mut pt, 0x1000);
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        assert_eq!(pwc.first_uncached_level(&path), 0);
    }

    #[test]
    fn warm_walk_skips_to_pte() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let path = path_for(&mut pt, 0x1000);
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        pwc.fill(&path);
        // Adjacent page shares all interior nodes.
        let path2 = path_for(&mut pt, 0x2000);
        assert_eq!(pwc.first_uncached_level(&path2), 3);
    }

    #[test]
    fn partial_hit_at_shallower_level() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let near = path_for(&mut pt, 0x1000);
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        pwc.fill(&near);
        // 1 GiB away: same PGD and PUD prefix differs at PMD level.
        let far = path_for(&mut pt, 1 << 30);
        let lvl = pwc.first_uncached_level(&far);
        assert!((1..3).contains(&lvl), "expected partial skip, got {lvl}");
    }

    #[test]
    fn two_mb_pages_have_two_cacheable_levels() {
        let mut pt = PageTable::new(PageSize::Size2M);
        let path = path_for(&mut pt, 0x4000_0000);
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        pwc.fill(&path);
        assert_eq!(path.steps().len(), 3);
        assert_eq!(pwc.first_uncached_level(&path), 2); // only leaf access
    }

    #[test]
    fn lru_eviction_in_small_pgd_cache() {
        let mut pwc = PageWalkCaches::new(PwcConfig {
            pgd_entries: 2,
            pud_entries: 0,
            pmd_entries: 0,
            latency: 2,
        });
        let mut pt = PageTable::new(PageSize::Size4K);
        // Three PGD-distinct regions (39 bits apart at 4K = bit 27 of VPN).
        let stride = 1u64 << 39;
        let p0 = path_for(&mut pt, 0);
        let p1 = path_for(&mut pt, stride);
        let p2 = path_for(&mut pt, 2 * stride);
        pwc.fill(&p0);
        pwc.fill(&p1);
        pwc.fill(&p2); // evicts p0's PGD entry
        assert_eq!(pwc.first_uncached_level(&p0), 0);
        assert_eq!(pwc.first_uncached_level(&p2), 1);
    }

    #[test]
    fn flush_clears_all_levels() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let path = path_for(&mut pt, 0x9000);
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        pwc.fill(&path);
        pwc.flush();
        assert_eq!(pwc.first_uncached_level(&path), 0);
    }

    #[test]
    fn stats_track_probes() {
        let mut pt = PageTable::new(PageSize::Size4K);
        let path = path_for(&mut pt, 0x1000);
        let mut pwc = PageWalkCaches::new(PwcConfig::default());
        pwc.first_uncached_level(&path);
        pwc.fill(&path);
        pwc.first_uncached_level(&path);
        let (_, _, pmd) = pwc.stats();
        assert!(pmd.total() >= 2);
        assert!(pmd.hits >= 1);
        let _ = Vpn(0); // silence unused import in some cfgs
    }
}
