//! One function per table/figure of the paper.
//!
//! Every figure comes in two forms: the classic `fig*(scale) ->
//! String` exact entry point (bit-identical to the seed behavior) and
//! a `fig*_mode(scale, &RunMode)` twin that runs the same experiment
//! under an explicit execution mode — `all --sample` drives the whole
//! battery through the `_mode` forms with checkpointed interval
//! sampling, regenerating the complete paper in minutes. Figures whose
//! sweeps only perturb timing-side config (L2 TLB sizes, perfect-TLB,
//! I-cache sharers, replacement/Tx-packing ablations) share one warmup
//! capture per app through
//! [`CheckpointKey`](gtr_core::checkpoint::CheckpointKey); page-size
//! sweeps provably re-capture per size.
//!
//! [`battery`] returns every figure as a [`FigureResult`] — rendered
//! text plus per-figure sampling metadata (cell counts and worst
//! error bounds) that `all --stats-out` exports as the schema-v4
//! `figures` array. See `EXPERIMENTS.md` at the workspace root for
//! paper-vs-measured commentary.

use gtr_core::config::{ReachConfig, Replacement, SamplingConfig, SegmentSize, TxPerLine};
use gtr_core::stats::RunStats;
use gtr_gpu::config::GpuConfig;
use gtr_vm::addr::PageSize;
use gtr_vm::alloc::{PageLayout, REGION_PAGES_LOG2};
use gtr_vm::tenancy::SharingPolicy;
use gtr_workloads::scale::Scale;
use gtr_workloads::suite;

use crate::harness::{row, Matrix, RunMode, Variant};

/// POM-TLB entries used for the DUCATI comparison (512 K entries,
/// 4 MB of device memory).
pub const DUCATI_POM_ENTRIES: u64 = 512 * 1024;

/// One rendered figure plus the sampling metadata of the cells that
/// produced it (what the schema-v4 `figures` export array carries).
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Short machine name (`fig02_03`, `ablations`, …).
    pub name: String,
    /// The rendered report, exactly what the exact-mode `fig*`
    /// function returns.
    pub text: String,
    /// Simulated matrix cells behind the figure.
    pub cells: usize,
    /// Cells that ran under interval sampling (0 for exact mode and
    /// for simulation-free figures like Table 1).
    pub sampled_cells: usize,
    /// Worst per-cell extrapolation error bound, percent.
    pub error_bound_pct: f64,
    /// Worst per-cell side-cache (DUCATI) divergence bound, percent.
    pub side_cache_error_bound_pct: f64,
}

impl FigureResult {
    /// Reduces the matrices behind a figure to its metadata.
    fn from_matrices(name: &str, text: String, matrices: &[&Matrix]) -> Self {
        let mut cells = 0usize;
        let mut sampled_cells = 0usize;
        let mut error_bound_pct = 0.0f64;
        let mut side_cache_error_bound_pct = 0.0f64;
        for m in matrices {
            for s in m.baseline.iter().chain(m.variants.iter().flat_map(|(_, v)| v)) {
                cells += 1;
                if let Some(meta) = &s.sampling {
                    sampled_cells += 1;
                    error_bound_pct = error_bound_pct.max(meta.error_bound_pct);
                    side_cache_error_bound_pct =
                        side_cache_error_bound_pct.max(meta.side_cache_error_bound_pct);
                }
            }
        }
        Self {
            name: name.to_string(),
            text,
            cells,
            sampled_cells,
            error_bound_pct,
            side_cache_error_bound_pct,
        }
    }

    /// A figure that runs no simulation (Table 1).
    fn without_cells(name: &str, text: String) -> Self {
        Self {
            name: name.to_string(),
            text,
            cells: 0,
            sampled_cells: 0,
            error_bound_pct: 0.0,
            side_cache_error_bound_pct: 0.0,
        }
    }
}

/// Table 1: the simulated setup (printed for reference).
pub fn table1() -> String {
    let g = GpuConfig::default();
    let r = ReachConfig::ic_plus_lds();
    format!(
        "### Table 1: simulated setup\n\
         GPU: {} CUs, {} SIMDs/CU, {} waves/SIMD, {} threads/wave\n\
         L1 TLB: {} entries, fully assoc, {} cy | L2 TLB: {} entries, {}-way, {} cy\n\
         I-cache: {} KB, {}-way, shared by {} CUs; IC tag {} cy, Tx tag {} cy, \
         scan {} cy, mux {} cy, decompress {} cy\n\
         LDS: {} KB/CU, segment {} B ({} tx ways); LDS-mode {} cy, Tx-mode {} cy\n\
         Data caches: L1 {} KB/{}-way, L2 {} MB/{}-way | DRAM: DDR3-1600, 2ch x 2rk x 16bk\n\
         IOMMU: {} walkers; dev TLBs {}/{}; PWC {}/{}/{}\n",
        g.cus,
        g.simds_per_cu,
        g.waves_per_simd,
        g.threads_per_wave,
        g.l1_tlb.entries,
        g.l1_tlb.latency,
        g.l2_tlb.entries,
        g.l2_tlb.assoc,
        g.l2_tlb.latency,
        g.icache_bytes / 1024,
        g.icache_assoc,
        g.cus_per_icache,
        g.ic_tag_latency,
        r.ic_tx_tag_latency,
        r.ic_tx_scan_latency,
        r.mux_latency,
        r.decompress_latency,
        g.lds_bytes / 1024,
        r.segment_size.bytes(),
        r.segment_size.ways(),
        g.lds_latency,
        r.lds_tx_latency,
        g.l1d.capacity_bytes / 1024,
        g.l1d.assoc,
        g.memory.l2.capacity_bytes / (1024 * 1024),
        g.memory.l2.assoc,
        g.iommu.walkers,
        g.iommu.l1_entries,
        g.iommu.l2_entries,
        g.iommu.pwc.pgd_entries,
        g.iommu.pwc.pud_entries,
        g.iommu.pwc.pmd_entries,
    )
}

/// Runs the Table-2 suite under the baseline alone (the
/// characterization matrix behind Table 2 and Figs 4–5).
pub fn baseline_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    let apps = suite::all(scale);
    Matrix::run_apps_with_mode(
        &apps,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![],
        mode,
        mode.resolved_workers(),
    )
}

/// Table 2: benchmark characterization under the baseline.
pub fn table2(scale: Scale) -> String {
    table2_mode(scale, &RunMode::exact())
}

/// [`table2`] under an explicit execution mode.
pub fn table2_mode(scale: Scale, mode: &RunMode) -> String {
    table2_from(scale, &baseline_matrix(scale, mode))
}

fn table2_from(scale: Scale, m: &Matrix) -> String {
    let apps = suite::all(scale);
    let mut out = String::from(
        "### Table 2: benchmarks (measured on the baseline simulator)\n\
         App        Suite      Kernels  B2B  L1-HR%  L2-HR%  PTW-PKI  Category\n",
    );
    for (i, app) in apps.iter().enumerate() {
        let info = suite::info(app.name()).expect("suite metadata");
        let s = &m.baseline[i];
        out.push_str(&format!(
            "{:<10} {:<10} {:>7}  {:<3}  {:>6.1}  {:>6.1}  {:>7.2}  {}\n",
            app.name(),
            info.suite,
            app.kernels().len(),
            if app.has_back_to_back_kernels() { "Yes" } else { "No" },
            s.l1_hit_ratio() * 100.0,
            s.l2_hit_ratio() * 100.0,
            s.ptw_pki(),
            s.category(),
        ));
    }
    out
}

/// The Figs 2–3 sweep matrix: L2 TLB 1K → 64K entries plus a perfect
/// L2 TLB, against the 512-entry baseline. Every variant is
/// timing-side only, so under sampling the whole axis shares one
/// warmup capture per app.
pub fn fig02_03_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    let sizes: [(&str, usize); 5] =
        [("1K", 1024), ("2K", 2048), ("4K", 4096), ("8K", 8192), ("64K", 65536)];
    let mut variants: Vec<Variant> = sizes
        .iter()
        .map(|(label, entries)| {
            Variant::with_gpu(
                format!("L2-TLB-{label}"),
                GpuConfig::default().with_l2_tlb_entries(*entries),
                ReachConfig::baseline(),
            )
        })
        .collect();
    variants.push(Variant::with_gpu(
        "Perfect-L2-TLB",
        GpuConfig::default().with_perfect_l2_tlb(),
        ReachConfig::baseline(),
    ));
    Matrix::run_with_mode(
        scale,
        Variant::new("512 (baseline)", ReachConfig::baseline()),
        variants,
        mode,
    )
}

/// Figures 2 and 3: page walks and performance vs L2 TLB size
/// (512 → 64 K entries, plus a perfect L2 TLB).
pub fn fig02_03(scale: Scale) -> String {
    fig02_03_mode(scale, &RunMode::exact())
}

/// [`fig02_03`] under an explicit execution mode.
pub fn fig02_03_mode(scale: Scale, mode: &RunMode) -> String {
    fig02_03_from(&fig02_03_matrix(scale, mode))
}

fn fig02_03_from(m: &Matrix) -> String {
    let mut out = m.normalized_table(
        "Fig 2: page walks normalized to the 512-entry baseline",
        |s: &RunStats| s.page_walks as f64,
    );
    out.push('\n');
    out.push_str(&m.improvement_table("Fig 3: performance improvement vs 512-entry baseline"));
    out
}

/// Figures 4 and 5: LDS/I-cache capacity and port-bandwidth
/// under-utilization in the baseline.
pub fn fig04_05(scale: Scale) -> String {
    fig04_05_mode(scale, &RunMode::exact())
}

/// [`fig04_05`] under an explicit execution mode.
pub fn fig04_05_mode(scale: Scale, mode: &RunMode) -> String {
    fig04_05_from(&baseline_matrix(scale, mode))
}

fn fig04_05_from(m: &Matrix) -> String {
    let mut out = String::from(
        "### Fig 4a: LDS bytes requested per workgroup (box-and-whisker)\n\
         App        min      q1     med      q3     max   (LDS capacity/CU = 16384 B)\n",
    );
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].lds_request_summary;
        out.push_str(&format!(
            "{:<10} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out.push_str("\n### Fig 4b: idle cycles between LDS port accesses\n");
    out.push_str("App        min      q1     med      q3     max\n");
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].lds_idle_summary;
        out.push_str(&format!(
            "{:<10} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out.push_str("\n### Fig 5a: per-kernel I-cache utilization %, Eq 1 (box-and-whisker)\n");
    out.push_str("App        min      q1     med      q3     max\n");
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].icache_utilization_summary;
        out.push_str(&format!(
            "{:<10} {:>6.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out.push_str("\n### Fig 5b: idle cycles between I-cache port accesses\n");
    out.push_str("App        min      q1     med      q3     max\n");
    for (i, app) in m.apps.iter().enumerate() {
        let f = m.baseline[i].icache_idle_summary;
        out.push_str(&format!(
            "{:<10} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}\n",
            app, f.min, f.q1, f.median, f.q3, f.max
        ));
    }
    out
}

/// The applications Fig 11 tracks over time.
const FIG11_APPS: [&str; 8] = ["ATAX", "BICG", "MVT", "BFS", "NW", "PRK", "SSSP", "GUPS"];

/// The baseline matrix behind Fig 11 (its named apps, in figure
/// order).
pub fn fig11_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    let apps: Vec<_> = FIG11_APPS
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();
    Matrix::run_apps_with_mode(
        &apps,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![],
        mode,
        mode.resolved_workers(),
    )
}

/// Figure 11: I-cache utilization per kernel over time.
pub fn fig11(scale: Scale) -> String {
    fig11_mode(scale, &RunMode::exact())
}

/// [`fig11`] under an explicit execution mode.
pub fn fig11_mode(scale: Scale, mode: &RunMode) -> String {
    fig11_from(&fig11_matrix(scale, mode))
}

fn fig11_from(m: &Matrix) -> String {
    let mut out = String::from(
        "### Fig 11: per-kernel I-cache utilization over time (first 24 launches)\n",
    );
    for (name, stats) in FIG11_APPS.iter().zip(&m.baseline) {
        let series: Vec<String> = stats
            .kernels
            .iter()
            .take(24)
            .map(|k| format!("{:.0}", k.icache_utilization_pct))
            .collect();
        out.push_str(&format!("{name:<6} [{} kernels] {}\n", stats.kernels.len(), series.join(" ")));
    }
    out
}

/// The main (Fig 13/14/15) run matrix: LDS-only, IC-only, IC+LDS.
pub fn main_matrix(scale: Scale) -> Matrix {
    main_matrix_opts(scale, false)
}

/// [`main_matrix`] with distribution recording optionally armed on
/// every cell (`all --percentiles` uses this to export schema-v2
/// histograms; the timing results are identical either way).
pub fn main_matrix_opts(scale: Scale, distributions: bool) -> Matrix {
    main_matrix_mode(scale, distributions, &RunMode::exact())
}

/// [`main_matrix_opts`] under an explicit execution [`RunMode`] —
/// `all --sample` runs the matrix through this with checkpointed
/// interval sampling.
pub fn main_matrix_mode(scale: Scale, distributions: bool, mode: &RunMode) -> Matrix {
    let variant = |label: &str, reach| {
        let v = Variant::new(label, reach);
        if distributions {
            v.with_distributions()
        } else {
            v
        }
    };
    Matrix::run_with_mode(
        scale,
        variant("baseline", ReachConfig::baseline()),
        vec![
            variant("LDS", ReachConfig::lds_only()),
            variant("IC", ReachConfig::ic_only()),
            variant("IC+LDS", ReachConfig::ic_plus_lds()),
        ],
        mode,
    )
}

/// The sampling windows `--sample` uses at a given scale: the
/// paper-default windows shrunk by the workload factor (floored at
/// 512 instructions — see [`SamplingConfig::scaled`]).
pub fn sampling_for(scale: Scale) -> SamplingConfig {
    SamplingConfig::paper_default().scaled(scale.factor())
}

/// The Fig 13a design-variant matrix (Tx packing, replacement policy,
/// flush — all timing-side, so the axis shares one capture per app).
pub fn fig13a_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    let ic = |tx, repl, flush| {
        ReachConfig::ic_only()
            .with_tx_per_line(tx)
            .with_replacement(repl)
            .with_flush(flush)
    };
    Matrix::run_with_mode(
        scale,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("IC-1tx/way", ic(TxPerLine::One, Replacement::InstructionAware, false)),
            Variant::new("IC-8tx-naive-repl", ic(TxPerLine::Eight, Replacement::NaiveLru, false)),
            Variant::new("IC-8tx-instr-aware", ic(TxPerLine::Eight, Replacement::InstructionAware, false)),
            Variant::new("IC-8tx-IA+flush", ic(TxPerLine::Eight, Replacement::InstructionAware, true)),
        ],
        mode,
    )
}

/// Figure 13a: reconfigurable I-cache design variants.
pub fn fig13a(scale: Scale) -> String {
    fig13a_mode(scale, &RunMode::exact())
}

/// [`fig13a`] under an explicit execution mode.
pub fn fig13a_mode(scale: Scale, mode: &RunMode) -> String {
    fig13a_from(&fig13a_matrix(scale, mode))
}

fn fig13a_from(m: &Matrix) -> String {
    m.improvement_table("Fig 13a: reconfigurable I-cache variants (% improvement)")
}

/// Figure 13b: LDS / IC / IC+LDS performance (from a prebuilt matrix).
pub fn fig13b_from(m: &Matrix) -> String {
    let mut out = m.improvement_table("Fig 13b: reconfigurable LDS / IC / IC+LDS (% improvement)");
    out.push_str(&m.geomean_chart());
    let high_medium = ["ATAX", "GEV", "MVT", "BICG", "GUPS", "NW", "BFS"];
    out.push_str("\nHigh+Medium-only geomeans: ");
    for v in 0..m.variants.len() {
        out.push_str(&format!(
            "{}={:+.1}% ",
            m.variants[v].0,
            m.geomean_improvement_subset(v, &high_medium)
        ));
    }
    out.push('\n');
    out
}

/// Figure 13b standalone.
pub fn fig13b(scale: Scale) -> String {
    fig13b_from(&main_matrix(scale))
}

/// Figure 13c: normalized DRAM energy (from a prebuilt matrix).
pub fn fig13c_from(m: &Matrix) -> String {
    m.normalized_table("Fig 13c: DRAM energy normalized to baseline", |s| s.dram_energy_nj)
}

/// Figure 13c standalone.
pub fn fig13c(scale: Scale) -> String {
    fig13c_from(&main_matrix(scale))
}

/// Figure 14a/14b: translation sharing across CUs and normalized page
/// walks (from a prebuilt matrix).
pub fn fig14ab_from(m: &Matrix) -> String {
    let mut out = String::from("### Fig 14a: % of translations shared across CUs\n");
    let ic_lds = m.variants.len() - 1;
    out.push_str(&row(
        "app",
        &m.apps.iter().map(String::as_str).collect::<Vec<_>>(),
        "",
    ));
    let cells: Vec<String> = m.variants[ic_lds]
        .1
        .iter()
        .map(|s| format!("{:.0}%", s.tx_shared_fraction * 100.0))
        .collect();
    out.push_str(&row(
        "shared",
        &cells.iter().map(String::as_str).collect::<Vec<_>>(),
        "",
    ));
    out.push('\n');
    out.push_str(
        &m.normalized_table("Fig 14b: page walks normalized to baseline", |s| {
            s.page_walks as f64
        }),
    );
    out
}

/// The per-page-size matrices behind Fig 14c, in [`PageSize::all`]
/// order. A page-size change rewrites the translation stream itself,
/// so under sampling each size captures its own checkpoints (the
/// [`CheckpointKey`](gtr_core::checkpoint::CheckpointKey) property
/// tests prove the invalidation).
pub fn fig14c_matrices(scale: Scale, mode: &RunMode) -> Vec<(PageSize, Matrix)> {
    PageSize::all()
        .into_iter()
        .map(|size| {
            let gpu = GpuConfig::default().with_page_size(size);
            let m = Matrix::run_with_mode(
                scale,
                Variant::with_gpu("baseline", gpu.clone(), ReachConfig::baseline()),
                vec![Variant::with_gpu("IC+LDS", gpu, ReachConfig::ic_plus_lds())],
                mode,
            );
            (size, m)
        })
        .collect()
}

/// Figure 14c: IC+LDS improvement at 4 KB / 64 KB / 2 MB pages.
pub fn fig14c(scale: Scale) -> String {
    fig14c_mode(scale, &RunMode::exact())
}

/// [`fig14c`] under an explicit execution mode.
pub fn fig14c_mode(scale: Scale, mode: &RunMode) -> String {
    fig14c_from(&fig14c_matrices(scale, mode))
}

fn fig14c_from(matrices: &[(PageSize, Matrix)]) -> String {
    let mut out = String::from("### Fig 14c: IC+LDS geomean improvement by page size\n");
    for (size, m) in matrices {
        out.push_str(&format!("{size:>5} pages: {:+.1}%\n", m.geomean_improvement(0)));
    }
    out
}

/// Figure 15: additional translation entries gained (peak resident).
pub fn fig15_from(m: &Matrix) -> String {
    let ic_lds = m.variants.len() - 1;
    let mut out = String::from(
        "### Fig 15: additional translation entries gained (peak; max 16K = 12K LDS + 4K IC)\n",
    );
    for (i, app) in m.apps.iter().enumerate() {
        out.push_str(&format!(
            "{:<10} {:>6}\n",
            app, m.variants[ic_lds].1[i].peak_tx_entries
        ));
    }
    out
}

/// Figure 15 standalone.
pub fn fig15(scale: Scale) -> String {
    fig15_from(&main_matrix(scale))
}

/// The Fig 16a sharing-sensitivity matrix (1/2/4/8 CUs per I-cache at
/// constant capacity — timing-side, one shared capture per app).
pub fn fig16a_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    let variants = [1usize, 2, 4, 8]
        .iter()
        .map(|&sharers| {
            Variant::with_gpu(
                format!("{sharers}-CU-sharers"),
                GpuConfig::default().with_icache_sharers(sharers),
                ReachConfig::ic_plus_lds(),
            )
        })
        .collect();
    Matrix::run_with_mode(scale, Variant::new("baseline", ReachConfig::baseline()), variants, mode)
}

/// Figure 16a: sensitivity to the number of CUs sharing an I-cache
/// (total I-cache capacity constant).
pub fn fig16a(scale: Scale) -> String {
    fig16a_mode(scale, &RunMode::exact())
}

/// [`fig16a`] under an explicit execution mode.
pub fn fig16a_mode(scale: Scale, mode: &RunMode) -> String {
    fig16a_from(&fig16a_matrix(scale, mode))
}

fn fig16a_from(m: &Matrix) -> String {
    m.improvement_table("Fig 16a: IC+LDS improvement vs CUs per I-cache (capacity constant)")
}

/// The Fig 16b wire-latency matrix.
pub fn fig16b_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    let mut variants = Vec::new();
    for extra in [10u64, 50, 100] {
        variants.push(Variant::new(
            format!("IC_only+{extra}cy"),
            ReachConfig::ic_plus_lds().with_wire_latency(0, extra),
        ));
        variants.push(Variant::new(
            format!("LDS_only+{extra}cy"),
            ReachConfig::ic_plus_lds().with_wire_latency(extra, 0),
        ));
        variants.push(Variant::new(
            format!("IC_LDS+{extra}cy"),
            ReachConfig::ic_plus_lds().with_wire_latency(extra, extra),
        ));
    }
    Matrix::run_with_mode(scale, Variant::new("baseline", ReachConfig::baseline()), variants, mode)
}

/// Figure 16b: sensitivity to additional datapath/wire latency.
pub fn fig16b(scale: Scale) -> String {
    fig16b_mode(scale, &RunMode::exact())
}

/// [`fig16b`] under an explicit execution mode.
pub fn fig16b_mode(scale: Scale, mode: &RunMode) -> String {
    fig16b_from(&fig16b_matrix(scale, mode))
}

fn fig16b_from(m: &Matrix) -> String {
    m.improvement_table("Fig 16b: IC+LDS improvement with extra translation wire latency")
}

/// The Fig 16c DUCATI-composition matrix. Under sampling the DUCATI
/// cells warm the side cache functionally across fast-forward windows
/// and report their hit-rate divergence through
/// `SamplingMeta::side_cache_error_bound_pct`.
pub fn fig16c_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    Matrix::run_with_mode(
        scale,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("DUCATI", ReachConfig::baseline()).with_ducati(DUCATI_POM_ENTRIES),
            Variant::new("IC+LDS", ReachConfig::ic_plus_lds()),
            Variant::new("DUCATI+IC+LDS", ReachConfig::ic_plus_lds())
                .with_ducati(DUCATI_POM_ENTRIES),
        ],
        mode,
    )
}

/// Figure 16c: composing with DUCATI.
pub fn fig16c(scale: Scale) -> String {
    fig16c_mode(scale, &RunMode::exact())
}

/// [`fig16c`] under an explicit execution mode.
pub fn fig16c_mode(scale: Scale, mode: &RunMode) -> String {
    fig16c_from(&fig16c_matrix(scale, mode))
}

fn fig16c_from(m: &Matrix) -> String {
    m.improvement_table("Fig 16c: DUCATI vs and with the reconfigurable design")
}

/// The §6.3.1 segment-size ablation matrix.
pub fn ablation_segment_size_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    Matrix::run_with_mode(
        scale,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("IC+LDS-32B-seg", ReachConfig::ic_plus_lds()),
            Variant::new(
                "IC+LDS-64B-seg",
                ReachConfig::ic_plus_lds().with_segment_size(SegmentSize::Bytes64),
            ),
        ],
        mode,
    )
}

/// §6.3.1: LDS segment-size ablation (32 B / 3-way vs 64 B / 6-way).
pub fn ablation_segment_size(scale: Scale) -> String {
    ablation_segment_size_mode(scale, &RunMode::exact())
}

/// [`ablation_segment_size`] under an explicit execution mode.
pub fn ablation_segment_size_mode(scale: Scale, mode: &RunMode) -> String {
    ablation_segment_size_from(&ablation_segment_size_matrix(scale, mode))
}

fn ablation_segment_size_from(m: &Matrix) -> String {
    m.improvement_table("§6.3.1: LDS segment size 32 B vs 64 B (% improvement)")
}

/// The four sub-ablation matrices behind [`ablations`], in print
/// order: victim-vs-prefetch, home-hashed LDS, PWCs removed,
/// coalescer removed. The coalescer ablation changes the translation
/// stream itself, so its no-coalescing cells capture their own
/// checkpoints under sampling.
pub fn ablation_matrices(scale: Scale, mode: &RunMode) -> Vec<Matrix> {
    use gtr_core::config::TxFillPolicy;
    let workers = mode.resolved_workers();
    let irregular: Vec<_> = ["ATAX", "GUPS", "BFS"]
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();
    let walk_heavy: Vec<_> = ["ATAX", "GEV", "GUPS"]
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();
    vec![
        // (a) Victim cache vs prefetch buffer, irregular apps only.
        Matrix::run_apps_with_mode(
            &irregular,
            Variant::new("baseline", ReachConfig::baseline()),
            vec![
                Variant::new("victim-cache (paper)", ReachConfig::ic_plus_lds()),
                Variant::new(
                    "prefetch-buffer",
                    ReachConfig::ic_plus_lds().with_fill_policy(TxFillPolicy::PrefetchBuffer),
                ),
            ],
            mode,
            workers,
        ),
        // (b) Home-node-hashed LDS: the duplication-limiting
        // optimization the paper defers. Dedup multiplies GUPS's
        // effective reach ~8x; apps whose per-CU LDS already covers
        // their hot set mostly pay the remote hop.
        Matrix::run_apps_with_mode(
            &irregular,
            Variant::new("baseline", ReachConfig::baseline()),
            vec![
                Variant::new("IC+LDS (duplicated)", ReachConfig::ic_plus_lds()),
                Variant::new(
                    "IC+LDS home-hashed",
                    ReachConfig::ic_plus_lds().with_lds_home_hashing(),
                ),
            ],
            mode,
            workers,
        ),
        // (c) Page-walk caches on/off (baseline machine).
        Matrix::run_apps_with_mode(
            &walk_heavy,
            Variant::new("with PWCs (baseline)", ReachConfig::baseline()),
            vec![Variant::with_gpu(
                "without PWCs",
                GpuConfig::default().without_page_walk_caches(),
                ReachConfig::baseline(),
            )],
            mode,
            workers,
        ),
        // (d) SIMT coalescer on/off (baseline machine).
        Matrix::run_apps_with_mode(
            &walk_heavy,
            Variant::new("with coalescer (baseline)", ReachConfig::baseline()),
            vec![Variant::with_gpu(
                "without coalescer",
                GpuConfig::default().without_coalescing(),
                ReachConfig::baseline(),
            )],
            mode,
            workers,
        ),
    ]
}

/// Design-choice ablations beyond the paper's own sensitivity studies
/// (promised by DESIGN.md): victim-cache vs prefetch-buffer fills
/// (§4.1), page-walk caches on/off, and the SIMT coalescer on/off.
pub fn ablations(scale: Scale) -> String {
    ablations_mode(scale, &RunMode::exact())
}

/// [`ablations`] under an explicit execution mode.
pub fn ablations_mode(scale: Scale, mode: &RunMode) -> String {
    ablations_from(&ablation_matrices(scale, mode))
}

fn ablations_from(matrices: &[Matrix]) -> String {
    let titles = [
        "Ablation §4.1: victim cache vs prefetch buffer (irregular apps)",
        "Ablation (paper future work): home-node-hashed LDS vs per-CU duplication",
        "Ablation: split page-walk caches removed",
        "Ablation: SIMT page coalescer removed",
    ];
    let mut out = String::new();
    for (i, (m, title)) in matrices.iter().zip(titles).enumerate() {
        out.push_str(&m.improvement_table(title));
        if i + 1 < matrices.len() {
            out.push('\n');
        }
    }
    out
}

/// The §7.2 two-tenant matrix (ATAX+BICG interleaved).
pub fn multi_app_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    use gtr_gpu::kernel::AppTrace;
    let a = suite::by_name("ATAX", scale).expect("known app");
    let b = suite::by_name("BICG", scale).expect("known app");
    let merged = AppTrace::interleave(&a, &b);
    Matrix::run_apps_with_mode(
        std::slice::from_ref(&merged),
        Variant::new("baseline", ReachConfig::baseline()),
        vec![
            Variant::new("LDS", ReachConfig::lds_only()),
            Variant::new("IC", ReachConfig::ic_only()),
            Variant::new("IC+LDS", ReachConfig::ic_plus_lds()),
        ],
        mode,
        mode.resolved_workers(),
    )
}

/// §7.2 multi-application scenario: ATAX and BICG interleaved in two
/// address spaces, with and without the reconfigurable architecture.
pub fn multi_app(scale: Scale) -> String {
    multi_app_mode(scale, &RunMode::exact())
}

/// [`multi_app`] under an explicit execution mode.
pub fn multi_app_mode(scale: Scale, mode: &RunMode) -> String {
    multi_app_from(&multi_app_matrix(scale, mode))
}

fn multi_app_from(m: &Matrix) -> String {
    m.improvement_table("§7.2: two tenants (ATAX+BICG interleaved, distinct VM-IDs)")
}

/// The applications the tenancy sweep replicates (one copy per
/// tenant): two translation-sensitive irregular apps and the
/// random-access worst case, so both contention regimes appear
/// (TENANCY.md §4).
pub const TENANCY_APPS: [&str; 3] = ["ATAX", "BICG", "GUPS"];

/// The tenant counts the sweep visits; the 3-bit VM-ID space caps the
/// axis at [`gtr_vm::tenancy::MAX_TENANTS`].
pub const TENANCY_COUNTS: [u8; 3] = [2, 4, 8];

/// The solo anchor matrix of the tenancy sweep: each sweep app running
/// *alone* (tenancy off) under the baseline and IC+LDS machines. Its
/// kernel-cycle sums are the denominators of every per-tenant
/// slowdown in the sweep (TENANCY.md §4).
pub fn tenancy_solo_matrix(scale: Scale, mode: &RunMode) -> Matrix {
    let apps: Vec<_> = TENANCY_APPS
        .iter()
        .map(|n| suite::by_name(n, scale).expect("known app"))
        .collect();
    Matrix::run_apps_with_mode(
        &apps,
        Variant::new("baseline", ReachConfig::baseline()),
        vec![Variant::new("IC+LDS", ReachConfig::ic_plus_lds())],
        mode,
        mode.resolved_workers(),
    )
}

/// One (tenant count × policy) matrix of the tenancy sweep: every
/// sweep app replicated once per tenant
/// ([`AppTrace::replicate`](gtr_gpu::kernel::AppTrace::replicate), so
/// each copy runs in its own address space), under a tenanted baseline
/// and a tenanted IC+LDS machine. Per-tenant solo bases are filled
/// from `solo` ([`tenancy_solo_matrix`]) so every cell's tenant
/// records report slowdowns.
pub fn tenancy_matrix(
    scale: Scale,
    tenants: u8,
    policy: SharingPolicy,
    solo: &Matrix,
    mode: &RunMode,
) -> Matrix {
    use gtr_gpu::kernel::AppTrace;
    let apps: Vec<AppTrace> = TENANCY_APPS
        .iter()
        .map(|n| AppTrace::replicate(&suite::by_name(n, scale).expect("known app"), tenants))
        .collect();
    let mut m = Matrix::run_apps_with_mode(
        &apps,
        Variant::new("baseline", ReachConfig::baseline().with_tenancy(tenants, policy)),
        vec![Variant::new(
            "IC+LDS",
            ReachConfig::ic_plus_lds().with_tenancy(tenants, policy),
        )],
        mode,
        mode.resolved_workers(),
    );
    for (i, s) in m.baseline.iter_mut().enumerate() {
        crate::harness::fill_solo_cycles(s, &solo.baseline[i]);
    }
    for (i, s) in m.variants[0].1.iter_mut().enumerate() {
        crate::harness::fill_solo_cycles(s, &solo.variants[0].1[i]);
    }
    m
}

/// The full tenancy sweep: the solo anchor plus one matrix per
/// (tenant count × sharing policy) point, in
/// [`TENANCY_COUNTS`] × [`SharingPolicy::all`] order. Under sampling,
/// each distinct replicated trace captures its own warmup checkpoint
/// (the trace name encodes the tenant count) and the three policies at
/// one count share it — policies are timing-side config.
pub fn tenancy_matrices(
    scale: Scale,
    mode: &RunMode,
) -> (Matrix, Vec<(u8, SharingPolicy, Matrix)>) {
    tenancy_matrices_subset(scale, &TENANCY_COUNTS, &SharingPolicy::all(), mode)
}

/// [`tenancy_matrices`] restricted to explicit tenant counts and
/// policies (the `tenancy` binary's `--tenants`/`--policy` flags and
/// the CI smoke sweep a subset of the full family).
pub fn tenancy_matrices_subset(
    scale: Scale,
    counts: &[u8],
    policies: &[SharingPolicy],
    mode: &RunMode,
) -> (Matrix, Vec<(u8, SharingPolicy, Matrix)>) {
    let solo = tenancy_solo_matrix(scale, mode);
    let mut out = Vec::new();
    for &n in counts {
        for &policy in policies {
            out.push((n, policy, tenancy_matrix(scale, n, policy, &solo, mode)));
        }
    }
    (solo, out)
}

/// Worst per-tenant slowdown of one tenanted cell.
fn worst_slowdown(s: &RunStats) -> f64 {
    s.tenants.iter().map(|t| t.slowdown()).fold(0.0, f64::max)
}

/// Unfairness of one tenanted cell: worst over best per-tenant
/// slowdown (1.0 = perfectly fair; TENANCY.md §4).
fn unfairness(s: &RunStats) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for t in &s.tenants {
        let x = t.slowdown();
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo > 0.0 && lo.is_finite() {
        hi / lo
    } else {
        0.0
    }
}

/// Tenant-count sweep figure: per-tenant slowdown vs solo across
/// 2–8 tenants × three sharing policies × {baseline, IC+LDS}.
pub fn tenancy_sweep(scale: Scale) -> String {
    tenancy_sweep_mode(scale, &RunMode::exact())
}

/// [`tenancy_sweep`] under an explicit execution mode.
pub fn tenancy_sweep_mode(scale: Scale, mode: &RunMode) -> String {
    let (_solo, ms) = tenancy_matrices(scale, mode);
    tenancy_sweep_from(&ms)
}

/// Renders prebuilt [`tenancy_matrices`] output as the sweep figure
/// (per-policy slowdown/unfairness tables plus the IC+LDS improvement
/// summary). Policies and counts absent from `ms` are simply omitted.
pub fn tenancy_sweep_from(ms: &[(u8, SharingPolicy, Matrix)]) -> String {
    use gtr_sim::stats::geomean;
    let mut out = String::from(
        "### Tenancy sweep: per-tenant slowdown vs solo\n\
         (cell = worst-tenant slowdown / unfairness, where unfairness = worst over \
         best per-tenant slowdown)\n",
    );
    for policy in SharingPolicy::all() {
        if !ms.iter().any(|(_, p, _)| *p == policy) {
            continue;
        }
        out.push_str(&format!("\n-- policy = {policy}\n"));
        out.push_str(&row("config", &TENANCY_APPS, "GeoMean"));
        for (n, p, m) in ms {
            if *p != policy {
                continue;
            }
            let rows: [(&str, &Vec<RunStats>); 2] =
                [("baseline", &m.baseline), ("IC+LDS", &m.variants[0].1)];
            for (label, runs) in rows {
                let cells: Vec<String> = runs
                    .iter()
                    .map(|s| format!("{:.2}/{:.1}", worst_slowdown(s), unfairness(s)))
                    .collect();
                let gm = geomean(runs.iter().map(worst_slowdown));
                out.push_str(&row(
                    &format!("{label} x{n}"),
                    &cells.iter().map(String::as_str).collect::<Vec<_>>(),
                    &format!("{gm:.2}"),
                ));
            }
        }
    }
    out.push_str("\n### Tenancy: IC+LDS geomean improvement over the tenanted baseline\n");
    let mut counts: Vec<u8> = ms.iter().map(|(n, _, _)| *n).collect();
    counts.sort_unstable();
    counts.dedup();
    let headers: Vec<String> = counts.iter().map(|n| format!("x{n}")).collect();
    out.push_str(&row("policy", &headers.iter().map(String::as_str).collect::<Vec<_>>(), ""));
    for policy in SharingPolicy::all() {
        if !ms.iter().any(|(_, p, _)| *p == policy) {
            continue;
        }
        let cells: Vec<String> = counts
            .iter()
            .map(|n| {
                ms.iter()
                    .find(|(c, p, _)| c == n && *p == policy)
                    .map(|(_, _, m)| format!("{:+.1}%", m.geomean_improvement(0)))
                    .unwrap_or_default()
            })
            .collect();
        out.push_str(&row(
            &policy.to_string(),
            &cells.iter().map(String::as_str).collect::<Vec<_>>(),
            "",
        ));
    }
    out
}

/// Shootdown-storm stress scenario: tenant churn (§7.1 / TENANCY.md
/// §6). Two ATAX tenants share the GPU; tenant 1 is evicted and
/// readmitted four times over the run, each time migrating its 32
/// hottest pages, so every cached copy of its translations — L1/L2
/// TLB, LDS segments, I-cache lines — must be shot down. Reported per
/// policy: the shootdown report, the per-tenant shootdown
/// attribution, the churn overhead vs an undisturbed run, and the
/// post-run coherence check. Always exact — the scenario stresses the
/// invalidation path, not the sampling estimator.
pub fn tenancy_storm(scale: Scale) -> String {
    use gtr_core::driver::{DriverSchedule, MigrationEvent};
    use gtr_core::system::System;
    use gtr_gpu::kernel::AppTrace;
    use gtr_vm::addr::{VmId, Vpn};
    let app = AppTrace::replicate(&suite::by_name("ATAX", scale).expect("known app"), 2);
    let mut out = String::from(
        "### Tenancy stress: shootdown storm under tenant churn (ATAX x2, IC+LDS)\n",
    );
    for policy in SharingPolicy::all() {
        let reach = ReachConfig::ic_plus_lds().with_tenancy(2, policy);
        let mut quiet_sys = System::new(GpuConfig::default(), reach);
        let quiet = quiet_sys.run(&app);
        // Victims come from tenant 1's actual footprint (an unmapped
        // page migrates as a no-op): 32 pages spread across its
        // demand-mapped pool, at churn triggers 2/6 .. 5/6 of the
        // undisturbed run's translation volume — deterministic,
        // scale-independent, and late enough that the pages are
        // resident when each event fires.
        let pool = quiet_sys.mapped_vpns(VmId::new(1));
        let stride = (pool.len() / 32).max(1);
        let pages: Vec<(VmId, Vpn)> =
            pool.iter().step_by(stride).take(32).map(|&v| (VmId::new(1), v)).collect();
        let total = quiet.translation_requests;
        let mut schedule = DriverSchedule::new();
        for k in 2..=5u64 {
            schedule = schedule.migrate(MigrationEvent {
                after_translations: total * k / 6,
                pages: pages.clone(),
            });
        }
        let mut sys = System::new(GpuConfig::default(), reach).with_driver_schedule(schedule);
        let stormed = sys.run(&app);
        let report = sys.shootdown_report();
        let coherent = sys.check_translation_coherence();
        out.push_str(&format!(
            "{:<12} {} events, {:>3} pages migrated, {:>4} stale copies \
             (L1 {} / L2 {} / LDS {} / IC {}); shootdowns t0/t1 = {}/{}; \
             churn overhead {:+.2}%; {} cached translations coherent\n",
            policy.to_string(),
            report.events,
            report.pages_migrated,
            report.total_hits(),
            report.l1_hits,
            report.l2_hits,
            report.lds_hits,
            report.ic_hits,
            stormed.tenants[0].shootdowns,
            stormed.tenants[1].shootdowns,
            (stormed.total_cycles as f64 / quiet.total_cycles.max(1) as f64 - 1.0) * 100.0,
            coherent,
        ));
    }
    out
}

/// The deterministic allocator seed of the contiguity figure family
/// (the fragmentation knob hashes `(seed, vpn)`, so the broken-out
/// page set is a pure function of this constant).
pub const CONTIGUITY_FRAG_SEED: u64 = 0xC0A1_E5CE;

/// Maximum coalesced-entry reach the figures grant: one entry may map
/// up to a whole 2 MB allocator region (2^9 × 4 KB pages).
pub const COALESCE_MAX_SPAN_LOG2: u8 = REGION_PAGES_LOG2 as u8;

/// The fragmentation fraction emulating a *fragmented* huge-page
/// backing: a quarter of the 4 KB pages break out of their region.
pub const FRAG2M_FRACTION: f64 = 0.25;

/// The fragmentation fractions the allocator sweep visits.
pub const FRAG_SWEEP: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One page-backing mode of the contiguity figure family: a label, the
/// machine it implies, and the coalesced-entry limit (``None`` = plain
/// 4 KB entries).
fn contiguity_modes() -> Vec<(&'static str, GpuConfig, Option<u8>)> {
    let contig = |f: f64| {
        GpuConfig::default().with_page_layout(PageLayout::contig(f, CONTIGUITY_FRAG_SEED))
    };
    vec![
        // The classic baseline: 4 KB pages, scattered frames.
        ("4K", GpuConfig::default(), None),
        // True 2 MB pages: the page-table level itself maps 2 MB.
        ("2M", GpuConfig::default().with_page_size(PageSize::Size2M), None),
        // Fragmented-2MB: the OS *wanted* huge pages but a quarter of
        // the 4 KB frames broke out; coalesced entries recover the
        // surviving runs.
        ("frag2M", contig(FRAG2M_FRACTION), Some(COALESCE_MAX_SPAN_LOG2)),
        // Contiguity-aware allocation: fully contiguous regions mapped
        // by coalesced variable-reach entries.
        ("coalesced", contig(0.0), Some(COALESCE_MAX_SPAN_LOG2)),
    ]
}

/// Resolves a page-mode name from the serve protocol / CLI vocabulary
/// (`4k | 2m | frag2m | coalesced`, case-insensitive) into the GPU
/// config and coalesced-entry limit of the matching
/// [`contiguity_modes`] entry; `None` for unknown names. Keeping the
/// lookup here means `gtr-serve` cells and the figure battery agree on
/// what each mode means — a served `frag2m` cell is byte-identical to
/// the same cell inside [`contiguity_matrices`].
pub fn page_mode_config(name: &str) -> Option<(GpuConfig, Option<u8>)> {
    let canon = match name.to_ascii_lowercase().as_str() {
        "4k" => "4K",
        "2m" => "2M",
        "frag2m" => "frag2M",
        "coalesced" => "coalesced",
        _ => return None,
    };
    contiguity_modes()
        .into_iter()
        .find(|(label, _, _)| *label == canon)
        .map(|(_, gpu, coalesce)| (gpu, coalesce))
}

/// The per-page-mode matrices of the contiguity family, in
/// [`contiguity_modes`] order: each mode runs {baseline, LDS, IC,
/// IC+LDS} on its machine, with coalesced TLB entries switched on for
/// the coalescing modes. The page layout is stream-shaping (it decides
/// every PPN), so under sampling each mode captures its own warmup
/// checkpoints; the coalescing knob itself is timing-side and shares
/// them.
pub fn contiguity_matrices(scale: Scale, mode: &RunMode) -> Vec<(&'static str, Matrix)> {
    contiguity_modes()
        .into_iter()
        .map(|(label, gpu, coalesce)| {
            let reach = |r: ReachConfig| match coalesce {
                Some(max) => r.with_tlb_coalescing(max),
                None => r,
            };
            let m = Matrix::run_with_mode(
                scale,
                Variant::with_gpu("baseline", gpu.clone(), reach(ReachConfig::baseline())),
                vec![
                    Variant::with_gpu("LDS", gpu.clone(), reach(ReachConfig::lds_only())),
                    Variant::with_gpu("IC", gpu.clone(), reach(ReachConfig::ic_only())),
                    Variant::with_gpu("IC+LDS", gpu, reach(ReachConfig::ic_plus_lds())),
                ],
                mode,
            );
            (label, m)
        })
        .collect()
}

/// The allocator-fragmentation sweep matrices, in [`FRAG_SWEEP`]
/// order: at each fragmentation fraction `f`, a plain baseline and a
/// coalescing IC+LDS machine run on the *same* `Contig(f)` layout, so
/// the improvement column shows how the coalescing benefit decays as
/// contiguity fragments away.
pub fn fragmentation_matrices(scale: Scale, mode: &RunMode) -> Vec<(f64, Matrix)> {
    FRAG_SWEEP
        .iter()
        .map(|&f| {
            let gpu =
                GpuConfig::default().with_page_layout(PageLayout::contig(f, CONTIGUITY_FRAG_SEED));
            let m = Matrix::run_with_mode(
                scale,
                Variant::with_gpu("baseline", gpu.clone(), ReachConfig::baseline()),
                vec![Variant::with_gpu(
                    "IC+LDS+coalesce",
                    gpu,
                    ReachConfig::ic_plus_lds().with_tlb_coalescing(COALESCE_MAX_SPAN_LOG2),
                )],
                mode,
            );
            (f, m)
        })
        .collect()
}

/// Sums one variant's coalescing aggregates across a matrix's apps;
/// `None` when the cells carry no v6 stats (coalescing off).
fn summed_coalescing(runs: &[RunStats]) -> Option<gtr_core::stats::CoalescingStats> {
    let mut acc: Option<gtr_core::stats::CoalescingStats> = None;
    for s in runs {
        if let Some(c) = &s.coalescing {
            let a = acc.get_or_insert_with(Default::default);
            a.inserts += c.inserts;
            a.entries_coalesced += c.entries_coalesced;
            a.span_pages += c.span_pages;
            a.coalesced_hits += c.coalesced_hits;
            a.shootdown_splits += c.shootdown_splits;
        }
    }
    acc
}

/// Renders prebuilt [`contiguity_matrices`] output: the per-mode
/// geomean improvements plus the coalescing telemetry of each mode's
/// IC+LDS cells.
pub fn contiguity_page_modes_from(ms: &[(&'static str, Matrix)]) -> String {
    let mut out = String::from(
        "### Contiguity: geomean improvement by page backing (vs same-layout baseline)\n\
         mode        LDS       IC   IC+LDS | reach(x)  cov-hits   splits\n",
    );
    for (label, m) in ms {
        let mut line = format!("{label:<9}");
        for v in 0..m.variants.len() {
            line.push_str(&format!(" {:>+7.1}%", m.geomean_improvement(v)));
        }
        match summed_coalescing(&m.variants[m.variants.len() - 1].1) {
            Some(c) => line.push_str(&format!(
                " | {:>7.2} {:>9} {:>8}\n",
                c.reach_multiplier(),
                c.coalesced_hits,
                c.shootdown_splits
            )),
            None => line.push_str(" |    (4 KB entries)\n"),
        }
        out.push_str(&line);
    }
    out
}

/// Renders prebuilt [`fragmentation_matrices`] output: IC+LDS-with-
/// coalescing improvement and reach multiplier vs the fragmentation
/// knob.
pub fn contiguity_frag_sweep_from(ms: &[(f64, Matrix)]) -> String {
    let mut out = String::from(
        "### Contiguity: allocator-fragmentation sweep (IC+LDS + coalesced entries)\n\
         frag     IC+LDS | reach(x)  coalesced/inserts\n",
    );
    for (f, m) in ms {
        let c = summed_coalescing(&m.variants[0].1).unwrap_or_default();
        out.push_str(&format!(
            "{f:<5} {:>+8.1}% | {:>7.2} {:>10}/{}\n",
            m.geomean_improvement(0),
            c.reach_multiplier(),
            c.entries_coalesced,
            c.inserts,
        ));
    }
    out
}

/// The contiguity figure family (`all --page-modes` and the
/// `contiguity` binary run this): the page-backing-mode comparison
/// plus the allocator-fragmentation sweep. Not part of the default
/// [`battery`] — the paper's own figures run the scatter layout, and
/// the frozen battery output must stay byte-identical.
pub fn contiguity_battery(scale: Scale, mode: &RunMode) -> Vec<FigureResult> {
    let modes = {
        let _s = gtr_sim::prof::span_with("figure", || "contiguity_page_modes".to_string());
        let ms = contiguity_matrices(scale, mode);
        let refs: Vec<&Matrix> = ms.iter().map(|(_, m)| m).collect();
        FigureResult::from_matrices(
            "contiguity_page_modes",
            contiguity_page_modes_from(&ms),
            &refs,
        )
    };
    let sweep = {
        let _s = gtr_sim::prof::span_with("figure", || "contiguity_frag_sweep".to_string());
        let ms = fragmentation_matrices(scale, mode);
        let refs: Vec<&Matrix> = ms.iter().map(|(_, m)| m).collect();
        FigureResult::from_matrices(
            "contiguity_frag_sweep",
            contiguity_frag_sweep_from(&ms),
            &refs,
        )
    };
    vec![modes, sweep]
}

/// The tenancy figure family (`all --tenants` and the `tenancy`
/// binary run this): the tenant-count sweep plus the churn stress
/// scenario. Not part of the default [`battery`] — the paper's own
/// figures are single-tenant, and the frozen battery output must stay
/// byte-identical.
pub fn tenancy_battery(scale: Scale, mode: &RunMode) -> Vec<FigureResult> {
    let sweep = {
        let _s = gtr_sim::prof::span_with("figure", || "tenancy_sweep".to_string());
        let (solo, ms) = tenancy_matrices(scale, mode);
        let mut refs: Vec<&Matrix> = vec![&solo];
        refs.extend(ms.iter().map(|(_, _, m)| m));
        FigureResult::from_matrices("tenancy_sweep", tenancy_sweep_from(&ms), &refs)
    };
    let storm = {
        let _s = gtr_sim::prof::span_with("figure", || "tenancy_storm".to_string());
        FigureResult::without_cells("tenancy_storm", tenancy_storm(scale))
    };
    vec![sweep, storm]
}

/// Runs every table and figure of the paper under one execution mode
/// and returns each as a [`FigureResult`], in paper order. The main
/// matrix is shared across Figs 13b/13c/14ab/15 (and the baseline
/// characterization matrix across Table 2 and Figs 4–5), exactly as
/// [`all`] prints them.
pub fn battery(scale: Scale, mode: &RunMode) -> Vec<FigureResult> {
    battery_with_main(scale, mode).0
}

/// [`battery`] plus the main matrix it ran, so `all --stats-out` can
/// export the matrix without re-simulating it.
pub fn battery_with_main(scale: Scale, mode: &RunMode) -> (Vec<FigureResult>, Matrix) {
    // One profiler span per figure family: the span covers the
    // figure's matrix sweeps *and* its rendering, so a `--prof` trace
    // of the battery attributes the whole wall clock figure by figure
    // (the matrices fan out to worker lanes underneath).
    fn fig(name: &'static str) -> gtr_sim::prof::Span {
        gtr_sim::prof::span_with("figure", || name.to_string())
    }
    let mut out = Vec::with_capacity(17);
    {
        let _s = fig("table1");
        out.push(FigureResult::without_cells("table1", table1()));
    }
    let base = {
        let _s = fig("table2");
        let base = baseline_matrix(scale, mode);
        out.push(FigureResult::from_matrices("table2", table2_from(scale, &base), &[&base]));
        base
    };
    {
        let _s = fig("fig02_03");
        let m = fig02_03_matrix(scale, mode);
        out.push(FigureResult::from_matrices("fig02_03", fig02_03_from(&m), &[&m]));
    }
    {
        let _s = fig("fig04_05");
        out.push(FigureResult::from_matrices("fig04_05", fig04_05_from(&base), &[&base]));
    }
    {
        let _s = fig("fig11");
        let m = fig11_matrix(scale, mode);
        out.push(FigureResult::from_matrices("fig11", fig11_from(&m), &[&m]));
    }
    {
        let _s = fig("fig13a");
        let m = fig13a_matrix(scale, mode);
        out.push(FigureResult::from_matrices("fig13a", fig13a_from(&m), &[&m]));
    }
    let main = {
        let _s = fig("fig13b");
        let main = main_matrix_mode(scale, false, mode);
        out.push(FigureResult::from_matrices("fig13b", fig13b_from(&main), &[&main]));
        main
    };
    {
        let _s = fig("fig13c");
        out.push(FigureResult::from_matrices("fig13c", fig13c_from(&main), &[&main]));
    }
    {
        let _s = fig("fig14ab");
        out.push(FigureResult::from_matrices("fig14ab", fig14ab_from(&main), &[&main]));
    }
    {
        let _s = fig("fig14c");
        let per_size = fig14c_matrices(scale, mode);
        let refs: Vec<&Matrix> = per_size.iter().map(|(_, m)| m).collect();
        out.push(FigureResult::from_matrices("fig14c", fig14c_from(&per_size), &refs));
    }
    {
        let _s = fig("fig15");
        out.push(FigureResult::from_matrices("fig15", fig15_from(&main), &[&main]));
    }
    {
        let _s = fig("fig16a");
        let m = fig16a_matrix(scale, mode);
        out.push(FigureResult::from_matrices("fig16a", fig16a_from(&m), &[&m]));
    }
    {
        let _s = fig("fig16b");
        let m = fig16b_matrix(scale, mode);
        out.push(FigureResult::from_matrices("fig16b", fig16b_from(&m), &[&m]));
    }
    {
        let _s = fig("fig16c");
        let m = fig16c_matrix(scale, mode);
        out.push(FigureResult::from_matrices("fig16c", fig16c_from(&m), &[&m]));
    }
    {
        let _s = fig("ablation_segment_size");
        let m = ablation_segment_size_matrix(scale, mode);
        out.push(FigureResult::from_matrices(
            "ablation_segment_size",
            ablation_segment_size_from(&m),
            &[&m],
        ));
    }
    {
        let _s = fig("ablations");
        let ms = ablation_matrices(scale, mode);
        let refs: Vec<&Matrix> = ms.iter().collect();
        out.push(FigureResult::from_matrices("ablations", ablations_from(&ms), &refs));
    }
    {
        let _s = fig("multi_app");
        let m = multi_app_matrix(scale, mode);
        out.push(FigureResult::from_matrices("multi_app", multi_app_from(&m), &[&m]));
    }
    (out, main)
}

/// Serializes battery metadata as the schema-v4 `figures` array
/// (per-figure name, cell counts and worst error bounds) that
/// `all --stats-out` attaches to the exported matrix document.
pub fn figures_json(figs: &[FigureResult]) -> gtr_sim::json::Json {
    use gtr_sim::json::Json;
    Json::Arr(
        figs.iter()
            .map(|f| {
                Json::Obj(vec![
                    ("name".into(), Json::from(f.name.as_str())),
                    ("cells".into(), Json::from(f.cells)),
                    ("sampled_cells".into(), Json::from(f.sampled_cells)),
                    ("error_bound_pct".into(), Json::from(f.error_bound_pct)),
                    (
                        "side_cache_error_bound_pct".into(),
                        Json::from(f.side_cache_error_bound_pct),
                    ),
                ])
            })
            .collect(),
    )
}

/// Everything, in paper order (shares the main matrix across Figs
/// 13b/13c/14ab/15).
pub fn all(scale: Scale) -> String {
    all_mode(scale, &RunMode::exact())
}

/// [`all`] under an explicit execution mode (the full battery text).
pub fn all_mode(scale: Scale, mode: &RunMode) -> String {
    let figs = battery(scale, mode);
    figs.iter().map(|f| f.text.as_str()).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_table_values() {
        let t = table1();
        assert!(t.contains("8 CUs"));
        assert!(t.contains("512 entries"));
        assert!(t.contains("32 walkers"));
    }

    #[test]
    fn tenancy_sweep_cell_is_valid_exact_and_sampled() {
        // One sweep point (2 tenants, every policy would be 9x the
        // cost), checked under both execution modes: every tenanted
        // cell must carry slowdowns and satisfy the schema-v5 tenancy
        // invariants, exact and sampled alike.
        for mode in [
            RunMode::exact(),
            RunMode::sampled(SamplingConfig::new(256, 1_024, 256)),
        ] {
            let solo = tenancy_solo_matrix(Scale::tiny(), &mode);
            let m = tenancy_matrix(Scale::tiny(), 2, SharingPolicy::SubEntry, &solo, &mode);
            for s in m.baseline.iter().chain(&m.variants[0].1) {
                assert_eq!(s.tenants.len(), 2, "{}: two tenant records", s.app);
                assert!(
                    s.tenants.iter().all(|t| t.slowdown() > 0.0),
                    "{}: solo bases filled",
                    s.app
                );
                let problems = gtr_core::export::check_tenancy_invariants(s);
                assert!(problems.is_empty(), "{}: {problems:?}", s.app);
            }
        }
    }

    #[test]
    fn tenancy_storm_reports_every_policy() {
        let t = tenancy_storm(Scale::tiny());
        for policy in SharingPolicy::all() {
            assert!(t.contains(&policy.to_string()), "missing {policy}");
        }
        assert!(t.contains("pages migrated"));
        assert!(
            !t.contains("  0 pages migrated"),
            "storm must hit resident pages:\n{t}"
        );
        assert!(t.contains("coherent"));
    }

    #[test]
    fn table2_runs_at_tiny_scale() {
        let t = table2(Scale::tiny());
        assert!(t.contains("ATAX"));
        assert!(t.contains("GUPS"));
        assert!(t.contains("PTW-PKI"));
    }
}
