//! Kernel, workgroup and wavefront descriptors.
//!
//! An [`AppTrace`] is a sequence of kernel launches (the unit of the
//! paper's Figure 11 and of the I-cache flush optimization §4.3.3).
//! Each kernel carries its instruction footprint (`code_lines`), its
//! per-workgroup LDS request (Figure 4a), and the wavefront op streams.

use gtr_vm::addr::VmId;

use crate::ops::Op;

/// Instructions per 64-byte I-cache line (8-byte instructions).
pub const INSTS_PER_LINE: u32 = 8;

/// The op stream of one wavefront.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaveProgram {
    ops: Vec<Op>,
}

impl WaveProgram {
    /// Creates a wave program from its op list.
    pub fn new(ops: Vec<Op>) -> Self {
        Self { ops }
    }

    /// The ops, in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops (instructions).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A workgroup: wavefronts guaranteed to run on the same CU, sharing
/// one LDS allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkgroupDesc {
    waves: Vec<WaveProgram>,
}

impl WorkgroupDesc {
    /// Creates a workgroup from its wavefronts.
    pub fn new(waves: Vec<WaveProgram>) -> Self {
        Self { waves }
    }

    /// The wavefront programs.
    pub fn waves(&self) -> &[WaveProgram] {
        &self.waves
    }

    /// Number of wavefronts.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }
}

/// One kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDesc {
    name: String,
    /// Instruction footprint in 64-byte I-cache lines.
    code_lines: u32,
    /// LDS bytes requested per workgroup.
    lds_bytes_per_wg: u32,
    /// Address space this kernel translates in (§7.2 multi-application
    /// scenarios; single-app traces use the default space 0).
    vm_id: VmId,
    workgroups: Vec<WorkgroupDesc>,
}

impl KernelDesc {
    /// Creates a kernel descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `code_lines == 0` (every kernel has at least one line
    /// of code).
    pub fn new(
        name: impl Into<String>,
        code_lines: u32,
        lds_bytes_per_wg: u32,
        workgroups: Vec<WorkgroupDesc>,
    ) -> Self {
        assert!(code_lines > 0, "a kernel needs at least one instruction line");
        Self {
            name: name.into(),
            code_lines,
            lds_bytes_per_wg,
            vm_id: VmId::default(),
            workgroups,
        }
    }

    /// Assigns this kernel to a different address space (§7.2).
    pub fn with_vm_id(mut self, vm_id: VmId) -> Self {
        self.vm_id = vm_id;
        self
    }

    /// The address space this kernel runs in.
    pub fn vm_id(&self) -> VmId {
        self.vm_id
    }

    /// Kernel name (used for back-to-back detection, Table 2).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instruction footprint in I-cache lines.
    pub fn code_lines(&self) -> u32 {
        self.code_lines
    }

    /// LDS bytes requested per workgroup.
    pub fn lds_bytes_per_wg(&self) -> u32 {
        self.lds_bytes_per_wg
    }

    /// The workgroups to dispatch.
    pub fn workgroups(&self) -> &[WorkgroupDesc] {
        &self.workgroups
    }

    /// Total wavefronts across all workgroups.
    pub fn total_waves(&self) -> usize {
        self.workgroups.iter().map(WorkgroupDesc::wave_count).sum()
    }

    /// Total ops across all wavefronts.
    pub fn total_ops(&self) -> u64 {
        self.workgroups
            .iter()
            .flat_map(|wg| wg.waves())
            .map(|w| w.len() as u64)
            .sum()
    }
}

/// A full application: an ordered sequence of kernel launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppTrace {
    name: String,
    kernels: Vec<KernelDesc>,
}

impl AppTrace {
    /// Creates an application trace.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelDesc>) -> Self {
        Self { name: name.into(), kernels }
    }

    /// Application name (e.g. "ATAX").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel launches, in order.
    pub fn kernels(&self) -> &[KernelDesc] {
        &self.kernels
    }

    /// Total ops across the whole application.
    pub fn total_ops(&self) -> u64 {
        self.kernels.iter().map(KernelDesc::total_ops).sum()
    }

    /// Whether any kernel is launched back-to-back with itself
    /// (Table 2's "B-2-B Kernels?" column; governs the flush
    /// optimization §4.3.3).
    pub fn has_back_to_back_kernels(&self) -> bool {
        self.kernels.windows(2).any(|w| w[0].name() == w[1].name())
    }

    /// Interleaves two applications' kernel launches into one trace for
    /// §7.2 multi-application studies: kernels alternate, each keeps
    /// (or is assigned) its own address space, and names are prefixed
    /// with the source application so instruction footprints stay
    /// distinct.
    pub fn interleave(a: &AppTrace, b: &AppTrace) -> AppTrace {
        let tag = |app: &AppTrace, k: &KernelDesc, vm: u8| {
            KernelDesc::new(
                format!("{}::{}", app.name(), k.name()),
                k.code_lines(),
                k.lds_bytes_per_wg(),
                k.workgroups().to_vec(),
            )
            .with_vm_id(VmId::new(vm))
        };
        let mut kernels = Vec::with_capacity(a.kernels.len() + b.kernels.len());
        let mut ia = a.kernels.iter();
        let mut ib = b.kernels.iter();
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (ka, kb) => {
                    if let Some(k) = ka {
                        kernels.push(tag(a, k, 0));
                    }
                    if let Some(k) = kb {
                        kernels.push(tag(b, k, 1));
                    }
                }
            }
        }
        AppTrace::new(format!("{}+{}", a.name(), b.name()), kernels)
    }

    /// Generalizes [`Self::interleave`] to up to eight co-resident
    /// applications (the `gtr_vm::tenancy` tenant limit): kernel
    /// launches round-robin across the inputs, tenant *i*'s kernels
    /// run in address space *i*, and names are prefixed with the
    /// source application so instruction footprints stay distinct.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or more than eight applications.
    pub fn interleave_many(apps: &[&AppTrace]) -> AppTrace {
        assert!(
            !apps.is_empty() && apps.len() <= 8,
            "tenancy supports 1..=8 co-resident applications, got {}",
            apps.len()
        );
        let mut kernels = Vec::with_capacity(apps.iter().map(|a| a.kernels.len()).sum());
        let mut iters: Vec<_> = apps.iter().map(|a| a.kernels.iter()).collect();
        loop {
            let mut any = false;
            for (vm, it) in iters.iter_mut().enumerate() {
                if let Some(k) = it.next() {
                    any = true;
                    kernels.push(
                        KernelDesc::new(
                            format!("{}::{}", apps[vm].name(), k.name()),
                            k.code_lines(),
                            k.lds_bytes_per_wg(),
                            k.workgroups().to_vec(),
                        )
                        .with_vm_id(VmId::new(vm as u8)),
                    );
                }
            }
            if !any {
                break;
            }
        }
        let name = apps.iter().map(|a| a.name()).collect::<Vec<_>>().join("+");
        AppTrace::new(name, kernels)
    }

    /// `tenants` co-resident copies of the same workload, one per
    /// address space — the homogeneous tenant-count sweep of the
    /// tenancy figures. Each copy's kernels are re-tagged with the
    /// tenant index (distinct processes don't share code regions),
    /// and the trace name encodes the tenant count so checkpoint
    /// caching never conflates different sweep points.
    pub fn replicate(app: &AppTrace, tenants: u8) -> AppTrace {
        assert!(
            (1..=8).contains(&tenants),
            "tenancy supports 1..=8 tenants, got {tenants}"
        );
        let copies: Vec<AppTrace> = (0..tenants)
            .map(|t| AppTrace::new(format!("{}@t{}", app.name(), t), app.kernels.clone()))
            .collect();
        let refs: Vec<&AppTrace> = copies.iter().collect();
        let mut out = Self::interleave_many(&refs);
        out.name = format!("{}x{}", app.name(), tenants);
        out
    }

    /// Number of distinct kernel names.
    pub fn distinct_kernels(&self) -> usize {
        let mut names: Vec<&str> = self.kernels.iter().map(KernelDesc::name).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> WaveProgram {
        WaveProgram::new(vec![Op::compute(1); n])
    }

    #[test]
    fn counts_roll_up() {
        let wg = WorkgroupDesc::new(vec![wave(3), wave(5)]);
        let k = KernelDesc::new("k", 4, 256, vec![wg.clone(), wg]);
        assert_eq!(k.total_waves(), 4);
        assert_eq!(k.total_ops(), 16);
        let app = AppTrace::new("a", vec![k.clone(), k]);
        assert_eq!(app.total_ops(), 32);
    }

    #[test]
    fn back_to_back_detection() {
        let k = |n: &str| KernelDesc::new(n, 1, 0, vec![]);
        let b2b = AppTrace::new("nw", vec![k("nw_kernel1"), k("nw_kernel1"), k("nw_kernel2")]);
        assert!(b2b.has_back_to_back_kernels());
        let alt = AppTrace::new("atax", vec![k("k1"), k("k2"), k("k1")]);
        assert!(!alt.has_back_to_back_kernels());
        assert_eq!(alt.distinct_kernels(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one instruction line")]
    fn zero_code_lines_rejected() {
        let _ = KernelDesc::new("bad", 0, 0, vec![]);
    }

    #[test]
    fn interleave_alternates_and_tags_address_spaces() {
        let k = |n: &str| KernelDesc::new(n, 1, 0, vec![]);
        let a = AppTrace::new("A", vec![k("x"), k("x"), k("x")]);
        let b = AppTrace::new("B", vec![k("y")]);
        let m = AppTrace::interleave(&a, &b);
        assert_eq!(m.name(), "A+B");
        assert_eq!(m.kernels().len(), 4);
        assert_eq!(m.kernels()[0].name(), "A::x");
        assert_eq!(m.kernels()[1].name(), "B::y");
        assert_eq!(m.kernels()[0].vm_id(), VmId::new(0));
        assert_eq!(m.kernels()[1].vm_id(), VmId::new(1));
        // The tail of the longer app keeps flowing.
        assert_eq!(m.kernels()[3].name(), "A::x");
    }

    #[test]
    fn interleave_many_round_robins_up_to_eight_tenants() {
        let k = |n: &str| KernelDesc::new(n, 1, 0, vec![]);
        let apps: Vec<AppTrace> = (0..4)
            .map(|i| AppTrace::new(format!("A{i}"), vec![k("x"), k("x")]))
            .collect();
        let refs: Vec<&AppTrace> = apps.iter().collect();
        let m = AppTrace::interleave_many(&refs);
        assert_eq!(m.name(), "A0+A1+A2+A3");
        assert_eq!(m.kernels().len(), 8);
        for (i, kd) in m.kernels().iter().enumerate() {
            assert_eq!(kd.vm_id(), VmId::new((i % 4) as u8));
        }
        // Two apps reproduces `interleave`'s schedule.
        let two = AppTrace::interleave_many(&refs[..2]);
        let legacy = AppTrace::interleave(&apps[0], &apps[1]);
        assert_eq!(two.kernels(), legacy.kernels());
    }

    #[test]
    fn replicate_tags_copies_with_tenant_index() {
        let k = |n: &str| KernelDesc::new(n, 1, 0, vec![]);
        let app = AppTrace::new("G", vec![k("k1"), k("k2")]);
        let r = AppTrace::replicate(&app, 3);
        assert_eq!(r.name(), "Gx3");
        assert_eq!(r.kernels().len(), 6);
        assert_eq!(r.kernels()[0].name(), "G@t0::k1");
        assert_eq!(r.kernels()[1].name(), "G@t1::k1");
        assert_eq!(r.kernels()[2].name(), "G@t2::k1");
        assert_eq!(r.kernels()[4].vm_id(), VmId::new(1));
        // Code regions stay distinct across tenants (separate
        // processes), so all 6 launches carry distinct names modulo
        // the per-tenant pair.
        assert_eq!(r.distinct_kernels(), 6);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn interleave_many_rejects_more_than_eight() {
        let k = KernelDesc::new("k", 1, 0, vec![]);
        let apps: Vec<AppTrace> =
            (0..9).map(|i| AppTrace::new(format!("A{i}"), vec![k.clone()])).collect();
        let refs: Vec<&AppTrace> = apps.iter().collect();
        let _ = AppTrace::interleave_many(&refs);
    }
}
