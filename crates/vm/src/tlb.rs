//! Generic set-associative TLB with true-LRU replacement.
//!
//! Instantiated as the paper's per-CU fully-associative 32-entry L1
//! TLB, the GPU-shared 16-way 512-entry L2 TLB, and the IOMMU's device
//! TLBs (Table 1). Evictions are surfaced to the caller because the
//! reconfigurable architecture routes L1-TLB victims into the idle
//! LDS segments (§4.2) and I-cache lines (§4.3) organized as a victim
//! cache between the two TLB levels (Fig 12).
//!
//! Multi-tenancy ([`Tlb::set_tenancy`], TENANCY.md): under
//! [`Partitioned`](crate::tenancy::SharingPolicy::Partitioned) each
//! tenant holds at most `assoc / tenants` ways of every set and
//! evictions never cross VM-IDs; under
//! [`SubEntry`](crate::tenancy::SharingPolicy::SubEntry) (arXiv
//! 2404.18361 §4) entries are tagged by the canonical VM-ID-zeroed key
//! plus a per-tenant valid mask, so tenants whose mappings agree on
//! the PPN share one physical entry. The default
//! ([`Shared`](crate::tenancy::SharingPolicy::Shared), or no tenancy
//! at all) is the paper's full-key tag check.

use gtr_sim::fastmap::FastMap;
use gtr_sim::stats::HitMiss;

use crate::addr::{Ppn, Translation, TranslationKey, VmId, Vpn};
use crate::tenancy::{self, TenancyConfig};

/// Counters for coalesced (variable-reach) entries, ticked only while
/// coalescing is enabled on the owning structure — with coalescing off
/// no branch that touches them is ever taken, preserving the
/// zero-cost-when-off discipline. Shared by the TLBs and the
/// reconfigurable LDS/I-cache victim structures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalescingCounters {
    /// Total entry inserts while coalescing was enabled.
    pub inserts: u64,
    /// Inserts whose entry covered more than one page.
    pub coalesced: u64,
    /// Total pages covered across all inserts (sum of `2^span`); the
    /// ratio `span_pages / inserts` is the structure's reach
    /// multiplier.
    pub span_pages: u64,
    /// Lookup hits served through a covering (non-exact-base) probe.
    pub hits: u64,
    /// Covering entries split (TLBs) or conservatively dropped (victim
    /// structures) by a single-page shootdown.
    pub splits: u64,
}

impl CoalescingCounters {
    /// Accumulates another structure's counters into this one.
    pub fn merge(&mut self, o: &CoalescingCounters) {
        self.inserts += o.inserts;
        self.coalesced += o.coalesced;
        self.span_pages += o.span_pages;
        self.hits += o.hits;
        self.splits += o.splits;
    }
}

/// Configuration of one TLB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity; `entries` for fully associative.
    pub assoc: usize,
    /// Access latency in cycles (hit latency; charged by the caller).
    pub latency: u64,
}

impl TlbConfig {
    /// Fully-associative configuration.
    pub fn fully_associative(entries: usize, latency: u64) -> Self {
        Self { entries, assoc: entries, latency }
    }

    /// Set-associative configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` divides evenly into sets of `assoc`.
    pub fn set_associative(entries: usize, assoc: usize, latency: u64) -> Self {
        assert!(assoc > 0 && entries.is_multiple_of(assoc), "entries must be a multiple of assoc");
        Self { entries, assoc, latency }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.entries / self.assoc).max(1)
    }
}

/// Sentinel for "no slot" in the intrusive LRU lists.
const NIL: u32 = u32::MAX;

/// One TLB way: the entry plus its position in the owning set's
/// doubly-linked recency list (or the free list when unused).
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: TranslationKey,
    ppn: Ppn,
    prev: u32,
    next: u32,
    used: bool,
    /// Per-tenant valid mask (sub-entry sharing, TENANCY.md §3.3):
    /// bit *i* means tenant *i* may hit this entry. Always a single
    /// bit outside sub-entry sharing.
    mask: u8,
    /// Coalesced reach: this entry covers `2^span` contiguous pages
    /// starting at the (span-aligned) `key.vpn`. Always 0 outside
    /// coalescing mode.
    span: u8,
}

impl Slot {
    fn empty() -> Self {
        Self {
            key: TranslationKey::default(),
            ppn: Ppn::default(),
            prev: NIL,
            next: NIL,
            used: false,
            mask: 0,
            span: 0,
        }
    }
}

/// A set-associative, true-LRU TLB.
///
/// # Example
///
/// ```
/// use gtr_vm::tlb::{Tlb, TlbConfig};
/// use gtr_vm::addr::{Ppn, Translation, TranslationKey, Vpn};
///
/// let mut tlb = Tlb::new(TlbConfig::fully_associative(2, 1));
/// let k = |v| TranslationKey::for_vpn(Vpn(v));
/// tlb.insert(Translation::new(k(1), Ppn(10)));
/// tlb.insert(Translation::new(k(2), Ppn(20)));
/// assert!(tlb.lookup(k(1)).is_some());
/// // inserting a third entry evicts the LRU (vpn 2)
/// let victim = tlb.insert(Translation::new(k(3), Ppn(30))).unwrap();
/// assert_eq!(victim.key, k(2));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    nsets: usize,
    /// Flat slot arena: set `s` owns slots `s*assoc .. (s+1)*assoc`.
    slots: Vec<Slot>,
    /// Per-set MRU end of the recency list.
    head: Vec<u32>,
    /// Per-set LRU end of the recency list (the eviction victim).
    tail: Vec<u32>,
    /// Per-set free-list head (unused slots chained through `next`).
    free: Vec<u32>,
    /// key -> slot id, so lookups never scan ways. Under sub-entry
    /// sharing the key is the canonical (VM-ID-zeroed) form.
    index: FastMap<TranslationKey, u32>,
    len: usize,
    stats: HitMiss,
    evictions: u64,
    /// Multi-tenant sharing policy; `None` = the untenanted default.
    tenancy: Option<TenancyConfig>,
    /// Coalesced (variable-reach) entries: `Some(max)` lets one entry
    /// map up to `2^max` contiguous pages; `None` = the classic
    /// one-page-per-entry default.
    coalescing: Option<u8>,
    /// Coalescing counters (only ticked while `coalescing` is on).
    co: CoalescingCounters,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let nsets = config.sets();
        let cap = nsets * config.assoc;
        let mut tlb = Self {
            config,
            nsets,
            slots: vec![Slot::empty(); cap],
            head: vec![NIL; nsets],
            tail: vec![NIL; nsets],
            free: vec![NIL; nsets],
            index: FastMap::with_capacity(cap.min(1 << 16)),
            len: 0,
            stats: HitMiss::new(),
            evictions: 0,
            tenancy: None,
            coalescing: None,
            co: CoalescingCounters::default(),
        };
        tlb.init_lists();
        tlb
    }

    /// Resets every slot to empty and rebuilds the per-set free lists.
    fn init_lists(&mut self) {
        let assoc = self.config.assoc;
        for s in 0..self.nsets {
            self.head[s] = NIL;
            self.tail[s] = NIL;
            let base = (s * assoc) as u32;
            self.free[s] = if assoc == 0 { NIL } else { base };
            for j in 0..assoc {
                let i = base + j as u32;
                self.slots[i as usize] = Slot::empty();
                if j + 1 < assoc {
                    self.slots[i as usize].next = i + 1;
                }
            }
        }
    }

    /// Unlinks a used slot from its set's recency list.
    fn detach(&mut self, s: usize, i: u32) {
        let (p, n) = {
            let sl = &self.slots[i as usize];
            (sl.prev, sl.next)
        };
        if p != NIL {
            self.slots[p as usize].next = n;
        } else {
            self.head[s] = n;
        }
        if n != NIL {
            self.slots[n as usize].prev = p;
        } else {
            self.tail[s] = p;
        }
    }

    /// Links a slot at the MRU end of its set's recency list.
    fn push_mru(&mut self, s: usize, i: u32) {
        let h = self.head[s];
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = h;
        if h != NIL {
            self.slots[h as usize].prev = i;
        } else {
            self.tail[s] = i;
        }
        self.head[s] = i;
    }

    /// This TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    fn set_index(&self, key: TranslationKey) -> usize {
        // XOR-folded index (commercial TLBs hash set bits) so that
        // power-of-two VPN strides — page-sized matrix rows above all —
        // do not collapse onto a handful of sets.
        let v = key.vpn.0;
        ((v ^ (v >> 7) ^ (v >> 14)) as usize) % self.nsets
    }

    /// Sets the multi-tenant sharing policy (TENANCY.md). Must be
    /// called on an empty TLB: the policy decides the tag form
    /// (full-key vs canonical+mask), which cannot change under live
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if the TLB already holds entries.
    pub fn set_tenancy(&mut self, tenancy: Option<TenancyConfig>) {
        assert!(self.is_empty(), "tenancy policy must be set before first insert");
        self.tenancy = tenancy;
    }

    /// Enables coalesced (variable-reach) entries: one entry may map up
    /// to `2^max_span_log2` physically contiguous pages (arXiv
    /// 2110.08613). Must be called on an empty TLB — the tag form
    /// (base-masked probes on lookup) cannot change under live entries.
    ///
    /// # Panics
    ///
    /// Panics if the TLB already holds entries.
    pub fn set_coalescing(&mut self, max_span_log2: Option<u8>) {
        assert!(self.is_empty(), "coalescing must be set before first insert");
        self.coalescing = max_span_log2;
    }

    /// The coalescing limit in effect (`None` = off).
    pub fn coalescing(&self) -> Option<u8> {
        self.coalescing
    }

    /// Coalescing counters (all zero unless coalescing is enabled).
    pub fn coalescing_counters(&self) -> CoalescingCounters {
        self.co
    }

    /// The tag under which `key` is stored: canonical under sub-entry
    /// sharing, the full key otherwise.
    fn store_key(&self, key: TranslationKey) -> TranslationKey {
        match &self.tenancy {
            Some(t) if t.sub_entry() => tenancy::canonical(key),
            _ => key,
        }
    }

    /// Whether slot `i` is visible to `key`'s tenant (sub-entry valid
    /// mask; always true outside sub-entry sharing).
    fn mask_allows(&self, i: u32, key: TranslationKey) -> bool {
        match &self.tenancy {
            Some(t) if t.sub_entry() => {
                self.slots[i as usize].mask & TenancyConfig::mask_bit(key.vmid) != 0
            }
            _ => true,
        }
    }

    /// Looks up a key, updating LRU state and hit/miss counters. Under
    /// coalescing a miss on the exact tag falls back to base-masked
    /// probes at every span level, so one wide entry answers for every
    /// page it covers.
    pub fn lookup(&mut self, key: TranslationKey) -> Option<Translation> {
        match self.index.get(self.store_key(key)).copied() {
            Some(i) if self.mask_allows(i, key) => {
                let s = i as usize / self.config.assoc;
                self.detach(s, i);
                self.push_mru(s, i);
                self.stats.hit();
                let sl = &self.slots[i as usize];
                // Return the requester's key (== the stored key except
                // under sub-entry canonicalization) so promotions
                // upstream carry the right tenant.
                Some(self.hit_translation(key, sl.key, sl.ppn, sl.span))
            }
            // Canonical tag present but the tenant's mask bit is
            // clear: a miss (modulo a covering span entry), and no LRU
            // refresh (the entry is not this tenant's to warm).
            Some(_) | None => self.lookup_covering(key),
        }
    }

    /// The coalescing fall-back of [`Self::lookup`]: probes the base
    /// key of every span level and hits iff a resident entry's span
    /// covers `key`. Counts the terminal miss, so lookup counters stay
    /// one-tick-per-call exactly as before.
    fn lookup_covering(&mut self, key: TranslationKey) -> Option<Translation> {
        if let Some(max) = self.coalescing {
            let mut prev = key.vpn.0;
            for k in 1..=max {
                let bvpn = key.vpn.0 & !((1u64 << k) - 1);
                if bvpn == prev {
                    continue; // aligned: same base key as the level below
                }
                prev = bvpn;
                let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
                let Some(&i) = self.index.get(self.store_key(bkey)) else { continue };
                if !self.mask_allows(i, key) {
                    continue;
                }
                let sl = self.slots[i as usize];
                if key.vpn.0 - bvpn >= (1u64 << sl.span) {
                    continue;
                }
                let s = i as usize / self.config.assoc;
                self.detach(s, i);
                self.push_mru(s, i);
                self.stats.hit();
                self.co.hits += 1;
                return Some(self.hit_translation(key, sl.key, sl.ppn, sl.span));
            }
        }
        self.stats.miss();
        None
    }

    /// Checks presence without perturbing LRU or counters.
    pub fn probe(&self, key: TranslationKey) -> Option<Translation> {
        if let Some(&i) = self.index.get(self.store_key(key)) {
            if self.mask_allows(i, key) {
                let sl = &self.slots[i as usize];
                return Some(self.hit_translation(key, sl.key, sl.ppn, sl.span));
            }
        }
        let max = self.coalescing?;
        let mut prev = key.vpn.0;
        for k in 1..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1);
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
            let Some(&i) = self.index.get(self.store_key(bkey)) else { continue };
            if !self.mask_allows(i, key) {
                continue;
            }
            let sl = &self.slots[i as usize];
            if key.vpn.0 - bvpn < (1u64 << sl.span) {
                return Some(self.hit_translation(key, sl.key, sl.ppn, sl.span));
            }
        }
        None
    }

    /// The translation a hit reports back: the *base-normalized* entry
    /// (callers derive a covered page's frame via
    /// [`Translation::ppn_for`]), keyed by the stored key normally and
    /// by the requester's identifiers under sub-entry canonicalization.
    fn hit_translation(
        &self,
        request: TranslationKey,
        stored: TranslationKey,
        ppn: Ppn,
        span: u8,
    ) -> Translation {
        let key = match &self.tenancy {
            Some(t) if t.sub_entry() => TranslationKey { vpn: stored.vpn, ..request },
            _ => stored,
        };
        Translation::with_span(key, ppn, span)
    }

    /// Batched [`Self::probe`] over one wavefront's deduped keys: bit
    /// `i` of the result is set when `keys[i]` is resident. Like
    /// `probe`, touches no LRU state and no counters — the whole-batch
    /// tag compare runs as one struct-of-arrays pass over the index
    /// (see [`FastMap::contains_many`]) instead of one dependent
    /// hash-probe chain per page.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > 64`.
    pub fn probe_many(&self, keys: &[TranslationKey]) -> u64 {
        let sub_entry = matches!(&self.tenancy, Some(t) if t.sub_entry());
        // Sub-entry residency depends on the per-tenant mask, and
        // coalesced residency on base-masked covering probes — neither
        // is pure tag presence, so both fall back to per-key probes.
        if sub_entry || self.coalescing.is_some() {
            let mut mask = 0u64;
            for (i, &key) in keys.iter().enumerate() {
                if self.probe(key).is_some() {
                    mask |= 1 << i;
                }
            }
            mask
        } else {
            self.index.contains_many(keys)
        }
    }

    /// Inserts a translation, returning the evicted victim if the set
    /// was full. Re-inserting an existing key refreshes its frame and
    /// LRU position without eviction.
    ///
    /// The returned victim is what the reconfigurable architecture
    /// feeds into the Fig-12 fill flow: an L1-TLB eviction tries the
    /// victim's LDS segment (§4.2), then its direct-mapped I-cache
    /// line (§4.3), then the L2 TLB.
    pub fn insert(&mut self, tx: Translation) -> Option<Translation> {
        if self.coalescing.is_some() {
            self.co.inserts += 1;
            self.co.span_pages += 1u64 << tx.span_log2;
            if tx.span_log2 > 0 {
                self.co.coalesced += 1;
            }
        }
        self.insert_inner(tx)
    }

    /// [`Self::insert`] without the coalescing counters — shootdown
    /// buddy-fragment reinserts go through here so a storm of splits
    /// does not masquerade as allocator-produced reach.
    fn insert_inner(&mut self, tx: Translation) -> Option<Translation> {
        let skey = self.store_key(tx.key);
        let bit = TenancyConfig::mask_bit(tx.key.vmid);
        let sub_entry = matches!(&self.tenancy, Some(t) if t.sub_entry());
        if let Some(&i) = self.index.get(skey) {
            let s = i as usize / self.config.assoc;
            {
                let sl = &mut self.slots[i as usize];
                if sub_entry {
                    if sl.ppn == tx.ppn {
                        // PPN-aligned mappings merge: the tenant joins
                        // the entry's sharer mask (2404.18361 §4).
                        sl.mask |= bit;
                    } else {
                        // Conflicting frame: the entry is rebased to
                        // the inserting tenant's mapping and every
                        // previous sharer loses visibility.
                        sl.ppn = tx.ppn;
                        sl.mask = bit;
                    }
                } else {
                    sl.ppn = tx.ppn;
                }
                // The refresh's span wins (a refresh may widen a
                // single-page entry into a coalesced one or narrow a
                // stale wide one — the newest walk knows best).
                sl.span = tx.span_log2;
            }
            self.detach(s, i);
            self.push_mru(s, i);
            return None;
        }
        let s = self.set_index(skey);
        // Static partitioning: a tenant at its per-set quota replaces
        // its own LRU entry even when free ways remain — those ways
        // are other tenants' reserved capacity (TENANCY.md §3.1).
        let forced = match &self.tenancy {
            Some(t) if t.partitioned() => {
                let quota = (self.config.assoc / t.tenants as usize).max(1);
                if self.count_in_set(s, tx.key.vmid) >= quota {
                    self.lru_in_set(s, |sl| sl.key.vmid == tx.key.vmid)
                } else {
                    None
                }
            }
            _ => None,
        };
        let v = match forced {
            Some(v) => v,
            None => {
                let fi = self.free[s];
                if fi != NIL {
                    self.free[s] = self.slots[fi as usize].next;
                    let sl = &mut self.slots[fi as usize];
                    sl.key = skey;
                    sl.ppn = tx.ppn;
                    sl.used = true;
                    sl.mask = bit;
                    sl.span = tx.span_log2;
                    self.push_mru(s, fi);
                    self.index.insert(skey, fi);
                    self.len += 1;
                    return None;
                }
                match &self.tenancy {
                    // Set full while this tenant is under quota: some
                    // tenant is over its quota (quota remainders are
                    // first-come) — reclaim that tenant's LRU entry.
                    Some(t) if t.partitioned() => {
                        let quota = (self.config.assoc / t.tenants as usize).max(1);
                        self.lru_over_quota(s, quota).unwrap_or(self.tail[s])
                    }
                    _ => self.tail[s],
                }
            }
        };
        debug_assert_ne!(v, NIL, "full set is non-empty");
        let victim = {
            let sl = &self.slots[v as usize];
            // A sub-entry victim is forwarded on behalf of its
            // lowest-numbered sharer (tenancy::representative). A
            // coalesced victim keeps its span — the Fig-12 fill flow
            // moves the whole covered run downstream in one entry.
            let vkey = if sub_entry {
                tenancy::representative(sl.key, sl.mask)
            } else {
                sl.key
            };
            (Translation::with_span(vkey, sl.ppn, sl.span), sl.key)
        };
        self.index.remove(victim.1);
        self.detach(s, v);
        {
            let sl = &mut self.slots[v as usize];
            sl.key = skey;
            sl.ppn = tx.ppn;
            sl.mask = bit;
            sl.span = tx.span_log2;
        }
        self.push_mru(s, v);
        self.index.insert(skey, v);
        self.evictions += 1;
        Some(victim.0)
    }

    /// Used entries in set `s` owned by `vmid` (recency-list walk; the
    /// associativity is small, Table 1).
    fn count_in_set(&self, s: usize, vmid: VmId) -> usize {
        let mut n = 0;
        let mut i = self.head[s];
        while i != NIL {
            if self.slots[i as usize].key.vmid == vmid {
                n += 1;
            }
            i = self.slots[i as usize].next;
        }
        n
    }

    /// The least-recently-used slot in set `s` matching `pred`, walking
    /// from the LRU end.
    fn lru_in_set(&self, s: usize, pred: impl Fn(&Slot) -> bool) -> Option<u32> {
        let mut i = self.tail[s];
        while i != NIL {
            if pred(&self.slots[i as usize]) {
                return Some(i);
            }
            i = self.slots[i as usize].prev;
        }
        None
    }

    /// The LRU slot of any tenant holding more than `quota` entries in
    /// set `s`.
    fn lru_over_quota(&self, s: usize, quota: usize) -> Option<u32> {
        self.lru_in_set(s, |sl| self.count_in_set(s, sl.key.vmid) > quota)
    }

    /// Invalidates a single key (TLB shootdown, §7.1 — the runtime
    /// page-migration protocol must also reach translations cached in
    /// the reconfigurable structures); returns whether it was present.
    ///
    /// Under sub-entry sharing only the shooting tenant's mask bit is
    /// cleared; the physical entry survives while other tenants still
    /// share it (2404.18361 §4.3) and dies when the mask empties.
    pub fn invalidate(&mut self, key: TranslationKey) -> bool {
        let Some(max) = self.coalescing else {
            return self.invalidate_exact(key);
        };
        // Coalescing: the page may be covered by its exact-key entry
        // AND by wider entries at the masked bases of every span level
        // (a split fragment and a covering run can coexist) — never
        // early-return; scan all distinct bases.
        let mut any = false;
        let mut prev = u64::MAX;
        for k in 0..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1); // k=0: the exact key
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
            let skey = self.store_key(bkey);
            let Some(&i) = self.index.get(skey) else { continue };
            let sl = self.slots[i as usize];
            if key.vpn.0 - bvpn >= (1u64 << sl.span) {
                continue; // resident entry does not reach the shot page
            }
            if let Some(t) = self.tenancy {
                if t.sub_entry() {
                    // Conservative under sub-entry sharing: clear the
                    // shooter's bit on the whole covering entry (no
                    // per-tenant fragment bookkeeping in the mask form).
                    let bit = TenancyConfig::mask_bit(key.vmid);
                    let slm = &mut self.slots[i as usize];
                    if slm.mask & bit == 0 {
                        continue;
                    }
                    slm.mask &= !bit;
                    if slm.mask == 0 {
                        self.remove_slot(skey, i);
                    }
                    if sl.span > 0 {
                        self.co.splits += 1;
                    }
                    any = true;
                    continue;
                }
            }
            self.remove_slot(skey, i);
            any = true;
            if sl.span > 0 {
                // Split on shootdown (2110.08613): drop only the shot
                // page by decomposing the remainder into its buddy
                // blocks — for every level j below the span, the
                // 2^j-aligned buddy of the shot page within the run
                // survives as its own (narrower) entry.
                self.co.splits += 1;
                for j in 0..sl.span {
                    let bb = (key.vpn.0 ^ (1u64 << j)) & !((1u64 << j) - 1);
                    let frag = Translation::with_span(
                        TranslationKey { vpn: Vpn(bb), ..sl.key },
                        Ppn(sl.ppn.0 + (bb - bvpn)),
                        j,
                    );
                    // Fragment reinserts may evict unrelated entries;
                    // those victims are simply dropped (dropping a
                    // cached translation is always safe).
                    let _ = self.insert_inner(frag);
                }
            }
        }
        any
    }

    /// The classic (non-coalescing) shootdown path, byte-identical to
    /// the pre-coalescing behavior.
    fn invalidate_exact(&mut self, key: TranslationKey) -> bool {
        let skey = self.store_key(key);
        if let Some(t) = self.tenancy {
            if t.sub_entry() {
                let Some(&i) = self.index.get(skey) else { return false };
                let bit = TenancyConfig::mask_bit(key.vmid);
                let sl = &mut self.slots[i as usize];
                if sl.mask & bit == 0 {
                    return false;
                }
                sl.mask &= !bit;
                if sl.mask == 0 {
                    self.remove_slot(skey, i);
                }
                return true;
            }
        }
        match self.index.remove(skey) {
            Some(i) => {
                self.free_slot(i);
                true
            }
            None => false,
        }
    }

    /// Unlinks slot `i` (whose index key is `skey`) and returns it to
    /// its set's free list.
    fn remove_slot(&mut self, skey: TranslationKey, i: u32) {
        self.index.remove(skey);
        self.free_slot(i);
    }

    fn free_slot(&mut self, i: u32) {
        let s = i as usize / self.config.assoc;
        self.detach(s, i);
        let sl = &mut self.slots[i as usize];
        sl.used = false;
        sl.mask = 0;
        sl.prev = NIL;
        sl.next = self.free[s];
        self.free[s] = i;
        self.len -= 1;
    }

    /// Invalidates every entry belonging to an address space. Under
    /// sub-entry sharing this clears the tenant's bit from every
    /// shared entry (freeing those it was the last sharer of) and
    /// returns the number of entries the tenant lost visibility to.
    pub fn invalidate_vmid(&mut self, vmid: VmId) -> usize {
        if let Some(t) = self.tenancy {
            if t.sub_entry() {
                let bit = TenancyConfig::mask_bit(vmid);
                let doomed: Vec<(TranslationKey, u32)> = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, sl)| sl.used && sl.mask & bit != 0)
                    .map(|(i, sl)| (sl.key, i as u32))
                    .collect();
                let n = doomed.len();
                for (skey, i) in doomed {
                    let sl = &mut self.slots[i as usize];
                    sl.mask &= !bit;
                    if sl.mask == 0 {
                        self.remove_slot(skey, i);
                    }
                }
                return n;
            }
        }
        // Whole-tenant teardown removes entries outright (never the
        // coalescing split path: buddy fragments would resurrect pages
        // of the very address space being torn down).
        let doomed: Vec<(TranslationKey, u32)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, sl)| sl.used && sl.key.vmid == vmid)
            .map(|(i, sl)| (sl.key, i as u32))
            .collect();
        for &(key, i) in &doomed {
            self.remove_slot(key, i);
        }
        doomed.len()
    }

    /// Removes all entries.
    pub fn flush(&mut self) {
        self.index.clear();
        self.len = 0;
        self.init_lists();
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.config.entries
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Number of evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = HitMiss::new();
        self.evictions = 0;
        self.co = CoalescingCounters::default();
    }

    /// Iterates over all resident translations (for duplication
    /// analysis, Fig 14a, and coherence checks). Under sub-entry
    /// sharing each physical entry expands to one logical translation
    /// per set mask bit, with the sharer's VM-ID reconstructed — so a
    /// shared entry checks against *every* sharer's page table. A
    /// coalesced entry likewise expands to one logical single-page
    /// translation per covered page, so coherence checks validate the
    /// contiguity arithmetic against the page table page by page.
    pub fn iter(&self) -> impl Iterator<Item = Translation> + '_ {
        let sub_entry = matches!(&self.tenancy, Some(t) if t.sub_entry());
        self.slots.iter().filter(|sl| sl.used).flat_map(move |sl| {
            let mask = if sub_entry { sl.mask } else { 0 };
            let mut shared: Vec<Translation> = Vec::new();
            for o in 0..(1u64 << sl.span) {
                let vpn = Vpn(sl.key.vpn.0 + o);
                let ppn = Ppn(sl.ppn.0 + o);
                if sub_entry {
                    shared.extend(
                        (0..tenancy::MAX_TENANTS as u8)
                            .filter(|i| mask & (1 << i) != 0)
                            .map(|i| {
                                let key = TranslationKey {
                                    vpn,
                                    vmid: VmId::new(i),
                                    vrf: sl.key.vrf,
                                };
                                Translation::new(key, ppn)
                            }),
                    );
                } else {
                    shared.push(Translation::new(TranslationKey { vpn, ..sl.key }, ppn));
                }
            }
            shared.into_iter()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Vpn;

    fn k(v: u64) -> TranslationKey {
        TranslationKey::for_vpn(Vpn(v))
    }

    fn tx(v: u64) -> Translation {
        Translation::new(k(v), Ppn(v + 1000))
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut t = Tlb::new(TlbConfig::fully_associative(4, 1));
        assert!(t.lookup(k(1)).is_none());
        t.insert(tx(1));
        assert!(t.lookup(k(1)).is_some());
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(TlbConfig::fully_associative(3, 1));
        t.insert(tx(1));
        t.insert(tx(2));
        t.insert(tx(3));
        t.lookup(k(1)); // 1 is now MRU; LRU is 2
        let victim = t.insert(tx(4)).unwrap();
        assert_eq!(victim.key, k(2));
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn set_associative_conflicts() {
        // 4 entries, 2-way => 2 sets; vpns 0,2,4 all map to set 0.
        let mut t = Tlb::new(TlbConfig::set_associative(4, 2, 1));
        assert!(t.insert(tx(0)).is_none());
        assert!(t.insert(tx(2)).is_none());
        let victim = t.insert(tx(4)).unwrap();
        assert_eq!(victim.key, k(0));
        // Set 1 still has room.
        assert!(t.insert(tx(1)).is_none());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut t = Tlb::new(TlbConfig::fully_associative(2, 1));
        t.insert(tx(1));
        t.insert(tx(2));
        assert!(t.insert(Translation::new(k(1), Ppn(77))).is_none());
        assert_eq!(t.lookup(k(1)).unwrap().ppn, Ppn(77));
        // vpn 2 became LRU after the vpn-1 refresh + lookup
        let v = t.insert(tx(3)).unwrap();
        assert_eq!(v.key, k(2));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut t = Tlb::new(TlbConfig::fully_associative(2, 1));
        t.insert(tx(1));
        t.insert(tx(2));
        t.probe(k(1)); // no LRU update: 1 stays LRU
        let v = t.insert(tx(3)).unwrap();
        assert_eq!(v.key, k(1));
        assert_eq!(t.stats().total(), 0, "probe must not count");
    }

    #[test]
    fn probe_many_matches_single_probes() {
        let mut t = Tlb::new(TlbConfig::set_associative(32, 4, 1));
        for v in 0..24 {
            t.insert(tx(v * 3));
        }
        let keys: Vec<TranslationKey> = (0..64).map(|v| k(v)).collect();
        let mask = t.probe_many(&keys);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(mask & (1 << i) != 0, t.probe(key).is_some(), "lane {i}");
        }
        assert_eq!(t.stats().total(), 0, "probe_many must not count");
        assert_eq!(t.probe_many(&[]), 0);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(TlbConfig::set_associative(8, 4, 1));
        for v in 0..8 {
            t.insert(tx(v));
        }
        assert!(t.invalidate(k(3)));
        assert!(!t.invalidate(k(3)));
        assert_eq!(t.len(), 7);
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    fn invalidate_vmid_scopes_to_address_space() {
        use crate::addr::{VmId, VrfId};
        let mut t = Tlb::new(TlbConfig::fully_associative(8, 1));
        for v in 0..4 {
            t.insert(Translation::new(
                TranslationKey { vpn: Vpn(v), vmid: VmId::new(1), vrf: VrfId::default() },
                Ppn(v),
            ));
        }
        t.insert(tx(100)); // vmid 0
        assert_eq!(t.invalidate_vmid(VmId::new(1)), 4);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn vrf_and_vmid_distinguish_same_vpn() {
        use crate::addr::{VmId, VrfId};
        let mut t = Tlb::new(TlbConfig::fully_associative(8, 1));
        let mk = |vm: u8, vrf: u8| TranslationKey {
            vpn: Vpn(7),
            vmid: VmId::new(vm),
            vrf: VrfId::new(vrf),
        };
        t.insert(Translation::new(mk(0, 0), Ppn(1)));
        t.insert(Translation::new(mk(1, 0), Ppn(2)));
        t.insert(Translation::new(mk(0, 1), Ppn(3)));
        // Same VPN, three address-space identities: three entries.
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(mk(0, 0)).unwrap().ppn, Ppn(1));
        assert_eq!(t.lookup(mk(1, 0)).unwrap().ppn, Ppn(2));
        assert_eq!(t.lookup(mk(0, 1)).unwrap().ppn, Ppn(3));
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut t = Tlb::new(TlbConfig::set_associative(16, 4, 1));
        for v in 0..10 {
            t.insert(tx(v));
        }
        let keys: std::collections::HashSet<_> = t.iter().map(|e| e.key.vpn.0).collect();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    #[should_panic(expected = "multiple of assoc")]
    fn bad_geometry_panics() {
        let _ = TlbConfig::set_associative(10, 4, 1);
    }

    mod tenancy {
        use super::*;
        use crate::addr::{VmId, VrfId};
        use crate::tenancy::{SharingPolicy, TenancyConfig};

        fn key(vm: u8, v: u64) -> TranslationKey {
            TranslationKey { vpn: Vpn(v), vmid: VmId::new(vm), vrf: VrfId::default() }
        }

        fn tenant_tlb(entries: usize, tenants: u8, policy: SharingPolicy) -> Tlb {
            let mut t = Tlb::new(TlbConfig::fully_associative(entries, 1));
            t.set_tenancy(Some(TenancyConfig::new(tenants, policy)));
            t
        }

        #[test]
        fn partitioned_never_evicts_across_vmid() {
            // 4 ways, 2 tenants => 2-way quota each. Tenant 0 fills its
            // quota and keeps inserting: only its own entries may die.
            let mut t = tenant_tlb(4, 2, SharingPolicy::Partitioned);
            t.insert(Translation::new(key(1, 100), Ppn(100)));
            t.insert(Translation::new(key(1, 101), Ppn(101)));
            for v in 0..8u64 {
                if let Some(victim) = t.insert(Translation::new(key(0, v), Ppn(v))) {
                    assert_eq!(victim.key.vmid.raw(), 0, "evicted a co-tenant's entry");
                }
            }
            // Tenant 1's reserved ways survived the storm.
            assert!(t.probe(key(1, 100)).is_some());
            assert!(t.probe(key(1, 101)).is_some());
            // Tenant 0 holds exactly its quota.
            let t0 = t.iter().filter(|e| e.key.vmid.raw() == 0).count();
            assert_eq!(t0, 2);
        }

        #[test]
        fn partitioned_quota_applies_even_with_free_ways() {
            // 8 ways, 4 tenants => 2-way quota. A lone tenant at quota
            // must recycle its own LRU entry, not claim idle ways that
            // belong to absent tenants.
            let mut t = tenant_tlb(8, 4, SharingPolicy::Partitioned);
            for v in 0..5u64 {
                t.insert(Translation::new(key(2, v), Ppn(v)));
            }
            assert_eq!(t.len(), 2, "static partition caps the tenant at its quota");
            assert!(t.probe(key(2, 3)).is_some());
            assert!(t.probe(key(2, 4)).is_some());
        }

        #[test]
        fn shared_policy_checks_vmid_on_hit() {
            let mut t = tenant_tlb(4, 2, SharingPolicy::Shared);
            t.insert(Translation::new(key(0, 7), Ppn(70)));
            assert!(t.lookup(key(0, 7)).is_some());
            assert!(t.lookup(key(1, 7)).is_none(), "full-key tag check crosses no VM-ID");
        }

        #[test]
        fn sub_entry_hit_requires_ppn_match_at_merge() {
            let mut t = tenant_tlb(4, 2, SharingPolicy::SubEntry);
            t.insert(Translation::new(key(0, 7), Ppn(70)));
            // Tenant 1 cannot hit before merging.
            assert!(t.lookup(key(1, 7)).is_none());
            // Same PPN: merges into the same physical entry.
            t.insert(Translation::new(key(1, 7), Ppn(70)));
            assert_eq!(t.len(), 1, "PPN-aligned mappings share one entry");
            assert_eq!(t.lookup(key(0, 7)).unwrap().ppn, Ppn(70));
            let hit = t.lookup(key(1, 7)).unwrap();
            assert_eq!(hit.ppn, Ppn(70));
            assert_eq!(hit.key.vmid.raw(), 1, "hit reports the requester's tenant");
        }

        #[test]
        fn sub_entry_ppn_conflict_rebases_entry() {
            let mut t = tenant_tlb(4, 2, SharingPolicy::SubEntry);
            t.insert(Translation::new(key(0, 7), Ppn(70)));
            t.insert(Translation::new(key(1, 7), Ppn(71))); // different frame
            assert_eq!(t.len(), 1);
            assert!(t.lookup(key(0, 7)).is_none(), "conflicting sharer lost visibility");
            assert_eq!(t.lookup(key(1, 7)).unwrap().ppn, Ppn(71));
        }

        #[test]
        fn sub_entry_shootdown_clears_one_tenant_bit() {
            let mut t = tenant_tlb(4, 2, SharingPolicy::SubEntry);
            t.insert(Translation::new(key(0, 7), Ppn(70)));
            t.insert(Translation::new(key(1, 7), Ppn(70)));
            assert!(t.invalidate(key(0, 7)));
            assert!(t.lookup(key(0, 7)).is_none());
            assert!(t.lookup(key(1, 7)).is_some(), "co-sharer survives the shootdown");
            assert_eq!(t.len(), 1);
            assert!(t.invalidate(key(1, 7)));
            assert_eq!(t.len(), 0, "entry dies when its mask empties");
            assert!(!t.invalidate(key(1, 7)));
        }

        #[test]
        fn sub_entry_iter_expands_sharers() {
            let mut t = tenant_tlb(4, 3, SharingPolicy::SubEntry);
            t.insert(Translation::new(key(0, 7), Ppn(70)));
            t.insert(Translation::new(key(2, 7), Ppn(70)));
            let mut vms: Vec<u8> = t.iter().map(|e| e.key.vmid.raw()).collect();
            vms.sort_unstable();
            assert_eq!(vms, vec![0, 2], "one logical translation per sharer");
        }

        #[test]
        fn sub_entry_victim_carries_representative_tenant() {
            let mut t = tenant_tlb(1, 2, SharingPolicy::SubEntry);
            t.insert(Translation::new(key(1, 7), Ppn(70)));
            let victim = t.insert(Translation::new(key(0, 9), Ppn(90))).unwrap();
            assert_eq!(victim.key.vpn, Vpn(7));
            assert_eq!(victim.key.vmid.raw(), 1, "victim forwarded for its lowest sharer");
        }

        #[test]
        fn sub_entry_invalidate_vmid_keeps_co_sharers() {
            let mut t = tenant_tlb(8, 2, SharingPolicy::SubEntry);
            t.insert(Translation::new(key(0, 1), Ppn(10)));
            t.insert(Translation::new(key(1, 1), Ppn(10)));
            t.insert(Translation::new(key(1, 2), Ppn(20)));
            assert_eq!(t.invalidate_vmid(VmId::new(1)), 2);
            assert_eq!(t.len(), 1, "shared entry survives, solo entry dies");
            assert!(t.probe(key(0, 1)).is_some());
            assert!(t.probe(key(1, 1)).is_none());
        }

        #[test]
        fn single_tenant_shared_matches_untenanted_behavior() {
            // The solo-equivalence anchor: 1-tenant Shared must walk
            // the exact same states as no tenancy at all.
            let mut plain = Tlb::new(TlbConfig::set_associative(8, 4, 1));
            let mut solo = Tlb::new(TlbConfig::set_associative(8, 4, 1));
            solo.set_tenancy(Some(TenancyConfig::new(1, SharingPolicy::Shared)));
            for v in 0..32u64 {
                let tx = Translation::new(key(0, v * 3), Ppn(v));
                assert_eq!(plain.insert(tx), solo.insert(tx), "insert {v}");
                assert_eq!(plain.lookup(key(0, v)), solo.lookup(key(0, v)));
            }
            assert_eq!(plain.stats().hits, solo.stats().hits);
            assert_eq!(plain.len(), solo.len());
        }

        #[test]
        #[should_panic(expected = "before first insert")]
        fn tenancy_rejects_live_entries() {
            let mut t = Tlb::new(TlbConfig::fully_associative(2, 1));
            t.insert(Translation::new(key(0, 1), Ppn(1)));
            t.set_tenancy(Some(TenancyConfig::new(2, SharingPolicy::SubEntry)));
        }
    }

    mod coalescing {
        use super::*;

        fn co_tlb(entries: usize, max: u8) -> Tlb {
            let mut t = Tlb::new(TlbConfig::fully_associative(entries, 1));
            t.set_coalescing(Some(max));
            t
        }

        /// One span-3 entry: vpns 40..48 -> ppns 500..508.
        fn span3() -> Translation {
            Translation::with_span(k(40), Ppn(500), 3)
        }

        #[test]
        fn covered_pages_hit_with_run_arithmetic() {
            let mut t = co_tlb(8, 4);
            t.insert(span3());
            assert_eq!(t.len(), 1);
            for v in 40..48u64 {
                let hit = t.lookup(k(v)).expect("covered page must hit");
                assert_eq!(hit.key.vpn, Vpn(40), "hit reports the base entry");
                assert_eq!(hit.ppn_for(Vpn(v)), Ppn(500 + (v - 40)));
            }
            assert!(t.lookup(k(39)).is_none());
            assert!(t.lookup(k(48)).is_none());
            assert_eq!(t.stats().hits, 8);
            assert_eq!(t.stats().misses, 2);
            // Exact-base hit is not a covering hit; the other 7 are.
            assert_eq!(t.coalescing_counters().hits, 7);
        }

        #[test]
        fn probe_agrees_with_lookup_everywhere() {
            let mut t = co_tlb(8, 4);
            t.insert(span3());
            t.insert(Translation::new(k(100), Ppn(9)));
            for v in 0..160u64 {
                let p = t.probe(k(v));
                let l = t.lookup(k(v));
                assert_eq!(p, l, "probe/lookup diverge at vpn {v}");
            }
        }

        #[test]
        fn insert_counters_measure_reach() {
            let mut t = co_tlb(8, 4);
            t.insert(span3());
            t.insert(Translation::new(k(100), Ppn(9)));
            let co = t.coalescing_counters();
            assert_eq!(co.inserts, 2);
            assert_eq!(co.coalesced, 1);
            assert_eq!(co.span_pages, 8 + 1);
            t.reset_stats();
            assert_eq!(t.coalescing_counters(), CoalescingCounters::default());
        }

        #[test]
        fn single_page_shootdown_splits_into_buddies() {
            let mut t = co_tlb(16, 4);
            t.insert(span3());
            // Shoot vpn 42 out of the 40..48 run.
            assert!(t.invalidate(k(42)));
            assert!(t.probe(k(42)).is_none(), "shot page must not survive");
            for v in (40..48u64).filter(|&v| v != 42) {
                let hit = t.probe(k(v)).expect("survivor lost");
                assert_eq!(hit.ppn_for(Vpn(v)), Ppn(500 + (v - 40)), "survivor remapped");
            }
            // Buddy decomposition of 8 minus one page: spans {0,1,2}.
            assert_eq!(t.len(), 3);
            assert_eq!(t.coalescing_counters().splits, 1);
            // Splitting must not count as allocator-produced reach.
            assert_eq!(t.coalescing_counters().inserts, 1);
        }

        #[test]
        fn shooting_the_base_page_also_splits() {
            let mut t = co_tlb(16, 4);
            t.insert(span3());
            assert!(t.invalidate(k(40)));
            assert!(t.probe(k(40)).is_none());
            for v in 41..48u64 {
                assert_eq!(t.probe(k(v)).unwrap().ppn_for(Vpn(v)), Ppn(500 + (v - 40)));
            }
        }

        #[test]
        fn repeated_shootdowns_drain_the_run_completely() {
            let mut t = co_tlb(16, 4);
            t.insert(span3());
            for v in 40..48u64 {
                assert!(t.invalidate(k(v)), "page {v} already gone");
                for w in 40..48u64 {
                    assert_eq!(t.probe(k(w)).is_some(), w > v, "page {w} after shooting {v}");
                }
            }
            assert!(t.is_empty());
        }

        #[test]
        fn fragment_and_covering_entry_can_both_die() {
            // An exact single-page entry AND a covering wide entry for
            // the same vpn can coexist (e.g. after a refresh); one
            // shootdown must reach both.
            let mut t = co_tlb(16, 4);
            t.insert(span3());
            t.insert(Translation::new(k(42), Ppn(777)));
            assert!(t.invalidate(k(42)));
            assert!(t.probe(k(42)).is_none(), "stale translation survived the shootdown");
        }

        #[test]
        fn victims_keep_their_span() {
            let mut t = co_tlb(1, 4);
            t.insert(span3());
            let victim = t.insert(Translation::new(k(100), Ppn(9))).unwrap();
            assert_eq!(victim.key.vpn, Vpn(40));
            assert_eq!(victim.span_log2, 3, "Fig-12 victims carry the whole run");
        }

        #[test]
        fn iter_expands_covered_pages() {
            let mut t = co_tlb(8, 4);
            t.insert(span3());
            let pages: Vec<(u64, u64)> = t.iter().map(|e| (e.key.vpn.0, e.ppn.0)).collect();
            assert_eq!(pages.len(), 8);
            for (vpn, ppn) in pages {
                assert_eq!(ppn - 500, vpn - 40);
            }
        }

        #[test]
        fn invalidate_vmid_never_resurrects_fragments() {
            use crate::addr::{VmId, VrfId};
            let mut t = co_tlb(8, 4);
            let key1 = TranslationKey { vpn: Vpn(40), vmid: VmId::new(1), vrf: VrfId::default() };
            t.insert(Translation::with_span(key1, Ppn(500), 3));
            assert_eq!(t.invalidate_vmid(VmId::new(1)), 1);
            assert!(t.is_empty(), "teardown must not buddy-split the dying tenant");
        }

        #[test]
        fn coalescing_off_never_coalesces() {
            let mut t = Tlb::new(TlbConfig::fully_associative(8, 1));
            // span-0 inserts only (the system never builds spans with
            // coalescing off); no covering scan happens on lookup.
            t.insert(tx(40));
            assert!(t.lookup(k(41)).is_none());
            assert_eq!(t.coalescing_counters(), CoalescingCounters::default());
        }

        #[test]
        fn sub_entry_covering_shootdown_clears_only_the_shooter() {
            use crate::addr::{VmId, VrfId};
            use crate::tenancy::{SharingPolicy, TenancyConfig};
            let mut t = Tlb::new(TlbConfig::fully_associative(8, 1));
            t.set_tenancy(Some(TenancyConfig::new(2, SharingPolicy::SubEntry)));
            t.set_coalescing(Some(4));
            let key = |vm: u8| TranslationKey {
                vpn: Vpn(40),
                vmid: VmId::new(vm),
                vrf: VrfId::default(),
            };
            t.insert(Translation::with_span(key(0), Ppn(500), 3));
            t.insert(Translation::with_span(key(1), Ppn(500), 3));
            // Tenant 0 shoots a covered page: conservatively loses the
            // whole run, tenant 1 keeps it.
            let shot = TranslationKey { vpn: Vpn(42), ..key(0) };
            assert!(t.invalidate(shot));
            assert!(t.probe(shot).is_none());
            assert!(t.probe(TranslationKey { vpn: Vpn(41), ..key(0) }).is_none());
            assert!(t.probe(TranslationKey { vpn: Vpn(42), ..key(1) }).is_some());
            assert_eq!(t.coalescing_counters().splits, 1);
        }

        #[test]
        #[should_panic(expected = "before first insert")]
        fn coalescing_rejects_live_entries() {
            let mut t = Tlb::new(TlbConfig::fully_associative(2, 1));
            t.insert(tx(1));
            t.set_coalescing(Some(4));
        }
    }
}
