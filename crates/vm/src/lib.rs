//! # gtr-vm
//!
//! GPU virtual-memory substrate: addresses, four-level x86-64 page
//! tables, a generic set-associative TLB, per-wavefront access
//! coalescing, split page-walk caches, and an IOMMU with a pool of
//! concurrent page-table walkers — everything the MICRO'21 paper's
//! baseline (Table 1) requires below the reconfigurable structures.
//!
//! The crate is timing-aware but memory-system-agnostic: a page walk
//! produces a sequence of PTE physical addresses whose access latency
//! is supplied by an implementation of [`walk::PteAccess`] (in the full
//! system that is the GPU's L2 data cache + DRAM from `gtr-mem`).
//!
//! # Example: translating through the IOMMU
//!
//! ```
//! use gtr_vm::addr::{PageSize, VirtAddr, VmId, VrfId};
//! use gtr_vm::page_table::PageTable;
//! use gtr_vm::iommu::{Iommu, IommuConfig};
//! use gtr_vm::walk::FixedLatencyPte;
//!
//! let mut pt = PageTable::new(PageSize::Size4K);
//! pt.map_range(VirtAddr::new(0), 16);
//! let mut iommu = Iommu::new(IommuConfig::default());
//! let mut mem = FixedLatencyPte::new(200);
//! let key = pt.key_for(VirtAddr::new(0x2000), VmId::new(0), VrfId::new(0));
//! let outcome = iommu.translate(0, key, &pt, &mut mem);
//! assert!(outcome.translation.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod coalescer;
pub mod iommu;
pub mod page_table;
pub mod pwc;
pub mod shootdown;
pub mod tenancy;
pub mod tlb;
pub mod walk;
