//! Invariant battery for coalesced (variable-reach) TLB entries: a
//! covering entry answers exactly like the 4 KB entries it replaces,
//! never spans a permission or VM boundary, and splits correctly when
//! a single covered page is shot down — at the structure level and
//! end to end through the runtime shootdown-storm scenario.

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::driver::{DriverSchedule, MigrationEvent};
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::vm::addr::{PageSize, Translation, TranslationKey, VmId, Vpn, VrfId};
use gpu_translation_reach::vm::alloc::{PageLayout, REGION_PAGES_LOG2};
use gpu_translation_reach::vm::page_table::PageTable;
use gpu_translation_reach::vm::tlb::{Tlb, TlbConfig};
use gpu_translation_reach::workloads::{scale::Scale, suite};

/// The figure family's frozen allocator seed (`figures.rs`).
const FRAG_SEED: u64 = 0xC0A1_E5CE;

const MAX_SPAN: u8 = REGION_PAGES_LOG2 as u8;

fn coalescing_tlb(max: u8) -> Tlb {
    let mut tlb = Tlb::new(TlbConfig::fully_associative(4096, 1));
    tlb.set_coalescing(Some(max));
    tlb
}

fn contig_table(f: f64) -> PageTable {
    PageTable::new(PageSize::Size4K).with_layout(PageLayout::contig(f, FRAG_SEED))
}

/// Inserts the page table's coalesced view of `vpns` into `tlb`: one
/// base-normalized covering entry per maximal aligned block, exactly
/// as the system's walk path synthesizes them (`attach_span`).
fn insert_coalesced(tlb: &mut Tlb, pt: &PageTable, vpns: impl Iterator<Item = u64>) {
    for v in vpns {
        let vpn = Vpn(v);
        let span = pt.contiguity_span(vpn, MAX_SPAN);
        let base = Vpn(v & !((1u64 << span) - 1));
        let tx = Translation::with_span(
            TranslationKey::for_vpn(base),
            pt.translate(base).expect("mapped"),
            span,
        );
        tlb.insert(tx);
    }
}

/// Equivalence: for every page of a (partially fragmented) region, a
/// coalescing TLB loaded with covering entries reports exactly the
/// frame that a plain TLB loaded with per-page 4 KB entries reports.
#[test]
fn covering_probe_equals_4kb_probe_for_every_covered_page() {
    let region_pages = 1u64 << REGION_PAGES_LOG2;
    for f in [0.0, 0.1, 0.4] {
        let mut pt = contig_table(f);
        let base = 7 * region_pages;
        for v in 0..region_pages {
            pt.map_vpn(Vpn(base + v));
        }
        let mut coalesced = coalescing_tlb(MAX_SPAN);
        insert_coalesced(&mut coalesced, &pt, (base..base + region_pages).rev());
        let mut plain = Tlb::new(TlbConfig::fully_associative(4096, 1));
        for v in base..base + region_pages {
            let vpn = Vpn(v);
            plain.insert(Translation::new(
                TranslationKey::for_vpn(vpn),
                pt.translate(vpn).expect("mapped"),
            ));
        }
        for v in base..base + region_pages {
            let key = TranslationKey::for_vpn(Vpn(v));
            let via_covering = coalesced
                .probe(key)
                .unwrap_or_else(|| panic!("f={f}: covered page {v:#x} must be resident"));
            assert!(via_covering.covers(Vpn(v)));
            assert_eq!(
                via_covering.ppn_for(Vpn(v)),
                plain.probe(key).expect("resident").ppn_for(Vpn(v)),
                "f={f}: covering entry disagrees with 4 KB entry at {v:#x}"
            );
        }
        if f == 0.0 {
            assert_eq!(coalesced.len(), 1, "f=0: one entry maps the whole region");
            assert_eq!(plain.len(), region_pages as usize);
            let co = coalesced.coalescing_counters();
            assert!(co.coalesced > 0);
            assert_eq!(co.hits, 0, "probe must not tick lookup counters");
        }
    }
}

/// A span never crosses a permission boundary: `contiguity_span` stops
/// at pages whose protection bits differ, so a protection change in
/// the middle of a physically contiguous region caps every page's span
/// at the boundary — on both sides.
#[test]
fn spans_never_cross_permission_boundaries() {
    let region_pages = 1u64 << REGION_PAGES_LOG2;
    let mut pt = contig_table(0.0);
    for v in 0..region_pages {
        pt.map_vpn(Vpn(v));
    }
    // Make the upper half of the region read-only.
    for v in region_pages / 2..region_pages {
        pt.set_prot(Vpn(v), 1);
    }
    for v in 0..region_pages {
        let span = pt.contiguity_span(Vpn(v), MAX_SPAN);
        assert!(span < MAX_SPAN, "prot fence must cap the region-wide span");
        let base = v & !((1u64 << span) - 1);
        let prot = pt.prot(Vpn(v));
        for o in 0..(1u64 << span) {
            assert_eq!(
                pt.prot(Vpn(base + o)),
                prot,
                "span at {v:#x} covers a page with different protection"
            );
        }
    }
    // Exactly at the boundary the halves coalesce maximally among
    // themselves: page 0 and the first read-only page each get half.
    assert_eq!(pt.contiguity_span(Vpn(0), MAX_SPAN), MAX_SPAN - 1);
    assert_eq!(pt.contiguity_span(Vpn(region_pages / 2), MAX_SPAN), MAX_SPAN - 1);
}

/// A covering entry never answers for another VM: the VM id is part of
/// the probed key at every span level, so tenant B misses on a run
/// tenant A coalesced — per-table spans can never leak across vmids.
#[test]
fn covering_entries_are_vmid_local() {
    let region_pages = 1u64 << REGION_PAGES_LOG2;
    let mut pt = PageTable::with_ids(PageSize::Size4K, VmId::new(1), VrfId::new(0))
        .with_layout(PageLayout::contig(0.0, FRAG_SEED));
    for v in 0..region_pages {
        pt.map_vpn(Vpn(v));
    }
    let mut tlb = coalescing_tlb(MAX_SPAN);
    let base_key = pt.key_for(Vpn(0).base(PageSize::Size4K), VmId::new(1), VrfId::new(0));
    tlb.insert(Translation::with_span(
        base_key,
        pt.translate(Vpn(0)).expect("mapped"),
        MAX_SPAN,
    ));
    for v in [0u64, 1, region_pages / 2, region_pages - 1] {
        let own = TranslationKey { vpn: Vpn(v), ..base_key };
        assert!(tlb.probe(own).is_some(), "owner must hit its own run");
        let foreign = TranslationKey { vpn: Vpn(v), vmid: VmId::new(2), ..base_key };
        assert!(
            tlb.probe(foreign).is_none(),
            "vmid 2 must not hit vmid 1's covering entry at {v:#x}"
        );
    }
}

/// Single-page shootdown splits a covering entry correctly: the shot
/// page misses afterwards, every *other* covered page still hits with
/// its exact frame, and no surviving entry covers the shot page.
#[test]
fn single_page_shootdown_splits_covering_entries() {
    let region_pages = 1u64 << REGION_PAGES_LOG2;
    let mut pt = contig_table(0.0);
    for v in 0..region_pages {
        pt.map_vpn(Vpn(v));
    }
    // Shoot a few representative pages: run interior, block edges,
    // the base page itself, and the last page.
    for victim in [0u64, 1, 137, region_pages / 2, region_pages - 1] {
        let mut tlb = coalescing_tlb(MAX_SPAN);
        insert_coalesced(&mut tlb, &pt, std::iter::once(0));
        assert_eq!(tlb.len(), 1);
        let vkey = TranslationKey::for_vpn(Vpn(victim));
        assert!(tlb.invalidate(vkey), "covered page must be invalidatable");
        assert!(tlb.probe(vkey).is_none(), "no stale translation for {victim:#x}");
        let mut covered = 0u64;
        for v in 0..region_pages {
            let vpn = Vpn(v);
            match tlb.probe(TranslationKey::for_vpn(vpn)) {
                Some(tx) => {
                    assert_ne!(v, victim, "stale translation survives the shootdown");
                    assert!(tx.covers(vpn));
                    assert_eq!(
                        tx.ppn_for(vpn),
                        pt.translate(vpn).expect("mapped"),
                        "fragment at {v:#x} reports the wrong frame"
                    );
                    covered += 1;
                }
                None => assert_eq!(v, victim, "page {v:#x} lost by the split"),
            }
        }
        assert_eq!(covered, region_pages - 1, "split must preserve all other pages");
        // Buddy decomposition: one fragment per span level.
        assert_eq!(tlb.len(), MAX_SPAN as usize, "victim {victim:#x}");
        let co = tlb.coalescing_counters();
        assert_eq!(co.splits, 1, "one covering entry was split");
        assert_eq!(co.inserts, 1, "fragment reinserts must not count as inserts");
        // No surviving entry's span reaches the victim.
        for tx in tlb.iter() {
            assert!(!tx.covers(Vpn(victim)), "{tx:?} still covers the shot page");
        }
    }
}

/// The runtime shootdown-storm scenario of `shootdown_runtime.rs`,
/// re-run with the contiguity-aware allocator and coalesced entries
/// in every structure: migrations must leave no stale translation
/// anywhere (the system's own coherence audit), splits must show up
/// in the exported stats, and the whole run stays deterministic.
#[test]
fn shootdown_storm_with_coalescing_is_coherent_and_deterministic() {
    let atax_first_vpn = 0x1_0000_0000u64 / 4096;
    let app = suite::by_name("ATAX", Scale::tiny()).unwrap();
    let gpu =
        GpuConfig::default().with_page_layout(PageLayout::contig(0.0, FRAG_SEED));
    let reach = ReachConfig::ic_plus_lds().with_tlb_coalescing(MAX_SPAN);
    let run = || {
        let schedule = DriverSchedule::new()
            .migrate(MigrationEvent::new(5_000, atax_first_vpn..atax_first_vpn + 64))
            .migrate(MigrationEvent::new(20_000, atax_first_vpn..atax_first_vpn + 64));
        let mut sys =
            System::new(gpu.clone(), reach).with_driver_schedule(schedule);
        let stats = sys.run(&app);
        let checked = sys.check_translation_coherence();
        (stats, checked)
    };
    let (stats, checked) = run();
    assert!(checked > 1000, "expected warm structures, checked {checked}");
    let co = stats.coalescing.as_ref().expect("coalescing stats exported");
    assert!(co.entries_coalesced > 0, "contiguous layout must coalesce");
    assert!(co.reach_multiplier() > 1.0);
    assert!(
        co.shootdown_splits > 0,
        "migrating covered pages must split covering entries: {co:?}"
    );
    let (stats2, checked2) = run();
    assert_eq!(stats.total_cycles, stats2.total_cycles);
    assert_eq!(stats.page_walks, stats2.page_walks);
    assert_eq!(stats.coalescing, stats2.coalescing);
    assert_eq!(checked, checked2);
}
