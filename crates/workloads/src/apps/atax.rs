//! ATAX (Polybench): `y = Aᵀ(Ax)`.
//!
//! Two kernels, never back-to-back (Table 2). Kernel 1 streams the
//! rows of `A` (good locality); kernel 2 walks *columns* of the
//! row-major matrix, so each wavefront instruction touches 64 distinct
//! pages — the paper's poster child for insufficient TLB reach (443%
//! speedup with IC+LDS, Fig 13b).

use gtr_gpu::kernel::AppTrace;

use crate::gen::{column_sweep_kernel, row_stream_kernel};
use crate::scale::Scale;

/// Matrix dimension: 1340 × 1340 × 4 B ≈ 1753 pages. The regime of
/// the paper's headline numbers: the page footprint exceeds the
/// 512-entry L2 TLB *and* the per-CU LDS reach (1536), but fits the
/// shared I-cache reach (2048/group) and the combined reach with room
/// to spare — so LDS-only gains, IC-only gains more, and IC+LDS
/// recovers nearly everything (Fig 13b's ATAX ordering). The *line*
/// working set of a column sweep (~1 line per page) stays small, so
/// data lives in the L2 data cache and translation latency dominates.
pub const N: u64 = 1400;

/// VA base of the matrix (buffers allocated compactly, as a real
/// allocator would — base-delta tag compression depends on it).
pub const MATRIX_BASE: u64 = 0x1_0000_0000;

/// VA base of the x/tmp vectors (right after the matrix).
pub const VECTOR_BASE: u64 = MATRIX_BASE + 0x80_0000;

/// Builds the ATAX trace.
pub fn build(scale: Scale) -> AppTrace {
    let row_bytes = N * 4;
    let waves = 32;
    let k1 = row_stream_kernel(
        "atax_kernel1",
        40,
        MATRIX_BASE,
        VECTOR_BASE,
        waves,
        4,
        scale.count(48),
        8,
    );
    let k2 = column_sweep_kernel(
        "atax_kernel2",
        72,
        MATRIX_BASE,
        row_bytes,
        N,
        waves,
        4,
        scale.count(14),
        8,
    );
    AppTrace::new("ATAX", vec![k1, k2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_gpu::ops::{AccessPattern, Op};

    #[test]
    fn two_kernels_not_back_to_back() {
        let app = build(Scale::tiny());
        assert_eq!(app.kernels().len(), 2);
        assert!(!app.has_back_to_back_kernels());
        assert_eq!(app.name(), "ATAX");
    }

    #[test]
    fn kernel2_is_page_strided() {
        let app = build(Scale::tiny());
        let k2 = &app.kernels()[1];
        let wave = &k2.workgroups()[0].waves()[0];
        let global = wave
            .ops()
            .iter()
            .find(|o| o.is_global())
            .expect("has global ops");
        let Op::Global { pattern: AccessPattern::Strided { stride, lanes, .. }, .. } = global
        else {
            panic!("column kernel uses strided pattern");
        };
        assert_eq!(*stride, N * 4);
        assert_eq!(*lanes, 64);
        // Nearly a full page per lane step: lanes land in ~57 distinct
        // pages per instruction — heavy SIMT translation divergence.
        assert!(*stride >= 3000);
    }

    #[test]
    fn footprint_sits_in_the_reconfigurable_regime() {
        // The doc-comment's sizing claims, kept honest: page footprint
        // beyond the 512-entry L2 TLB and the 1536-entry per-CU LDS,
        // within the 2048-entry shared-I-cache reach.
        let pages = N * N * 4 / 4096;
        assert!(pages > 512, "must exceed the L2 TLB: {pages}");
        assert!(pages > 1536, "must exceed LDS-alone reach: {pages}");
        assert!(pages <= 2048, "must fit the I-cache group reach: {pages}");
        // The column sweep's line working set (~1 line/page) must fit
        // the 4 MB L2 data cache (65536 lines).
        assert!(pages * 2 < 65536);
    }

    #[test]
    fn scaling_shrinks_work_not_structure() {
        let tiny = build(Scale::tiny());
        let paper = build(Scale::paper());
        assert_eq!(tiny.kernels().len(), paper.kernels().len());
        assert!(tiny.total_ops() < paper.total_ops());
    }
}
