//! Driver-initiated events during a run: page migrations with TLB
//! shootdowns (§7.1).
//!
//! The GPU driver migrates (or swaps) pages while kernels execute; the
//! PM4-style shootdown packet must invalidate the stale translation in
//! **every** caching structure — the per-CU L1 TLBs, the shared L2
//! TLB, the IOMMU's device TLBs, *and* (with the reconfigurable
//! architecture) the LDS segments and I-cache lines that may hold it.
//! [`crate::system::System::with_driver_schedule`] attaches a schedule;
//! the system executes each event once the global translation-request
//! count passes its trigger.
//!
//! Invalidation is modeled as instantaneous at the trigger boundary —
//! the run-level effect of interest is the re-walk traffic and the
//! coherence obligation, both of which the integration tests check.
//! The PM4 command-path latencies themselves (enqueue, parse,
//! per-sink broadcast) are modeled in [`gtr_vm::shootdown`] for
//! structure-level studies such as the `shootdown_storm` example.

use gtr_vm::addr::{TranslationKey, VmId, Vpn};

/// One driver event: migrate `pages` (in the given address spaces) and
/// shoot the stale translations down everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationEvent {
    /// Fires once the run has issued at least this many translation
    /// requests (a deterministic, workload-relative trigger).
    pub after_translations: u64,
    /// Pages to migrate.
    pub pages: Vec<(VmId, Vpn)>,
}

impl MigrationEvent {
    /// Convenience constructor for address space 0.
    pub fn new(after_translations: u64, vpns: impl IntoIterator<Item = u64>) -> Self {
        Self {
            after_translations,
            pages: vpns.into_iter().map(|v| (VmId::default(), Vpn(v))).collect(),
        }
    }

    /// The shootdown keys this event will broadcast.
    pub fn keys(&self) -> impl Iterator<Item = TranslationKey> + '_ {
        self.pages.iter().map(|&(vmid, vpn)| TranslationKey {
            vpn,
            vmid,
            vrf: gtr_vm::addr::VrfId::default(),
        })
    }
}

/// An ordered schedule of driver events.
#[derive(Debug, Clone, Default)]
pub struct DriverSchedule {
    events: Vec<MigrationEvent>,
}

impl DriverSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event (kept sorted by trigger point).
    pub fn migrate(mut self, event: MigrationEvent) -> Self {
        self.events.push(event);
        self.events.sort_by_key(|e| e.after_translations);
        self
    }

    /// Events in trigger order.
    pub fn events(&self) -> &[MigrationEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Outcome counters for executed driver events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShootdownReport {
    /// Events executed.
    pub events: u64,
    /// Pages migrated.
    pub pages_migrated: u64,
    /// Stale copies found in L1 TLBs.
    pub l1_hits: u64,
    /// Stale copies found in the L2 TLB.
    pub l2_hits: u64,
    /// Stale copies found in reconfigurable LDS segments.
    pub lds_hits: u64,
    /// Stale copies found in reconfigurable I-cache lines.
    pub ic_hits: u64,
}

impl ShootdownReport {
    /// Total stale copies invalidated anywhere.
    pub fn total_hits(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.lds_hits + self.ic_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_trigger() {
        let s = DriverSchedule::new()
            .migrate(MigrationEvent::new(500, [1, 2]))
            .migrate(MigrationEvent::new(100, [3]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].after_translations, 100);
        assert_eq!(s.events()[1].after_translations, 500);
    }

    #[test]
    fn event_keys_cover_all_pages() {
        let e = MigrationEvent::new(0, [7, 8, 9]);
        let keys: Vec<_> = e.keys().collect();
        assert_eq!(keys.len(), 3);
        assert_eq!(keys[0].vpn, Vpn(7));
        assert_eq!(keys[0].vmid, VmId::default());
    }

    #[test]
    fn empty_schedule() {
        let s = DriverSchedule::new();
        assert!(s.is_empty());
        assert_eq!(ShootdownReport::default().total_hits(), 0);
    }
}
