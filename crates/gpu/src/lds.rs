//! Application-managed LDS scratchpad allocation (§2.2).
//!
//! The front-end scheduling unit reserves LDS capacity in one
//! contiguous block per workgroup before its waves dispatch; blocks
//! return to the allocator when the workgroup completes. First-fit
//! placement over a fragmented free list reproduces the
//! under-utilization the paper measures in Figure 4a.

use gtr_sim::stats::Sampler;

/// Allocation alignment in bytes (GCN allocates LDS in 256-B granules).
pub const LDS_ALLOC_ALIGN: u32 = 256;

/// Identifier of one live LDS allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LdsAllocId(u64);

/// One live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdsBlock {
    /// Byte offset of the block within the CU's LDS.
    pub base: u32,
    /// Size in bytes (aligned up).
    pub size: u32,
}

/// Contiguous first-fit LDS allocator for one CU.
///
/// # Example
///
/// ```
/// use gtr_gpu::lds::LdsAllocator;
/// let mut lds = LdsAllocator::new(16 * 1024);
/// let a = lds.allocate(1000).unwrap();
/// assert_eq!(lds.block(a).unwrap().size, 1024); // aligned up
/// lds.release(a);
/// assert_eq!(lds.bytes_in_use(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LdsAllocator {
    capacity: u32,
    blocks: Vec<(LdsAllocId, LdsBlock)>, // sorted by base
    next_id: u64,
    requests: Sampler,
    failed: u64,
}

impl LdsAllocator {
    /// Creates an empty allocator over `capacity` bytes.
    pub fn new(capacity: u32) -> Self {
        Self { capacity, blocks: Vec::new(), next_id: 0, requests: Sampler::new(), failed: 0 }
    }

    /// Total LDS capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn bytes_in_use(&self) -> u32 {
        self.blocks.iter().map(|(_, b)| b.size).sum()
    }

    /// Attempts to allocate `bytes` (0 is recorded but returns a
    /// zero-size block at base 0); returns `None` when no contiguous
    /// gap fits (the workgroup must wait).
    pub fn allocate(&mut self, bytes: u32) -> Option<LdsAllocId> {
        self.requests.record(bytes as f64);
        let size = bytes.div_ceil(LDS_ALLOC_ALIGN) * LDS_ALLOC_ALIGN;
        let base = self.find_gap(size)?;
        let id = LdsAllocId(self.next_id);
        self.next_id += 1;
        let pos = self.blocks.partition_point(|(_, b)| b.base < base);
        self.blocks.insert(pos, (id, LdsBlock { base, size }));
        Some(id)
    }

    fn find_gap(&mut self, size: u32) -> Option<u32> {
        let mut cursor = 0u32;
        for (_, b) in &self.blocks {
            if b.base - cursor >= size {
                return Some(cursor);
            }
            cursor = b.base + b.size;
        }
        if self.capacity - cursor >= size {
            Some(cursor)
        } else {
            self.failed += 1;
            None
        }
    }

    /// Releases an allocation; returns the freed block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live (double free).
    pub fn release(&mut self, id: LdsAllocId) -> LdsBlock {
        let pos = self
            .blocks
            .iter()
            .position(|(i, _)| *i == id)
            .expect("release of unknown LDS allocation");
        self.blocks.remove(pos).1
    }

    /// The block behind a live allocation.
    pub fn block(&self, id: LdsAllocId) -> Option<LdsBlock> {
        self.blocks.iter().find(|(i, _)| *i == id).map(|(_, b)| *b)
    }

    /// Live blocks in base order.
    pub fn blocks(&self) -> impl Iterator<Item = LdsBlock> + '_ {
        self.blocks.iter().map(|(_, b)| *b)
    }

    /// Whether byte `offset` lies inside any live allocation.
    pub fn is_allocated(&self, offset: u32) -> bool {
        self.blocks
            .iter()
            .any(|(_, b)| offset >= b.base && offset < b.base + b.size)
    }

    /// Distribution of requested workgroup LDS sizes (Figure 4a).
    pub fn request_sizes(&self) -> &Sampler {
        &self.requests
    }

    /// Allocation attempts that failed for lack of a contiguous gap.
    pub fn failed_allocations(&self) -> u64 {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_aligned_first_fit() {
        let mut lds = LdsAllocator::new(4096);
        let a = lds.allocate(100).unwrap();
        let b = lds.allocate(100).unwrap();
        assert_eq!(lds.block(a).unwrap().base, 0);
        assert_eq!(lds.block(b).unwrap().base, 256);
        assert_eq!(lds.bytes_in_use(), 512);
    }

    #[test]
    fn reuses_freed_gap() {
        let mut lds = LdsAllocator::new(1024);
        let a = lds.allocate(256).unwrap();
        let _b = lds.allocate(256).unwrap();
        lds.release(a);
        let c = lds.allocate(200).unwrap();
        assert_eq!(lds.block(c).unwrap().base, 0, "first fit reuses the hole");
    }

    #[test]
    fn fragmentation_blocks_large_requests() {
        let mut lds = LdsAllocator::new(1024);
        let _a = lds.allocate(256).unwrap();
        let b = lds.allocate(256).unwrap();
        let _c = lds.allocate(256).unwrap();
        lds.release(b);
        // 512 free total (256 hole + 256 tail) but no contiguous 512.
        assert!(lds.allocate(512).is_none());
        assert_eq!(lds.failed_allocations(), 1);
    }

    #[test]
    fn capacity_exhaustion() {
        let mut lds = LdsAllocator::new(512);
        assert!(lds.allocate(512).is_some());
        assert!(lds.allocate(1).is_none());
    }

    #[test]
    fn is_allocated_tracks_blocks() {
        let mut lds = LdsAllocator::new(1024);
        let a = lds.allocate(256).unwrap();
        assert!(lds.is_allocated(0));
        assert!(lds.is_allocated(255));
        assert!(!lds.is_allocated(256));
        lds.release(a);
        assert!(!lds.is_allocated(0));
    }

    #[test]
    fn request_sampler_records_raw_sizes() {
        let mut lds = LdsAllocator::new(4096);
        lds.allocate(100);
        lds.allocate(2000);
        let s = lds.request_sizes();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 2000.0);
        assert_eq!(s.min(), 100.0);
    }

    #[test]
    #[should_panic(expected = "unknown LDS allocation")]
    fn double_free_panics() {
        let mut lds = LdsAllocator::new(1024);
        let a = lds.allocate(10).unwrap();
        lds.release(a);
        lds.release(a);
    }

    #[test]
    fn zero_sized_allocation_allowed() {
        let mut lds = LdsAllocator::new(1024);
        let a = lds.allocate(0).unwrap();
        assert_eq!(lds.block(a).unwrap().size, 0);
        assert_eq!(lds.bytes_in_use(), 0);
    }
}
