//! `gtr-serve` end-to-end guarantees: served results are byte-identical
//! to batch-mode exports, memoized cells never re-enter the simulator,
//! and a damaged result-cache entry recomputes instead of poisoning a
//! response.
//!
//! The serve path reorders everything about *how* cells execute
//! (admission, coalescing, caching, pooled workers) but must change
//! nothing about *what* they compute: each cell is the same
//! deterministic simulation the `all`/`run_app` harnesses run, and the
//! streamed document is exactly `run_stats_to_json_string` output.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gpu_translation_reach::bench::figures;
use gpu_translation_reach::bench::harness::{self, Variant};
use gpu_translation_reach::bench::serve::{
    decode_result, encode_result, result_path, run_server, submit_lines, CachedResult,
    CellRequest, ServeState, RESULT_CACHE_VERSION,
};
use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::export::run_stats_to_json_string;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::AppTrace;
use gpu_translation_reach::sim::arena::{corrupt, Corruption};
use gpu_translation_reach::sim::json::Json;
use gpu_translation_reach::vm::tenancy::SharingPolicy;
use gpu_translation_reach::workloads::scale::Scale;
use gpu_translation_reach::workloads::suite;

/// A unique, self-cleaning scratch directory per test.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("gtr-serve-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn request(app: &str, config: &str, mode: &str) -> CellRequest {
    CellRequest {
        app: app.to_string(),
        config: config.to_string(),
        scale: "tiny".to_string(),
        mode: mode.to_string(),
        tenants: 0,
        policy: None,
        page_mode: None,
    }
}

/// A served **exact untenanted** cell streams the exact bytes
/// `run_app --stats-out` would write for the same cell (schema v4).
#[test]
fn served_exact_doc_is_byte_identical_to_batch_export() {
    let state = ServeState::new(2, None, None);
    let cell = request("GUPS", "ic+lds", "exact").resolve().expect("valid request");
    let responses = state.handle_batch(std::slice::from_ref(&cell));
    let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    let expected = run_stats_to_json_string(&harness::run_one(
        &app,
        GpuConfig::default(),
        ReachConfig::ic_plus_lds(),
    ));
    assert_eq!(responses[0].result.schema_version, 4, "untenanted cells are schema v4");
    assert_eq!(responses[0].result.doc, expected, "served bytes must equal the batch export");
}

/// A served **sampled** cell matches the checkpointed batch path
/// (`load_or_capture` + `run_with_mode`) byte for byte, and the warmup
/// shard is shared through the tracker, not re-captured per request.
#[test]
fn served_sampled_doc_matches_checkpointed_batch_path() {
    let scratch = ScratchDir::new("sampled");
    let state = ServeState::new(2, None, Some(scratch.path().to_path_buf()));
    let cells = vec![
        request("GUPS", "baseline", "sampled").resolve().expect("valid"),
        request("GUPS", "ic+lds", "sampled").resolve().expect("valid"),
    ];
    let responses = state.handle_batch(&cells);
    assert_eq!(
        state.shards().resident(),
        1,
        "both variants share one warmup shard (same translation stream)"
    );
    assert_eq!(state.shards().outstanding(), 0, "leases returned after the batch");

    let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    let gpu = GpuConfig::default();
    let cfg = figures::sampling_for(Scale::tiny());
    let ck = harness::load_or_capture(&app, &gpu, cfg.warmup, Some(scratch.path()));
    for (response, reach) in
        responses.iter().zip([ReachConfig::baseline(), ReachConfig::ic_plus_lds()])
    {
        let expected = run_stats_to_json_string(
            &Variant::with_gpu("cell", gpu.clone(), reach).run_with_mode(
                &app,
                Some(cfg),
                Some(&ck),
            ),
        );
        assert_eq!(response.result.doc, expected, "sampled serve path must match batch");
    }
}

/// A served **tenanted** cell streams a schema-v5 document identical
/// to the batch tenancy path: replicated trace, tenanted reach config,
/// and per-tenant slowdown bases stamped from the untenanted twin —
/// which the server computes (and memoizes) as an internal dependency.
#[test]
fn served_tenanted_doc_is_byte_identical_to_batch_v5_export() {
    let state = ServeState::new(2, None, None);
    let mut req = request("GUPS", "ic+lds", "exact");
    req.tenants = 2;
    req.policy = Some("subentry".to_string());
    let cell = req.resolve().expect("valid tenanted request");
    let responses = state.handle_batch(std::slice::from_ref(&cell));
    assert_eq!(responses[0].result.schema_version, 5, "tenanted cells are schema v5");
    assert_eq!(
        state.counters.simulations.load(Ordering::Relaxed),
        2,
        "the tenanted cell plus its internal solo basis"
    );

    let base_app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    let gpu = GpuConfig::default();
    let solo = harness::run_one(&base_app, gpu.clone(), ReachConfig::ic_plus_lds());
    let tenanted_app = AppTrace::replicate(&base_app, 2);
    let tenanted_reach = ReachConfig::ic_plus_lds().with_tenancy(2, SharingPolicy::SubEntry);
    let mut stats = harness::run_one(&tenanted_app, gpu, tenanted_reach);
    harness::fill_solo_cycles(&mut stats, &solo);
    let expected = run_stats_to_json_string(&stats);
    assert_eq!(responses[0].result.doc, expected, "served v5 bytes must equal the batch path");

    // The internal solo basis is a first-class cached cell: asking for
    // it now is a hit, not a computation.
    let solo_cell = request("GUPS", "ic+lds", "exact").resolve().expect("valid");
    let solo_responses = state.handle_batch(std::slice::from_ref(&solo_cell));
    assert_eq!(solo_responses[0].source, "cache");
    assert_eq!(solo_responses[0].result.doc, run_stats_to_json_string(&solo));
    assert_eq!(state.counters.simulations.load(Ordering::Relaxed), 2, "still two");
}

/// Damaged on-disk result entries — every corruption `gtr_sim::arena`
/// can inflict, plus a stale cache version — behave exactly like a
/// miss: the cell recomputes, streams correct bytes, and the entry is
/// rewritten whole. A damaged cache can never poison a response.
#[test]
fn damaged_result_entries_recompute_and_never_poison() {
    let scratch = ScratchDir::new("damage");
    let cell = request("GUPS", "baseline", "exact").resolve().expect("valid");
    let fp = cell.key.fingerprint();
    let file = result_path(scratch.path(), fp);

    let cold = ServeState::new(1, Some(scratch.path().to_path_buf()), None);
    let expected = cold.handle_batch(std::slice::from_ref(&cell))[0].result.doc.clone();
    let good_bytes = std::fs::read(&file).expect("cold pass wrote the entry");
    assert!(decode_result(&good_bytes, fp).is_some(), "fresh entry must decode");

    let stale_version = encode_result(
        RESULT_CACHE_VERSION + 1,
        fp,
        &CachedResult { schema_version: 4, doc: expected.clone() },
    );
    let damage: Vec<(String, Vec<u8>)> = [
        Corruption::Truncate(0),
        Corruption::Truncate(good_bytes.len() / 2),
        Corruption::FlipBit(64),
        Corruption::FlipBit(good_bytes.len() * 8 - 1),
        Corruption::Trailing(7),
    ]
    .into_iter()
    .map(|way| (format!("{way:?}"), corrupt(&good_bytes, way)))
    .chain([("stale version".to_string(), stale_version)])
    .collect();
    for (label, bytes) in damage {
        std::fs::write(&file, &bytes).expect("write damaged entry");
        // A fresh state per round: the in-memory memo must not mask
        // the disk probe.
        let state = ServeState::new(1, Some(scratch.path().to_path_buf()), None);
        let responses = state.handle_batch(std::slice::from_ref(&cell));
        assert_eq!(responses[0].source, "computed", "{label}: damaged entry must miss");
        assert_eq!(responses[0].result.doc, expected, "{label}: recompute must be exact");
        assert_eq!(state.counters.simulations.load(Ordering::Relaxed), 1, "{label}");
        let rewritten = std::fs::read(&file).expect("entry rewritten");
        assert!(decode_result(&rewritten, fp).is_some(), "{label}: rewritten entry decodes");
    }

    // Undamaged, a fresh process answers from disk without simulating.
    std::fs::write(&file, &good_bytes).expect("restore good entry");
    let warm = ServeState::new(1, Some(scratch.path().to_path_buf()), None);
    let responses = warm.handle_batch(std::slice::from_ref(&cell));
    assert_eq!(responses[0].source, "cache", "disk entries survive process restarts");
    assert_eq!(responses[0].result.doc, expected);
    assert_eq!(warm.counters.simulations.load(Ordering::Relaxed), 0);
}

/// Full TCP round trip: duplicate cells in one batch coalesce onto a
/// single simulation, every streamed document is an exact batch-mode
/// export, a resubmission is 100% cache hits (the simulator is never
/// re-entered), errors come back as `{"error":...}` lines, and
/// `{"cmd":"shutdown"}` stops the listener.
#[test]
fn tcp_round_trip_dedupes_and_shuts_down() {
    let scratch = ScratchDir::new("tcp");
    let state = Arc::new(ServeState::new(2, Some(scratch.path().to_path_buf()), None));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound address");
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || run_server(state, listener))
    };

    let batch: Vec<String> = [
        r#"{"app":"GUPS","config":"baseline","scale":"tiny","mode":"exact"}"#,
        r#"{"app":"GUPS","config":"ic+lds","scale":"tiny","mode":"exact"}"#,
        r#"{"app":"GUPS","config":"ic+lds","scale":"tiny","mode":"exact"}"#,
    ]
    .map(str::to_string)
    .into();
    let cold = submit_lines(addr, &batch).expect("cold submission");
    assert_eq!(cold.len(), 6, "three header lines + three documents: {cold:?}");
    let sources: Vec<&str> = cold
        .iter()
        .step_by(2)
        .map(|h| {
            let j = Json::parse(h).expect("header parses");
            assert!(j.get("cell").is_some() && j.get("micros").is_some(), "header shape: {h}");
            match j.get("source").and_then(Json::as_str).expect("source") {
                "computed" => "computed",
                "coalesced" => "coalesced",
                "cache" => "cache",
                other => panic!("unknown source {other:?}"),
            }
        })
        .collect();
    assert_eq!(sources, ["computed", "computed", "coalesced"], "duplicate cell coalesces");
    let app = suite::by_name("GUPS", Scale::tiny()).expect("known app");
    let expected_base = run_stats_to_json_string(&harness::run_one(
        &app,
        GpuConfig::default(),
        ReachConfig::baseline(),
    ));
    assert_eq!(format!("{}\n", cold[1]), expected_base, "streamed doc is the batch export");
    assert_eq!(cold[3], cold[5], "coalesced duplicate streams identical bytes");

    // Resubmit plus a stats probe: all hits, and the simulation
    // counter proves the simulator was never re-entered.
    let mut again = batch.clone();
    again.push(String::new());
    again.push(r#"{"cmd":"stats"}"#.to_string());
    let hot = submit_lines(addr, &again).expect("hot submission");
    assert_eq!(hot.len(), 7, "three headers + three documents + counters: {hot:?}");
    for h in hot.iter().take(6).step_by(2) {
        let j = Json::parse(h).expect("header parses");
        assert_eq!(j.get("source").and_then(Json::as_str), Some("cache"), "hot pass: {h}");
    }
    let counters = Json::parse(&hot[6]).expect("counters parse");
    let counter = |k: &str| counters.get("counters").and_then(|c| c.get(k)).and_then(Json::as_u64);
    assert_eq!(counter("requests"), Some(6));
    assert_eq!(counter("simulations"), Some(2), "one simulation per distinct cell, ever");
    assert_eq!(counter("coalesced"), Some(1));
    assert_eq!(counter("cache_hits"), Some(3));

    // Bad requests answer with an error line and leave the server up.
    let errs = submit_lines(addr, &[r#"{"app":"NOPE"}"#.to_string(), "not json".to_string()])
        .expect("error submission");
    assert_eq!(errs.len(), 2, "{errs:?}");
    for e in &errs {
        assert!(
            Json::parse(e).expect("error parses").get("error").is_some(),
            "expected an error line: {e}"
        );
    }

    let bye = submit_lines(addr, &[r#"{"cmd":"shutdown"}"#.to_string()]).expect("shutdown");
    assert_eq!(bye, [r#"{"ok":"shutdown"}"#.to_string()]);
    server.join().expect("server thread").expect("clean server exit");
}
