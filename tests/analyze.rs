//! Integration tests for the trace-replay analyzer: a real simulated
//! run, traced to JSONL and exported to stats JSON, must be exactly
//! reproducible from the trace alone — and every committed fixture
//! must keep parsing.

use gpu_translation_reach::bench::analyze::{
    check_against_stats, diff_stats, missing_metrics, replay_jsonl,
};
use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::export::{
    run_stats_from_json, run_stats_to_json_string, STATS_SCHEMA_VERSION,
    STATS_SCHEMA_VERSION_UNTENANTED,
};
use gpu_translation_reach::core_arch::stats::RunStats;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::sim::json::Json;
use gpu_translation_reach::sim::trace::JsonlSink;
use gpu_translation_reach::workloads::{scale::Scale, suite};

/// Runs one app under one config with tracing + distributions armed,
/// returning the stats and the trace text.
fn traced_run(app_name: &str, reach: ReachConfig) -> (RunStats, String) {
    let dir = std::env::temp_dir().join("gtr_analyze_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{app_name}_{}.jsonl", std::process::id()));
    let app = suite::by_name(app_name, Scale::tiny()).expect("known app");
    let sink = JsonlSink::create(&path).expect("create trace file");
    let stats = System::new(GpuConfig::default(), reach)
        .with_trace(Box::new(sink))
        .with_distributions()
        .run(&app);
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let _ = std::fs::remove_file(&path);
    (stats, text)
}

fn fixture(name: &str) -> String {
    let path = format!("{}/experiments/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path}: {e}"))
}

#[test]
fn replay_reproduces_tiny_gups_exactly() {
    let (stats, text) = traced_run("GUPS", ReachConfig::ic_plus_lds());
    let replay = replay_jsonl(&text).expect("trace replays");
    assert_eq!(replay.translations, stats.translation_requests);
    let problems = check_against_stats(&replay, &stats, STATS_SCHEMA_VERSION);
    assert!(problems.is_empty(), "replay diverged: {problems:?}");
}

#[test]
fn replay_reproduces_other_apps_and_configs() {
    // A second cell of the matrix with a different workload shape and
    // a different reach config exercises different event mixes.
    for (app, reach) in [("ATAX", ReachConfig::lds_only()), ("MVT", ReachConfig::ic_only())] {
        let (stats, text) = traced_run(app, reach);
        let replay = replay_jsonl(&text).expect("trace replays");
        let problems = check_against_stats(&replay, &stats, STATS_SCHEMA_VERSION);
        assert!(problems.is_empty(), "{app}: replay diverged: {problems:?}");
    }
}

#[test]
fn mutated_stats_are_flagged_as_divergence() {
    let (mut stats, text) = traced_run("GUPS", ReachConfig::ic_plus_lds());
    let replay = replay_jsonl(&text).expect("trace replays");
    stats.translation_requests += 1;
    stats.attribution.slots[5].cycles += 100;
    let problems = check_against_stats(&replay, &stats, STATS_SCHEMA_VERSION);
    assert!(
        problems.iter().any(|p| p.contains("translation_requests")),
        "mutated request count must be flagged: {problems:?}"
    );
    assert!(
        problems.iter().any(|p| p.contains("attribution[walk].cycles")),
        "mutated attribution must be flagged: {problems:?}"
    );
}

#[test]
fn truncated_real_trace_is_rejected() {
    let (_, text) = traced_run("GUPS", ReachConfig::ic_plus_lds());
    // Drop the tail: the final kernel_end disappears, leaving an open
    // kernel.
    let n = text.lines().count();
    let cut: String = text.lines().take(n - 3).collect::<Vec<_>>().join("\n");
    let err = replay_jsonl(&cut).unwrap_err();
    assert!(err.contains("truncated"), "got: {err}");
    // Cut mid-line: the dangling partial JSON fails with its line
    // number.
    let mid = &text[..text.len() - 7];
    let err2 = replay_jsonl(mid).unwrap_err();
    assert!(err2.contains(&format!("line {n}")), "got: {err2}");
}

#[test]
fn v1_stats_check_reports_clear_error() {
    let (stats, text) = traced_run("GUPS", ReachConfig::ic_plus_lds());
    let replay = replay_jsonl(&text).expect("trace replays");
    let problems = check_against_stats(&replay, &stats, 1);
    assert_eq!(problems.len(), 1);
    assert!(problems[0].contains("schema v1"), "got: {}", problems[0]);
}

#[test]
fn committed_v2_fixture_is_byte_stable_and_replay_consistent() {
    let text = fixture("gups_ic_lds_tiny.json");
    let j = Json::parse(&text).expect("fixture parses");
    // An untenanted document stamps the untenanted version (TENANCY.md
    // §4): committed pre-tenancy fixtures stay byte-identical.
    assert_eq!(
        j.get("schema_version").and_then(Json::as_u64),
        Some(STATS_SCHEMA_VERSION_UNTENANTED)
    );
    let s = run_stats_from_json(&j).expect("fixture matches schema");
    assert!(s.dist_enabled, "committed fixture records distributions");
    assert_eq!(run_stats_to_json_string(&s), text, "fixture must be byte-stable");
    // The simulator is deterministic, so a fresh run reproduces the
    // committed document — and its trace reproduces both.
    let (fresh, trace) = traced_run("GUPS", ReachConfig::ic_plus_lds());
    let replay = replay_jsonl(&trace).expect("trace replays");
    let problems = check_against_stats(&replay, &s, STATS_SCHEMA_VERSION);
    assert!(problems.is_empty(), "fresh trace diverges from committed stats: {problems:?}");
    assert_eq!(fresh.total_cycles, s.total_cycles);
}

#[test]
fn committed_v1_fixture_still_parses() {
    let text = fixture("gups_ic_lds_tiny_v1.json");
    let j = Json::parse(&text).expect("v1 fixture parses");
    assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(1));
    let v1 = run_stats_from_json(&j).expect("v1 fixture matches schema");
    assert!(!v1.dist_enabled, "v1 documents carry no distributions");
    assert!(v1.latency_hists.iter().all(|h| h.is_empty()));
    // Same run, older schema: the scalar counters agree with the v2
    // fixture.
    let v2 = run_stats_from_json(&Json::parse(&fixture("gups_ic_lds_tiny.json")).unwrap())
        .expect("v2 fixture matches schema");
    assert_eq!(v1.total_cycles, v2.total_cycles);
    assert_eq!(v1.translation_requests, v2.translation_requests);
    assert_eq!(v1.page_walks, v2.page_walks);
}

#[test]
fn diff_is_zero_on_self_and_nonzero_on_mutation() {
    let s = run_stats_from_json(&Json::parse(&fixture("gups_ic_lds_tiny.json")).unwrap())
        .expect("fixture matches schema");
    assert!(diff_stats(&s, &s).iter().all(|r| r.rel == 0.0));
    let mut mutated = s.clone();
    mutated.total_cycles += mutated.total_cycles / 10;
    let rows = diff_stats(&s, &mutated);
    let row = rows.iter().find(|r| r.metric == "total_cycles").unwrap();
    assert!(row.rel > 0.09 && row.rel < 0.11, "≈+10%: {}", row.rel);
    // Distribution quantiles appear because both sides recorded them.
    assert!(rows.iter().any(|r| r.metric.starts_with("latency.walk.")));
}

/// Regression: a diff between a document with distributions and one
/// without used to silently compare only the scalar intersection.
/// [`missing_metrics`] must flag the asymmetry so `gtr-analyze --diff`
/// can exit non-zero instead.
#[test]
fn diff_against_scalar_only_document_is_flagged_incomplete() {
    let with_dists = run_stats_from_json(&Json::parse(&fixture("gups_ic_lds_tiny.json")).unwrap())
        .expect("v2 fixture matches schema");
    let scalar_only = run_stats_from_json(&Json::parse(&fixture("gups_ic_lds_tiny_v1.json")).unwrap())
        .expect("v1 fixture matches schema");
    assert!(with_dists.dist_enabled && !scalar_only.dist_enabled);
    // Same run: the headline counters agree (v1 predates cycle
    // attribution, so those rows legitimately differ)...
    let rows = diff_stats(&with_dists, &scalar_only);
    for metric in ["total_cycles", "translation_requests", "page_walks"] {
        let row = rows.iter().find(|r| r.metric == metric).unwrap();
        assert_eq!(row.rel, 0.0, "{metric} should match across schema versions");
    }
    // ...but the documents are not equivalent, and that must be visible.
    let missing = missing_metrics(&with_dists, &scalar_only);
    assert!(
        missing.iter().any(|m| m.contains("distribution") && m.contains("first document")),
        "asymmetric distributions must be reported: {missing:?}"
    );
    assert!(missing_metrics(&with_dists, &with_dists).is_empty());
}
