//! The GPU-shared half of the translation/memory hierarchy.
//!
//! [`SharedHierarchy`] groups every structure that is *not* private to
//! a compute unit: the per-CU-group reconfigurable I-caches, the
//! GPU-shared L2 TLB and its port, the IOMMU (device TLBs, page-walk
//! caches, walkers), the memory system (L2 data cache + DRAM), the
//! page tables, and an optional side translation cache (DUCATI).
//!
//! The split matters for parallelism: a CU shard may freely mutate its
//! own [`Cu`](super::cu::Cu) state, but every touch of this struct is
//! a shared-level request that must reach the hierarchy in the
//! deterministic `(cycle, shard, seq)` merge order (see
//! `gtr_sim::shard` and ARCHITECTURE §8) — the type boundary makes the
//! synchronization surface explicit and borrow-checkable.

use gtr_gpu::config::GpuConfig;
use gtr_mem::system::MemorySystem;
use gtr_sim::resource::Timeline;
use gtr_sim::Cycle;
use gtr_vm::addr::{Ppn, Translation, TranslationKey};
use gtr_vm::iommu::Iommu;
use gtr_vm::page_table::PageTable;
use gtr_vm::tlb::Tlb;
use gtr_vm::walk::PteAccess;

use crate::config::ReachConfig;
use crate::icache_tx::TxIcache;

/// An additional translation repository consulted between the L2 TLB
/// and the IOMMU (DUCATI implements this in `gtr-ducati`).
pub trait TranslationSideCache: std::fmt::Debug {
    /// Looks up `key` starting at `now`; returns `(done, ppn)` on hit.
    fn lookup(
        &mut self,
        now: Cycle,
        key: TranslationKey,
        mem: &mut MemorySystem,
    ) -> Option<(Cycle, Ppn)>;

    /// Stores an L2-TLB victim.
    fn fill(&mut self, now: Cycle, tx: Translation, mem: &mut MemorySystem);

    /// Functional-warming twin of [`Self::lookup`]: resolves `key`
    /// from the side cache's current contents with no timing and no
    /// memory traffic, so fast-forward windows and checkpoint restores
    /// keep the side cache's *resident set* evolving exactly as a
    /// detailed run would. The default body makes the side cache
    /// invisible to functional warming (always a miss) — implementors
    /// that want sampled-mode fidelity override it.
    fn lookup_functional(&mut self, key: TranslationKey) -> Option<Ppn> {
        let _ = key;
        None
    }

    /// Functional-warming twin of [`Self::fill`]: installs an L2-TLB
    /// victim with no memory traffic. Default: drop it.
    fn fill_functional(&mut self, tx: Translation) {
        let _ = tx;
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Adapter letting the IOMMU's page walker issue PTE reads through the
/// shared memory system.
pub(super) struct PteMem<'a>(pub(super) &'a mut MemorySystem);

impl PteAccess for PteMem<'_> {
    fn access(&mut self, now: Cycle, addr: gtr_vm::addr::PhysAddr) -> Cycle {
        self.0.read(now, addr.raw())
    }
}

/// Everything shared across compute units: the structures below the
/// per-CU boundary of the Fig-12 path, plus the page tables and DRAM.
#[derive(Debug)]
pub(super) struct SharedHierarchy {
    /// One page table per 3-bit address space (§7.2 multi-application
    /// scenarios and the `gtr_vm::tenancy` model's up-to-8 concurrent
    /// tenants); single-app traces only touch space 0.
    pub(super) page_tables: Vec<PageTable>,
    pub(super) iommu: Iommu,
    pub(super) l2_tlb: Tlb,
    pub(super) l2_port: Timeline,
    pub(super) mem: MemorySystem,
    pub(super) icaches: Vec<TxIcache>,
    /// One fill engine per I-cache group: instruction misses serialize
    /// here (a fetch unit has a single outstanding-miss register), so a
    /// policy that lets translations evict hot code pays with front-end
    /// bandwidth — the effect behind Fig 13a's naive-replacement bar.
    pub(super) fetch_fill: Vec<Timeline>,
    pub(super) side_cache: Option<Box<dyn TranslationSideCache>>,
}

impl SharedHierarchy {
    /// Builds the cold shared hierarchy for a machine configuration.
    /// With `reach.tenancy` set, the L2 TLB and the reconfigurable
    /// I-caches are born under that sharing policy, mirroring the
    /// per-CU structures in [`Cu::new`](super::cu::Cu::new)
    /// (TENANCY.md §3).
    pub(super) fn new(gpu: &GpuConfig, reach: &ReachConfig) -> Self {
        let mut l2_tlb = Tlb::new(gpu.l2_tlb);
        let mut icaches: Vec<TxIcache> = (0..gpu.icache_count())
            .map(|_| {
                TxIcache::new(
                    gpu.icache_bytes,
                    gpu.icache_assoc,
                    reach.tx_per_line,
                    reach.replacement,
                )
            })
            .collect();
        if let Some(tenancy) = reach.tenancy {
            l2_tlb.set_tenancy(Some(tenancy));
            for ic in &mut icaches {
                ic.set_tenancy(tenancy);
            }
        }
        if let Some(max) = reach.tlb_coalescing {
            l2_tlb.set_coalescing(Some(max));
            for ic in &mut icaches {
                ic.set_coalescing(Some(max));
            }
        }
        Self {
            page_tables: (0..8)
                .map(|i| {
                    PageTable::with_ids(
                        gpu.page_size,
                        gtr_vm::addr::VmId::new(i),
                        gtr_vm::addr::VrfId::default(),
                    )
                    .with_layout(gpu.page_layout)
                })
                .collect(),
            iommu: Iommu::new(gpu.iommu),
            l2_tlb,
            l2_port: Timeline::new(),
            mem: MemorySystem::new(gpu.memory),
            icaches,
            fetch_fill: (0..gpu.icache_count()).map(|_| Timeline::new()).collect(),
            side_cache: None,
        }
    }

    /// Zeroes the shared structures' measurement counters while leaving
    /// their functional contents warm.
    pub(super) fn reset_stats(&mut self) {
        for ic in &mut self.icaches {
            ic.reset_stats();
        }
        self.l2_tlb.reset_stats();
        self.iommu.reset_stats();
    }

    /// Translation entries currently resident in the reconfigurable
    /// I-caches (the shared half of the peak-occupancy census).
    pub(super) fn resident_tx_icache(&self) -> usize {
        self.icaches.iter().map(TxIcache::resident_tx).sum()
    }
}
