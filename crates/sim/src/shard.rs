//! Deterministic shard buffers and epoch-barrier merging.
//!
//! When simulation work is partitioned across a thread pool — CU
//! shards inside a run, or app×variant cells across a matrix — each
//! worker produces results in its own order, and that order depends
//! on scheduling. Reproducibility therefore cannot come from arrival
//! order; it must come from a *merge key* that is a pure function of
//! the work itself. This module provides that discipline:
//!
//! * each shard appends into its **own** ordered buffer (no
//!   cross-shard interleaving to observe),
//! * a barrier drains all buffers through a single deterministic
//!   merge, ordered by `(cycle, shard id, per-shard sequence)`.
//!
//! Because the key never mentions *when* a shard ran or finished, the
//! merged order is invariant under any permutation or interleaving of
//! shard execution — the property the parallel determinism battery
//! asserts, and the same discipline the bench harness' work-stealing
//! cell scheduler enforces via result indices.
//!
//! # Example
//!
//! ```
//! use gtr_sim::shard::ShardQueue;
//!
//! let mut q = ShardQueue::new(2);
//! q.push(1, 40, "late shard first");
//! q.push(0, 40, "same cycle, lower shard wins");
//! q.push(0, 10, "earliest cycle first");
//! let drained: Vec<&str> = q.drain_ordered().map(|e| e.payload).collect();
//! assert_eq!(drained, vec![
//!     "earliest cycle first",
//!     "same cycle, lower shard wins",
//!     "late shard first",
//! ]);
//! ```

use crate::Cycle;

/// One buffered shared-level request: the merge key plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry<T> {
    /// Simulated cycle at which the request was issued.
    pub cycle: Cycle,
    /// Shard (e.g. CU or worker) that issued it.
    pub shard: u32,
    /// Issue sequence within the shard (FIFO tie-break).
    pub seq: u64,
    /// The request itself.
    pub payload: T,
}

impl<T> ShardEntry<T> {
    /// The deterministic merge key: issue cycle, then shard id, then
    /// the shard-local sequence number.
    #[inline]
    pub fn key(&self) -> (Cycle, u32, u64) {
        (self.cycle, self.shard, self.seq)
    }
}

/// Per-shard ordered buffers with a deterministic epoch-barrier merge.
///
/// Shards push concurrently-produced work into disjoint buffers; at an
/// epoch barrier the owner drains every buffer through one total order
/// given by [`ShardEntry::key`]. The drain is stable and independent
/// of both push interleaving across shards and the order the shard
/// buffers are presented in.
#[derive(Debug, Clone)]
pub struct ShardQueue<T> {
    shards: Vec<Vec<ShardEntry<T>>>,
    seqs: Vec<u64>,
}

impl<T> ShardQueue<T> {
    /// A queue with `shards` empty per-shard buffers.
    pub fn new(shards: usize) -> Self {
        Self { shards: (0..shards).map(|_| Vec::new()).collect(), seqs: vec![0; shards] }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total buffered entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Whether no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// Appends `payload` to `shard`'s buffer, stamped with the issue
    /// `cycle` and the shard's next sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn push(&mut self, shard: u32, cycle: Cycle, payload: T) {
        let s = shard as usize;
        let seq = self.seqs[s];
        self.seqs[s] += 1;
        self.shards[s].push(ShardEntry { cycle, shard, seq, payload });
    }

    /// Mutable access to one shard's buffer, for handing out to a
    /// worker that owns the shard for an epoch. The buffer already
    /// carries its stamps, so the owner can only append via
    /// [`ShardQueue::push`] after the epoch.
    pub fn shard(&self, shard: u32) -> &[ShardEntry<T>] {
        &self.shards[shard as usize]
    }

    /// Drains every shard and yields all entries in the deterministic
    /// merge order `(cycle, shard, seq)`.
    ///
    /// Within one shard the buffer is already sorted by `(cycle, seq)`
    /// when pushes happen in nondecreasing cycle order (the common
    /// case: a shard simulates its epoch forward in time), so this is
    /// a k-way merge; out-of-order pushes are handled by a sort that
    /// is total on the key, keeping the result independent of push
    /// order.
    pub fn drain_ordered(&mut self) -> impl Iterator<Item = ShardEntry<T>> {
        let mut all: Vec<ShardEntry<T>> =
            self.shards.iter_mut().flat_map(std::mem::take).collect();
        all.sort_by_key(ShardEntry::key);
        all.into_iter()
    }
}

/// Merges externally-produced shard buffers into the deterministic
/// total order — the barrier half of [`ShardQueue`], usable when each
/// worker returns its buffer by value (the bench pool's shape).
///
/// The result is invariant under any permutation of `buffers`: the
/// order comes entirely from each entry's key, never from buffer
/// position. Callers stamp entries with the true shard id before
/// handing buffers over.
pub fn merge_ordered<T>(buffers: Vec<Vec<ShardEntry<T>>>) -> Vec<ShardEntry<T>> {
    let mut all: Vec<ShardEntry<T>> = buffers.into_iter().flatten().collect();
    all.sort_by_key(ShardEntry::key);
    all
}

/// An epoch barrier: tracks the boundary cycle shards may simulate up
/// to before their shared-level requests must be merged.
///
/// The discipline: per epoch `[start, end)`, every shard simulates its
/// private state freely, buffering any request that touches shared
/// state; at the barrier the merged drain replays those requests
/// against the shared hierarchy in `(cycle, shard, seq)` order. Any
/// epoch length gives the same merged sequence — shorter epochs only
/// shrink how much private progress happens between merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochBarrier {
    epoch_len: Cycle,
    end: Cycle,
    epochs: u64,
}

impl EpochBarrier {
    /// A barrier with epochs of `epoch_len` cycles, the first ending
    /// at `epoch_len`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len == 0`.
    pub fn new(epoch_len: Cycle) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        Self { epoch_len, end: epoch_len, epochs: 0 }
    }

    /// Exclusive end of the current epoch: shards may simulate events
    /// strictly before this cycle without synchronizing.
    pub fn boundary(&self) -> Cycle {
        self.end
    }

    /// Whether an event at `cycle` crosses the current epoch and so
    /// requires a merge first.
    #[inline]
    pub fn crosses(&self, cycle: Cycle) -> bool {
        cycle >= self.end
    }

    /// Advances past the barrier until `cycle` fits inside the current
    /// epoch; returns how many epochs were closed.
    pub fn advance_to(&mut self, cycle: Cycle) -> u64 {
        let mut closed = 0;
        while self.crosses(cycle) {
            // Jump straight to the epoch containing `cycle` — closing
            // k empty epochs one by one merges nothing k times.
            let skipped = (cycle - self.end) / self.epoch_len + 1;
            self.end += skipped * self.epoch_len;
            closed += skipped;
        }
        self.epochs += closed;
        closed
    }

    /// Total epochs closed so far.
    pub fn epochs_closed(&self) -> u64 {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn drain_orders_by_cycle_then_shard_then_seq() {
        let mut q: ShardQueue<u32> = ShardQueue::new(3);
        q.push(2, 100, 0);
        q.push(0, 100, 1);
        q.push(1, 50, 2);
        q.push(0, 100, 3);
        let keys: Vec<(Cycle, u32, u64)> = q.drain_ordered().map(|e| e.key()).collect();
        assert_eq!(keys, vec![(50, 1, 0), (100, 0, 0), (100, 0, 1), (100, 2, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn seq_restarts_do_not_collide_across_shards() {
        let mut q: ShardQueue<&str> = ShardQueue::new(2);
        q.push(0, 7, "a");
        q.push(1, 7, "b");
        // Same cycle, same per-shard seq (0): shard id breaks the tie.
        let order: Vec<&str> = q.drain_ordered().map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b"]);
    }

    /// The determinism property the battery relies on: the merged
    /// order never depends on the interleaving in which shards pushed,
    /// nor on the order shard buffers are presented to the merge.
    #[test]
    fn merge_is_invariant_under_shard_permutation() {
        let mut rng = SplitMix64::new(0x5AAD);
        for trial in 0..50 {
            // Build per-shard buffers with random cycles (nondecreasing
            // within a shard, like a forward-simulating worker).
            let shards = 1 + (trial % 7) as usize;
            let mut buffers: Vec<Vec<ShardEntry<u64>>> = Vec::new();
            for s in 0..shards {
                let mut cycle = 0;
                let mut buf = Vec::new();
                for seq in 0..rng.next_below(20) {
                    cycle += rng.next_below(5);
                    buf.push(ShardEntry { cycle, shard: s as u32, seq, payload: rng.next_u64() });
                }
                buffers.push(buf);
            }
            let reference = merge_ordered(buffers.clone());
            // Fisher-Yates over the buffer vector: any presentation
            // order must reproduce the reference merge exactly.
            let mut shuffled = buffers.clone();
            for i in (1..shuffled.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                shuffled.swap(i, j);
            }
            assert_eq!(merge_ordered(shuffled), reference, "trial {trial}");
            // Reversal, the adversarial permutation for stable sorts.
            let mut reversed = buffers;
            reversed.reverse();
            assert_eq!(merge_ordered(reversed), reference, "trial {trial} reversed");
        }
    }

    #[test]
    fn interleaved_pushes_match_sequential_pushes() {
        // Two push schedules of the same logical work: shard-major and
        // round-robin. The drains must be identical.
        let mut a: ShardQueue<u64> = ShardQueue::new(2);
        for s in 0..2u32 {
            for i in 0..5u64 {
                a.push(s, i * 10, s as u64 * 100 + i);
            }
        }
        let mut b: ShardQueue<u64> = ShardQueue::new(2);
        for i in 0..5u64 {
            for s in 0..2u32 {
                b.push(s, i * 10, s as u64 * 100 + i);
            }
        }
        let da: Vec<_> = a.drain_ordered().collect();
        let db: Vec<_> = b.drain_ordered().collect();
        assert_eq!(da, db);
    }

    #[test]
    fn epoch_barrier_advances_and_counts() {
        let mut b = EpochBarrier::new(100);
        assert_eq!(b.boundary(), 100);
        assert!(!b.crosses(99));
        assert!(b.crosses(100));
        assert_eq!(b.advance_to(99), 0);
        assert_eq!(b.advance_to(100), 1);
        assert_eq!(b.boundary(), 200);
        // A long jump closes all the empty epochs in between at once.
        assert_eq!(b.advance_to(1_050), 9);
        assert_eq!(b.boundary(), 1_100);
        assert_eq!(b.epochs_closed(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epoch_rejected() {
        let _ = EpochBarrier::new(0);
    }
}
