//! Reconfigurable instruction cache (§4.3).
//!
//! A 16 KB, 8-way I-cache shared by a group of CUs. Every line carries
//! a mode bit: **IC-mode** lines hold instructions, **Tx-mode** lines
//! hold 1 or 8 translations (Fig 8). Translations are indexed
//! *direct-mapped* over the whole line array (Fig 9) so the existing
//! per-way comparators are reused; the price is a serialized way scan
//! (+16 cycles) and base-delta decompression (+4 cycles), charged by
//! the timing layer from [`crate::config::ReachConfig`].
//!
//! Replacement follows §4.3.2: instruction fills prefer invalid lines,
//! then the LRU *Tx-mode* line, then the LRU instruction line; a
//! translation fill may claim only an invalid line or its own
//! direct-mapped Tx line (instruction-aware), unless the naive policy
//! of Fig 13a's second bar is selected, which lets translations evict
//! instructions. §4.3.3's kernel-boundary flush invalidates instruction
//! lines so the next kernel starts with reclaimable capacity.
//!
//! # Multi-tenancy
//!
//! With a [`TenancyConfig`] installed ([`TxIcache::set_tenancy`]) the
//! *translation* side honors the three sharing policies of
//! `gtr_vm::tenancy` (TENANCY.md §3): *partitioned* stripes the
//! direct-mapped Tx line space across tenants, *shared* keeps the
//! untenanted full-key tag check, and *sub-entry* (arXiv 2404.18361
//! §4) tags lanes with a canonical VM-ID-zeroed key plus a per-tenant
//! valid mask. The *instruction* side is never partitioned —
//! concurrent kernels already share fetch capacity set-associatively
//! and instruction lines carry no address-space state to isolate.

use gtr_sim::resource::TrackedPort;
use gtr_sim::stats::HitMiss;
use gtr_vm::addr::{Ppn, Translation, TranslationKey, VmId, Vpn};
use gtr_vm::tenancy::{self, TenancyConfig, MAX_TENANTS};
use gtr_vm::tlb::CoalescingCounters;

use crate::compress::{match_mask, TagGroup};
use crate::config::{Replacement, TxPerLine};

/// Delta lanes per Tx line: the Fig 10c layout packs eight 8-bit
/// deltas beside the 32-bit base, so the whole-line compare is one
/// 8-wide decode-and-match pass.
const TX_LANES: usize = 8;

/// The translation payload of one Tx-mode line, struct-of-arrays:
/// [`match_mask`] compares the decoded VPN lane vector in a single
/// branchless pass (the eight parallel comparators of Fig 10c) and the
/// remaining lanes are touched only for the matching way. Boxed so
/// IC-mode lines stay two words and the fetch way-scan stays dense.
#[derive(Debug, Clone)]
struct TxSlab {
    tags: TagGroup,
    /// Decoded full VPNs — full, not delta-only, for the same
    /// cross-instance shootdown-probe reason as the LDS (see
    /// [`match_mask`]).
    vpns: [u64; TX_LANES],
    keys: [TranslationKey; TX_LANES],
    ppns: [Ppn; TX_LANES],
    last_use: [u64; TX_LANES],
    /// Per-tenant valid masks per lane, meaningful only under
    /// sub-entry sharing (arXiv 2404.18361 §4): bit *t* set means
    /// tenant *t* shares the lane's canonical-key translation.
    tmasks: [u8; TX_LANES],
    /// Coalesced reach per lane: the lane covers `2^span` contiguous
    /// pages from its (span-aligned) base VPN. Always 0 with
    /// coalescing off.
    spans: [u8; TX_LANES],
    /// Occupancy bitmask over the first `tx_per_line.slots()` lanes.
    valid: u32,
}

impl TxSlab {
    /// A fresh slab holding only `(key, ppn)` in lane 0.
    fn first(tag: u64, key: TranslationKey, ppn: Ppn, tick: u64, tmask: u8, span: u8) -> Box<Self> {
        let mut tags = TagGroup::icache();
        assert!(tags.try_admit(tag), "empty group admits");
        let mut slab = Box::new(Self {
            tags,
            vpns: [0; TX_LANES],
            keys: [TranslationKey::for_vpn(Vpn(0)); TX_LANES],
            ppns: [Ppn(0); TX_LANES],
            last_use: [0; TX_LANES],
            tmasks: [0; TX_LANES],
            spans: [0; TX_LANES],
            valid: 0,
        });
        slab.set(0, key, ppn, tick, tmask, span);
        slab
    }

    /// Lane holding `key`, in slot order (the order the old early-exit
    /// scan returned), or `None`.
    fn find(&self, slots: usize, key: TranslationKey) -> Option<usize> {
        let mut m = match_mask(&self.vpns[..slots], self.valid, key.vpn.0);
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if self.keys[i] == key {
                return Some(i);
            }
            m &= m - 1;
        }
        None
    }

    fn set(&mut self, i: usize, key: TranslationKey, ppn: Ppn, tick: u64, tmask: u8, span: u8) {
        self.vpns[i] = key.vpn.0;
        self.keys[i] = key;
        self.ppns[i] = ppn;
        self.last_use[i] = tick;
        self.tmasks[i] = tmask;
        self.spans[i] = span;
        self.valid |= 1 << i;
    }

    fn resident(&self) -> usize {
        self.valid.count_ones() as usize
    }

    /// The translation forwarded when lane `i` is displaced: the full
    /// key, or under sub-entry sharing the canonical key retagged with
    /// its lowest-numbered sharer ([`tenancy::representative`]). A
    /// coalesced lane forwards its whole span.
    fn victim(&self, i: usize, sub: bool) -> Translation {
        let key =
            if sub { tenancy::representative(self.keys[i], self.tmasks[i]) } else { self.keys[i] };
        Translation::with_span(key, self.ppns[i], self.spans[i])
    }
}

/// Iterates the set-bit positions of an occupancy mask in ascending
/// (slot) order.
fn ones(mask: u32) -> impl Iterator<Item = usize> {
    (0..u32::BITS as usize).filter(move |i| mask & (1 << i) != 0)
}

#[derive(Debug, Clone)]
enum LineState {
    Invalid,
    Inst { tag: u64 },
    Tx(Box<TxSlab>),
}

#[derive(Debug, Clone)]
struct Line {
    state: LineState,
    last_use: u64,
}

/// Outcome of a translation insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcInsert {
    /// Stored; `evicted` must be forwarded to the L2 TLB
    /// (Fig 12 flow ❶→❷→❸→❺→❻).
    Inserted {
        /// Victim displaced by this insert, if any.
        evicted: Option<Translation>,
    },
    /// The direct-mapped line holds instructions (instruction-aware
    /// policy): the candidate is forwarded to the L2 TLB.
    Bypassed,
}

/// Statistics of one reconfigurable I-cache instance.
#[derive(Debug, Clone, Default)]
pub struct TxIcacheStats {
    /// Instruction fetch hits/misses.
    pub inst: HitMiss,
    /// Translation lookup hits/misses.
    pub tx_lookups: HitMiss,
    /// Successful translation inserts.
    pub tx_inserts: u64,
    /// Translation inserts bypassed (IC-mode direct-mapped line).
    pub tx_bypassed: u64,
    /// Translations evicted by newer translations.
    pub tx_evictions: u64,
    /// Translations evicted by instruction fills.
    pub tx_evicted_by_inst: u64,
    /// Instruction lines evicted by translations (naive policy only).
    pub inst_evicted_by_tx: u64,
    /// Prefetch fills (next-line prefetcher; counted by Eq 1).
    pub prefetches: u64,
    /// Instruction lines invalidated by kernel-boundary flushes.
    pub flushed_lines: u64,
    /// Base-delta compression conflicts.
    pub compression_conflicts: u64,
    /// Translations dropped during conflict re-basing.
    pub conflict_drops: u64,
    /// Shootdowns that found an entry.
    pub shootdowns: u64,
    /// Coalesced-entry counters (all zero with coalescing off). Here
    /// `splits` counts covering lanes conservatively *dropped* whole by
    /// a single-page shootdown (victim caches hold clean copies, so no
    /// buddy bookkeeping is needed).
    pub coalescing: CoalescingCounters,
}

/// One reconfigurable I-cache instance (shared by a group of CUs).
///
/// # Example
///
/// ```
/// use gtr_core::icache_tx::{IcInsert, TxIcache};
/// use gtr_core::config::{Replacement, TxPerLine};
/// use gtr_vm::addr::{Ppn, Translation, TranslationKey, Vpn};
///
/// let mut ic = TxIcache::new(16 * 1024, 8, TxPerLine::Eight, Replacement::InstructionAware);
/// let tx = Translation::new(TranslationKey::for_vpn(Vpn(3)), Ppn(30));
/// assert!(matches!(ic.insert_tx(tx), IcInsert::Inserted { evicted: None }));
/// assert_eq!(ic.lookup_tx(tx.key), Some(tx));
/// ```
#[derive(Debug, Clone)]
pub struct TxIcache {
    lines: Vec<Line>, // index = set * assoc + way
    sets: usize,
    assoc: usize,
    tx_per_line: TxPerLine,
    replacement: Replacement,
    /// Capacity-sharing policy between concurrent tenants; `None`
    /// (the default) is bit-identical to the untenanted structure.
    tenancy: Option<TenancyConfig>,
    /// Coalesced (variable-reach) lanes: `Some(max)` lets one lane map
    /// up to `2^max` contiguous pages; `None` is the classic
    /// one-page-per-lane default.
    coalescing: Option<u8>,
    tick: u64,
    fills_this_kernel: u64,
    port: TrackedPort,
    stats: TxIcacheStats,
}

impl TxIcache {
    /// Creates an empty reconfigurable I-cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn new(bytes: u32, assoc: usize, tx_per_line: TxPerLine, replacement: Replacement) -> Self {
        let line_count = (bytes / 64) as usize;
        assert!(assoc > 0 && line_count.is_multiple_of(assoc), "lines must divide into ways");
        assert!(tx_per_line.slots() <= TX_LANES, "tx packing exceeds SoA lanes");
        Self {
            lines: (0..line_count)
                .map(|_| Line { state: LineState::Invalid, last_use: 0 })
                .collect(),
            sets: line_count / assoc,
            assoc,
            tx_per_line,
            replacement,
            tenancy: None,
            coalescing: None,
            tick: 0,
            fills_this_kernel: 0,
            port: TrackedPort::new(),
            stats: TxIcacheStats::default(),
        }
    }

    /// Installs a tenancy policy (TENANCY.md §3). Must be called while
    /// the structure holds no translations, so every resident entry
    /// was inserted under one consistent tagging scheme.
    ///
    /// # Panics
    ///
    /// Panics if any translation is already resident.
    pub fn set_tenancy(&mut self, tenancy: TenancyConfig) {
        assert!(self.resident_tx() == 0, "tenancy policy must be set before first insert");
        self.tenancy = Some(tenancy);
    }

    /// Enables coalesced (variable-reach) lanes: one lane may hold a
    /// run of up to `2^max_span_log2` contiguous pages (arXiv
    /// 2110.08613), mirroring [`gtr_vm::tlb::Tlb::set_coalescing`].
    /// Must be called while no translations are resident.
    ///
    /// # Panics
    ///
    /// Panics if any translation is already resident.
    pub fn set_coalescing(&mut self, max_span_log2: Option<u8>) {
        assert!(self.resident_tx() == 0, "coalescing must be set before first insert");
        self.coalescing = max_span_log2;
    }

    fn sub_entry(&self) -> bool {
        self.tenancy.is_some_and(|t| t.sub_entry())
    }

    /// The key stored in the tag lanes: canonical (VM-ID-zeroed) under
    /// sub-entry sharing, the full key otherwise.
    fn store_key(&self, key: TranslationKey) -> TranslationKey {
        if self.sub_entry() { tenancy::canonical(key) } else { key }
    }

    /// Total lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Number of sets (instruction indexing).
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Translation slots per Tx line.
    pub fn tx_slots(&self) -> usize {
        self.tx_per_line.slots()
    }

    /// The shared fetch/translation port (Fig 5b idle-gap tracking).
    pub fn port_mut(&mut self) -> &mut TrackedPort {
        &mut self.port
    }

    /// Immutable view of the port.
    pub fn port(&self) -> &TrackedPort {
        &self.port
    }

    // ----- instruction side ------------------------------------------------

    /// Fetches the instruction line with global index `line_addr`;
    /// returns `true` on hit. A miss fills the line according to the
    /// replacement rules.
    pub fn fetch(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = (line_addr as usize) % self.sets;
        let tag = line_addr / self.sets as u64;
        let base = set * self.assoc;
        // Probe ways.
        for way in 0..self.assoc {
            let line = &mut self.lines[base + way];
            if let LineState::Inst { tag: t } = line.state {
                if t == tag {
                    line.last_use = tick;
                    self.stats.inst.hit();
                    return true;
                }
            }
        }
        self.stats.inst.miss();
        self.fills_this_kernel += 1;
        // Victim choice: invalid > LRU Tx > LRU Inst (§4.3.2 rule 1).
        let victim_way = self.choose_inst_victim(base);
        let line = &mut self.lines[base + victim_way];
        if let LineState::Tx(slab) = &line.state {
            self.stats.tx_evicted_by_inst += slab.resident() as u64;
        }
        line.state = LineState::Inst { tag };
        line.last_use = tick;
        false
    }

    fn choose_inst_victim(&self, base: usize) -> usize {
        let ways = &self.lines[base..base + self.assoc];
        if let Some(i) = ways.iter().position(|l| matches!(l.state, LineState::Invalid)) {
            return i;
        }
        let lru_of = |pred: &dyn Fn(&LineState) -> bool| {
            ways.iter()
                .enumerate()
                .filter(|(_, l)| pred(&l.state))
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
        };
        if let Some(i) = lru_of(&|s| matches!(s, LineState::Tx(_))) {
            return i;
        }
        lru_of(&|s| matches!(s, LineState::Inst { .. })).expect("set is full of inst lines")
    }

    /// Prefetches an instruction line (next-line prefetcher): fills it
    /// if absent without touching the hit/miss counters. Fills count
    /// toward Eq 1's utilization exactly as the paper's
    /// `IC_prefetches` term does. Returns whether a fill occurred.
    pub fn prefetch(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = (line_addr as usize) % self.sets;
        let tag = line_addr / self.sets as u64;
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if let LineState::Inst { tag: t } = self.lines[base + way].state {
                if t == tag {
                    return false; // already resident
                }
            }
        }
        self.stats.prefetches += 1;
        self.fills_this_kernel += 1;
        let victim_way = self.choose_inst_victim(base);
        let line = &mut self.lines[base + victim_way];
        if let LineState::Tx(slab) = &line.state {
            self.stats.tx_evicted_by_inst += slab.resident() as u64;
        }
        line.state = LineState::Inst { tag };
        line.last_use = tick;
        true
    }

    /// Invalidates all instruction lines (§4.3.3 kernel-boundary
    /// flush); Tx lines are untouched. Returns the number of
    /// instruction lines invalidated.
    pub fn flush_instructions(&mut self) -> u64 {
        let mut flushed = 0;
        for line in &mut self.lines {
            if matches!(line.state, LineState::Inst { .. }) {
                line.state = LineState::Invalid;
                flushed += 1;
            }
        }
        self.stats.flushed_lines += flushed;
        flushed
    }

    // ----- translation side -------------------------------------------------

    /// Direct-mapped line index for a translation (Fig 9).
    fn tx_line_index(&self, key: TranslationKey) -> usize {
        let vpn = key.vpn.0 as usize;
        match self.tenancy {
            // Partitioned: tenant `t` owns the Tx line stripe ≡ `t`
            // (mod tenants); remainder lines when the count does not
            // divide are nobody's quota. `is_tx_line` shares this
            // remap, so the mode-bit gate and the lookup agree.
            Some(t) if t.partitioned() => {
                let tenants = t.tenants as usize;
                let per = (self.lines.len() / tenants).max(1);
                ((vpn % per) * tenants + key.vmid.raw() as usize) % self.lines.len()
            }
            _ => vpn % self.lines.len(),
        }
    }

    fn tx_tag(&self, key: TranslationKey) -> u64 {
        key.vpn.0 / self.lines.len() as u64
    }

    /// Whether the direct-mapped line for `key` currently operates in
    /// Tx-mode (the 1-cycle mode-bit check that gates the full Tx
    /// lookup).
    pub fn is_tx_line(&self, key: TranslationKey) -> bool {
        matches!(self.lines[self.tx_line_index(key)].state, LineState::Tx(_))
    }

    /// Whether a translation lookup for `key` could possibly hit: the
    /// key's own direct-mapped line is Tx-mode, or — under coalescing —
    /// any span-base line is (a wide entry lives in its *base* VPN's
    /// line, which can differ from the probed page's). This is the
    /// routing gate the system charges the Tx-lookup latency against;
    /// with coalescing off it is exactly [`Self::is_tx_line`].
    pub fn may_hold_tx(&self, key: TranslationKey) -> bool {
        if self.is_tx_line(key) {
            return true;
        }
        let Some(max) = self.coalescing else { return false };
        let mut prev = key.vpn.0;
        for k in 1..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1);
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            if self.is_tx_line(TranslationKey { vpn: Vpn(bvpn), ..key }) {
                return true;
            }
        }
        false
    }

    /// Looks up a translation. A hit refreshes LRU and returns a copy
    /// for promotion to the requesting CU's L1 TLB; the entry stays
    /// resident so the other CUs sharing this I-cache can still hit it
    /// (removal would make one CU's promotion steal entries its three
    /// neighbours are about to need).
    ///
    /// Under coalescing a miss on the exact key falls back to probing
    /// the masked base of every span level and hits iff a resident
    /// lane's span covers `key`; the hit returns the base-normalized
    /// run entry (callers derive the page's frame via
    /// [`Translation::ppn_for`]).
    pub fn lookup_tx(&mut self, key: TranslationKey) -> Option<Translation> {
        self.tick += 1;
        let tick = self.tick;
        let slots = self.tx_per_line.slots();
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(key.vmid);
        let max = self.coalescing.unwrap_or(0);
        let mut prev = u64::MAX;
        for k in 0..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1); // k=0: the exact key
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
            let idx = self.tx_line_index(bkey);
            let skey = self.store_key(bkey);
            let line = &mut self.lines[idx];
            let LineState::Tx(slab) = &mut line.state else { continue };
            // A sub-entry hit needs the requester's valid-mask bit on
            // top of the canonical tag match; without it the lookup
            // misses and does not refresh LRU. A covering match must
            // additionally reach the probed page.
            if let Some(i) = slab.find(slots, skey) {
                if (sub && slab.tmasks[i] & bit == 0)
                    || key.vpn.0 - bvpn >= (1u64 << slab.spans[i])
                {
                    continue;
                }
                slab.last_use[i] = tick;
                line.last_use = tick;
                let hit_key = if sub { bkey } else { slab.keys[i] };
                let hit = Translation::with_span(hit_key, slab.ppns[i], slab.spans[i]);
                self.stats.tx_lookups.hit();
                if k > 0 {
                    self.stats.coalescing.hits += 1;
                }
                return Some(hit);
            }
        }
        self.stats.tx_lookups.miss();
        None
    }

    /// Inserts a translation candidate (an L1-TLB or LDS victim). A
    /// coalesced victim occupies one lane covering its whole span.
    pub fn insert_tx(&mut self, tx: Translation) -> IcInsert {
        let r = self.insert_tx_inner(tx);
        if self.coalescing.is_some() && !matches!(r, IcInsert::Bypassed) {
            self.stats.coalescing.inserts += 1;
            self.stats.coalescing.span_pages += 1u64 << tx.span_log2;
            if tx.span_log2 > 0 {
                self.stats.coalescing.coalesced += 1;
            }
        }
        r
    }

    fn insert_tx_inner(&mut self, tx: Translation) -> IcInsert {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.tx_line_index(tx.key);
        let tag = self.tx_tag(tx.key);
        let slots_per_line = self.tx_per_line.slots();
        let naive = self.replacement == Replacement::NaiveLru;
        let skey = self.store_key(tx.key);
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(tx.key.vmid);
        let line = &mut self.lines[idx];
        match &mut line.state {
            LineState::Inst { .. } => {
                if naive {
                    // Fig 13a bar 2: translations may evict instructions.
                    self.stats.inst_evicted_by_tx += 1;
                    line.state =
                        LineState::Tx(TxSlab::first(tag, skey, tx.ppn, tick, bit, tx.span_log2));
                    line.last_use = tick;
                    self.stats.tx_inserts += 1;
                    IcInsert::Inserted { evicted: None }
                } else {
                    self.stats.tx_bypassed += 1;
                    IcInsert::Bypassed
                }
            }
            LineState::Invalid => {
                line.state =
                    LineState::Tx(TxSlab::first(tag, skey, tx.ppn, tick, bit, tx.span_log2));
                line.last_use = tick;
                self.stats.tx_inserts += 1;
                IcInsert::Inserted { evicted: None }
            }
            LineState::Tx(slab) => {
                line.last_use = tick;
                // Refresh on re-insert; under sub-entry sharing a
                // PPN-matching insert merges the tenant into the lane's
                // valid mask, a PPN conflict rebases the lane to the
                // inserting tenant alone (arXiv 2404.18361 §4).
                if let Some(i) = slab.find(slots_per_line, skey) {
                    if sub && slab.ppns[i] == tx.ppn {
                        slab.tmasks[i] |= bit;
                    } else {
                        if sub {
                            slab.tmasks[i] = bit;
                        }
                        slab.ppns[i] = tx.ppn;
                    }
                    // The refresh's span wins (the newest walk knows
                    // best whether the run widened or narrowed).
                    slab.spans[i] = tx.span_log2;
                    slab.last_use[i] = tick;
                    self.stats.tx_inserts += 1;
                    return IcInsert::Inserted { evicted: None };
                }
                let mut evicted = None;
                if !slab.tags.fits(tag) {
                    self.stats.compression_conflicts += 1;
                    let mru = ones(slab.valid)
                        .max_by_key(|&i| slab.last_use[i])
                        .map(|i| slab.victim(i, sub));
                    let dropped = slab.resident();
                    slab.valid = 0;
                    slab.tags.clear();
                    self.stats.tx_evictions += dropped as u64;
                    self.stats.conflict_drops += dropped.saturating_sub(1) as u64;
                    evicted = mru;
                } else if slab.resident() == slots_per_line {
                    let i = ones(slab.valid)
                        .min_by_key(|&i| slab.last_use[i])
                        .expect("full line non-empty");
                    evicted = Some(slab.victim(i, sub));
                    slab.valid &= !(1 << i);
                    slab.tags.retire();
                    self.stats.tx_evictions += 1;
                }
                assert!(slab.tags.try_admit(tag), "tag checked to fit");
                let free = (!slab.valid).trailing_zeros() as usize;
                debug_assert!(free < slots_per_line, "slot available");
                slab.set(free, skey, tx.ppn, tick, bit, tx.span_log2);
                self.stats.tx_inserts += 1;
                IcInsert::Inserted { evicted }
            }
        }
    }

    /// Shootdown: invalidates `key` if present.
    ///
    /// Under sub-entry sharing only the shooting tenant's valid-mask
    /// bit is cleared; the lane survives for its co-sharers and is
    /// freed only when the mask empties (arXiv 2404.18361 §4.3).
    ///
    /// Under coalescing every lane whose span covers `key` is dropped
    /// *whole* — unlike the TLB's buddy split, a victim cache holds
    /// clean copies, so conservatively losing the run's other pages is
    /// always safe (they refill on the next walk).
    pub fn shootdown(&mut self, key: TranslationKey) -> bool {
        let Some(max) = self.coalescing else { return self.shootdown_exact(key) };
        let slots = self.tx_per_line.slots();
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(key.vmid);
        let mut any = false;
        let mut prev = u64::MAX;
        for k in 0..=max {
            let bvpn = key.vpn.0 & !((1u64 << k) - 1); // k=0: the exact key
            if bvpn == prev {
                continue;
            }
            prev = bvpn;
            let bkey = TranslationKey { vpn: Vpn(bvpn), ..key };
            let idx = self.tx_line_index(bkey);
            let skey = self.store_key(bkey);
            let span;
            {
                let LineState::Tx(slab) = &mut self.lines[idx].state else { continue };
                let Some(i) = slab.find(slots, skey) else { continue };
                if key.vpn.0 - bvpn >= (1u64 << slab.spans[i]) {
                    continue; // resident lane does not reach the shot page
                }
                span = slab.spans[i];
                if sub {
                    if slab.tmasks[i] & bit == 0 {
                        continue;
                    }
                    slab.tmasks[i] &= !bit;
                    if slab.tmasks[i] == 0 {
                        slab.valid &= !(1 << i);
                        slab.tags.retire();
                    }
                } else {
                    slab.valid &= !(1 << i);
                    slab.tags.retire();
                }
            }
            self.stats.shootdowns += 1;
            if span > 0 {
                self.stats.coalescing.splits += 1;
            }
            any = true;
        }
        any
    }

    /// The classic (non-coalescing) shootdown path, byte-identical to
    /// the pre-coalescing behavior.
    fn shootdown_exact(&mut self, key: TranslationKey) -> bool {
        let idx = self.tx_line_index(key);
        let slots = self.tx_per_line.slots();
        let skey = self.store_key(key);
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(key.vmid);
        if let LineState::Tx(slab) = &mut self.lines[idx].state {
            if let Some(i) = slab.find(slots, skey) {
                if sub {
                    if slab.tmasks[i] & bit == 0 {
                        return false;
                    }
                    slab.tmasks[i] &= !bit;
                    self.stats.shootdowns += 1;
                    if slab.tmasks[i] == 0 {
                        slab.valid &= !(1 << i);
                        slab.tags.retire();
                    }
                    return true;
                }
                slab.valid &= !(1 << i);
                slab.tags.retire();
                self.stats.shootdowns += 1;
                return true;
            }
        }
        false
    }

    /// Drops every translation visible to `vmid` (tenant teardown /
    /// churn); returns the number of visibility losses. Under
    /// sub-entry sharing this clears the tenant's bit across all
    /// lanes, freeing only lanes whose mask empties.
    pub fn invalidate_vmid(&mut self, vmid: VmId) -> usize {
        let sub = self.sub_entry();
        let bit = TenancyConfig::mask_bit(vmid);
        let mut lost = 0;
        for line in &mut self.lines {
            let LineState::Tx(slab) = &mut line.state else { continue };
            for i in ones(slab.valid) {
                if sub {
                    if slab.tmasks[i] & bit != 0 {
                        slab.tmasks[i] &= !bit;
                        lost += 1;
                        if slab.tmasks[i] == 0 {
                            slab.valid &= !(1 << i);
                            slab.tags.retire();
                        }
                    }
                } else if slab.keys[i].vmid == vmid {
                    slab.valid &= !(1 << i);
                    slab.tags.retire();
                    lost += 1;
                }
            }
        }
        lost
    }

    // ----- measurement ------------------------------------------------------

    /// Begins a kernel: resets the Eq-1 fill counter.
    pub fn begin_kernel(&mut self) {
        self.fills_this_kernel = 0;
    }

    /// Ends a kernel and returns its Eq-1 I-cache utilization in
    /// percent: `fills * 100 / lines`, capped at 100.
    pub fn end_kernel_utilization(&self) -> f64 {
        (self.fills_this_kernel as f64 * 100.0 / self.lines.len() as f64).min(100.0)
    }

    /// Translations currently resident.
    pub fn resident_tx(&self) -> usize {
        self.lines
            .iter()
            .map(|l| match &l.state {
                LineState::Tx(slab) => slab.resident(),
                _ => 0,
            })
            .sum()
    }

    /// Lines currently holding instructions.
    pub fn inst_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| matches!(l.state, LineState::Inst { .. }))
            .count()
    }

    /// Iterates over resident translations (sharing analysis).
    ///
    /// Under sub-entry sharing each lane expands to one translation
    /// per set mask bit, retagged with that sharer's VM-ID, so
    /// coherence checks can validate against every sharer's page
    /// table.
    pub fn iter_tx(&self) -> impl Iterator<Item = Translation> + '_ {
        let sub = self.sub_entry();
        self.lines.iter().flat_map(move |l| {
            let slab = match &l.state {
                LineState::Tx(slab) => Some(slab),
                _ => None,
            };
            slab.into_iter().flat_map(move |s| {
                ones(s.valid).flat_map(move |i| {
                    let (key, ppn, span) = (s.keys[i], s.ppns[i], s.spans[i]);
                    let mask = if sub { s.tmasks[i] } else { 1 << key.vmid.raw() };
                    (0..(1u64 << span)).flat_map(move |o| {
                        (0..MAX_TENANTS as u8).filter(move |b| mask & (1u8 << b) != 0).map(
                            move |b| {
                                let vpn = Vpn(key.vpn.0 + o);
                                let k = if sub {
                                    TranslationKey { vpn, vmid: VmId::new(b), ..key }
                                } else {
                                    TranslationKey { vpn, ..key }
                                };
                                Translation::new(k, Ppn(ppn.0 + o))
                            },
                        )
                    })
                })
            })
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TxIcacheStats {
        &self.stats
    }

    /// Zeroes the statistics while keeping resident instruction lines
    /// and translations (checkpoint restore re-baselines measurement on
    /// warm state).
    pub fn reset_stats(&mut self) {
        self.stats = TxIcacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_vm::addr::Vpn;

    fn tx(v: u64) -> Translation {
        Translation::new(TranslationKey::for_vpn(Vpn(v)), Ppn(v + 1))
    }

    fn ic(policy: Replacement, pack: TxPerLine) -> TxIcache {
        TxIcache::new(16 * 1024, 8, pack, policy)
    }

    #[test]
    fn geometry_matches_paper() {
        let c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        assert_eq!(c.line_count(), 256);
        assert_eq!(c.sets(), 32);
        // 256 lines × 8 tx = 2048 per instance; 2 instances = 4K
        // (Fig 15: "4K from I-caches").
        assert_eq!(c.line_count() * c.tx_slots(), 2048);
    }

    #[test]
    fn instruction_fetch_miss_then_hit() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        assert!(!c.fetch(100));
        assert!(c.fetch(100));
        assert_eq!(c.stats().inst.hits, 1);
        assert_eq!(c.inst_lines(), 1);
    }

    #[test]
    fn instruction_fill_prefers_tx_victims() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        // Fill set 0's ways: 7 instruction lines + 1 tx line.
        for i in 0..7u64 {
            c.fetch(i * 32); // set 0, distinct tags
        }
        // vpn 0 maps to line 0 (set 0, way 0 region). Use a vpn whose
        // direct-mapped line sits in set 0: any vpn % 256 < 8.
        c.insert_tx(tx(7)); // line 7 -> set 0, way 7
        assert_eq!(c.resident_tx(), 1);
        // Next instruction miss in set 0 must evict the tx line, not
        // an instruction line.
        assert!(!c.fetch(7 * 32));
        assert_eq!(c.resident_tx(), 0);
        assert_eq!(c.stats().tx_evicted_by_inst, 1);
        assert_eq!(c.inst_lines(), 8);
    }

    #[test]
    fn instruction_aware_tx_never_evicts_instructions() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        // Fill every line of the cache with instructions.
        for set in 0..32u64 {
            for way in 0..8u64 {
                c.fetch(set + way * 32);
            }
        }
        assert_eq!(c.inst_lines(), 256);
        assert_eq!(c.insert_tx(tx(5)), IcInsert::Bypassed);
        assert_eq!(c.stats().tx_bypassed, 1);
        assert_eq!(c.inst_lines(), 256);
    }

    #[test]
    fn naive_policy_lets_tx_evict_instructions() {
        let mut c = ic(Replacement::NaiveLru, TxPerLine::Eight);
        c.fetch(5); // instruction in set 5... which line? set=5, first way.
        // Find a vpn direct-mapped onto that very line: line index of the
        // filled line is set 5, way 0 => global line idx 40.
        let vpn = 40u64;
        assert!(matches!(c.insert_tx(tx(vpn)), IcInsert::Inserted { .. }));
        assert_eq!(c.stats().inst_evicted_by_tx, 1);
    }

    #[test]
    fn eight_translations_pack_per_line() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        let n = c.line_count() as u64;
        for i in 0..8u64 {
            assert!(matches!(c.insert_tx(tx(3 + i * n)), IcInsert::Inserted { evicted: None }));
        }
        assert_eq!(c.resident_tx(), 8);
        // Ninth insert to the same line evicts the LRU.
        match c.insert_tx(tx(3 + 8 * n)) {
            IcInsert::Inserted { evicted: Some(e) } => assert_eq!(e.key.vpn, Vpn(3)),
            other => panic!("expected LRU eviction: {other:?}"),
        }
    }

    #[test]
    fn one_per_line_design_holds_single_entry() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::One);
        let n = c.line_count() as u64;
        c.insert_tx(tx(3));
        match c.insert_tx(tx(3 + n)) {
            IcInsert::Inserted { evicted: Some(e) } => assert_eq!(e.key.vpn, Vpn(3)),
            other => panic!("expected displacement: {other:?}"),
        }
        assert_eq!(c.resident_tx(), 1);
    }

    #[test]
    fn lookup_copies_out_and_stays() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        let t = tx(9);
        c.insert_tx(t);
        assert_eq!(c.lookup_tx(t.key), Some(t));
        assert_eq!(c.lookup_tx(t.key), Some(t), "entry remains for other CUs");
        assert_eq!(c.resident_tx(), 1);
        assert_eq!(c.stats().tx_lookups.hits, 2);
    }

    #[test]
    fn flush_clears_instructions_only() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        c.fetch(0);
        c.fetch(1);
        c.insert_tx(tx(77));
        c.flush_instructions();
        assert_eq!(c.inst_lines(), 0);
        assert_eq!(c.resident_tx(), 1);
        assert_eq!(c.stats().flushed_lines, 2);
        // Flushed lines are reclaimable by translations.
        assert!(matches!(c.insert_tx(tx(0)), IcInsert::Inserted { .. }));
    }

    #[test]
    fn utilization_eq1_per_kernel() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        c.begin_kernel();
        for i in 0..64u64 {
            c.fetch(i);
        }
        assert!((c.end_kernel_utilization() - 25.0).abs() < 1e-9); // 64/256
        c.begin_kernel();
        for i in 0..1000u64 {
            c.fetch(i + 1000);
        }
        assert_eq!(c.end_kernel_utilization(), 100.0, "capped at 100%");
    }

    #[test]
    fn compression_conflict_rebases() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        let n = c.line_count() as u64;
        c.insert_tx(tx(3));
        c.insert_tx(tx(3 + n));
        // Tag 1 << 20 is far outside the 8-bit delta window.
        match c.insert_tx(tx(3 + (1 << 20) * n)) {
            IcInsert::Inserted { evicted: Some(_) } => {}
            other => panic!("conflict should evict: {other:?}"),
        }
        assert_eq!(c.stats().compression_conflicts, 1);
        assert_eq!(c.resident_tx(), 1);
    }

    #[test]
    fn shootdown_finds_direct_mapped_entry() {
        let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
        let t = tx(123);
        c.insert_tx(t);
        assert!(c.shootdown(t.key));
        assert!(!c.shootdown(t.key));
        assert_eq!(c.resident_tx(), 0);
    }

    mod tenancy {
        use super::*;
        use gtr_vm::addr::VmId;
        use gtr_vm::tenancy::{SharingPolicy, TenancyConfig};

        fn keyed(v: u64, vm: u8) -> Translation {
            let key = TranslationKey {
                vpn: Vpn(v),
                vmid: VmId::new(vm),
                vrf: gtr_vm::addr::VrfId::new(0),
            };
            Translation::new(key, Ppn(v + 1))
        }

        fn tenanted(policy: SharingPolicy, tenants: u8) -> TxIcache {
            let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
            c.set_tenancy(TenancyConfig::new(tenants, policy));
            c
        }

        #[test]
        fn partitioned_stripes_tx_lines_by_tenant() {
            let mut c = tenanted(SharingPolicy::Partitioned, 2);
            // Same VPN, two tenants: distinct direct-mapped lines.
            c.insert_tx(keyed(7, 0));
            c.insert_tx(keyed(7, 1));
            assert_eq!(c.resident_tx(), 2);
            assert!(c.is_tx_line(keyed(7, 0).key), "mode gate follows the remap");
            assert_eq!(c.lookup_tx(keyed(7, 0).key), Some(keyed(7, 0)));
            assert_eq!(c.lookup_tx(keyed(7, 1).key), Some(keyed(7, 1)));
            // Overflowing tenant 0's line must only evict tenant 0.
            let per = c.line_count() as u64 / 2;
            for i in 1..=16u64 {
                if let IcInsert::Inserted { evicted: Some(e) } = c.insert_tx(keyed(7 + i * per, 0))
                {
                    assert_eq!(e.key.vmid.raw(), 0, "no cross-tenant eviction");
                }
            }
            assert!(c.lookup_tx(keyed(7, 1).key).is_some(), "tenant 1 untouched");
        }

        #[test]
        fn shared_policy_checks_vmid_on_hit() {
            let mut c = tenanted(SharingPolicy::Shared, 2);
            c.insert_tx(keyed(3, 0));
            assert!(c.lookup_tx(keyed(3, 0).key).is_some());
            assert!(c.lookup_tx(keyed(3, 1).key).is_none(), "foreign vmid must miss");
        }

        #[test]
        fn sub_entry_merges_and_shoots_per_tenant() {
            let mut c = tenanted(SharingPolicy::SubEntry, 3);
            let k = |vm| keyed(5, vm).key;
            c.insert_tx(Translation::new(k(0), Ppn(42)));
            c.insert_tx(Translation::new(k(1), Ppn(42)));
            c.insert_tx(Translation::new(k(2), Ppn(42)));
            assert_eq!(c.resident_tx(), 1, "three tenants share one lane");
            assert_eq!(c.iter_tx().count(), 3, "iter expands per sharer");
            assert!(c.shootdown(k(1)));
            assert!(c.lookup_tx(k(1)).is_none());
            assert!(c.lookup_tx(k(0)).is_some(), "co-sharers survive");
            assert!(c.lookup_tx(k(2)).is_some());
            // PPN conflict rebases to the inserting tenant alone.
            c.insert_tx(Translation::new(k(1), Ppn(99)));
            assert!(c.lookup_tx(k(0)).is_none(), "stale sharers evicted");
            assert_eq!(c.lookup_tx(k(1)), Some(Translation::new(k(1), Ppn(99))));
        }

        #[test]
        fn sub_entry_victim_carries_representative_vmid() {
            let mut c = tenanted(SharingPolicy::SubEntry, 2);
            let n = c.line_count() as u64;
            let at = |i: u64, vm: u8| keyed(5 + i * n, vm);
            c.insert_tx(Translation::new(at(0, 0).key, Ppn(42)));
            c.insert_tx(Translation::new(at(0, 1).key, Ppn(42)));
            for i in 1..8u64 {
                c.insert_tx(at(i, 1));
            }
            // Line full; next insert evicts the LRU shared lane on
            // behalf of its lowest sharer, tenant 0.
            match c.insert_tx(at(8, 1)) {
                IcInsert::Inserted { evicted: Some(e) } => {
                    assert_eq!(e.key.vpn, Vpn(5));
                    assert_eq!(e.key.vmid.raw(), 0, "lowest-numbered sharer");
                }
                other => panic!("expected eviction: {other:?}"),
            }
        }

        #[test]
        fn invalidate_vmid_counts_visibility_losses() {
            let mut c = tenanted(SharingPolicy::SubEntry, 2);
            c.insert_tx(Translation::new(keyed(5, 0).key, Ppn(42)));
            c.insert_tx(Translation::new(keyed(5, 1).key, Ppn(42)));
            c.insert_tx(keyed(9, 0));
            assert_eq!(c.invalidate_vmid(VmId::new(0)), 2);
            assert_eq!(c.resident_tx(), 1, "shared lane survives for tenant 1");
            assert!(c.lookup_tx(keyed(5, 1).key).is_some());
        }

        #[test]
        fn single_tenant_shared_matches_untenanted() {
            let mut plain = ic(Replacement::InstructionAware, TxPerLine::Eight);
            let mut shared = tenanted(SharingPolicy::Shared, 1);
            for i in 0..2048u64 {
                assert_eq!(plain.insert_tx(tx(i * 3)), shared.insert_tx(tx(i * 3)));
                assert_eq!(plain.lookup_tx(tx(i).key), shared.lookup_tx(tx(i).key));
            }
            assert_eq!(plain.resident_tx(), shared.resident_tx());
            assert_eq!(plain.stats().tx_evictions, shared.stats().tx_evictions);
        }

        #[test]
        #[should_panic(expected = "before first insert")]
        fn set_tenancy_rejects_warm_structure() {
            let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
            c.insert_tx(tx(1));
            c.set_tenancy(TenancyConfig::new(2, SharingPolicy::Shared));
        }
    }

    mod coalescing {
        use super::*;

        fn co_ic(max: u8) -> TxIcache {
            let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
            c.set_coalescing(Some(max));
            c
        }

        /// One span-3 run: vpns 40..48 -> ppns 500..508.
        fn span3() -> Translation {
            Translation::with_span(TranslationKey::for_vpn(Vpn(40)), Ppn(500), 3)
        }

        fn key(v: u64) -> TranslationKey {
            TranslationKey::for_vpn(Vpn(v))
        }

        #[test]
        fn covered_pages_hit_through_base_line() {
            let mut c = co_ic(4);
            c.insert_tx(span3());
            assert_eq!(c.resident_tx(), 1, "one lane holds the whole run");
            for v in 40..48u64 {
                assert!(c.may_hold_tx(key(v)), "routing gate must see the run at vpn {v}");
                let hit = c.lookup_tx(key(v)).expect("covered page must hit");
                assert_eq!(hit.key.vpn, Vpn(40));
                assert_eq!(hit.ppn_for(Vpn(v)), Ppn(500 + (v - 40)));
            }
            assert!(c.lookup_tx(key(48)).is_none());
            assert_eq!(c.stats().tx_lookups.hits, 8);
            assert_eq!(c.stats().coalescing.hits, 7, "exact-base hit is not a covering hit");
        }

        #[test]
        fn insert_counters_measure_reach() {
            let mut c = co_ic(4);
            c.insert_tx(span3());
            c.insert_tx(tx(100));
            let co = c.stats().coalescing;
            assert_eq!(co.inserts, 2);
            assert_eq!(co.coalesced, 1);
            assert_eq!(co.span_pages, 9);
        }

        #[test]
        fn bypassed_inserts_do_not_count_reach() {
            let mut c = co_ic(4);
            // Fill every line with instructions so inserts bypass.
            for set in 0..32u64 {
                for way in 0..8u64 {
                    c.fetch(set + way * 32);
                }
            }
            assert_eq!(c.insert_tx(span3()), IcInsert::Bypassed);
            assert_eq!(c.stats().coalescing, CoalescingCounters::default());
        }

        #[test]
        fn shootdown_drops_the_whole_covering_lane() {
            let mut c = co_ic(4);
            c.insert_tx(span3());
            assert!(c.shootdown(key(42)));
            for v in 40..48u64 {
                assert!(c.lookup_tx(key(v)).is_none(), "victim caches drop the run whole ({v})");
            }
            assert_eq!(c.resident_tx(), 0);
            assert_eq!(c.stats().coalescing.splits, 1);
            assert!(!c.shootdown(key(42)));
        }

        #[test]
        fn iter_expands_covered_pages() {
            let mut c = co_ic(4);
            c.insert_tx(span3());
            let pages: Vec<(u64, u64)> = c.iter_tx().map(|e| (e.key.vpn.0, e.ppn.0)).collect();
            assert_eq!(pages.len(), 8);
            for (vpn, ppn) in pages {
                assert_eq!(ppn - 500, vpn - 40);
            }
        }

        #[test]
        fn victims_keep_their_span() {
            let mut c = co_ic(4);
            let n = c.line_count() as u64;
            // Nine runs direct-mapped onto the same line overflow its
            // eight lanes; the LRU run is forwarded whole.
            let run = |i: u64| {
                Translation::with_span(TranslationKey::for_vpn(Vpn(40 + i * 8 * n)), Ppn(500), 3)
            };
            for i in 0..8 {
                assert!(matches!(c.insert_tx(run(i)), IcInsert::Inserted { evicted: None }));
            }
            match c.insert_tx(run(8)) {
                IcInsert::Inserted { evicted: Some(e) } => {
                    assert_eq!(e.key, run(0).key);
                    assert_eq!(e.span_log2, 3, "Fig-12 victims carry the whole run");
                }
                other => panic!("expected eviction: {other:?}"),
            }
        }

        #[test]
        fn may_hold_matches_old_gate_when_off() {
            let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
            c.insert_tx(tx(7));
            for v in 0..64u64 {
                assert_eq!(c.may_hold_tx(key(v)), c.is_tx_line(key(v)), "vpn {v}");
            }
        }

        #[test]
        #[should_panic(expected = "before first insert")]
        fn set_coalescing_rejects_warm_structure() {
            let mut c = ic(Replacement::InstructionAware, TxPerLine::Eight);
            c.insert_tx(tx(1));
            c.set_coalescing(Some(4));
        }
    }
}
