//! Front-end workgroup dispatcher.
//!
//! Workgroups are placed whole onto a CU (shared LDS requires it),
//! consuming wave slots and one contiguous LDS block. Placement is
//! round-robin first-fit, matching the greedy front-end scheduling
//! unit §2.2 describes.

use crate::lds::{LdsAllocator, LdsAllocId};

/// A successful workgroup placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Target CU index.
    pub cu: usize,
    /// LDS allocation backing the workgroup (`None` when it requested
    /// zero bytes is still `Some` zero-sized block; `None` only if the
    /// kernel uses no LDS at all).
    pub lds: Option<LdsAllocId>,
}

/// Tracks per-CU wave-slot occupancy and drives placement.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    slots_per_cu: usize,
    free_slots: Vec<usize>,
    cursor: usize,
    dispatched: u64,
}

impl Dispatcher {
    /// Creates a dispatcher for `cus` CUs with `slots_per_cu` wave
    /// slots each.
    pub fn new(cus: usize, slots_per_cu: usize) -> Self {
        Self { slots_per_cu, free_slots: vec![slots_per_cu; cus], cursor: 0, dispatched: 0 }
    }

    /// Free wave slots on `cu`.
    pub fn free_slots(&self, cu: usize) -> usize {
        self.free_slots[cu]
    }

    /// Attempts to place a workgroup of `waves` wavefronts that
    /// requests `lds_bytes` of LDS. `lds` holds one allocator per CU.
    ///
    /// Returns `None` if no CU currently has both enough wave slots and
    /// a contiguous LDS gap — the workgroup waits for a completion.
    pub fn try_place(
        &mut self,
        waves: usize,
        lds_bytes: u32,
        lds: &mut [LdsAllocator],
    ) -> Option<Placement> {
        let cus = self.free_slots.len();
        assert_eq!(lds.len(), cus, "one LDS allocator per CU");
        for i in 0..cus {
            let cu = (self.cursor + i) % cus;
            if self.free_slots[cu] < waves || waves == 0 {
                continue;
            }
            let alloc = if lds_bytes > 0 {
                match lds[cu].allocate(lds_bytes) {
                    Some(id) => Some(id),
                    None => continue,
                }
            } else {
                None
            };
            self.free_slots[cu] -= waves;
            self.cursor = (cu + 1) % cus;
            self.dispatched += 1;
            return Some(Placement { cu, lds: alloc });
        }
        None
    }

    /// Returns a completed workgroup's resources.
    pub fn complete(&mut self, p: Placement, waves: usize, lds: &mut [LdsAllocator]) {
        self.free_slots[p.cu] += waves;
        assert!(
            self.free_slots[p.cu] <= self.slots_per_cu,
            "more waves returned than dispatched"
        );
        if let Some(id) = p.lds {
            lds[p.cu].release(id);
        }
    }

    /// Workgroups placed so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lds_per_cu(n: usize, cap: u32) -> Vec<LdsAllocator> {
        (0..n).map(|_| LdsAllocator::new(cap)).collect()
    }

    #[test]
    fn round_robin_placement() {
        let mut d = Dispatcher::new(2, 4);
        let mut lds = lds_per_cu(2, 1024);
        let a = d.try_place(2, 0, &mut lds).unwrap();
        let b = d.try_place(2, 0, &mut lds).unwrap();
        assert_ne!(a.cu, b.cu, "round robin should alternate CUs");
    }

    #[test]
    fn wave_slot_exhaustion_blocks() {
        let mut d = Dispatcher::new(1, 4);
        let mut lds = lds_per_cu(1, 1024);
        let p = d.try_place(3, 0, &mut lds).unwrap();
        assert!(d.try_place(2, 0, &mut lds).is_none());
        d.complete(p, 3, &mut lds);
        assert!(d.try_place(2, 0, &mut lds).is_some());
    }

    #[test]
    fn lds_exhaustion_blocks_even_with_slots() {
        let mut d = Dispatcher::new(1, 40);
        let mut lds = lds_per_cu(1, 512);
        let _p = d.try_place(1, 512, &mut lds).unwrap();
        assert!(d.try_place(1, 512, &mut lds).is_none(), "no LDS left");
        assert!(d.try_place(1, 0, &mut lds).is_some(), "zero-LDS workgroups still fit");
    }

    #[test]
    fn completion_frees_lds() {
        let mut d = Dispatcher::new(1, 40);
        let mut lds = lds_per_cu(1, 512);
        let p = d.try_place(1, 512, &mut lds).unwrap();
        assert_eq!(lds[0].bytes_in_use(), 512);
        d.complete(p, 1, &mut lds);
        assert_eq!(lds[0].bytes_in_use(), 0);
    }

    #[test]
    fn falls_over_to_next_cu_when_first_full() {
        let mut d = Dispatcher::new(2, 2);
        let mut lds = lds_per_cu(2, 1024);
        let _a = d.try_place(2, 0, &mut lds).unwrap(); // cu 0
        let _b = d.try_place(2, 0, &mut lds).unwrap(); // cu 1
        // Both full for 2-wave groups; a 2-wave group must wait.
        assert!(d.try_place(2, 0, &mut lds).is_none());
    }

    #[test]
    fn zero_wave_workgroup_is_skipped() {
        let mut d = Dispatcher::new(1, 4);
        let mut lds = lds_per_cu(1, 64);
        assert!(d.try_place(0, 0, &mut lds).is_none());
    }
}
