//! Shared trace-generation helpers.

use gtr_gpu::kernel::{WaveProgram, WorkgroupDesc};
use gtr_gpu::ops::Op;
use gtr_sim::rng::SplitMix64;

/// Bytes per 4 KB page (trace generation always reasons at the 4 KB
/// granularity; larger page sizes simply merge at run time).
pub const PAGE: u64 = 4096;

/// Threads per wavefront (Table 1).
pub const LANES: u16 = 64;

/// A builder for one wavefront's op stream that interleaves compute
/// padding with memory operations, approximating a realistic
/// instruction mix (the paper's PTW-PKI denominators count every
/// thread instruction).
#[derive(Debug, Clone)]
pub struct WaveBuilder {
    ops: Vec<Op>,
    compute_per_mem: u32,
}

impl WaveBuilder {
    /// New builder inserting `compute_per_mem` ALU ops before every
    /// memory op.
    pub fn new(compute_per_mem: u32) -> Self {
        Self { ops: Vec::new(), compute_per_mem }
    }

    fn pad(&mut self) {
        for _ in 0..self.compute_per_mem {
            self.ops.push(Op::compute(0));
        }
    }

    /// Streaming read: 64 consecutive 4-byte lanes starting at `base`.
    pub fn stream_read(&mut self, base: u64) -> &mut Self {
        self.pad();
        self.ops.push(Op::global_read_strided(base, 4, LANES));
        self
    }

    /// Streaming write.
    pub fn stream_write(&mut self, base: u64) -> &mut Self {
        self.pad();
        self.ops.push(Op::global_write_strided(base, 4, LANES));
        self
    }

    /// Column access: 64 lanes strided by `stride` bytes (the
    /// TLB-reach killer of ATAX/BICG/MVT/GEV when `stride` ≥ a page).
    pub fn column_read(&mut self, base: u64, stride: u64) -> &mut Self {
        self.pad();
        self.ops.push(Op::global_read_strided(base, stride, LANES));
        self
    }

    /// Column write.
    pub fn column_write(&mut self, base: u64, stride: u64) -> &mut Self {
        self.pad();
        self.ops.push(Op::global_write_strided(base, stride, LANES));
        self
    }

    /// Gather: 64 lanes at random 4-byte-aligned offsets within
    /// `[region_base, region_base + region_pages * 4K)`, constrained to
    /// `unique_pages` distinct pages (SIMT divergence knob).
    pub fn gather(
        &mut self,
        rng: &mut SplitMix64,
        region_base: u64,
        region_pages: u64,
        unique_pages: usize,
    ) -> &mut Self {
        self.pad();
        let mut pages = Vec::with_capacity(unique_pages);
        for _ in 0..unique_pages {
            pages.push(rng.next_below(region_pages));
        }
        let lanes: Vec<u64> = (0..LANES as usize)
            .map(|i| {
                let p = pages[i % unique_pages];
                region_base + p * PAGE + rng.next_below(PAGE / 4) * 4
            })
            .collect();
        self.ops.push(Op::global_read(lanes));
        self
    }

    /// Scatter (random write), same shape as [`WaveBuilder::gather`].
    pub fn scatter(
        &mut self,
        rng: &mut SplitMix64,
        region_base: u64,
        region_pages: u64,
        unique_pages: usize,
    ) -> &mut Self {
        self.pad();
        let mut pages = Vec::with_capacity(unique_pages);
        for _ in 0..unique_pages {
            pages.push(rng.next_below(region_pages));
        }
        let lanes: Vec<u64> = (0..LANES as usize)
            .map(|i| {
                let p = pages[i % unique_pages];
                region_base + p * PAGE + rng.next_below(PAGE / 4) * 4
            })
            .collect();
        self.ops.push(Op::global_write(lanes));
        self
    }

    /// Gather over an explicit page list (graph neighbor access).
    pub fn gather_pages(&mut self, rng: &mut SplitMix64, base: u64, pages: &[u64]) -> &mut Self {
        self.pad();
        let lanes: Vec<u64> = (0..LANES as usize)
            .map(|i| base + pages[i % pages.len()] * PAGE + rng.next_below(PAGE / 4) * 4)
            .collect();
        self.ops.push(Op::global_read(lanes));
        self
    }

    /// LDS read at `offset`.
    pub fn lds_read(&mut self, offset: u32) -> &mut Self {
        self.ops.push(Op::lds_read(offset));
        self
    }

    /// LDS write at `offset`.
    pub fn lds_write(&mut self, offset: u32) -> &mut Self {
        self.ops.push(Op::lds_write(offset));
        self
    }

    /// Workgroup barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// Extra ALU latency (e.g. a divide-heavy phase).
    pub fn compute(&mut self, latency: u32) -> &mut Self {
        self.ops.push(Op::compute(latency));
        self
    }

    /// Finishes the wave program.
    pub fn build(self) -> WaveProgram {
        WaveProgram::new(self.ops)
    }

    /// Current op count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops were added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Groups wave programs into workgroups of `waves_per_wg`.
pub fn into_workgroups(waves: Vec<WaveProgram>, waves_per_wg: usize) -> Vec<WorkgroupDesc> {
    waves
        .chunks(waves_per_wg.max(1))
        .map(|c| WorkgroupDesc::new(c.to_vec()))
        .collect()
}

/// Builds a Polybench-style *column-access* kernel: `waves` wavefronts,
/// each owning a 64-row block of a row-major matrix and sweeping
/// `cols` consecutive columns; every op reads 64 lanes strided by
/// `row_bytes`, touching 64 distinct pages when rows span pages — the
/// access pattern behind ATAX/BICG/MVT/GEV's TLB-reach collapse.
#[allow(clippy::too_many_arguments)]
pub fn column_kernel(
    name: &str,
    code_lines: u32,
    matrix_base: u64,
    row_bytes: u64,
    waves: usize,
    waves_per_wg: usize,
    cols: usize,
    compute_pad: u32,
) -> gtr_gpu::kernel::KernelDesc {
    let mut programs = Vec::with_capacity(waves);
    for w in 0..waves as u64 {
        let mut b = WaveBuilder::new(compute_pad);
        let block_base = matrix_base + w * 64 * row_bytes;
        for j in 0..cols as u64 {
            b.column_read(block_base + j * 4, row_bytes);
        }
        programs.push(b.build());
    }
    gtr_gpu::kernel::KernelDesc::new(name, code_lines, 0, into_workgroups(programs, waves_per_wg))
}

/// Builds a Polybench-style *shared column-sweep* kernel: every
/// wavefront walks the **whole** matrix column-wise (as real
/// `y[j] = Σᵢ A[i][j]·xᵢ` kernels do), so all CUs demand the same
/// page set — high translation sharing (Fig 14a) — and the reuse
/// distance equals the full matrix footprint, which the baseline TLBs
/// cannot hold but the reconfigurable reach can.
#[allow(clippy::too_many_arguments)]
pub fn column_sweep_kernel(
    name: &str,
    code_lines: u32,
    matrix_base: u64,
    row_bytes: u64,
    rows: u64,
    waves: usize,
    waves_per_wg: usize,
    cols_per_wave: usize,
    compute_pad: u32,
) -> gtr_gpu::kernel::KernelDesc {
    let row_blocks = rows / 64;
    let mut programs = Vec::with_capacity(waves);
    for w in 0..waves as u64 {
        let mut b = WaveBuilder::new(compute_pad);
        // Each wave owns a column strip; strips stay within the same
        // page column (columns are 4 bytes apart), so the page set is
        // identical across waves. Waves start at staggered row blocks
        // (real kernels drift apart immediately), so CUs are *not* in
        // lock-step — the shared L2 TLB cannot ride one CU's fills.
        let col0 = w * 8;
        let phase = (w * 37) % row_blocks.max(1);
        for j in 0..cols_per_wave as u64 {
            for rb in 0..row_blocks {
                let rb = (rb + phase) % row_blocks;
                b.column_read(matrix_base + rb * 64 * row_bytes + (col0 + j) * 4, row_bytes);
            }
        }
        programs.push(b.build());
    }
    gtr_gpu::kernel::KernelDesc::new(name, code_lines, 0, into_workgroups(programs, waves_per_wg))
}

/// Builds a Polybench-style *row-streaming* kernel: each wave streams
/// sequential 256-byte chunks of its row block plus an occasional
/// vector access — high locality, low TLB pressure.
#[allow(clippy::too_many_arguments)]
pub fn row_stream_kernel(
    name: &str,
    code_lines: u32,
    matrix_base: u64,
    vector_base: u64,
    waves: usize,
    waves_per_wg: usize,
    ops_per_wave: usize,
    compute_pad: u32,
) -> gtr_gpu::kernel::KernelDesc {
    let mut programs = Vec::with_capacity(waves);
    for w in 0..waves as u64 {
        let mut b = WaveBuilder::new(compute_pad);
        for i in 0..ops_per_wave as u64 {
            b.stream_read(matrix_base + (w * ops_per_wave as u64 + i) * 256);
            if i % 8 == 0 {
                b.stream_read(vector_base + (i % 16) * 256);
            }
        }
        programs.push(b.build());
    }
    gtr_gpu::kernel::KernelDesc::new(name, code_lines, 0, into_workgroups(programs, waves_per_wg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_gpu::ops::AccessPattern;

    #[test]
    fn builder_pads_compute() {
        let mut b = WaveBuilder::new(3);
        b.stream_read(0);
        let w = b.build();
        assert_eq!(w.len(), 4); // 3 compute + 1 read
        assert!(matches!(w.ops()[3], Op::Global { .. }));
    }

    #[test]
    fn gather_respects_unique_pages() {
        let mut rng = SplitMix64::new(1);
        let mut b = WaveBuilder::new(0);
        b.gather(&mut rng, 0, 1 << 20, 8);
        let w = b.build();
        let Op::Global { pattern: AccessPattern::Lanes(lanes), write } = &w.ops()[0] else {
            panic!("expected gather");
        };
        assert!(!write);
        let pages: std::collections::HashSet<u64> = lanes.iter().map(|a| a / PAGE).collect();
        assert!(pages.len() <= 8);
        assert_eq!(lanes.len(), 64);
    }

    #[test]
    fn column_read_is_strided() {
        let mut b = WaveBuilder::new(0);
        b.column_read(100, 8192);
        let w = b.build();
        assert!(matches!(
            w.ops()[0],
            Op::Global { pattern: AccessPattern::Strided { base: 100, stride: 8192, lanes: 64 }, write: false }
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = SplitMix64::new(42);
            let mut b = WaveBuilder::new(1);
            b.gather(&mut rng, 0, 4096, 16).scatter(&mut rng, 0, 4096, 16);
            b.build()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn workgroup_chunking() {
        let waves: Vec<WaveProgram> = (0..10).map(|_| WaveProgram::new(vec![])).collect();
        let wgs = into_workgroups(waves, 4);
        assert_eq!(wgs.len(), 3);
        assert_eq!(wgs[0].wave_count(), 4);
        assert_eq!(wgs[2].wave_count(), 2);
    }
}
