//! Host-profile analysis: the `--prof` CLI plumbing, Chrome-trace
//! summarization (`gtr-analyze --prof-summary`) and BENCH-history
//! trend reporting (`gtr-analyze --bench-history`).
//!
//! The recording half lives in [`gtr_sim::prof`]; this module is the
//! consuming half. [`arm_from_args`]/[`finish`] give every binary the
//! same `--prof <out.json>` flag. [`parse_chrome_trace`] re-parses an
//! emitted trace back into spans (via [`gtr_sim::json`] — the same
//! parser CI uses to prove the trace is well-formed), and
//! [`summary`] renders the three views a slow run needs first: top
//! spans by aggregate time, per-worker lane utilization, and the
//! critical path of top-level spans. [`bench_history_report`] reads
//! the committed `BENCH_*.json` history arrays and prints a
//! per-commit trend with threshold-based regression verdicts, so the
//! perf history stays consumable (and parseable — CI runs it as a
//! rot gate) without leaving the repo.

use std::path::{Path, PathBuf};

use gtr_sim::json::Json;
use gtr_sim::prof;

use crate::perf::{self, MatrixPerfReport, PerfReport};

// ---------------------------------------------------------------------------
// The `--prof <out.json>` flag.
// ---------------------------------------------------------------------------

/// Parses `--prof <out.json>` from `args` and, when present, enables
/// the host profiler and returns the output path. Call once at
/// binary startup, before any work worth timing.
pub fn arm_from_args(args: &[String]) -> Option<PathBuf> {
    let i = args.iter().position(|a| a == "--prof")?;
    let path = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("--prof needs an output path for the Chrome trace");
        std::process::exit(2);
    });
    prof::enable();
    Some(PathBuf::from(path))
}

/// Writes the Chrome trace recorded since [`arm_from_args`] to
/// `path` (a no-op when `path` is `None`) and reports what was
/// written on stderr. Call once at binary exit, after the last span
/// has closed.
pub fn finish(path: Option<&Path>) {
    let Some(path) = path else { return };
    match prof::write_chrome_trace(path) {
        Ok(stats) => eprintln!(
            "profile written to {} ({} spans on {} lanes; load in Perfetto or chrome://tracing)",
            path.display(),
            stats.spans,
            stats.lanes
        ),
        Err(e) => {
            eprintln!("failed to write profile {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome-trace parsing.
// ---------------------------------------------------------------------------

/// One completed span reconstructed from a Chrome trace.
#[derive(Debug, Clone)]
pub struct ProfSpan {
    /// Aggregation key (the recorder's static span name, from `cat`).
    pub cat: String,
    /// Display name (`name` or `name:label`).
    pub name: String,
    /// Timeline lane (thread) the span ran on.
    pub lane: String,
    /// Start timestamp, µs since the trace epoch.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
    /// Nesting depth on its lane (0 = top-level).
    pub depth: usize,
}

/// A parsed Chrome trace: spans, lane names, counter totals.
#[derive(Debug, Clone)]
pub struct ProfTrace {
    /// Lane names in `tid` order.
    pub lanes: Vec<String>,
    /// All completed spans, in document order.
    pub spans: Vec<ProfSpan>,
    /// Aggregate counter totals (the writer's `gtrCounters` block).
    pub counters: Vec<(String, u64)>,
    /// Earliest event timestamp, µs.
    pub begin_us: f64,
    /// Latest event timestamp, µs.
    pub end_us: f64,
}

impl ProfTrace {
    /// Trace wall-clock extent in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        ((self.end_us - self.begin_us) / 1e3).max(0.0)
    }
}

/// Parses a Chrome Trace Event Format document (as written by
/// [`gtr_sim::prof::write_chrome_trace`]) back into spans. Fails on
/// malformed JSON, a missing `traceEvents` array, or unbalanced
/// `B`/`E` events on any lane — the properties CI's smoke asserts.
pub fn parse_chrome_trace(text: &str) -> Result<ProfTrace, String> {
    let doc = Json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace has no traceEvents array")?;
    let mut lanes: Vec<(u64, String)> = Vec::new();
    let mut stacks: Vec<(u64, Vec<(String, String, f64)>)> = Vec::new();
    let mut spans: Vec<ProfSpan> = Vec::new();
    let mut begin_us = f64::INFINITY;
    let mut end_us = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
        if let Some(ts) = e.get("ts").and_then(Json::as_f64) {
            begin_us = begin_us.min(ts);
            end_us = end_us.max(ts);
        }
        match ph {
            "M" => {
                if e.get("name").and_then(Json::as_str) == Some("thread_name") {
                    if let Some(name) =
                        e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                    {
                        lanes.push((tid, name.to_string()));
                    }
                }
            }
            "B" => {
                let name = e
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("B event {i} has no name"))?
                    .to_string();
                let cat = e
                    .get("cat")
                    .and_then(Json::as_str)
                    .unwrap_or(name.split(':').next().unwrap_or(&name))
                    .to_string();
                let ts = e
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("B event {i} has no ts"))?;
                let idx = match stacks.iter().position(|(t, _)| *t == tid) {
                    Some(i) => i,
                    None => {
                        stacks.push((tid, Vec::new()));
                        stacks.len() - 1
                    }
                };
                stacks[idx].1.push((name, cat, ts));
            }
            "E" => {
                let ts = e
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("E event {i} has no ts"))?;
                let stack = stacks
                    .iter_mut()
                    .find(|(t, _)| *t == tid)
                    .map(|(_, s)| s)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| format!("unbalanced E event {i} on tid {tid}"))?;
                let depth = stack.len() - 1;
                let (name, cat, start) = stack.pop().expect("non-empty checked");
                let lane = lanes
                    .iter()
                    .find(|(t, _)| *t == tid)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| format!("tid-{tid}"));
                spans.push(ProfSpan {
                    cat,
                    name,
                    lane,
                    start_us: start,
                    dur_us: ts - start,
                    depth,
                });
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "unbalanced trace: {} B event(s) never closed on tid {tid}",
                stack.len()
            ));
        }
    }
    let counters = doc
        .get("gtrCounters")
        .and_then(Json::fields)
        .map(|fields| {
            fields
                .iter()
                .filter_map(|(n, v)| Some((n.clone(), v.as_u64()?)))
                .collect()
        })
        .unwrap_or_default();
    if begin_us > end_us {
        (begin_us, end_us) = (0.0, 0.0);
    }
    Ok(ProfTrace {
        lanes: lanes.into_iter().map(|(_, n)| n).collect(),
        spans,
        counters,
        begin_us,
        end_us,
    })
}

/// Checks that at least `n` `worker-*` lanes carry at least one span
/// each — the CI smoke's shape gate for a `--threads n` run.
pub fn expect_workers(trace: &ProfTrace, n: usize) -> Result<(), String> {
    let populated = trace
        .lanes
        .iter()
        .filter(|l| l.starts_with("worker-"))
        .filter(|l| trace.spans.iter().any(|s| &&s.lane == l))
        .count();
    if populated >= n {
        Ok(())
    } else {
        Err(format!(
            "expected >= {n} populated worker lanes, found {populated} \
             (lanes: {})",
            trace.lanes.join(", ")
        ))
    }
}

// ---------------------------------------------------------------------------
// Summary rendering.
// ---------------------------------------------------------------------------

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        part / whole * 100.0
    } else {
        0.0
    }
}

/// Renders the human summary of a parsed trace: top span names by
/// aggregate time, per-lane utilization, the main lane's top-level
/// phase breakdown (with its coverage of the trace wall), counter
/// totals, and the critical path.
pub fn summary(trace: &ProfTrace) -> String {
    let wall_ms = trace.wall_ms();
    let mut out = format!(
        "trace: {} spans on {} lanes, {:.1} ms wall\n",
        trace.spans.len(),
        trace.lanes.len(),
        wall_ms
    );

    // Top span names by aggregate time. Aggregation is by `cat` (the
    // recorder's static span name); totals sum across lanes, so
    // parallel phases can exceed 100% of wall (thread-ms).
    let mut by_cat: Vec<(String, u64, f64)> = Vec::new();
    for s in &trace.spans {
        match by_cat.iter_mut().find(|(c, _, _)| *c == s.cat) {
            Some((_, n, total)) => {
                *n += 1;
                *total += s.dur_us / 1e3;
            }
            None => by_cat.push((s.cat.clone(), 1, s.dur_us / 1e3)),
        }
    }
    by_cat.sort_by(|a, b| b.2.total_cmp(&a.2));
    out.push_str("\ntop spans (aggregated over lanes; thread-ms):\n");
    out.push_str(&format!(
        "  {:<24} {:>7} {:>12} {:>10} {:>7}\n",
        "name", "count", "total ms", "avg ms", "% wall"
    ));
    for (cat, n, total) in by_cat.iter().take(10) {
        out.push_str(&format!(
            "  {:<24} {:>7} {:>12.1} {:>10.2} {:>6.1}%\n",
            cat,
            n,
            total,
            total / *n as f64,
            pct(*total, wall_ms)
        ));
    }

    // Per-lane utilization: the fraction of the trace wall each lane
    // spent inside a top-level span.
    out.push_str("\nper-worker utilization (top-level span time / trace wall):\n");
    for lane in &trace.lanes {
        let busy_ms: f64 = trace
            .spans
            .iter()
            .filter(|s| &s.lane == lane && s.depth == 0)
            .map(|s| s.dur_us / 1e3)
            .sum();
        let count = trace.spans.iter().filter(|s| &s.lane == lane).count();
        out.push_str(&format!(
            "  {:<12} {:>6.1}% busy  ({count} spans, {busy_ms:.1} ms)\n",
            lane,
            pct(busy_ms, wall_ms)
        ));
    }

    // Phase breakdown: the main lane's top-level spans are the run's
    // sequential phases (figures, exports); their sum over the trace
    // wall is the breakdown's coverage of measured wall time.
    let mut phases: Vec<(String, f64)> = Vec::new();
    for s in trace.spans.iter().filter(|s| s.lane == "main" && s.depth == 0) {
        match phases.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, total)) => *total += s.dur_us / 1e3,
            None => phases.push((s.name.clone(), s.dur_us / 1e3)),
        }
    }
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    let covered_ms: f64 = phases.iter().map(|(_, t)| t).sum();
    out.push_str("\nper-phase breakdown (main lane, top-level spans):\n");
    for (name, total) in &phases {
        out.push_str(&format!(
            "  {:<32} {:>10.1} ms {:>6.1}%\n",
            name,
            total,
            pct(*total, wall_ms)
        ));
    }
    out.push_str(&format!(
        "  phase total: {covered_ms:.1} ms = {:.1}% of trace wall ({wall_ms:.1} ms)\n",
        pct(covered_ms, wall_ms)
    ));

    if !trace.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, v) in &trace.counters {
            out.push_str(&format!("  {name:<24} {v}\n"));
        }
    }

    // Critical path: walk backward from the latest-ending top-level
    // span to the span that ends nearest before it starts — the chain
    // of work nothing else could have hidden.
    let mut top: Vec<&ProfSpan> = trace.spans.iter().filter(|s| s.depth == 0).collect();
    top.sort_by(|a, b| (a.start_us + a.dur_us).total_cmp(&(b.start_us + b.dur_us)));
    let mut chain: Vec<&ProfSpan> = Vec::new();
    let mut cur = top.last().copied();
    while let Some(s) = cur {
        chain.push(s);
        cur = top
            .iter()
            .rev()
            .find(|c| c.start_us + c.dur_us <= s.start_us)
            .copied();
    }
    chain.reverse();
    out.push_str(&format!("\ncritical path ({} links):\n", chain.len()));
    let show = 12usize;
    let skipped = chain.len().saturating_sub(show);
    if skipped > 0 {
        out.push_str(&format!("  ... {skipped} earlier links elided ...\n"));
    }
    let mut prev_end: Option<f64> = None;
    for s in chain.iter().rev().take(show).rev() {
        let gap = prev_end.map_or(0.0, |e| (s.start_us - e) / 1e3);
        out.push_str(&format!(
            "  {:<32} {:<12} {:>10.1} ms  (+{:.1} ms gap)\n",
            s.name,
            s.lane,
            s.dur_us / 1e3,
            gap.max(0.0)
        ));
        prev_end = Some(s.start_us + s.dur_us);
    }
    out
}

// ---------------------------------------------------------------------------
// BENCH-history trend reporting.
// ---------------------------------------------------------------------------

fn fmt_cpu(cpu_ms: Option<f64>) -> String {
    match cpu_ms {
        Some(ms) => format!("{:.1}s cpu", ms / 1e3),
        None => "cpu n/a".to_string(),
    }
}

fn verdict(delta_pct: f64, tolerance_pct: f64) -> &'static str {
    if delta_pct < -tolerance_pct {
        "REGRESS"
    } else if delta_pct > tolerance_pct {
        "improved"
    } else {
        "ok"
    }
}

fn phases_line(phases: &[perf::PhaseTotal]) -> String {
    phases
        .iter()
        .map(|p| format!("{} {:.0}ms", p.name, p.wall_ms))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the per-commit trend of one committed BENCH history file.
/// Record kind is detected per record by a marker key —
/// `cells_per_sec` for matrix-throughput records, `hot_p50_us` for
/// serve-latency records, plain throughput otherwise; each line
/// carries the delta against the previous record and a verdict
/// against `tolerance_pct` (the regression gate's threshold). Fails —
/// the CI rot gate — when the document contains no records or any
/// record does not parse.
pub fn bench_history_report(label: &str, text: &str, tolerance_pct: f64) -> Result<String, String> {
    let records = perf::split_history(text);
    if records.is_empty() {
        return Err(format!("{label}: no records"));
    }
    let mut out = format!("{label}: {} record(s)\n", records.len());
    let mut prev_rate: Option<f64> = None;
    let mut last_phases: Vec<perf::PhaseTotal> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let parsed =
            Json::parse(rec).map_err(|e| format!("{label}: record {i} is not valid JSON: {e}"))?;
        if parsed.get("hot_p50_us").is_some() {
            // Serve-latency record: the tracked rate is the hot/cold
            // speedup (higher is better, like every other rate here);
            // the anchor column carries the distinct-cell count.
            let r = perf::ServePerfReport::from_json(rec)
                .ok_or_else(|| format!("{label}: record {i} does not match the serve schema"))?;
            let delta = prev_rate.map(|p| (r.speedup_p50 / p - 1.0) * 100.0);
            let trend = match delta {
                Some(d) => format!("{d:+7.1}%  {}", verdict(d, tolerance_pct)),
                None => "      —  (first)".to_string(),
            };
            out.push_str(&format!(
                "  {i:>2}  {:<9} {:<6} {:>12.1} {:<8} {trend:<18} \
                 [cold p50 {}us -> hot p50 {}us; cells {}]\n",
                r.commit, r.scale, r.speedup_p50, "x hot", r.cold_p50_us, r.hot_p50_us, r.cells
            ));
            prev_rate = Some(r.speedup_p50);
            last_phases = Vec::new();
            continue;
        }
        let is_matrix = parsed.get("cells_per_sec").is_some();
        let (commit, scale, rate, unit, cpu, anchor, extra, phases) = if is_matrix {
            let r = MatrixPerfReport::from_json(rec)
                .ok_or_else(|| format!("{label}: record {i} does not match the matrix schema"))?;
            let extra = match (r.exact_sim_cycles, r.exact_cells_per_sec) {
                (Some(c), Some(v)) => format!("  exact {v:.2} cells/s ({c} cycles)"),
                _ => String::new(),
            };
            (
                r.commit,
                r.scale,
                r.cells_per_sec,
                "cells/s",
                r.cpu_ms,
                r.sim_cycles,
                extra,
                r.phases,
            )
        } else {
            let r = PerfReport::from_json(rec)
                .ok_or_else(|| format!("{label}: record {i} does not match the perf schema"))?;
            (
                r.commit,
                r.scale,
                r.cycles_per_sec,
                "cycles/s",
                r.cpu_ms,
                r.sim_cycles,
                String::new(),
                r.phases,
            )
        };
        let delta = prev_rate.map(|p| (rate / p - 1.0) * 100.0);
        let trend = match delta {
            Some(d) => format!("{d:+7.1}%  {}", verdict(d, tolerance_pct)),
            None => "      —  (first)".to_string(),
        };
        out.push_str(&format!(
            "  {i:>2}  {commit:<9} {scale:<6} {rate:>12.2} {unit:<8} {trend:<18} \
             [{}; anchor {anchor}]{extra}\n",
            fmt_cpu(cpu)
        ));
        prev_rate = Some(rate);
        last_phases = phases;
    }
    if !last_phases.is_empty() {
        out.push_str(&format!("  latest phases: {}\n", phases_line(&last_phases)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::PhaseTotal;

    fn sample_trace_doc() -> String {
        let snap = prof::ProfSnapshot {
            lanes: vec![
                prof::LaneSnapshot {
                    name: "main".to_string(),
                    spans: vec![
                        prof::SpanRec {
                            name: "figure",
                            label: "fig02_03".into(),
                            start_us: 0.0,
                            end_us: 60_000.0,
                            cpu_ms: Some(1.0),
                        },
                        prof::SpanRec {
                            name: "export",
                            label: String::new(),
                            start_us: 60_000.0,
                            end_us: 100_000.0,
                            cpu_ms: None,
                        },
                    ],
                    samples: vec![],
                    marks: vec![],
                },
                prof::LaneSnapshot {
                    name: "worker-0".to_string(),
                    spans: vec![
                        prof::SpanRec {
                            name: "cell",
                            label: "GUPSxIC+LDS#3".into(),
                            start_us: 5_000.0,
                            end_us: 50_000.0,
                            cpu_ms: Some(44.0),
                        },
                        prof::SpanRec {
                            name: "ckpt:replay",
                            label: "GUPS".into(),
                            start_us: 6_000.0,
                            end_us: 9_000.0,
                            cpu_ms: Some(3.0),
                        },
                    ],
                    samples: vec![prof::CounterSample { name: "pool.queue_depth", ts_us: 5_000.0, value: 4 }],
                    marks: vec![prof::MarkRec { name: "sample:detail", ts_us: 10_000.0 }],
                },
            ],
            counters: vec![("ckpt.cache_hit".to_string(), 3), ("pool.steals".to_string(), 1)],
        };
        let mut doc = String::new();
        prof::chrome_trace(&snap).write_compact(&mut doc);
        doc
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let trace = parse_chrome_trace(&sample_trace_doc()).expect("parses");
        assert_eq!(trace.lanes, vec!["main".to_string(), "worker-0".to_string()]);
        assert_eq!(trace.spans.len(), 4);
        let replay = trace
            .spans
            .iter()
            .find(|s| s.cat == "ckpt:replay")
            .expect("nested replay span");
        assert_eq!(replay.depth, 1, "replay nests inside the cell span");
        assert_eq!(replay.lane, "worker-0");
        let cell = trace.spans.iter().find(|s| s.cat == "cell").expect("cell span");
        assert_eq!(cell.depth, 0);
        assert_eq!(cell.name, "cell:GUPSxIC+LDS#3");
        assert!((trace.wall_ms() - 100.0).abs() < 1e-6);
        assert_eq!(trace.counters.len(), 2);
        assert!(expect_workers(&trace, 1).is_ok());
        assert!(expect_workers(&trace, 2).is_err());
    }

    #[test]
    fn summary_reports_phase_coverage_and_critical_path() {
        let trace = parse_chrome_trace(&sample_trace_doc()).expect("parses");
        let text = summary(&trace);
        assert!(text.contains("per-phase breakdown"), "{text}");
        // Main lane covers the full 100 ms wall: 60 ms figure + 40 ms
        // export = 100% coverage.
        assert!(text.contains("100.0% of trace wall"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("per-worker utilization"), "{text}");
        assert!(text.contains("ckpt.cache_hit"), "{text}");
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
        // An E without a B is unbalanced.
        let bad = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":1.0}]}"#;
        assert!(parse_chrome_trace(bad).unwrap_err().contains("unbalanced"));
        // A B without an E is unbalanced too.
        let bad = r#"{"traceEvents":[{"ph":"B","name":"x","pid":1,"tid":0,"ts":1.0}]}"#;
        assert!(parse_chrome_trace(bad).unwrap_err().contains("unbalanced"));
    }

    #[test]
    fn bench_history_trend_flags_regressions() {
        let mk = |commit: &str, rate: f64| MatrixPerfReport {
            commit: commit.into(),
            scale: "paper".into(),
            wall_ms: 1000.0,
            cpu_ms: Some(980.0),
            cells: 40,
            sim_cycles: 44_523_456,
            cells_per_sec: rate,
            exact_sim_cycles: Some(44_430_672),
            exact_cells_per_sec: Some(rate * 0.9),
            phases: vec![PhaseTotal { name: "cells".into(), wall_ms: 900.0, cpu_ms: Some(890.0) }],
        };
        let mut doc = perf::append_history("", &mk("aaa", 4.0).to_json());
        doc = perf::append_history(&doc, &mk("bbb", 5.0).to_json());
        doc = perf::append_history(&doc, &mk("ccc", 2.0).to_json());
        let report = bench_history_report("BENCH_matrix_paper.json", &doc, 20.0).expect("parses");
        assert!(report.contains("3 record(s)"), "{report}");
        assert!(report.contains("REGRESS"), "2.0 after 5.0 is beyond 20%: {report}");
        assert!(report.contains("improved"), "5.0 after 4.0 is +25%: {report}");
        assert!(report.contains("latest phases: cells 900ms"), "{report}");
        assert!(report.contains("anchor 44523456"), "{report}");
        // The rot gate: an unparseable record fails the whole report.
        assert!(bench_history_report("x", "[{\"commit\": 3}]", 20.0).is_err());
        assert!(bench_history_report("x", "", 20.0).is_err());
    }

    #[test]
    fn serve_history_tracks_speedup() {
        let mk = |commit: &str, speedup: f64| perf::ServePerfReport {
            commit: commit.into(),
            scale: "tiny".into(),
            cells: 40,
            cold_p50_us: 120_000,
            cold_p90_us: 250_000,
            cold_p99_us: 400_000,
            hot_p50_us: (120_000.0 / speedup) as u64,
            hot_p90_us: 200,
            hot_p99_us: 500,
            hot_hit_rate_pct: 100.0,
            simulations: 40,
            speedup_p50: speedup,
        };
        let mut doc = perf::append_history("", &mk("aaa", 1500.0).to_json());
        doc = perf::append_history(&doc, &mk("bbb", 900.0).to_json());
        let report = bench_history_report("BENCH_serve_latency.json", &doc, 20.0).expect("parses");
        assert!(report.contains("2 record(s)"), "{report}");
        assert!(report.contains("x hot"), "{report}");
        assert!(report.contains("cold p50 120000us"), "{report}");
        assert!(report.contains("cells 40"), "{report}");
        assert!(report.contains("REGRESS"), "900 after 1500 is beyond 20%: {report}");
    }

    #[test]
    fn throughput_history_uses_cycles_per_sec() {
        let r = PerfReport {
            commit: "abc".into(),
            scale: "tiny".into(),
            wall_ms: 700.0,
            cpu_ms: None,
            sim_cycles: 3_977_625,
            cycles_per_sec: 5_600_000.0,
            phases: Vec::new(),
        };
        let doc = perf::append_history("", &r.to_json());
        let report = bench_history_report("BENCH_sim_throughput.json", &doc, 20.0).expect("parses");
        assert!(report.contains("cycles/s"), "{report}");
        assert!(report.contains("cpu n/a"), "null cpu_ms must be stated: {report}");
        assert!(report.contains("anchor 3977625"), "{report}");
    }
}
