//! Structured event tracing: a zero-cost-when-disabled observability
//! hook for the simulation hot path.
//!
//! The simulator's aggregate [`crate::stats`] answer *how much*; a
//! trace answers *when and in what order*. Components emit typed
//! [`TraceEvent`]s through a [`TraceSink`]; the default [`NullSink`]
//! reports `enabled() == false`, and every emission site is required
//! to gate event *construction* behind that flag, so a disabled trace
//! costs one predictable branch per site — no allocation, no
//! formatting, no virtual dispatch beyond the initial check.
//!
//! `gtr-sim` otherwise contains no GPU- or VM-specific logic; the
//! event vocabulary is the one deliberate exception. It lives here —
//! below every crate that emits — because the alternative (a generic
//! `&dyn Any` event bus) would trade type safety for layering purity
//! on a workspace-private trait.
//!
//! Sinks:
//!
//! * [`NullSink`] — disabled; the default everywhere.
//! * [`JsonlSink`] — one compact JSON object per line (JSON Lines),
//!   buffered, with a reused serialization buffer.
//! * [`MemorySink`] — collects events in a `Vec` for tests.
//!
//! # Example
//!
//! ```
//! use gtr_sim::trace::{MemorySink, TraceEvent, TracePath, TraceSink};
//!
//! let mut sink = MemorySink::new();
//! if sink.enabled() {
//!     sink.emit(&TraceEvent::Translation {
//!         cycle: 100,
//!         cu: 0,
//!         vpn: 0x42,
//!         vmid: 0,
//!         path: TracePath::Walk,
//!         latency: 815,
//!     });
//! }
//! assert_eq!(sink.events().len(), 1);
//! ```

use std::io::Write;

use crate::json::Json;
use crate::Cycle;

/// How a translation request was resolved (the six outcomes of the
/// paper's Fig-12 lookup path, in probe order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePath {
    /// Hit in the CU's L1 TLB.
    L1Hit,
    /// Merged with an in-flight miss to the same page.
    Merged,
    /// Hit in the reconfigurable LDS (Tx-mode segment).
    LdsTx,
    /// Hit in the reconfigurable I-cache (Tx-mode line).
    IcTx,
    /// Hit in the L2 TLB (or an attached side cache such as DUCATI).
    L2Tlb,
    /// Full IOMMU page walk.
    Walk,
}

impl TracePath {
    /// Stable lowercase label used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            TracePath::L1Hit => "l1_hit",
            TracePath::Merged => "merged",
            TracePath::LdsTx => "lds_tx",
            TracePath::IcTx => "ic_tx",
            TracePath::L2Tlb => "l2_tlb",
            TracePath::Walk => "walk",
        }
    }

    /// All paths, indexable by the simulator's internal path code.
    pub const ALL: [TracePath; 6] = [
        TracePath::L1Hit,
        TracePath::Merged,
        TracePath::LdsTx,
        TracePath::IcTx,
        TracePath::L2Tlb,
        TracePath::Walk,
    ];
}

/// Which structure of the victim fill flow an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStructure {
    /// A reconfigurable-LDS segment.
    Lds,
    /// A reconfigurable-I-cache line.
    Icache,
    /// The shared L2 TLB (terminal stop of the fill flow).
    L2Tlb,
}

impl TxStructure {
    /// Stable lowercase label used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            TxStructure::Lds => "lds",
            TxStructure::Icache => "icache",
            TxStructure::L2Tlb => "l2_tlb",
        }
    }
}

/// One lifecycle event. Variants mirror the paper's mechanisms:
/// translation resolution (Fig 12), victim fills and evictions (§4.2,
/// §4.3), LDS segment mode transitions (§4.2.4), kernel-boundary
/// instruction flushes (§4.3.3) and driver shootdowns (§7.1).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A translation request resolved via `path` after `latency`
    /// cycles.
    Translation {
        /// Request issue cycle.
        cycle: Cycle,
        /// Requesting compute unit.
        cu: u32,
        /// Virtual page number.
        vpn: u64,
        /// Address-space (VM) id.
        vmid: u8,
        /// Where the request was satisfied.
        path: TracePath,
        /// Cycles from issue to completion.
        latency: Cycle,
    },
    /// A translation was written into a victim structure. `mode_flip`
    /// marks the write that switched an Idle LDS segment or a
    /// non-Tx I-cache line into Tx mode.
    VictimInsert {
        /// Cycle the fill flow ran (the triggering request's service
        /// time) — the birth instant for victim-entry lifetime
        /// analysis.
        cycle: Cycle,
        /// Structure written.
        structure: TxStructure,
        /// Virtual page number stored.
        vpn: u64,
        /// Address-space id.
        vmid: u8,
        /// VPN displaced by this write, if any.
        evicted_vpn: Option<u64>,
        /// Address-space id of the displaced entry (`Some` exactly
        /// when `evicted_vpn` is).
        evicted_vmid: Option<u8>,
        /// Whether the write claimed new Tx capacity.
        mode_flip: bool,
    },
    /// A fill candidate was refused (App-mode segment or
    /// instruction-owned line under instruction-aware replacement).
    VictimBypass {
        /// Cycle the fill flow ran.
        cycle: Cycle,
        /// Structure that refused the candidate.
        structure: TxStructure,
        /// Virtual page number of the candidate.
        vpn: u64,
        /// Address-space id.
        vmid: u8,
    },
    /// LDS segments changed ownership: a workgroup allocation claimed
    /// (`to_app == true`, §4.2.4 overwrite) or released
    /// (`to_app == false`) the byte range.
    LdsMode {
        /// Compute unit whose LDS changed.
        cu: u32,
        /// First byte of the range.
        base: u32,
        /// Length of the range in bytes.
        size: u32,
        /// `true` → App mode, `false` → back to Idle.
        to_app: bool,
    },
    /// A kernel launch began.
    KernelBegin {
        /// Launch cycle.
        cycle: Cycle,
        /// Index in the application's launch sequence.
        index: u32,
        /// Kernel name.
        name: String,
    },
    /// A kernel's last wavefront retired.
    KernelEnd {
        /// Completion cycle.
        cycle: Cycle,
        /// Index in the application's launch sequence.
        index: u32,
        /// Kernel name.
        name: String,
    },
    /// A kernel-boundary flush dropped dead instruction lines (§4.3.3)
    /// from one I-cache, freeing them for translations.
    KernelFlush {
        /// Flush cycle (the upcoming launch's start).
        cycle: Cycle,
        /// Which I-cache group flushed.
        icache: u32,
        /// Instruction lines invalidated.
        lines: u64,
    },
    /// A driver page migration invalidated one page everywhere (§7.1).
    Shootdown {
        /// Migrated virtual page number.
        vpn: u64,
        /// Address-space id.
        vmid: u8,
        /// L1 TLB entries invalidated (across CUs).
        l1: u32,
        /// Whether the L2 TLB held the page.
        l2: bool,
        /// Reconfigurable-LDS entries invalidated.
        lds: u32,
        /// Reconfigurable-I-cache entries invalidated.
        ic: u32,
    },
}

impl TraceEvent {
    /// Stable `type` discriminator used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Translation { .. } => "translation",
            TraceEvent::VictimInsert { .. } => "victim_insert",
            TraceEvent::VictimBypass { .. } => "victim_bypass",
            TraceEvent::LdsMode { .. } => "lds_mode",
            TraceEvent::KernelBegin { .. } => "kernel_begin",
            TraceEvent::KernelEnd { .. } => "kernel_end",
            TraceEvent::KernelFlush { .. } => "kernel_flush",
            TraceEvent::Shootdown { .. } => "shootdown",
        }
    }

    /// The event as a JSON object (`type` first, then the fields in
    /// declaration order).
    pub fn to_json(&self) -> Json {
        let mut f: Vec<(String, Json)> = vec![("type".into(), Json::from(self.kind()))];
        match self {
            TraceEvent::Translation { cycle, cu, vpn, vmid, path, latency } => {
                f.push(("cycle".into(), Json::from(*cycle)));
                f.push(("cu".into(), Json::from(*cu as u64)));
                f.push(("vpn".into(), Json::from(*vpn)));
                f.push(("vmid".into(), Json::from(*vmid as u64)));
                f.push(("path".into(), Json::from(path.as_str())));
                f.push(("latency".into(), Json::from(*latency)));
            }
            TraceEvent::VictimInsert {
                cycle,
                structure,
                vpn,
                vmid,
                evicted_vpn,
                evicted_vmid,
                mode_flip,
            } => {
                f.push(("cycle".into(), Json::from(*cycle)));
                f.push(("structure".into(), Json::from(structure.as_str())));
                f.push(("vpn".into(), Json::from(*vpn)));
                f.push(("vmid".into(), Json::from(*vmid as u64)));
                f.push((
                    "evicted_vpn".into(),
                    evicted_vpn.map_or(Json::Null, Json::from),
                ));
                f.push((
                    "evicted_vmid".into(),
                    evicted_vmid.map_or(Json::Null, |v| Json::from(v as u64)),
                ));
                f.push(("mode_flip".into(), Json::from(*mode_flip)));
            }
            TraceEvent::VictimBypass { cycle, structure, vpn, vmid } => {
                f.push(("cycle".into(), Json::from(*cycle)));
                f.push(("structure".into(), Json::from(structure.as_str())));
                f.push(("vpn".into(), Json::from(*vpn)));
                f.push(("vmid".into(), Json::from(*vmid as u64)));
            }
            TraceEvent::LdsMode { cu, base, size, to_app } => {
                f.push(("cu".into(), Json::from(*cu as u64)));
                f.push(("base".into(), Json::from(*base as u64)));
                f.push(("size".into(), Json::from(*size as u64)));
                f.push(("to_app".into(), Json::from(*to_app)));
            }
            TraceEvent::KernelBegin { cycle, index, name }
            | TraceEvent::KernelEnd { cycle, index, name } => {
                f.push(("cycle".into(), Json::from(*cycle)));
                f.push(("index".into(), Json::from(*index as u64)));
                f.push(("name".into(), Json::from(name.as_str())));
            }
            TraceEvent::KernelFlush { cycle, icache, lines } => {
                f.push(("cycle".into(), Json::from(*cycle)));
                f.push(("icache".into(), Json::from(*icache as u64)));
                f.push(("lines".into(), Json::from(*lines)));
            }
            TraceEvent::Shootdown { vpn, vmid, l1, l2, lds, ic } => {
                f.push(("vpn".into(), Json::from(*vpn)));
                f.push(("vmid".into(), Json::from(*vmid as u64)));
                f.push(("l1".into(), Json::from(*l1 as u64)));
                f.push(("l2".into(), Json::from(*l2)));
                f.push(("lds".into(), Json::from(*lds as u64)));
                f.push(("ic".into(), Json::from(*ic as u64)));
            }
        }
        Json::Obj(f)
    }
}

/// Receiver of [`TraceEvent`]s.
///
/// The contract that keeps tracing off the critical path: emitters
/// MUST check [`TraceSink::enabled`] before constructing an event, so
/// sinks can assume `emit` is only called when enabled, and disabled
/// runs never pay for event construction (some events allocate, e.g.
/// kernel names).
pub trait TraceSink: std::fmt::Debug {
    /// Whether events should be constructed and emitted at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. Only called when [`TraceSink::enabled`] is
    /// `true`.
    fn emit(&mut self, event: &TraceEvent);

    /// Flushes any buffered output (end of run).
    fn flush(&mut self) {}
}

/// The default sink: permanently disabled, every call a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Collects events in memory — the sink the tests use.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events emitted so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Writes one compact JSON object per event, newline-separated
/// (JSON Lines). The serialization buffer is reused across events, so
/// steady-state emission performs no allocation beyond the writer's
/// own buffering.
#[derive(Debug)]
pub struct JsonlSink<W: Write + std::fmt::Debug> {
    out: W,
    buf: String,
    written: u64,
    failed: bool,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and returns a buffered sink over it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + std::fmt::Debug> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self { out, buf: String::with_capacity(256), written: 0, failed: false }
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether any write failed (the sink goes quiet rather than
    /// panicking mid-simulation; callers check after the run).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write + std::fmt::Debug> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        self.buf.clear();
        event.to_json().write_compact(&mut self.buf);
        self.buf.push('\n');
        if self.out.write_all(self.buf.as_bytes()).is_err() {
            self.failed = true;
            return;
        }
        self.written += 1;
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::KernelBegin { cycle: 0, index: 0, name: "k0".into() },
            TraceEvent::Translation {
                cycle: 10,
                cu: 3,
                vpn: 0xabc,
                vmid: 1,
                path: TracePath::LdsTx,
                latency: 41,
            },
            TraceEvent::VictimInsert {
                cycle: 11,
                structure: TxStructure::Lds,
                vpn: 7,
                vmid: 0,
                evicted_vpn: Some(9),
                evicted_vmid: Some(0),
                mode_flip: true,
            },
            TraceEvent::VictimBypass { cycle: 12, structure: TxStructure::Icache, vpn: 8, vmid: 0 },
            TraceEvent::LdsMode { cu: 2, base: 0, size: 4096, to_app: true },
            TraceEvent::KernelFlush { cycle: 99, icache: 1, lines: 128 },
            TraceEvent::Shootdown { vpn: 5, vmid: 0, l1: 2, l2: true, lds: 1, ic: 0 },
            TraceEvent::KernelEnd { cycle: 123, index: 0, name: "k0".into() },
        ]
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        for e in sample_events() {
            assert!(sink.enabled());
            sink.emit(&e);
        }
        assert_eq!(sink.events(), sample_events().as_slice());
    }

    #[test]
    fn jsonl_lines_parse_and_carry_type() {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        let events = sample_events();
        for e in &events {
            sink.emit(e);
        }
        assert_eq!(sink.written(), events.len() as u64);
        assert!(!sink.failed());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let j = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
            assert_eq!(j.get("type").and_then(Json::as_str), Some(event.kind()));
        }
    }

    #[test]
    fn translation_event_fields_survive_encoding() {
        let e = TraceEvent::Translation {
            cycle: 1234,
            cu: 7,
            vpn: u32::MAX as u64 + 17,
            vmid: 3,
            path: TracePath::Walk,
            latency: 815,
        };
        let j = Json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(j.get("cycle").and_then(Json::as_u64), Some(1234));
        assert_eq!(j.get("cu").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("vpn").and_then(Json::as_u64), Some(u32::MAX as u64 + 17));
        assert_eq!(j.get("path").and_then(Json::as_str), Some("walk"));
        assert_eq!(j.get("latency").and_then(Json::as_u64), Some(815));
    }

    #[test]
    fn path_labels_are_distinct() {
        let mut labels: Vec<&str> = TracePath::ALL.iter().map(|p| p.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
