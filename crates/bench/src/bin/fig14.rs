//! Regenerates Figure 14 (sharing, normalized walks, page sizes).
fn main() {
    let scale = scale_from_args();
    let m = gtr_bench::figures::main_matrix(scale);
    println!("{}", gtr_bench::figures::fig14ab_from(&m));
    println!("{}", gtr_bench::figures::fig14c(scale));
}

fn scale_from_args() -> gtr_workloads::scale::Scale {
    if std::env::args().any(|a| a == "--quick") {
        gtr_workloads::scale::Scale::quick()
    } else if std::env::args().any(|a| a == "--tiny") {
        gtr_workloads::scale::Scale::tiny()
    } else {
        gtr_workloads::scale::Scale::paper()
    }
}
