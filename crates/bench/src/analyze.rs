//! Trace-replay analysis: the library half of the `gtr-analyze`
//! binary.
//!
//! A JSONL trace (`--trace`) and an exported stats document
//! (`--stats-out`) describe the same run through two independent code
//! paths: the trace is emitted event by event from inside the
//! simulator, the stats are aggregated counters finalized at run end.
//! [`replay_jsonl`] re-derives the aggregate view from the event
//! stream alone — counting translations per resolution path, re-adding
//! latencies into fresh histograms, and running the *same*
//! [`VictimLifetimes`] state machine the simulator used — and
//! [`check_against_stats`] then demands the two views agree exactly.
//! Any divergence means a dropped/duplicated event, a truncated trace,
//! or a recording bug, so CI treats a non-empty report as failure.
//!
//! [`diff_stats`] is the second tool: a per-metric relative comparison
//! of two stats documents (e.g. a fresh run against a committed
//! golden file), including distribution quantiles when both sides
//! recorded them.

use gtr_core::obs::VictimLifetimes;
use gtr_core::stats::RunStats;
use gtr_sim::hist::Hist;
use gtr_sim::json::Json;
use gtr_sim::trace::{TracePath, TxStructure};

/// Aggregate state reconstructed from a JSONL trace by
/// [`replay_jsonl`] — the replay-side mirror of the counters the
/// simulator exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// Total `translation` events seen.
    pub translations: u64,
    /// Translation count per resolution path
    /// ([`TracePath::ALL`] order) — the replayed cycle attribution.
    pub path_counts: [u64; 6],
    /// Summed translation latency per resolution path.
    pub path_cycles: [u64; 6],
    /// Replayed per-path latency histograms.
    pub lat: [Hist; 6],
    /// Replayed victim lifetime/reuse tracking (the same state machine
    /// the simulator runs when distributions are armed).
    pub victim: VictimLifetimes,
    /// `(index, name, cycle)` per `kernel_begin` event, in order.
    pub kernel_begins: Vec<(u32, String, u64)>,
    /// `(index, name, cycle)` per `kernel_end` event, in order.
    pub kernel_ends: Vec<(u32, String, u64)>,
    /// `shootdown` events seen.
    pub shootdowns: u64,
    /// Total events parsed (all types).
    pub events: u64,
}

fn path_from_label(label: &str) -> Option<usize> {
    TracePath::ALL.iter().position(|p| p.as_str() == label)
}

fn structure_from_label(label: &str) -> Option<TxStructure> {
    [TxStructure::Lds, TxStructure::Icache, TxStructure::L2Tlb]
        .into_iter()
        .find(|s| s.as_str() == label)
}

fn req_u64(j: &Json, field: &str) -> Result<u64, String> {
    j.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{field}'"))
}

fn req_str<'a>(j: &'a Json, field: &str) -> Result<&'a str, String> {
    j.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field '{field}'"))
}

/// Replays a JSONL trace, reconstructing the aggregate view the
/// simulator exported for the same run.
///
/// Every line must parse as one trace event; errors carry the
/// 1-indexed line number. A trace whose `kernel_begin` events
/// outnumber its `kernel_end`s is rejected as truncated — the
/// simulator always closes every kernel before flushing the sink, so
/// an open kernel means the file lost its tail.
pub fn replay_jsonl(text: &str) -> Result<Replay, String> {
    let mut r = Replay::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        let j = Json::parse(line)
            .map_err(|e| format!("line {lineno}: not valid JSON ({e}); trace appears truncated or corrupt"))?;
        let kind = req_str(&j, "type").map_err(|e| format!("line {lineno}: {e}"))?.to_string();
        let step = |r: &mut Replay, j: &Json| -> Result<(), String> {
            match kind.as_str() {
                "translation" => {
                    let label = req_str(j, "path")?;
                    let path = path_from_label(label)
                        .ok_or_else(|| format!("unknown translation path '{label}'"))?;
                    let latency = req_u64(j, "latency")?;
                    let vpn = req_u64(j, "vpn")?;
                    let vmid = req_u64(j, "vmid")? as u8;
                    r.translations += 1;
                    r.path_counts[path] += 1;
                    r.path_cycles[path] += latency;
                    r.lat[path].record(latency);
                    // Victim hits mirror the simulator's recording
                    // point: after the request's own fill flow ran, so
                    // natural line order (inserts precede the
                    // translation line) is already correct.
                    match path {
                        2 => r.victim.hit(TxStructure::Lds, vpn, vmid),
                        3 => r.victim.hit(TxStructure::Icache, vpn, vmid),
                        _ => {}
                    }
                }
                "victim_insert" => {
                    let label = req_str(j, "structure")?;
                    let structure = structure_from_label(label)
                        .ok_or_else(|| format!("unknown victim structure '{label}'"))?;
                    let vpn = req_u64(j, "vpn")?;
                    let vmid = req_u64(j, "vmid")? as u8;
                    let cycle = req_u64(j, "cycle")?;
                    let evicted = match (
                        j.get("evicted_vpn").and_then(Json::as_u64),
                        j.get("evicted_vmid").and_then(Json::as_u64),
                    ) {
                        (Some(v), Some(m)) => Some((v, m as u8)),
                        _ => None,
                    };
                    r.victim.insert(structure, vpn, vmid, evicted, cycle);
                }
                "kernel_begin" | "kernel_end" => {
                    let index = req_u64(j, "index")? as u32;
                    let name = req_str(j, "name")?.to_string();
                    let cycle = req_u64(j, "cycle")?;
                    if kind == "kernel_begin" {
                        r.kernel_begins.push((index, name, cycle));
                    } else {
                        r.kernel_ends.push((index, name, cycle));
                    }
                }
                "shootdown" => {
                    let vpn = req_u64(j, "vpn")?;
                    let vmid = req_u64(j, "vmid")? as u8;
                    r.victim.shootdown(vpn, vmid);
                    r.shootdowns += 1;
                }
                "victim_bypass" | "lds_mode" | "kernel_flush" => {}
                other => return Err(format!("unknown event type '{other}'")),
            }
            Ok(())
        };
        step(&mut r, &j).map_err(|e| format!("line {lineno}: {e}"))?;
        r.events += 1;
    }
    if r.kernel_begins.len() != r.kernel_ends.len() {
        return Err(format!(
            "trace appears truncated: {} kernel_begin events but only {} kernel_end",
            r.kernel_begins.len(),
            r.kernel_ends.len()
        ));
    }
    Ok(r)
}

/// Compares a replayed trace against an exported stats document.
/// Returns human-readable divergences (empty = the trace independently
/// reproduces the stats).
///
/// The checked subset is exactly what the trace can know: translation
/// counts and per-path cycle attribution, the scalar hit counters the
/// paths imply, the kernel launch sequence, run length, and — when
/// the run recorded distributions — exact equality of the latency and
/// victim lifetime/reuse histograms.
pub fn check_against_stats(r: &Replay, s: &RunStats, schema_version: u64) -> Vec<String> {
    let mut problems = Vec::new();
    if schema_version < 2 {
        problems.push(format!(
            "stats document is schema v{schema_version}: replay verification needs the \
             v2 cycle attribution (re-export with the current binaries)"
        ));
        return problems;
    }
    fn check(problems: &mut Vec<String>, name: &str, got: u64, want: u64) {
        if got != want {
            problems.push(format!("{name}: replayed {got} != exported {want}"));
        }
    }
    check(&mut problems, "translation_requests", r.translations, s.translation_requests);
    for (i, slot) in s.attribution.slots.iter().enumerate() {
        let label = TracePath::ALL[i].as_str();
        check(&mut problems, &format!("attribution[{label}].count"), r.path_counts[i], slot.count);
        check(&mut problems, &format!("attribution[{label}].cycles"), r.path_cycles[i], slot.cycles);
    }
    check(&mut problems, "l1_tlb.hits", r.path_counts[0], s.l1_tlb.hits);
    check(&mut problems, "lds_tx.hits", r.path_counts[2], s.lds_tx.hits);
    check(&mut problems, "ic_tx.hits", r.path_counts[3], s.ic_tx.hits);
    check(&mut problems, "kernel launches", r.kernel_ends.len() as u64, s.kernels.len() as u64);
    for (i, ((_, name, _), k)) in r.kernel_ends.iter().zip(&s.kernels).enumerate() {
        if name != &k.name {
            problems.push(format!(
                "kernel {i}: trace ended '{name}' but stats recorded '{}'",
                k.name
            ));
        }
    }
    if let Some((_, _, cycle)) = r.kernel_ends.last() {
        check(&mut problems, "final kernel_end cycle", *cycle, s.total_cycles);
    }
    if s.dist_enabled {
        for (i, (replayed, exported)) in r.lat.iter().zip(&s.latency_hists).enumerate() {
            if replayed != exported {
                problems.push(format!(
                    "latency histogram '{}' diverges (replayed count {} sum {}, \
                     exported count {} sum {})",
                    TracePath::ALL[i].as_str(),
                    replayed.count(),
                    replayed.sum(),
                    exported.count(),
                    exported.sum()
                ));
            }
        }
        let victim_pairs: [(&str, &Hist, &Hist); 4] = [
            ("victim_lifetime_lds", &r.victim.lifetime_lds, &s.victim_lifetime_lds),
            ("victim_lifetime_ic", &r.victim.lifetime_ic, &s.victim_lifetime_ic),
            ("victim_reuse_lds", &r.victim.reuse_lds, &s.victim_reuse_lds),
            ("victim_reuse_ic", &r.victim.reuse_ic, &s.victim_reuse_ic),
        ];
        for (name, replayed, exported) in victim_pairs {
            if replayed != exported {
                problems.push(format!(
                    "{name} histogram diverges (replayed count {} sum {}, \
                     exported count {} sum {})",
                    replayed.count(),
                    replayed.sum(),
                    exported.count(),
                    exported.sum()
                ));
            }
        }
    }
    problems
}

/// One row of a [`diff_stats`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric name (dotted path, e.g. `l1_tlb.hits`).
    pub metric: String,
    /// Value in the first document.
    pub a: f64,
    /// Value in the second document.
    pub b: f64,
    /// Relative delta `(b - a) / a`; `0` when equal (including both
    /// zero), infinite when `a == 0 != b`.
    pub rel: f64,
}

impl DiffRow {
    fn new(metric: &str, a: f64, b: f64) -> Self {
        let rel = if a == b {
            0.0
        } else if a == 0.0 {
            f64::INFINITY
        } else {
            (b - a) / a
        };
        Self { metric: metric.to_string(), a, b, rel }
    }
}

/// Metric families recorded in only one of the two documents — each
/// entry names the family and which side has it. [`diff_stats`] can
/// only compare what both sides recorded, so a non-empty return means
/// the diff is structurally incomplete; `gtr-analyze --diff` treats
/// that as failure rather than silently comparing the intersection
/// (the old behaviour, which let a `--percentiles` regression slip
/// past a golden-file gate unnoticed).
pub fn missing_metrics(a: &RunStats, b: &RunStats) -> Vec<String> {
    let mut missing = Vec::new();
    let mut asym = |name: &str, in_a: bool, in_b: bool| {
        if in_a != in_b {
            missing.push(format!(
                "{name}: recorded in {} only",
                if in_a { "the first document" } else { "the second document" }
            ));
        }
    };
    asym(
        "distribution histograms (latency quantiles, victim lifetime/reuse)",
        a.dist_enabled,
        b.dist_enabled,
    );
    asym("epoch counter series", !a.epochs.is_empty(), !b.epochs.is_empty());
    asym("sampling metadata", a.sampling.is_some(), b.sampling.is_some());
    missing
}

/// Compares two stats documents metric by metric, returning every
/// compared row (callers filter by `rel` against their tolerance).
/// Headline counters and the per-path cycle attribution are always
/// compared; distribution quantiles (p50/p90/p99 per path, victim
/// lifetime/reuse) are included only when **both** documents recorded
/// distributions — a scalar-only file diffs cleanly against itself.
/// Callers gating on a diff should also check [`missing_metrics`]:
/// rows alone cannot reveal that one side lacks a metric family.
pub fn diff_stats(a: &RunStats, b: &RunStats) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    let scalars: [(&str, u64, u64); 14] = [
        ("total_cycles", a.total_cycles, b.total_cycles),
        ("instructions", a.instructions, b.instructions),
        ("translation_requests", a.translation_requests, b.translation_requests),
        ("l1_tlb.hits", a.l1_tlb.hits, b.l1_tlb.hits),
        ("l1_tlb.misses", a.l1_tlb.misses, b.l1_tlb.misses),
        ("l2_tlb.hits", a.l2_tlb.hits, b.l2_tlb.hits),
        ("l2_tlb.misses", a.l2_tlb.misses, b.l2_tlb.misses),
        ("lds_tx.hits", a.lds_tx.hits, b.lds_tx.hits),
        ("ic_tx.hits", a.ic_tx.hits, b.ic_tx.hits),
        ("page_walks", a.page_walks, b.page_walks),
        ("pte_accesses", a.pte_accesses, b.pte_accesses),
        ("dram_accesses", a.dram_accesses, b.dram_accesses),
        ("peak_tx_entries", a.peak_tx_entries as u64, b.peak_tx_entries as u64),
        ("kernels", a.kernels.len() as u64, b.kernels.len() as u64),
    ];
    for (name, va, vb) in scalars {
        rows.push(DiffRow::new(name, va as f64, vb as f64));
    }
    rows.push(DiffRow::new("dram_energy_nj", a.dram_energy_nj, b.dram_energy_nj));
    rows.push(DiffRow::new("ptw_pki", a.ptw_pki(), b.ptw_pki()));
    for (i, (sa, sb)) in a.attribution.slots.iter().zip(&b.attribution.slots).enumerate() {
        let label = TracePath::ALL[i].as_str();
        rows.push(DiffRow::new(
            &format!("attribution.{label}.count"),
            sa.count as f64,
            sb.count as f64,
        ));
        rows.push(DiffRow::new(
            &format!("attribution.{label}.cycles"),
            sa.cycles as f64,
            sb.cycles as f64,
        ));
    }
    if a.dist_enabled && b.dist_enabled {
        for (i, (ha, hb)) in a.latency_hists.iter().zip(&b.latency_hists).enumerate() {
            let label = TracePath::ALL[i].as_str();
            for (q, name) in [(ha.p50(), "p50"), (ha.p90(), "p90"), (ha.p99(), "p99")] {
                let qb = match name {
                    "p50" => hb.p50(),
                    "p90" => hb.p90(),
                    _ => hb.p99(),
                };
                rows.push(DiffRow::new(
                    &format!("latency.{label}.{name}"),
                    q as f64,
                    qb as f64,
                ));
            }
        }
        let hists: [(&str, &Hist, &Hist); 4] = [
            ("victim_lifetime_lds", &a.victim_lifetime_lds, &b.victim_lifetime_lds),
            ("victim_lifetime_ic", &a.victim_lifetime_ic, &b.victim_lifetime_ic),
            ("victim_reuse_lds", &a.victim_reuse_lds, &b.victim_reuse_lds),
            ("victim_reuse_ic", &a.victim_reuse_ic, &b.victim_reuse_ic),
        ];
        for (name, ha, hb) in hists {
            rows.push(DiffRow::new(
                &format!("{name}.count"),
                ha.count() as f64,
                hb.count() as f64,
            ));
            rows.push(DiffRow::new(
                &format!("{name}.p50"),
                ha.p50() as f64,
                hb.p50() as f64,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_sim::trace::{JsonlSink, TraceEvent, TraceSink};

    fn event_lines(events: &[TraceEvent]) -> String {
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        for e in events {
            sink.emit(e);
        }
        String::from_utf8(sink.into_inner()).unwrap()
    }

    fn tiny_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::KernelBegin { cycle: 0, index: 0, name: "k0".into() },
            TraceEvent::VictimInsert {
                cycle: 5,
                structure: TxStructure::Lds,
                vpn: 7,
                vmid: 0,
                evicted_vpn: None,
                evicted_vmid: None,
                mode_flip: true,
            },
            TraceEvent::Translation {
                cycle: 10,
                cu: 0,
                vpn: 7,
                vmid: 0,
                path: TracePath::LdsTx,
                latency: 41,
            },
            TraceEvent::Translation {
                cycle: 20,
                cu: 1,
                vpn: 9,
                vmid: 0,
                path: TracePath::Walk,
                latency: 815,
            },
            TraceEvent::Shootdown { vpn: 7, vmid: 0, l1: 1, l2: false, lds: 1, ic: 0 },
            TraceEvent::KernelEnd { cycle: 900, index: 0, name: "k0".into() },
        ]
    }

    #[test]
    fn replay_reconstructs_counts_and_victim_state() {
        let r = replay_jsonl(&event_lines(&tiny_trace())).expect("replays");
        assert_eq!(r.translations, 2);
        assert_eq!(r.path_counts, [0, 0, 1, 0, 0, 1]);
        assert_eq!(r.path_cycles[2], 41);
        assert_eq!(r.path_cycles[5], 815);
        assert_eq!(r.lat[5].max(), 815);
        assert_eq!(r.kernel_ends, vec![(0, "k0".to_string(), 900)]);
        assert_eq!(r.shootdowns, 1);
        // The LDS entry was hit once then shot down: censored, so no
        // lifetime/reuse samples.
        assert_eq!(r.victim.lifetime_lds.count(), 0);
        assert_eq!(r.victim.live(), 0);
    }

    #[test]
    fn truncated_trace_rejected() {
        let lines = event_lines(&tiny_trace());
        // Drop the tail (the kernel_end line).
        let cut = lines.lines().take(5).collect::<Vec<_>>().join("\n");
        let err = replay_jsonl(&cut).unwrap_err();
        assert!(err.contains("truncated"), "got: {err}");
        // Cut mid-line: the partial JSON line fails with a line number.
        let mid = &lines[..lines.len() - 10];
        let err2 = replay_jsonl(mid).unwrap_err();
        assert!(err2.contains("line 6"), "got: {err2}");
    }

    #[test]
    fn unknown_event_type_rejected_with_line_number() {
        let err = replay_jsonl("{\"type\":\"warp_drive\"}\n").unwrap_err();
        assert!(err.contains("line 1") && err.contains("warp_drive"), "got: {err}");
    }

    #[test]
    fn missing_metrics_flags_one_sided_families() {
        let scalar = RunStats::default();
        let dist = RunStats { dist_enabled: true, ..Default::default() };
        assert!(missing_metrics(&scalar, &scalar).is_empty());
        assert!(missing_metrics(&dist, &dist).is_empty());
        let missing = missing_metrics(&dist, &scalar);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].contains("first document"), "got: {missing:?}");
        // Symmetric: the family is reported whichever side lacks it.
        let missing = missing_metrics(&scalar, &dist);
        assert!(missing[0].contains("second document"), "got: {missing:?}");
        // Epoch series presence is a family too.
        let epochs = RunStats {
            epochs: vec![gtr_core::stats::EpochStats::default()],
            ..Default::default()
        };
        let missing = missing_metrics(&epochs, &scalar);
        assert!(missing.iter().any(|m| m.contains("epoch")), "got: {missing:?}");
    }

    #[test]
    fn diff_rows_zero_on_identical_documents() {
        let s = RunStats::default();
        assert!(diff_stats(&s, &s).iter().all(|row| row.rel == 0.0));
    }

    #[test]
    fn diff_flags_changed_metric() {
        let a = RunStats { total_cycles: 1_000, ..Default::default() };
        let b = RunStats { total_cycles: 1_100, ..Default::default() };
        let rows = diff_stats(&a, &b);
        let row = rows.iter().find(|r| r.metric == "total_cycles").unwrap();
        assert!((row.rel - 0.1).abs() < 1e-12);
        // Zero → nonzero is an infinite relative delta, never a panic.
        let c = RunStats { page_walks: 5, ..Default::default() };
        let rows2 = diff_stats(&a, &c);
        let walk = rows2.iter().find(|r| r.metric == "page_walks").unwrap();
        assert!(walk.rel.is_infinite());
    }
}
