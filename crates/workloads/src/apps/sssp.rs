//! SSSP (Pannotia): single-source shortest paths via thousands of tiny
//! relaxation kernels.
//!
//! Table 2: 10,504 launches of two alternating kernels (scaled to 512
//! here — the paper itself notes "the pattern is similar across ~10K
//! kernels"), 99.8% L2 TLB hit ratio, Low PTW-PKI, small LDS use. The
//! per-kernel working set is tiny and hot, so the baseline TLBs
//! already cover it — SSSP is a "must not regress" control.

use gtr_gpu::kernel::{AppTrace, KernelDesc};
use gtr_sim::rng::SplitMix64;

use crate::gen::{into_workgroups, WaveBuilder, PAGE};
use crate::graph::CsrGraph;
use crate::scale::Scale;

/// Vertex count (small graph: ~300-page footprint).
pub const VERTICES: u64 = 32_768;

/// LDS bytes per workgroup.
pub const LDS_BYTES: u32 = 512;

/// Kernel launches at paper scale (scaled stand-in for 10,504).
pub const LAUNCHES: usize = 512;

/// Builds the SSSP trace.
pub fn build(scale: Scale) -> AppTrace {
    let graph = CsrGraph::generate(scale.seed() ^ 0x555, VERTICES, 8);
    let mut rng = SplitMix64::new(scale.seed() ^ 0x5550);
    let launches = scale.kernels(LAUNCHES);
    let mut kernels = Vec::with_capacity(launches);
    for i in 0..launches {
        let name = if i % 2 == 0 { "sssp_kernel1" } else { "sssp_kernel2" };
        let code = if i % 2 == 0 { 40 } else { 64 };
        let mut programs = Vec::with_capacity(8);
        for _ in 0..8 {
            let mut b = WaveBuilder::new(8);
            b.lds_write(0);
            for _ in 0..scale.count(20) {
                // Hot region: a few vertices relaxed repeatedly.
                let v = rng.next_below(graph.vertices / 16);
                b.stream_read(graph.row_ptr_addr(v));
                b.gather(&mut rng, graph.props_base, (graph.vertices * 4 / PAGE) / 8, 4);
            }
            b.lds_read(0);
            programs.push(b.build());
        }
        kernels.push(KernelDesc::new(name, code, LDS_BYTES, into_workgroups(programs, 2)));
    }
    AppTrace::new("SSSP", kernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_alternating_kernels() {
        let app = build(Scale::tiny());
        assert!(app.kernels().len() >= 2);
        assert!(!app.has_back_to_back_kernels());
        assert_eq!(app.distinct_kernels(), 2);
    }

    #[test]
    fn paper_scale_launch_count() {
        assert_eq!(build(Scale::paper()).kernels().len(), LAUNCHES);
    }

    #[test]
    fn small_hot_footprint() {
        // props region actively touched: vertices*4/8 bytes => few pages.
        let hot_pages = VERTICES * 4 / 4096 / 8;
        assert!(hot_pages < 512);
    }

    #[test]
    fn uses_lds() {
        assert_eq!(build(Scale::tiny()).kernels()[0].lds_bytes_per_wg(), LDS_BYTES);
    }
}
