//! # gtr-sim
//!
//! Deterministic discrete-event simulation engine underpinning the
//! `gpu-translation-reach` workspace.
//!
//! The engine follows a *resource-reservation* style of timing
//! simulation: model components are passive objects that own a
//! timeline of busy intervals (see [`resource::Server`]), and active
//! entities (wavefronts, page-table walkers, ...) advance by asking
//! components "given that I arrive at cycle `t`, when am I done?".
//! Completion events are ordered through [`event::EventQueue`], which
//! breaks ties with a monotonically increasing sequence number so that
//! simulations are bit-for-bit reproducible.
//!
//! The crate deliberately contains **no** GPU- or VM-specific logic;
//! it only provides:
//!
//! * [`event`] — a generic time-ordered event queue,
//! * [`fastmap`] — an open-addressed hash map for hot simulation
//!   state (no SipHash overhead, pre-sizable, allocation-free lookups),
//! * [`resource`] — contention models (multi-unit servers, ports with
//!   idle-gap tracking, pipelines),
//! * [`stats`] — counters, log-scale histograms, box-and-whisker
//!   samplers and geometric-mean helpers used by the experiment
//!   harnesses,
//! * [`hist`] — mergeable log-linear latency histograms and
//!   per-component cycle attribution (the distribution-metrics layer
//!   behind the schema-v2 stats export),
//! * [`rng`] — a tiny seeded `SplitMix64` generator so that core
//!   simulation code does not need an external RNG dependency,
//! * [`prof`] — a zero-cost-when-off *host-side* span profiler
//!   (RAII spans, per-worker timeline lanes, Chrome Trace Event
//!   Format writer) for the experiment harness — guest cycles are
//!   covered by [`trace`]/`hist`, host wall/CPU time by this,
//! * [`shard`] — per-shard ordered buffers with a deterministic
//!   epoch-barrier merge (`(cycle, shard, seq)` total order), the
//!   discipline that keeps partitioned simulation bit-reproducible
//!   for any worker count,
//! * [`trace`] — the zero-cost-when-disabled structured-event tracing
//!   hook ([`trace::TraceSink`], JSONL sink, typed lifecycle events),
//! * [`json`] — a dependency-free JSON tree/parser backing the JSONL
//!   trace encoding and the machine-readable stats export.
//!
//! # Example
//!
//! ```
//! use gtr_sim::resource::Server;
//!
//! // Two DMA engines, each transfer takes 100 cycles.
//! let mut dma = Server::new(2);
//! assert_eq!(dma.acquire(0, 100), 100);
//! assert_eq!(dma.acquire(0, 100), 100); // second unit, in parallel
//! assert_eq!(dma.acquire(0, 100), 200); // queues behind the first
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod event;
pub mod fastmap;
pub mod hist;
pub mod json;
pub mod prof;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod trace;

/// Simulation time, measured in GPU core cycles.
pub type Cycle = u64;
