//! Per-compute-unit state and wavefront runtime records.
//!
//! Everything in this module is private to one CU: its L1 TLB and
//! port, the in-flight miss table, its L1 data cache, its
//! reconfigurable LDS, and its SIMD issue pipelines. A CU shard may
//! mutate this state freely without synchronizing — only the
//! [`SharedHierarchy`](super::shared::SharedHierarchy) boundary
//! requires the deterministic epoch-barrier merge (ARCHITECTURE §8).

use gtr_gpu::config::GpuConfig;
use gtr_gpu::dispatch::Placement;
use gtr_mem::cache::Cache;
use gtr_sim::fastmap::FastMap;
use gtr_sim::resource::{Pipeline, Server, TrackedPort};
use gtr_sim::Cycle;
use gtr_vm::addr::{Ppn, TranslationKey};
use gtr_vm::tlb::Tlb;

use crate::config::ReachConfig;
use crate::lds_tx::TxLds;

/// Per-CU state.
#[derive(Debug)]
pub(super) struct Cu {
    pub(super) l1_tlb: Tlb,
    pub(super) l1_port: Server,
    /// In-flight L1 misses (for request merging). Open-addressed and
    /// pre-sized: probed on every translation, so SipHash and rehash
    /// stalls are off the critical path.
    pub(super) pending: FastMap<TranslationKey, (Cycle, Ppn)>,
    pub(super) l1d: Cache,
    pub(super) tx_lds: TxLds,
    pub(super) lds_port: TrackedPort,
    pub(super) simds: Vec<Pipeline>,
    pub(super) next_simd: usize,
}

impl Cu {
    /// Builds one cold compute unit for the machine configuration.
    /// With `reach.tenancy` set, the CU's L1 TLB and reconfigurable
    /// LDS are born under that sharing policy (TENANCY.md §3).
    pub(super) fn new(gpu: &GpuConfig, reach: &ReachConfig) -> Self {
        let mut l1_tlb = Tlb::new(gpu.l1_tlb);
        let mut tx_lds = TxLds::new(gpu.lds_bytes, reach.segment_size).with_index_shift(
            if reach.lds_home_hashing {
                (gpu.cus as u32).trailing_zeros()
            } else {
                0
            },
        );
        if let Some(tenancy) = reach.tenancy {
            l1_tlb.set_tenancy(Some(tenancy));
            tx_lds.set_tenancy(tenancy);
        }
        if let Some(max) = reach.tlb_coalescing {
            l1_tlb.set_coalescing(Some(max));
            tx_lds.set_coalescing(Some(max));
        }
        Cu {
            l1_tlb,
            l1_port: Server::new(1),
            pending: FastMap::with_capacity(1024),
            l1d: Cache::new(gpu.l1d),
            tx_lds,
            lds_port: TrackedPort::new(),
            simds: (0..gpu.simds_per_cu).map(|_| Pipeline::new(4, 4)).collect(),
            next_simd: 0,
        }
    }
}

/// Runtime state of one in-flight wavefront.
#[derive(Debug, Clone)]
pub(super) struct WaveRt {
    pub(super) wg_rt: usize,
    pub(super) kernel_wg: usize,
    pub(super) wave_idx: usize,
    pub(super) cu: usize,
    pub(super) simd: usize,
    pub(super) op_idx: usize,
    pub(super) inst_idx: u64,
    pub(super) cur_line: Option<u64>,
}

/// Runtime state of one in-flight workgroup.
#[derive(Debug, Clone)]
pub(super) struct WgRt {
    pub(super) placement: Placement,
    pub(super) lds_block: Option<(u32, u32)>,
    pub(super) waves_total: usize,
    pub(super) waves_done: usize,
    pub(super) barrier_arrived: usize,
    pub(super) parked: Vec<usize>,
}

/// Which interval-sampling window the simulation is currently inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum SampleMode {
    Warmup,
    Detail,
    Fastforward,
}
