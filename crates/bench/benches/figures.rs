//! `cargo bench --bench figures` — regenerates every table and figure
//! of the paper at the `quick` workload scale and prints the rows the
//! paper reports.
//!
//! This is a custom (non-Criterion) harness: the "benchmark" *is* the
//! experiment suite. Full-scale numbers (recorded in EXPERIMENTS.md)
//! come from `cargo run --release -p gtr-bench --bin all`.

use std::time::Instant;

use gtr_workloads::scale::Scale;

fn main() {
    // Honor `cargo bench -- --help`-style filter args minimally: any
    // argument selects a subset by substring match on section names.
    let filter: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let scale = Scale::quick();
    type Section = (&'static str, Box<dyn Fn() -> String>);
    let sections: Vec<Section> = vec![
        ("table1", Box::new(gtr_bench::figures::table1)),
        ("table2", Box::new(move || gtr_bench::figures::table2(scale))),
        ("fig02_03", Box::new(move || gtr_bench::figures::fig02_03(scale))),
        ("fig04_05", Box::new(move || gtr_bench::figures::fig04_05(scale))),
        ("fig11", Box::new(move || gtr_bench::figures::fig11(scale))),
        ("fig13a", Box::new(move || gtr_bench::figures::fig13a(scale))),
        ("fig13b", Box::new(move || gtr_bench::figures::fig13b(scale))),
        ("fig13c", Box::new(move || gtr_bench::figures::fig13c(scale))),
        (
            "fig14",
            Box::new(move || {
                let m = gtr_bench::figures::main_matrix(scale);
                format!(
                    "{}\n{}",
                    gtr_bench::figures::fig14ab_from(&m),
                    gtr_bench::figures::fig14c(scale)
                )
            }),
        ),
        ("fig15", Box::new(move || gtr_bench::figures::fig15(scale))),
        ("fig16a", Box::new(move || gtr_bench::figures::fig16a(scale))),
        ("fig16b", Box::new(move || gtr_bench::figures::fig16b(scale))),
        ("fig16c", Box::new(move || gtr_bench::figures::fig16c(scale))),
        (
            "ablation_segment",
            Box::new(move || gtr_bench::figures::ablation_segment_size(scale)),
        ),
    ];
    let total = Instant::now();
    for (name, f) in sections {
        if !filter.is_empty() && !filter.iter().any(|s| name.contains(s.as_str())) {
            continue;
        }
        let t = Instant::now();
        let out = f();
        println!("==== {name} ({:.1}s) ====", t.elapsed().as_secs_f64());
        println!("{out}");
    }
    println!(
        "figures bench complete in {:.1}s (quick scale; see EXPERIMENTS.md for paper scale)",
        total.elapsed().as_secs_f64()
    );
}
