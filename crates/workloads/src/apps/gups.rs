//! GUPS (HPCC RandomAccess µ-benchmark): random read-modify-write
//! updates over a huge table.
//!
//! Three kernels (Table 2): init (streaming writes), update (uniform
//! random RMW — the TLB worst case: 64 lanes, 64 distinct pages, no
//! reuse), and check (streaming verify). The table (64 K pages) is
//! ~4× larger than the combined reconfigurable reach, so GUPS gains
//! only modestly (+9.1% in the paper) despite its High PTW-PKI.

use gtr_gpu::kernel::{AppTrace, KernelDesc};
use gtr_sim::rng::SplitMix64;

use crate::gen::{into_workgroups, WaveBuilder};
use crate::scale::Scale;

/// Table size in 4 KB pages (256 MB).
pub const TABLE_PAGES: u64 = 65_536;

/// VA base of the update table.
pub const TABLE_BASE: u64 = 0x1_0000_0000;

/// Builds the GUPS trace.
pub fn build(scale: Scale) -> AppTrace {
    let mut rng = SplitMix64::new(scale.seed() ^ 0x6775_7073);
    let init = {
        let waves = 16usize;
        let ops = scale.count(24);
        let mut programs = Vec::with_capacity(waves);
        for w in 0..waves as u64 {
            let mut b = WaveBuilder::new(4);
            for i in 0..ops as u64 {
                b.stream_write(TABLE_BASE + (w * ops as u64 + i) * 256);
            }
            programs.push(b.build());
        }
        KernelDesc::new("gups_init", 16, 0, into_workgroups(programs, 4))
    };
    let update = {
        let waves = 32usize;
        let updates = scale.count(48);
        let mut programs = Vec::with_capacity(waves);
        for _ in 0..waves {
            let mut b = WaveBuilder::new(6);
            for _ in 0..updates {
                b.gather(&mut rng, TABLE_BASE, TABLE_PAGES, 64);
                b.scatter(&mut rng, TABLE_BASE, TABLE_PAGES, 64);
            }
            programs.push(b.build());
        }
        KernelDesc::new("gups_update", 24, 0, into_workgroups(programs, 4))
    };
    let check = {
        let waves = 16usize;
        let ops = scale.count(16);
        let mut programs = Vec::with_capacity(waves);
        for w in 0..waves as u64 {
            let mut b = WaveBuilder::new(4);
            for i in 0..ops as u64 {
                b.stream_read(TABLE_BASE + (w * ops as u64 + i) * 256);
            }
            programs.push(b.build());
        }
        KernelDesc::new("gups_check", 16, 0, into_workgroups(programs, 4))
    };
    AppTrace::new("GUPS", vec![init, update, check])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_distinct_kernels() {
        let app = build(Scale::tiny());
        assert_eq!(app.kernels().len(), 3);
        assert_eq!(app.distinct_kernels(), 3);
        assert!(!app.has_back_to_back_kernels());
    }

    #[test]
    fn update_kernel_fully_divergent() {
        let app = build(Scale::tiny());
        let update = &app.kernels()[1];
        let wave = &update.workgroups()[0].waves()[0];
        let global = wave.ops().iter().find(|o| o.is_global()).unwrap();
        if let gtr_gpu::ops::Op::Global {
            pattern: gtr_gpu::ops::AccessPattern::Lanes(lanes),
            ..
        } = global
        {
            let pages: std::collections::HashSet<u64> =
                lanes.iter().map(|a| a / 4096).collect();
            assert!(pages.len() > 48, "GUPS should be nearly fully divergent");
        } else {
            panic!("expected explicit lanes");
        }
    }

    #[test]
    fn footprint_exceeds_reconfigurable_reach() {
        // Combined reach: 12 K (LDS) + 4 K (IC) + 512 (L2) entries.
        const REACH: u64 = 12_288 + 4_096 + 512;
        let pages = TABLE_PAGES; // runtime binding silences const-fold lint
        assert!(pages > 3 * REACH);
    }

    #[test]
    fn deterministic() {
        assert_eq!(build(Scale::tiny()), build(Scale::tiny()));
    }
}
