//! Warmup checkpoints: capture-once, restore-many warm simulation
//! state for the `apps × variants` experiment matrix.
//!
//! A paper-scale matrix re-simulates an identical warmup phase from
//! cold state in every cell. A [`Checkpoint`] removes that redundancy:
//! it is produced **once per `(app, GPU config)` pair** by running the
//! app's warmup window in pure functional-warming mode on the baseline
//! [`ReachConfig`](crate::config::ReachConfig) and recording the
//! translation request stream (CU, key, resolved PPN). Because the
//! request stream that reaches the translation path is purely
//! functional — independent of the reach configuration, which only
//! changes *where* lookups hit and how long they take — the same
//! stream replays into **any** variant's own hierarchy via
//! [`System::restore_checkpoint`](crate::system::System::restore_checkpoint):
//! the variant's L1 TLBs, victim LDS/I-cache structures, L2 TLB, IOMMU
//! TLBs and page-walk caches all warm through their own fill flow, and
//! the page tables re-map frames in first-touch order (the
//! deterministic frame allocator reproduces identical PPNs).
//!
//! The bench harness `Arc`-shares one checkpoint across every variant
//! cell of an app row and optionally caches the serialized form on
//! disk ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`], built
//! on [`gtr_sim::arena`]).

use gtr_gpu::config::GpuConfig;
use gtr_gpu::kernel::AppTrace;
use gtr_sim::arena::{ArenaReader, ArenaWriter};
use gtr_vm::addr::{Ppn, TranslationKey, VmId, Vpn, VrfId};

use crate::config::ReachConfig;
use crate::system::System;

/// Serialization magic (`GTRC`) + format version.
const MAGIC: u32 = 0x4754_5243;
const VERSION: u32 = 1;

/// One recorded translation request: which CU asked for which page,
/// and which frame the deterministic allocator gave it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// Requesting CU index.
    pub cu: u32,
    /// The translation key (VPN + address-space + VRF ids).
    pub key: TranslationKey,
    /// The physical frame the capture run resolved the key to.
    pub ppn: Ppn,
}

/// A warm-state snapshot: the translation stream of one app's warmup
/// window on one GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Application name the stream was captured from.
    pub app: String,
    /// Fingerprint of the GPU configuration (restores must match).
    pub gpu_fingerprint: u64,
    /// The capture window, in executed wavefront instructions.
    pub warmup_insts: u64,
    /// The recorded translation stream, in request order.
    pub stream: Vec<CheckpointEntry>,
}

/// FNV-1a 64-bit hash of a string.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a GPU configuration (its full `Debug` rendering, so
/// any field change invalidates cached checkpoints).
pub fn gpu_fingerprint(gpu: &GpuConfig) -> u64 {
    fingerprint_str(&format!("{gpu:?}"))
}

impl Checkpoint {
    /// Captures a checkpoint: runs the first `warmup_insts`
    /// instructions of `app` on `gpu` with the baseline reach
    /// configuration in pure functional-warming mode and records the
    /// translation stream. Costs functional (not detailed) simulation
    /// time, once per `(app, gpu)` pair.
    pub fn capture(app: &AppTrace, gpu: &GpuConfig, warmup_insts: u64) -> Self {
        let mut sys = System::new(gpu.clone(), ReachConfig::baseline());
        let stream = sys.run_functional_capture(app, warmup_insts);
        Self {
            app: app.name().to_string(),
            gpu_fingerprint: gpu_fingerprint(gpu),
            warmup_insts,
            stream,
        }
    }

    /// Serializes into the arena wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ArenaWriter::with_capacity(32 + self.app.len() + self.stream.len() * 22);
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w.put_str(&self.app);
        w.put_u64(self.gpu_fingerprint);
        w.put_u64(self.warmup_insts);
        w.put_u64(self.stream.len() as u64);
        for e in &self.stream {
            w.put_u32(e.cu);
            w.put_u64(e.key.vpn.0);
            w.put_u8(e.key.vmid.raw());
            w.put_u8(e.key.vrf.raw());
            w.put_u64(e.ppn.0);
        }
        w.into_bytes()
    }

    /// Deserializes; `None` on wrong magic/version, truncation, or
    /// corruption.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = ArenaReader::new(bytes);
        if r.get_u32()? != MAGIC || r.get_u32()? != VERSION {
            return None;
        }
        let app = r.get_str()?.to_string();
        let gpu_fingerprint = r.get_u64()?;
        let warmup_insts = r.get_u64()?;
        let n = r.get_u64()? as usize;
        let mut stream = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            let cu = r.get_u32()?;
            let vpn = Vpn(r.get_u64()?);
            let vmid = VmId::new(r.get_u8()?);
            let vrf = VrfId::new(r.get_u8()?);
            let ppn = Ppn(r.get_u64()?);
            stream.push(CheckpointEntry { cu, key: TranslationKey { vpn, vmid, vrf }, ppn });
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(Self { app, gpu_fingerprint, warmup_insts, stream })
    }

    /// Whether this checkpoint was captured for `app` on `gpu` with
    /// the given window — the disk-cache validity test.
    pub fn matches(&self, app: &str, gpu: &GpuConfig, warmup_insts: u64) -> bool {
        self.app == app
            && self.gpu_fingerprint == gpu_fingerprint(gpu)
            && self.warmup_insts == warmup_insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            app: "GUPS".to_string(),
            gpu_fingerprint: 0xABCD_EF01_2345_6789,
            warmup_insts: 30_000,
            stream: (0..100u64)
                .map(|i| CheckpointEntry {
                    cu: (i % 8) as u32,
                    key: TranslationKey {
                        vpn: Vpn(i * 37),
                        vmid: VmId::new((i % 4) as u8),
                        vrf: VrfId::default(),
                    },
                    ppn: Ppn(1000 + i),
                })
                .collect(),
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("round trip");
        assert_eq!(ck, back);
    }

    #[test]
    fn corrupted_or_truncated_bytes_rejected() {
        let ck = sample();
        let bytes = ck.to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&wrong_magic).is_none());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Checkpoint::from_bytes(&trailing).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_gpu_configs() {
        let a = gpu_fingerprint(&GpuConfig::default());
        let b = gpu_fingerprint(&GpuConfig::default().with_l2_tlb_entries(2048));
        assert_ne!(a, b);
        let ck = sample();
        assert!(!ck.matches("GUPS", &GpuConfig::default(), 30_000), "fingerprint must match");
    }
}
