//! The full GPU system simulator.
//!
//! Executes an [`AppTrace`] on the Table-1 machine with the
//! reconfigurable translation-reach architecture switched on or off,
//! producing the [`RunStats`] behind every figure of the paper.
//!
//! ## Timing model
//!
//! Resource-reservation discrete-event simulation: wavefronts advance
//! through their op streams, and each component (SIMD issue pipelines,
//! LDS/I-cache ports, TLB ports, IOMMU walkers, DRAM banks) answers
//! "when is this request done?" while recording its own occupancy.
//! Functional state (cache/TLB contents) updates in event order, which
//! — together with seeded workload generation — makes runs bit-for-bit
//! reproducible.
//!
//! ## Translation path (the paper's Fig 12)
//!
//! ```text
//! coalesced VPN -> L1 TLB (108cy)
//!     miss -> reconfigurable LDS  (35+1+4 cy, private per CU)
//!     miss -> reconfigurable IC   (20+16+1+4 cy, shared per 4 CUs)
//!     miss -> L2 TLB (188cy, GPU-shared)
//!     miss -> [side cache, e.g. DUCATI]
//!     miss -> IOMMU (device TLBs, PWCs, 32 walkers, DRAM PTE reads)
//! ```
//!
//! A victim-structure or L2 hit promotes the entry to the L1 TLB; the
//! displaced L1 victim re-enters the Fig-12 fill flow.
//!
//! ## Module layout
//!
//! The system is split along the parallelism boundary (ARCHITECTURE
//! §8): [`cu`] holds state private to one compute unit (free for a CU
//! shard to mutate), [`shared`] holds the GPU-shared hierarchy every
//! shard's requests must reach in deterministic merge order, and this
//! module owns the run loop and the Fig-12 translate path that stitch
//! the two together.

mod cu;
mod shared;

pub use shared::TranslationSideCache;

use std::collections::HashMap;

use gtr_gpu::config::GpuConfig;
use gtr_gpu::dispatch::Dispatcher;
use gtr_gpu::kernel::{AppTrace, KernelDesc, INSTS_PER_LINE};
use gtr_gpu::lds::LdsAllocator;
use gtr_gpu::ops::Op;
use gtr_sim::event::EventQueue;
use gtr_sim::fastmap::FastMap;
use gtr_sim::hist::CycleAttribution;
use gtr_sim::stats::Sampler;
use gtr_sim::trace::{NullSink, TraceEvent, TracePath, TraceSink, TxStructure};
use gtr_sim::Cycle;
use gtr_vm::addr::{Ppn, Translation, TranslationKey, VirtAddr, Vpn};
use gtr_vm::coalescer::CoalescedAccess;
use gtr_vm::page_table::PageTable;
use gtr_vm::tlb::Tlb;

use crate::checkpoint::CheckpointEntry;
use crate::config::{ReachConfig, SamplingConfig};
use crate::driver::{DriverSchedule, ShootdownReport};
use crate::icache_tx::TxIcache;
use crate::obs::{ObsRecorder, VictimLifetimes};
use crate::stats::{EpochStats, KernelStats, RunStats, SamplingMeta, TenantStats};
use crate::victim;

use cu::{Cu, SampleMode, WaveRt, WgRt};
use shared::{PteMem, SharedHierarchy};

/// Physical region instruction code occupies (disjoint from data
/// frames and page-table nodes).
const CODE_PHYS_BASE_LINE: u64 = (1u64 << 45) / 64;

/// Cumulative translation-side counters read at kernel boundaries for
/// per-tenant attribution (TENANCY.md §4). Kernels run serially, so
/// the delta between two boundary snapshots belongs entirely to the
/// kernel in between — the hot translate paths never touch per-tenant
/// state, and per-tenant sums telescope to the run's global totals.
#[derive(Debug, Clone, Copy, Default)]
struct TenantSnap {
    requests: u64,
    l1_hits: u64,
    l1_misses: u64,
    lds_hits: u64,
    lds_misses: u64,
    ic_hits: u64,
    ic_misses: u64,
    l2_hits: u64,
    l2_misses: u64,
    walks: u64,
}

/// The complete simulated system.
#[derive(Debug)]
pub struct System {
    gpu: GpuConfig,
    reach: ReachConfig,
    /// The GPU-shared half of the hierarchy: page tables, IOMMU, L2
    /// TLB + port, memory system, reconfigurable I-caches and their
    /// fill engines, and the optional side cache. Every access from a
    /// CU shard crosses the §8 synchronization boundary.
    shared: SharedHierarchy,
    cus: Vec<Cu>,
    lds_allocs: Vec<LdsAllocator>,
    dispatcher: Dispatcher,
    driver: DriverSchedule,
    next_driver_event: usize,
    shootdown_report: ShootdownReport,
    // measurement
    translation_requests: u64,
    merged_requests: u64,
    tx_latency_sum: u64,
    tx_latency_max: u64,
    op_latency_sum: u64,
    op_count: u64,
    fetch_wait_sum: u64,
    fetch_count: u64,
    path_stats: [(u64, u64); 6], // (count, latency sum) per resolution path
    instructions: u64,
    /// Sharing analysis: bitmask of CU groups that missed on each VPN.
    /// Touched on every L1 miss, hence open-addressed and pre-sized.
    vpn_cus: FastMap<u64, u8>,
    peak_tx_entries: usize,
    sample_countdown: u32,
    /// Side-cache lookups/hits split by execution mode (detailed vs
    /// functional fast-forward). The hit-rate divergence between the
    /// two feeds `SamplingMeta::side_cache_error_bound_pct`: the
    /// functional path resolves from the same resident set but at
    /// zero cost, so a large divergence flags that the sampled DUCATI
    /// estimate leans on intervals whose side-cache behavior the
    /// detail windows did not witness.
    sc_detail_lookups: u64,
    sc_detail_hits: u64,
    sc_ff_lookups: u64,
    sc_ff_hits: u64,
    code_bases: HashMap<String, u64>,
    next_code_line: u64,
    // multi-tenancy (TENANCY.md §4)
    /// Cached `reach.tenancy.is_some()`, mirroring `trace_on`: the
    /// per-kernel attribution sites cost one predictable branch on a
    /// plain bool for the (default) untenanted case.
    tenancy_on: bool,
    /// Per-tenant accumulators, indexed by VM-ID; grown on first
    /// attribution and padded to the configured tenant count in
    /// `finalize`. Empty unless `tenancy_on`.
    tenant_acc: Vec<TenantStats>,
    /// Counter snapshot at the last kernel boundary: kernels run
    /// serially, so the delta since this snapshot belongs entirely to
    /// the kernel that just retired (its launching tenant).
    last_tenant_snap: TenantSnap,
    /// Reused by `global_access` so the per-access coalescing result
    /// and per-page completion times never reallocate.
    scratch_coalesced: CoalescedAccess,
    scratch_page_done: Vec<(Vpn, Cycle, Ppn)>,
    // observability
    /// Structured-event sink ([`NullSink`] unless [`Self::with_trace`]
    /// attached a real one).
    trace: Box<dyn TraceSink>,
    /// Cached `trace.enabled()` so every hot-path emission site is one
    /// predictable branch on a plain bool, not a virtual call.
    trace_on: bool,
    /// Epoch sampling period in cycles; 0 disables the sampler.
    epoch_len: Cycle,
    /// First cycle at or after which the next epoch snapshot fires.
    next_epoch: Cycle,
    epochs: Vec<EpochStats>,
    /// Cached "distribution recording armed" flag, mirroring
    /// `trace_on`: every recording site is one predictable branch on a
    /// plain bool when disabled.
    obs_on: bool,
    /// Latency / lifetime distribution recorders (only driven when
    /// `obs_on`).
    obs: ObsRecorder,
    // interval sampling / checkpointing
    /// Interval-sampling windows; `None` runs fully detailed (exact).
    sampling: Option<SamplingConfig>,
    /// Cached "currently fast-forwarding" flag, mirroring `trace_on`:
    /// every functional-warming site is one predictable branch on a
    /// plain bool when sampling is off.
    ff_on: bool,
    /// Instruction count at which the next sampling transition fires;
    /// `u64::MAX` when sampling is off, so exact runs pay one
    /// never-taken compare per event.
    sample_boundary: u64,
    sample_mode: SampleMode,
    span_start_cycle: Cycle,
    span_start_insts: u64,
    warmup_cycles: Cycle,
    warmup_insts_acc: u64,
    ff_cycles: Cycle,
    ff_insts_acc: u64,
    /// `(instructions, cycles)` of each completed detail interval.
    detail_spans: Vec<(u64, Cycle)>,
    /// Piecewise extrapolation: CPI of the latest non-degenerate
    /// detail interval (0.0 until one closes).
    last_detail_cpi: f64,
    /// Skipped instructions awaiting a CPI (warmup and any
    /// fast-forward span that closed before the first detail CPI).
    ff_pending_insts: u64,
    /// Accumulated piecewise-extrapolated cycles for skipped spans.
    extrapolated_acc: f64,
    /// Warm state was replayed from a `Checkpoint` before this run.
    checkpoint_restored: bool,
    /// Translation-stream capture armed (checkpoint production).
    capture_on: bool,
    /// The capture window ended; the run loop unwinds early.
    capture_done: bool,
    capture_log: Vec<CheckpointEntry>,
}

impl System {
    /// Builds a cold system from a machine configuration and a
    /// reconfigurable-architecture configuration.
    pub fn new(gpu: GpuConfig, reach: ReachConfig) -> Self {
        let cus = (0..gpu.cus).map(|_| Cu::new(&gpu, &reach)).collect();
        Self {
            shared: SharedHierarchy::new(&gpu, &reach),
            cus,
            lds_allocs: (0..gpu.cus).map(|_| LdsAllocator::new(gpu.lds_bytes)).collect(),
            dispatcher: Dispatcher::new(gpu.cus, gpu.waves_per_cu()),
            driver: DriverSchedule::new(),
            next_driver_event: 0,
            shootdown_report: ShootdownReport::default(),
            translation_requests: 0,
            merged_requests: 0,
            tx_latency_sum: 0,
            tx_latency_max: 0,
            op_latency_sum: 0,
            op_count: 0,
            fetch_wait_sum: 0,
            fetch_count: 0,
            path_stats: [(0, 0); 6],
            instructions: 0,
            vpn_cus: FastMap::with_capacity(4096),
            peak_tx_entries: 0,
            sample_countdown: 4096,
            sc_detail_lookups: 0,
            sc_detail_hits: 0,
            sc_ff_lookups: 0,
            sc_ff_hits: 0,
            code_bases: HashMap::new(),
            next_code_line: CODE_PHYS_BASE_LINE,
            tenancy_on: reach.tenancy.is_some(),
            tenant_acc: Vec::new(),
            last_tenant_snap: TenantSnap::default(),
            scratch_coalesced: CoalescedAccess::default(),
            scratch_page_done: Vec::with_capacity(64),
            trace: Box::new(NullSink),
            trace_on: false,
            epoch_len: 0,
            next_epoch: 0,
            epochs: Vec::new(),
            obs_on: false,
            obs: ObsRecorder::default(),
            sampling: None,
            ff_on: false,
            sample_boundary: u64::MAX,
            sample_mode: SampleMode::Detail,
            span_start_cycle: 0,
            span_start_insts: 0,
            warmup_cycles: 0,
            warmup_insts_acc: 0,
            ff_cycles: 0,
            ff_insts_acc: 0,
            detail_spans: Vec::new(),
            last_detail_cpi: 0.0,
            ff_pending_insts: 0,
            extrapolated_acc: 0.0,
            checkpoint_restored: false,
            capture_on: false,
            capture_done: false,
            capture_log: Vec::new(),
            gpu,
            reach,
        }
    }

    /// Attaches a structured-event [`TraceSink`]. The sink's
    /// `enabled()` answer is cached once here: a disabled sink (e.g.
    /// [`NullSink`]) keeps the simulation loop allocation- and
    /// formatting-free, bit-for-bit identical to an untraced run.
    pub fn with_trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace_on = sink.enabled();
        self.trace = sink;
        self
    }

    /// Enables the epoch sampler: cumulative counter snapshots (an
    /// [`EpochStats`] each) are taken every `epoch_len` cycles of
    /// simulated time and returned in [`RunStats::epochs`]. A final
    /// snapshot is always taken at the end of the run, so the last
    /// epoch equals the run totals. `0` disables sampling (the
    /// default).
    pub fn with_epochs(mut self, epoch_len: Cycle) -> Self {
        self.epoch_len = epoch_len;
        self.next_epoch = epoch_len;
        self
    }

    /// Arms distribution recording: per-path translation-latency
    /// histograms, per-IOMMU-level walk latencies, and victim-entry
    /// lifetime/reuse histograms are recorded during the run and
    /// returned through the distribution fields of [`RunStats`]
    /// (`latency_hists`, `iommu_latency`, `victim_lifetime_*`,
    /// `victim_reuse_*`, with [`RunStats::dist_enabled`] set).
    ///
    /// Off by default; like [`Self::with_trace`], the disabled state
    /// costs one predictable branch per recording site — the perf gate
    /// runs with distributions off and asserts the anchor cycle count.
    pub fn with_distributions(mut self) -> Self {
        self.obs_on = true;
        self
    }

    /// Arms SMARTS-style interval sampling: after `cfg.warmup`
    /// functionally-warmed instructions, the run alternates detailed
    /// windows of `cfg.detail` instructions with functional
    /// fast-forward windows of `cfg.fastforward` instructions
    /// (translations still update every TLB / victim structure, at
    /// zero modeled latency). [`RunStats::total_cycles`] becomes the
    /// detail-interval cycles plus a CPI extrapolation over the skipped
    /// windows, and [`RunStats::sampling`] carries the full interval
    /// accounting including an error bound derived from the
    /// inter-interval CPI spread. Off by default — an exact run pays a
    /// single never-taken compare per event.
    pub fn with_sampling(mut self, cfg: SamplingConfig) -> Self {
        if cfg.warmup > 0 {
            self.sample_mode = SampleMode::Warmup;
            self.ff_on = true;
            self.sample_boundary = self.instructions + cfg.warmup;
        } else {
            self.sample_mode = SampleMode::Detail;
            self.ff_on = false;
            self.sample_boundary = self.instructions + cfg.detail;
        }
        self.sampling = Some(cfg);
        self
    }

    /// Runs `app` in pure functional-warming mode for the first
    /// `warmup_insts` instructions, recording the translation request
    /// stream — the raw material of a
    /// [`Checkpoint`](crate::checkpoint::Checkpoint). The system's
    /// timing state is meaningless afterwards; capture systems are
    /// discarded, the stream is replayed into fresh ones.
    pub fn run_functional_capture(
        &mut self,
        app: &AppTrace,
        warmup_insts: u64,
    ) -> Vec<CheckpointEntry> {
        self.ff_on = true;
        self.capture_on = true;
        self.capture_done = false;
        self.sample_boundary = warmup_insts;
        let _ = self.run(app);
        self.capture_on = false;
        self.sample_boundary = u64::MAX;
        std::mem::take(&mut self.capture_log)
    }

    /// Replays a [`Checkpoint`](crate::checkpoint::Checkpoint)'s
    /// translation stream through *this* system's own hierarchy in
    /// functional-warming mode: page tables demand-map in first-touch
    /// order (reproducing the capture run's deterministic frame
    /// placement, which a debug assertion checks), and the L1 TLBs,
    /// victim LDS / I-cache structures, L2 TLB and IOMMU all warm
    /// through their own fill flows — so one checkpoint restores into
    /// any [`ReachConfig`] variant. Measurement state is then reset so
    /// a subsequent [`Self::run`] measures only post-warmup behavior.
    pub fn restore_checkpoint(&mut self, ck: &crate::checkpoint::Checkpoint) {
        let _span = gtr_sim::prof::span_with("ckpt:replay", || ck.app().to_string());
        let saved = (self.trace_on, self.obs_on, self.ff_on);
        self.trace_on = false;
        self.obs_on = false;
        self.ff_on = true;
        let n_cus = self.cus.len();
        for e in &ck.stream {
            let table = &mut self.shared.page_tables[e.key.vmid.raw() as usize];
            if table.translate(e.key.vpn).is_none() {
                table.map_vpn(e.key.vpn);
            }
            let (ppn, _path) = self.translate_ff((e.cu as usize) % n_cus, 0, e.key);
            debug_assert_eq!(ppn, e.ppn, "checkpoint replay must reproduce frame placement");
        }
        self.trace_on = saved.0;
        self.obs_on = saved.1;
        self.ff_on = saved.2;
        self.checkpoint_restored = true;
        self.reset_measurement_state();
    }

    /// Zeroes every measurement accumulator while leaving functional
    /// state (TLB / cache / victim contents, page tables) warm — the
    /// boundary between a checkpoint restore and the measured run.
    fn reset_measurement_state(&mut self) {
        self.translation_requests = 0;
        self.merged_requests = 0;
        self.tx_latency_sum = 0;
        self.tx_latency_max = 0;
        self.op_latency_sum = 0;
        self.op_count = 0;
        self.fetch_wait_sum = 0;
        self.fetch_count = 0;
        self.path_stats = [(0, 0); 6];
        self.instructions = 0;
        self.vpn_cus.clear();
        self.peak_tx_entries = 0;
        self.sample_countdown = 4096;
        self.sc_detail_lookups = 0;
        self.sc_detail_hits = 0;
        self.sc_ff_lookups = 0;
        self.sc_ff_hits = 0;
        self.epochs.clear();
        self.next_epoch = self.epoch_len;
        self.shootdown_report = ShootdownReport::default();
        self.obs = ObsRecorder::default();
        self.tenant_acc.clear();
        self.last_tenant_snap = TenantSnap::default();
        for cu in &mut self.cus {
            cu.l1_tlb.reset_stats();
            cu.tx_lds.reset_stats();
        }
        self.shared.reset_stats();
    }

    /// Attaches a side translation cache (DUCATI).
    pub fn with_side_cache(mut self, sc: Box<dyn TranslationSideCache>) -> Self {
        self.shared.side_cache = Some(sc);
        self
    }

    /// Attaches a driver schedule of runtime page migrations with TLB
    /// shootdowns (§7.1).
    pub fn with_driver_schedule(mut self, schedule: DriverSchedule) -> Self {
        self.driver = schedule;
        self
    }

    /// Counters from executed driver events.
    pub fn shootdown_report(&self) -> ShootdownReport {
        self.shootdown_report
    }

    /// The demand-mapped pages of one address space, sorted by VPN —
    /// the deterministic victim pool for driver-event scenarios (the
    /// tenancy shootdown storm migrates a slice of these; migrating
    /// an unmapped page is a silent no-op).
    pub fn mapped_vpns(&self, vmid: gtr_vm::addr::VmId) -> Vec<Vpn> {
        self.shared.page_tables[vmid.raw() as usize].mapped_vpns()
    }

    /// Verifies that every translation cached anywhere (L1 TLBs, L2
    /// TLB, reconfigurable LDS and I-cache) agrees with the current
    /// page tables. After the shootdown protocol has run, no stale
    /// frame may survive. Returns the number of entries checked.
    ///
    /// # Panics
    ///
    /// Panics on the first incoherent entry (debugging aid; used by the
    /// integration tests).
    pub fn check_translation_coherence(&self) -> usize {
        let mut checked = 0;
        let check = |tx: Translation| {
            let table = &self.shared.page_tables[tx.key.vmid.raw() as usize];
            let current = table.translate(tx.key.vpn);
            assert_eq!(
                current,
                Some(tx.ppn),
                "stale translation cached for {}: cached {:?}, table {:?}",
                tx.key,
                tx.ppn,
                current
            );
        };
        for cu in &self.cus {
            for tx in cu.l1_tlb.iter() {
                check(tx);
                checked += 1;
            }
            for tx in cu.tx_lds.iter() {
                check(tx);
                checked += 1;
            }
        }
        for tx in self.shared.l2_tlb.iter() {
            check(tx);
            checked += 1;
        }
        for ic in &self.shared.icaches {
            for tx in ic.iter_tx() {
                check(tx);
                checked += 1;
            }
        }
        checked
    }

    /// Executes every driver event whose trigger has passed: migrate
    /// the pages in their page tables and invalidate the stale
    /// translations in the L1 TLBs, the L2 TLB, the IOMMU, and the
    /// reconfigurable LDS/I-cache structures.
    fn run_driver_events(&mut self) {
        // Split the borrow so events are iterated in place: the driver
        // schedule is read-only here, and an event's page list can be
        // large (bulk migrations), so cloning it per event would put
        // an allocation on the translate path.
        let Self {
            driver,
            next_driver_event,
            shootdown_report,
            shared,
            cus,
            translation_requests,
            trace,
            trace_on,
            obs,
            obs_on,
            tenancy_on,
            tenant_acc,
            ..
        } = self;
        let SharedHierarchy { page_tables, l2_tlb, icaches, iommu, .. } = shared;
        let events = driver.events();
        while *next_driver_event < events.len()
            && events[*next_driver_event].after_translations <= *translation_requests
        {
            let event = &events[*next_driver_event];
            *next_driver_event += 1;
            shootdown_report.events += 1;
            for (vmid, vpn) in &event.pages {
                if page_tables[vmid.raw() as usize].migrate(*vpn).is_none() {
                    continue; // page was never touched: nothing to shoot down
                }
                shootdown_report.pages_migrated += 1;
                if *tenancy_on {
                    // Shootdowns hit an address space, not a kernel:
                    // attribute by the migrated page's VM-ID directly
                    // (may precede that tenant's first kernel boundary).
                    let idx = vmid.raw() as usize;
                    if tenant_acc.len() <= idx {
                        tenant_acc.resize_with(idx + 1, TenantStats::default);
                    }
                    tenant_acc[idx].shootdowns += 1;
                }
                let key = TranslationKey {
                    vpn: *vpn,
                    vmid: *vmid,
                    vrf: gtr_vm::addr::VrfId::default(),
                };
                let mut l1_hits = 0u32;
                let mut lds_hits = 0u32;
                for cu in cus.iter_mut() {
                    if cu.l1_tlb.invalidate(key) {
                        l1_hits += 1;
                    }
                    if cu.tx_lds.shootdown(key) {
                        lds_hits += 1;
                    }
                    cu.pending.remove(key);
                }
                shootdown_report.l1_hits += l1_hits as u64;
                shootdown_report.lds_hits += lds_hits as u64;
                let l2_hit = l2_tlb.invalidate(key);
                if l2_hit {
                    shootdown_report.l2_hits += 1;
                }
                let mut ic_hits = 0u32;
                for ic in icaches.iter_mut() {
                    if ic.shootdown(key) {
                        ic_hits += 1;
                    }
                }
                shootdown_report.ic_hits += ic_hits as u64;
                iommu.invalidate(key);
                if *obs_on {
                    // Invalidated victim entries are censored, not
                    // counted as capacity evictions.
                    obs.victim.shootdown(vpn.0, vmid.raw());
                }
                if *trace_on {
                    trace.emit(&TraceEvent::Shootdown {
                        vpn: vpn.0,
                        vmid: vmid.raw(),
                        l1: l1_hits,
                        l2: l2_hit,
                        lds: lds_hits,
                        ic: ic_hits,
                    });
                }
            }
        }
    }

    /// The machine configuration.
    pub fn gpu_config(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The reconfigurable-architecture configuration.
    pub fn reach_config(&self) -> &ReachConfig {
        &self.reach
    }

    /// Pre-maps `pages` consecutive pages starting at `start` in
    /// address space 0 (demand mapping also happens automatically
    /// during the run).
    pub fn map_footprint(&mut self, start: VirtAddr, pages: u64) {
        self.shared.page_tables[0].map_range(start, pages);
    }

    /// Pre-maps a footprint in a specific address space (§7.2).
    pub fn map_footprint_in(&mut self, vm: gtr_vm::addr::VmId, start: VirtAddr, pages: u64) {
        self.shared.page_tables[vm.raw() as usize].map_range(start, pages);
    }

    /// Executes the application end-to-end and returns the run's
    /// measurements.
    pub fn run(&mut self, app: &AppTrace) -> RunStats {
        let mut t: Cycle = 0;
        let mut kernels_out: Vec<KernelStats> = Vec::with_capacity(app.kernels().len());
        let mut prev_kernel: Option<&str> = None;
        for (k_idx, kernel) in app.kernels().iter().enumerate() {
            let walks_before = self.shared.iommu.walks();
            let insts_before = self.instructions;
            for ic in &mut self.shared.icaches {
                ic.begin_kernel();
            }
            if self.reach.flush_opt
                && self.reach.icache_enabled
                && prev_kernel != Some(kernel.name())
            {
                for (ic_idx, ic) in self.shared.icaches.iter_mut().enumerate() {
                    let lines = ic.flush_instructions();
                    if self.trace_on {
                        self.trace.emit(&TraceEvent::KernelFlush {
                            cycle: t,
                            icache: ic_idx as u32,
                            lines,
                        });
                    }
                }
            }
            if self.trace_on {
                self.trace.emit(&TraceEvent::KernelBegin {
                    cycle: t,
                    index: k_idx as u32,
                    name: kernel.name().to_string(),
                });
            }
            let end = self.run_kernel(t, kernel);
            if self.trace_on {
                self.trace.emit(&TraceEvent::KernelEnd {
                    cycle: end,
                    index: k_idx as u32,
                    name: kernel.name().to_string(),
                });
            }
            let util = self
                .shared
                .icaches
                .iter()
                .map(TxIcache::end_kernel_utilization)
                .sum::<f64>()
                / self.shared.icaches.len() as f64;
            kernels_out.push(KernelStats {
                name: kernel.name().to_string(),
                cycles: end - t,
                instructions: self.instructions - insts_before,
                page_walks: self.shared.iommu.walks() - walks_before,
                icache_utilization_pct: util,
                lds_bytes_per_wg: kernel.lds_bytes_per_wg(),
            });
            if self.tenancy_on {
                self.attribute_kernel_to_tenant(
                    kernel,
                    end - t,
                    self.instructions - insts_before,
                );
            }
            t = end;
            prev_kernel = Some(kernel.name());
            self.sample_peak_entries();
            if self.capture_done {
                break;
            }
        }
        self.finalize(app, t, kernels_out)
    }

    fn code_base(&mut self, kernel: &KernelDesc) -> u64 {
        if let Some(&b) = self.code_bases.get(kernel.name()) {
            return b;
        }
        let base = self.next_code_line;
        // 16 KB of slack between kernels' code regions.
        self.next_code_line += kernel.code_lines() as u64 + 256;
        self.code_bases.insert(kernel.name().to_string(), base);
        base
    }

    fn run_kernel(&mut self, start: Cycle, kernel: &KernelDesc) -> Cycle {
        if kernel.total_waves() == 0 {
            return start;
        }
        let code_base = self.code_base(kernel);
        let mut waves: Vec<WaveRt> = Vec::new();
        let mut wgs: Vec<WgRt> = Vec::new();
        let mut events: EventQueue<usize> = EventQueue::with_capacity(kernel.total_waves());
        let mut next_wg = 0usize;
        let mut t_end = start;

        let dispatch = |s: &mut Self,
                            now: Cycle,
                            next_wg: &mut usize,
                            waves: &mut Vec<WaveRt>,
                            wgs: &mut Vec<WgRt>,
                            events: &mut EventQueue<usize>| {
            while *next_wg < kernel.workgroups().len() {
                let wg_desc = &kernel.workgroups()[*next_wg];
                if wg_desc.wave_count() == 0 {
                    *next_wg += 1;
                    continue;
                }
                assert!(
                    wg_desc.wave_count() <= s.gpu.waves_per_cu(),
                    "workgroup of {} waves can never fit a CU with {} slots",
                    wg_desc.wave_count(),
                    s.gpu.waves_per_cu()
                );
                assert!(
                    kernel.lds_bytes_per_wg() <= s.gpu.lds_bytes,
                    "workgroup requests {} B of LDS but a CU has {} B",
                    kernel.lds_bytes_per_wg(),
                    s.gpu.lds_bytes
                );
                let Some(p) = s.dispatcher.try_place(
                    wg_desc.wave_count(),
                    kernel.lds_bytes_per_wg(),
                    &mut s.lds_allocs,
                ) else {
                    break;
                };
                let lds_block = p.lds.and_then(|id| {
                    s.lds_allocs[p.cu].block(id).map(|b| (b.base, b.size))
                });
                if let Some((base, size)) = lds_block {
                    s.cus[p.cu].tx_lds.on_app_allocate(base, size);
                    if s.trace_on {
                        s.trace.emit(&TraceEvent::LdsMode {
                            cu: p.cu as u32,
                            base,
                            size,
                            to_app: true,
                        });
                    }
                }
                // Dispatch-time code warm-up: the command processor
                // prefetches the kernel's first lines into the group's
                // I-cache while the waves are being launched, so a
                // post-flush cold start does not stall the first ops.
                let ic_idx = p.cu / s.gpu.cus_per_icache;
                for l in 0..8u64.min(kernel.code_lines() as u64) {
                    if s.shared.icaches[ic_idx].prefetch(code_base + l) && !s.ff_on {
                        s.shared.mem.read(now, (code_base + l) * 64);
                    }
                }
                let wg_rt = wgs.len();
                wgs.push(WgRt {
                    placement: p,
                    lds_block,
                    waves_total: wg_desc.wave_count(),
                    waves_done: 0,
                    barrier_arrived: 0,
                    parked: Vec::new(),
                });
                for wave_idx in 0..wg_desc.wave_count() {
                    let simd = s.cus[p.cu].next_simd;
                    s.cus[p.cu].next_simd = (simd + 1) % s.gpu.simds_per_cu;
                    let id = waves.len();
                    waves.push(WaveRt {
                        wg_rt,
                        kernel_wg: *next_wg,
                        wave_idx,
                        cu: p.cu,
                        simd,
                        op_idx: 0,
                        inst_idx: 0,
                        cur_line: None,
                    });
                    events.push(now, id);
                }
                *next_wg += 1;
            }
        };

        dispatch(self, start, &mut next_wg, &mut waves, &mut wgs, &mut events);

        let mut lane_buf: Vec<VirtAddr> = Vec::with_capacity(self.gpu.threads_per_wave);
        while let Some((now, wave_id)) = events.pop() {
            if self.epoch_len > 0 && now >= self.next_epoch {
                self.snapshot_epoch(now);
            }
            if self.instructions >= self.sample_boundary {
                self.sample_tick(now);
                if self.capture_done {
                    return t_end.max(now);
                }
            }
            let finished =
                self.step_wave(now, wave_id, kernel, code_base, &mut waves, &mut wgs, &mut events, &mut lane_buf);
            if let Some(done_at) = finished {
                t_end = t_end.max(done_at);
                let wg_rt = waves[wave_id].wg_rt;
                let wg = &mut wgs[wg_rt];
                wg.waves_done += 1;
                if wg.waves_done == wg.waves_total {
                    if let Some((base, size)) = wg.lds_block {
                        self.cus[wg.placement.cu].tx_lds.on_app_release(base, size);
                        if self.trace_on {
                            self.trace.emit(&TraceEvent::LdsMode {
                                cu: wg.placement.cu as u32,
                                base,
                                size,
                                to_app: false,
                            });
                        }
                    }
                    let placement = wg.placement;
                    let total = wg.waves_total;
                    self.dispatcher.complete(placement, total, &mut self.lds_allocs);
                    dispatch(self, done_at, &mut next_wg, &mut waves, &mut wgs, &mut events);
                }
            }
        }
        debug_assert_eq!(next_wg, kernel.workgroups().len(), "all workgroups dispatched");
        t_end
    }

    /// Advances one wavefront from `now`; returns `Some(t)` when the
    /// wave retired at cycle `t`.
    #[allow(clippy::too_many_arguments)]
    fn step_wave(
        &mut self,
        now: Cycle,
        wave_id: usize,
        kernel: &KernelDesc,
        code_base: u64,
        waves: &mut [WaveRt],
        wgs: &mut [WgRt],
        events: &mut EventQueue<usize>,
        lane_buf: &mut Vec<VirtAddr>,
    ) -> Option<Cycle> {
        let mut t = now;
        let mut budget = 64u32;
        // The wave's program never changes while it runs: resolve the
        // nested kernel structure once per step instead of per op.
        let program = {
            let w = &waves[wave_id];
            kernel.workgroups()[w.kernel_wg].waves()[w.wave_idx].ops()
        };
        loop {
            let (cu_idx, simd, op_idx, wg_rt) = {
                let w = &waves[wave_id];
                (w.cu, w.simd, w.op_idx, w.wg_rt)
            };
            if op_idx >= program.len() {
                return Some(t);
            }
            // Instruction fetch: each op consumes one instruction slot;
            // the wave's IB holds one I-cache line.
            let inst_idx = waves[wave_id].inst_idx;
            let line = code_base + (inst_idx / INSTS_PER_LINE as u64) % kernel.code_lines() as u64;
            if waves[wave_id].cur_line != Some(line) {
                t = self.fetch_instruction(cu_idx, t, line, code_base, kernel.code_lines());
                waves[wave_id].cur_line = Some(line);
            }
            waves[wave_id].inst_idx += 1;
            self.instructions += 1;

            // Borrow the op in place: cloning would copy the boxed
            // per-lane address array of every irregular global access.
            let op = &program[op_idx];
            waves[wave_id].op_idx += 1;
            match op {
                Op::Compute { latency } => {
                    if !self.ff_on {
                        t = self.cus[cu_idx].simds[simd].issue(t) + *latency as Cycle;
                    }
                }
                Op::Lds { .. } => {
                    if !self.ff_on {
                        t = self.cus[cu_idx].simds[simd].issue(t);
                        let occupancy = 2;
                        let port_done = self.cus[cu_idx].lds_port.access(t, occupancy);
                        t = port_done - occupancy + self.gpu.lds_latency;
                    }
                }
                Op::Barrier => {
                    let wg = &mut wgs[wg_rt];
                    wg.barrier_arrived += 1;
                    if wg.barrier_arrived + wg.waves_done == wg.waves_total {
                        // Last arrival releases everyone at its time.
                        wg.barrier_arrived = 0;
                        for parked in wg.parked.drain(..) {
                            events.push(t, parked);
                        }
                        // This wave continues in place.
                    } else {
                        wg.parked.push(wave_id);
                        return None;
                    }
                }
                Op::Global { pattern, write } => {
                    if !self.ff_on {
                        t = self.cus[cu_idx].simds[simd].issue(t);
                    }
                    pattern.expand(lane_buf);
                    let done = self.global_access(cu_idx, t, kernel.vm_id(), lane_buf, *write);
                    events.push(done, wave_id);
                    return None;
                }
            }
            budget -= 1;
            if budget == 0 {
                events.push(t, wave_id);
                return None;
            }
        }
    }

    fn fetch_instruction(
        &mut self,
        cu_idx: usize,
        now: Cycle,
        line: u64,
        code_base: u64,
        code_lines: u32,
    ) -> Cycle {
        let ic_idx = cu_idx / self.gpu.cus_per_icache;
        if self.ff_on {
            // Functional warming: keep I-cache contents (including the
            // next-line prefetcher's footprint) evolving, with no port,
            // fill-engine, or DRAM timing.
            if !self.shared.icaches[ic_idx].fetch(line) {
                for ahead in 1..=3u64 {
                    let next = code_base + (line - code_base + ahead) % code_lines as u64;
                    if next != line {
                        self.shared.icaches[ic_idx].prefetch(next);
                    }
                }
            }
            return now;
        }
        let ic = &mut self.shared.icaches[ic_idx];
        let occupancy = 2;
        let port_done = ic.port_mut().access(now, occupancy);
        self.fetch_wait_sum += port_done - occupancy - now;
        self.fetch_count += 1;
        let t = port_done - occupancy + self.gpu.ic_tag_latency;
        if ic.fetch(line) {
            t
        } else {
            // Instruction miss: fill from the shared L2 / DRAM through
            // the group's single fill engine (misses serialize), and
            // run the next-line prefetcher (the `IC_prefetches` of
            // Eq 1) three lines deep so a straight-line fetch stream
            // misses once per four lines — fetch units race ahead of
            // the instruction buffers on real GPUs.
            let fill = self.shared.mem.read(t, line * 64);
            let duration = fill - t;
            let start = self.shared.fetch_fill[ic_idx].reserve(t, duration);
            let done = start + duration;
            for ahead in 1..=3u64 {
                let next = code_base + (line - code_base + ahead) % code_lines as u64;
                if next != line && self.shared.icaches[ic_idx].prefetch(next) {
                    // Prefetches consume memory bandwidth in the
                    // background but do not block the wave.
                    self.shared.mem.read(t, next * 64);
                }
            }
            done
        }
    }

    fn global_access(
        &mut self,
        cu_idx: usize,
        now: Cycle,
        vm: gtr_vm::addr::VmId,
        lanes: &[VirtAddr],
        write: bool,
    ) -> Cycle {
        let page_size = self.gpu.page_size;
        // Take the scratch buffers out of `self` so they can be read
        // while `self.translate` is borrowed mutably below; they are
        // put back (with their grown capacity) before returning.
        let mut coalesced = std::mem::take(&mut self.scratch_coalesced);
        let mut page_done = std::mem::take(&mut self.scratch_page_done);
        coalesced.assign_from_lanes(lanes, page_size);
        if !self.gpu.coalescing {
            // Ablation: without the SIMT coalescer every lane issues
            // its own translation request, duplicates included.
            coalesced.pages.clear();
            coalesced.pages.extend(lanes.iter().map(|a| a.vpn(page_size)));
        }
        // Demand-map the footprint (no fault cost: workloads model
        // already-resident data).
        let table = &mut self.shared.page_tables[vm.raw() as usize];
        for &vpn in &coalesced.pages {
            if table.translate(vpn).is_none() {
                table.map_vpn(vpn);
            }
        }
        // Whole-wavefront L1 probe for divergent accesses: one
        // struct-of-arrays pass over the deduped pages resolves every
        // lane's L1 residency at once and pulls the TLB index's probe
        // chains into cache before the serial per-page walk below
        // re-resolves them with full timing and LRU bookkeeping.
        // Narrow accesses skip it — batching has fixed overhead that
        // only a wide batch amortizes. `probe_many` is read-only (no
        // LRU, no counters), so the simulated outcome is bit-identical.
        if coalesced.pages.len() >= 8 {
            let mut batch = [TranslationKey::for_vpn(Vpn(0)); 64];
            for chunk in coalesced.pages.chunks(64) {
                for (k, &vpn) in batch.iter_mut().zip(chunk) {
                    *k = TranslationKey { vpn, vmid: vm, vrf: gtr_vm::addr::VrfId::default() };
                }
                std::hint::black_box(self.cus[cu_idx].l1_tlb.probe_many(&batch[..chunk.len()]));
            }
        }
        // Translate each unique page.
        page_done.clear();
        for &vpn in &coalesced.pages {
            let key = TranslationKey { vpn, vmid: vm, vrf: gtr_vm::addr::VrfId::default() };
            let (done, ppn) = self.translate(cu_idx, now, key);
            page_done.push((vpn, done, ppn));
        }
        if self.ff_on {
            // Functional warming: keep L1D contents moving (so a
            // following detail window sees a warm cache) with no
            // writeback or DRAM timing.
            for (li, &vline) in coalesced.lines.iter().enumerate() {
                let va = VirtAddr::new(vline * 64);
                // With the coalescer on, the line→page index computed
                // during lane dedup replaces the per-line page rescan;
                // the ablation rebuilt `pages` with duplicates, so its
                // indices are stale and the scan stays.
                let &(_, _, ppn) = if self.gpu.coalescing {
                    &page_done[coalesced.line_pages[li] as usize]
                } else {
                    let vpn = va.vpn(page_size);
                    page_done
                        .iter()
                        .find(|(p, _, _)| *p == vpn)
                        .expect("every line's page was translated")
                };
                let pa = ppn.base(page_size).raw() + va.page_offset(page_size);
                let _ = self.cus[cu_idx].l1d.access(pa / 64, write);
            }
            self.op_count += 1;
            self.scratch_coalesced = coalesced;
            self.scratch_page_done = page_done;
            return now;
        }
        let mut max_tx = now;
        for &(_, done, _) in &page_done {
            max_tx = max_tx.max(done);
        }
        // Data accesses per unique line, dependent on their page's
        // translation.
        let mut op_done = now;
        for (li, &vline) in coalesced.lines.iter().enumerate() {
            let va = VirtAddr::new(vline * 64);
            let &(_, tx_done, ppn) = if self.gpu.coalescing {
                &page_done[coalesced.line_pages[li] as usize]
            } else {
                let vpn = va.vpn(page_size);
                page_done
                    .iter()
                    .find(|(p, _, _)| *p == vpn)
                    .expect("every line's page was translated")
            };
            let pa = ppn.base(page_size).raw() + va.page_offset(page_size);
            let t0 = tx_done + self.cus[cu_idx].l1d.latency();
            let res = self.cus[cu_idx].l1d.access(pa / 64, write);
            let done = if res.hit {
                t0
            } else {
                if let Some(victim_line) = res.writeback {
                    self.shared.mem.write(t0, victim_line * 64);
                }
                if write {
                    self.shared.mem.write(t0, pa)
                } else {
                    self.shared.mem.read(t0, pa)
                }
            };
            op_done = op_done.max(done);
        }
        for &(_, done, _) in &page_done {
            op_done = op_done.max(done);
        }
        let _ = max_tx;
        self.op_latency_sum += op_done - now;
        self.op_count += 1;
        self.scratch_coalesced = coalesced;
        self.scratch_page_done = page_done;
        op_done
    }

    fn translate(&mut self, cu_idx: usize, now: Cycle, key: TranslationKey) -> (Cycle, Ppn) {
        if self.next_driver_event < self.driver.events().len() {
            self.run_driver_events();
        }
        let (done, ppn, path) = if self.ff_on {
            let (ppn, path) = self.translate_ff(cu_idx, now, key);
            (now, ppn, path)
        } else {
            self.translate_inner(cu_idx, now, key)
        };
        if self.capture_on {
            self.capture_log.push(CheckpointEntry { cu: cu_idx as u32, key, ppn });
        }
        let lat = done.saturating_sub(now);
        self.tx_latency_sum += lat;
        self.tx_latency_max = self.tx_latency_max.max(lat);
        self.path_stats[path].0 += 1;
        self.path_stats[path].1 += lat;
        if self.obs_on {
            self.obs.lat[path].record(lat);
            // Victim-structure hits count as reuse of the live entry.
            // Recorded here — after `translate_inner` ran the promote
            // fill flow — which matches the trace's event order, so the
            // replayer reconstructs identical reuse histograms.
            match path {
                2 => self.obs.victim.hit(TxStructure::Lds, key.vpn.0, key.vmid.raw()),
                3 => self.obs.victim.hit(TxStructure::Icache, key.vpn.0, key.vmid.raw()),
                _ => {}
            }
        }
        if self.trace_on {
            self.trace.emit(&TraceEvent::Translation {
                cycle: now,
                cu: cu_idx as u32,
                vpn: key.vpn.0,
                vmid: key.vmid.raw(),
                path: TracePath::ALL[path],
                latency: lat,
            });
        }
        (done, ppn)
    }

    /// The heart of the model: one translation request through the
    /// Fig-12 lookup path.
    fn translate_inner(&mut self, cu_idx: usize, now: Cycle, key: TranslationKey) -> (Cycle, Ppn, usize) {
        // Split the borrow of `self` into disjoint component borrows.
        let Self {
            gpu,
            reach,
            shared,
            cus,
            translation_requests,
            merged_requests,
            sc_detail_lookups,
            sc_detail_hits,
            vpn_cus,
            peak_tx_entries,
            sample_countdown,
            trace,
            trace_on,
            obs,
            obs_on,
            ..
        } = self;
        let SharedHierarchy {
            page_tables,
            iommu,
            l2_tlb,
            l2_port,
            mem,
            icaches,
            side_cache,
            ..
        } = shared;
        *translation_requests += 1;
        if *sample_countdown == 0 {
            let resident: usize = cus.iter().map(|c| c.tx_lds.resident()).sum::<usize>()
                + icaches.iter().map(TxIcache::resident_tx).sum::<usize>();
            *peak_tx_entries = (*peak_tx_entries).max(resident);
            *sample_countdown = 4096;
        } else {
            *sample_countdown -= 1;
        }

        let ic_idx = cu_idx / gpu.cus_per_icache;

        let start = cus[cu_idx].l1_port.acquire(now, 1);
        let t0 = start + gpu.l1_tlb.latency;
        if let Some(tx) = cus[cu_idx].l1_tlb.lookup(key) {
            // A hit on an entry whose miss is still in flight waits for it.
            let done = cus[cu_idx].pending.get(key).map_or(t0, |&(d, _)| t0.max(d));
            return (done, tx.ppn_for(key.vpn), 0);
        }
        // L1 miss: sharing analysis tracks which CUs want each VPN.
        *vpn_cus.get_or_insert(key.vpn.0, 0) |= 1 << (cu_idx % 8);
        // Merge with an in-flight miss to the same page.
        if let Some(&(d, ppn)) = cus[cu_idx].pending.get(key) {
            if d > t0 {
                *merged_requests += 1;
                return (d, ppn, 1);
            }
            cus[cu_idx].pending.remove(key);
        }

        let mut t = t0;
        // --- Reconfigurable LDS (looked up first: §4.4) ---
        // The segment's mode bit is checked first (a 1-cycle MUX on the
        // mode-bit array): only Tx-mode segments pay the full Tx access
        // latency and consume LDS port bandwidth, so applications whose
        // segments hold no translations see negligible overhead. Under
        // home-node hashing the VPN's home CU is probed instead of the
        // requester's own LDS, with a remote-hop penalty.
        if reach.lds_enabled {
            t += reach.mux_latency;
            let home = Self::lds_home(reach, cus.len(), key, cu_idx);
            let remote = if home == cu_idx { 0 } else { reach.lds_remote_latency };
            if cus[home].tx_lds.may_hold(key) {
                let occupancy = 1;
                let port_done = cus[home].lds_port.access(t + remote, occupancy);
                t = port_done - occupancy + reach.lds_tx_lookup_latency() + remote;
                if let Some(tx) = cus[home].tx_lds.lookup(key) {
                    let ppn = tx.ppn_for(key.vpn);
                    let sink = Self::sink_opt(trace, *trace_on);
                    let vl = Self::obs_opt(obs, *obs_on);
                    Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, t, sink, vl);
                    cus[cu_idx].pending.insert(key, (t, ppn));
                    return (t, ppn, 2);
                }
            }
        }
        // --- Reconfigurable I-cache (shared by the CU group) ---
        // Same mode-bit fast path for the direct-mapped line.
        if reach.icache_enabled {
            t += reach.mux_latency;
            let ic = &mut icaches[ic_idx];
            if ic.may_hold_tx(key) {
                let occupancy = 1;
                let port_done = ic.port_mut().access(t, occupancy);
                t = port_done - occupancy + reach.ic_tx_lookup_latency();
                if let Some(tx) = ic.lookup_tx(key) {
                    let ppn = tx.ppn_for(key.vpn);
                    let sink = Self::sink_opt(trace, *trace_on);
                    let vl = Self::obs_opt(obs, *obs_on);
                    Self::promote(reach, cus, cu_idx, ic, l2_tlb, tx, t, sink, vl);
                    cus[cu_idx].pending.insert(key, (t, ppn));
                    return (t, ppn, 3);
                }
            }
        }
        // --- L2 TLB ---
        let l2_start = l2_port.reserve(t, 1);
        t = l2_start + 1 + gpu.l2_tlb.latency;
        let page_table = &page_tables[key.vmid.raw() as usize];
        if gpu.l2_tlb_perfect {
            // Upper bound of Figs 2-3: every request hits in the L2 TLB.
            let ppn = page_table
                .translate(key.vpn)
                .expect("footprint is demand-mapped before translation");
            let tx = Self::attach_span(reach, page_table, Translation::new(key, ppn));
            l2_tlb.lookup(key); // count the access
            let sink = Self::sink_opt(trace, *trace_on);
            let vl = Self::obs_opt(obs, *obs_on);
            Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, t, sink, vl);
            cus[cu_idx].pending.insert(key, (t, ppn));
            return (t, ppn, 4);
        }
        if let Some(tx) = l2_tlb.lookup(key) {
            let ppn = tx.ppn_for(key.vpn);
            let sink = Self::sink_opt(trace, *trace_on);
            let vl = Self::obs_opt(obs, *obs_on);
            Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, t, sink, vl);
            cus[cu_idx].pending.insert(key, (t, ppn));
            return (t, ppn, 4);
        }
        // --- Side cache (DUCATI) ---
        if let Some(sc) = side_cache.as_mut() {
            *sc_detail_lookups += 1;
            if let Some((done, ppn)) = sc.lookup(t, key, mem) {
                *sc_detail_hits += 1;
                let tx = Translation::new(key, ppn);
                if let Some(l2_victim) = l2_tlb.insert(tx) {
                    sc.fill(done, l2_victim, mem);
                }
                let sink = Self::sink_opt(trace, *trace_on);
                let vl = Self::obs_opt(obs, *obs_on);
                Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, done, sink, vl);
                cus[cu_idx].pending.insert(key, (done, ppn));
                return (done, ppn, 4);
            }
        }
        // --- IOMMU page walk ---
        let iommu_start = t;
        let outcome = {
            let mut pte = PteMem(mem);
            iommu.translate(t, key, page_table, &mut pte)
        };
        let tx = Self::attach_span(
            reach,
            page_table,
            outcome
                .translation
                .expect("footprint is demand-mapped before translation"),
        );
        t = outcome.done;
        if *obs_on {
            // Walk-latency tagging: attribute the IOMMU service time to
            // the level that resolved it (device TLBs vs a real walk).
            obs.iommu_lat[outcome.level.index()].record(t.saturating_sub(iommu_start));
        }
        if let Some(l2_victim) = l2_tlb.insert(tx) {
            if let Some(sc) = side_cache.as_mut() {
                sc.fill(t, l2_victim, mem);
            }
        }
        if reach.fill_policy == crate::config::TxFillPolicy::PrefetchBuffer
            && reach.any_enabled()
        {
            // Ablation (§4.1): prefetch the next two pages' translations
            // into the reconfigurable structures instead of caching
            // victims. Only already-mapped neighbours are prefetched.
            for ahead in 1..=2u64 {
                let nkey = TranslationKey { vpn: Vpn(key.vpn.0 + ahead), ..key };
                if let Some(ppn) = page_table.translate(nkey.vpn) {
                    let home = Self::lds_home(reach, cus.len(), nkey, cu_idx);
                    victim::fill_l1_victim_traced(
                        reach,
                        &mut cus[home].tx_lds,
                        &mut icaches[ic_idx],
                        l2_tlb,
                        Translation::new(nkey, ppn),
                        t,
                        Self::sink_opt(trace, *trace_on),
                        Self::obs_opt(obs, *obs_on),
                    );
                }
            }
        }
        let sink = Self::sink_opt(trace, *trace_on);
        let vl = Self::obs_opt(obs, *obs_on);
        Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, t, sink, vl);
        let ppn = tx.ppn_for(key.vpn);
        cus[cu_idx].pending.insert(key, (t, ppn));
        if cus[cu_idx].pending.len() > 512 {
            let horizon = now;
            cus[cu_idx].pending.retain(|_, (d, _)| *d > horizon);
        }
        (t, ppn, 5)
    }

    /// The functional-warming twin of [`Self::translate_inner`]: walks
    /// the same Fig-12 hierarchy and runs the same promote / victim
    /// fill flows so every structure's *contents* evolve exactly as a
    /// detailed warmup would demand, but consumes no port or walker
    /// bandwidth and models zero latency. Request merging never fires
    /// (there are no in-flight misses at zero latency), and the side
    /// cache is consulted through its *functional* twin methods — its
    /// resident set keeps evolving (so DUCATI's comparison point runs
    /// under sampling) while its timed DRAM traffic stays off.
    fn translate_ff(&mut self, cu_idx: usize, now: Cycle, key: TranslationKey) -> (Ppn, usize) {
        let Self {
            gpu,
            reach,
            shared,
            cus,
            translation_requests,
            sc_ff_lookups,
            sc_ff_hits,
            vpn_cus,
            peak_tx_entries,
            sample_countdown,
            trace,
            trace_on,
            obs,
            obs_on,
            ..
        } = self;
        let SharedHierarchy { page_tables, iommu, l2_tlb, icaches, side_cache, .. } = shared;
        *translation_requests += 1;
        if *sample_countdown == 0 {
            let resident: usize = cus.iter().map(|c| c.tx_lds.resident()).sum::<usize>()
                + icaches.iter().map(TxIcache::resident_tx).sum::<usize>();
            *peak_tx_entries = (*peak_tx_entries).max(resident);
            *sample_countdown = 4096;
        } else {
            *sample_countdown -= 1;
        }

        let ic_idx = cu_idx / gpu.cus_per_icache;
        if let Some(tx) = cus[cu_idx].l1_tlb.lookup(key) {
            return (tx.ppn_for(key.vpn), 0);
        }
        *vpn_cus.get_or_insert(key.vpn.0, 0) |= 1 << (cu_idx % 8);
        if reach.lds_enabled {
            let home = Self::lds_home(reach, cus.len(), key, cu_idx);
            if cus[home].tx_lds.may_hold(key) {
                if let Some(tx) = cus[home].tx_lds.lookup(key) {
                    let ppn = tx.ppn_for(key.vpn);
                    let sink = Self::sink_opt(trace, *trace_on);
                    let vl = Self::obs_opt(obs, *obs_on);
                    Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, now, sink, vl);
                    return (ppn, 2);
                }
            }
        }
        if reach.icache_enabled {
            let ic = &mut icaches[ic_idx];
            if ic.may_hold_tx(key) {
                if let Some(tx) = ic.lookup_tx(key) {
                    let ppn = tx.ppn_for(key.vpn);
                    let sink = Self::sink_opt(trace, *trace_on);
                    let vl = Self::obs_opt(obs, *obs_on);
                    Self::promote(reach, cus, cu_idx, ic, l2_tlb, tx, now, sink, vl);
                    return (ppn, 3);
                }
            }
        }
        let page_table = &page_tables[key.vmid.raw() as usize];
        if gpu.l2_tlb_perfect {
            let ppn = page_table
                .translate(key.vpn)
                .expect("footprint is demand-mapped before translation");
            let tx = Self::attach_span(reach, page_table, Translation::new(key, ppn));
            l2_tlb.lookup(key); // count the access
            let sink = Self::sink_opt(trace, *trace_on);
            let vl = Self::obs_opt(obs, *obs_on);
            Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, now, sink, vl);
            return (ppn, 4);
        }
        if let Some(tx) = l2_tlb.lookup(key) {
            let ppn = tx.ppn_for(key.vpn);
            let sink = Self::sink_opt(trace, *trace_on);
            let vl = Self::obs_opt(obs, *obs_on);
            Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, now, sink, vl);
            return (ppn, 4);
        }
        // --- Side cache (DUCATI), functional twin of the timed path ---
        if let Some(sc) = side_cache.as_mut() {
            *sc_ff_lookups += 1;
            if let Some(ppn) = sc.lookup_functional(key) {
                *sc_ff_hits += 1;
                let tx = Translation::new(key, ppn);
                if let Some(l2_victim) = l2_tlb.insert(tx) {
                    sc.fill_functional(l2_victim);
                }
                let sink = Self::sink_opt(trace, *trace_on);
                let vl = Self::obs_opt(obs, *obs_on);
                Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, now, sink, vl);
                return (ppn, 4);
            }
        }
        let outcome = iommu.translate_functional(key, page_table);
        let tx = Self::attach_span(
            reach,
            page_table,
            outcome
                .translation
                .expect("footprint is demand-mapped before translation"),
        );
        if *obs_on {
            obs.iommu_lat[outcome.level.index()].record(0);
        }
        if let Some(l2_victim) = l2_tlb.insert(tx) {
            if let Some(sc) = side_cache.as_mut() {
                sc.fill_functional(l2_victim);
            }
        }
        if reach.fill_policy == crate::config::TxFillPolicy::PrefetchBuffer && reach.any_enabled()
        {
            for ahead in 1..=2u64 {
                let nkey = TranslationKey { vpn: Vpn(key.vpn.0 + ahead), ..key };
                if let Some(ppn) = page_table.translate(nkey.vpn) {
                    let home = Self::lds_home(reach, cus.len(), nkey, cu_idx);
                    victim::fill_l1_victim_traced(
                        reach,
                        &mut cus[home].tx_lds,
                        &mut icaches[ic_idx],
                        l2_tlb,
                        Translation::new(nkey, ppn),
                        now,
                        Self::sink_opt(trace, *trace_on),
                        Self::obs_opt(obs, *obs_on),
                    );
                }
            }
        }
        let sink = Self::sink_opt(trace, *trace_on);
        let vl = Self::obs_opt(obs, *obs_on);
        Self::promote(reach, cus, cu_idx, &mut icaches[ic_idx], l2_tlb, tx, now, sink, vl);
        (tx.ppn_for(key.vpn), 5)
    }

    /// Reborrows the trace sink as the `Option` the fill-flow helpers
    /// take: `None` when tracing is disabled, so callees never pay a
    /// virtual `enabled()` query per event site.
    fn sink_opt(trace: &mut Box<dyn TraceSink>, on: bool) -> Option<&mut dyn TraceSink> {
        if on {
            Some(trace.as_mut())
        } else {
            None
        }
    }

    /// Reborrows the victim-lifetime tracker the same way: `None` when
    /// distribution recording is disarmed, so the fill-flow helpers
    /// stay zero-cost.
    fn obs_opt(obs: &mut ObsRecorder, on: bool) -> Option<&mut VictimLifetimes> {
        if on {
            Some(&mut obs.victim)
        } else {
            None
        }
    }

    /// Upgrades a freshly walked translation to a coalesced
    /// (variable-reach) entry when `reach.tlb_coalescing` is enabled:
    /// the page table reports the largest power-of-two-aligned
    /// contiguous run containing the page (uniform protection, one
    /// address space by construction), and the translation is
    /// normalized to that run's base. With coalescing off this is the
    /// identity, keeping the baseline path bit-exact.
    fn attach_span(reach: &ReachConfig, page_table: &PageTable, tx: Translation) -> Translation {
        match reach.tlb_coalescing {
            Some(max) if max > 0 => {
                let span = page_table.contiguity_span(tx.key.vpn, max);
                if span > 0 {
                    Translation::with_span(tx.key, tx.ppn, span)
                } else {
                    tx
                }
            }
            _ => tx,
        }
    }

    /// Installs `tx` into the CU's L1 TLB and routes the displaced
    /// victim through the Fig-12 fill flow (fills happen off the
    /// request's critical path). Under the prefetch-buffer ablation
    /// victims skip the reconfigurable structures entirely.
    #[allow(clippy::too_many_arguments)]
    fn promote(
        reach: &ReachConfig,
        cus: &mut [Cu],
        cu_idx: usize,
        ic: &mut TxIcache,
        l2: &mut Tlb,
        tx: Translation,
        now: Cycle,
        sink: Option<&mut dyn TraceSink>,
        obs: Option<&mut VictimLifetimes>,
    ) {
        if let Some(victim) = cus[cu_idx].l1_tlb.insert(tx) {
            match reach.fill_policy {
                crate::config::TxFillPolicy::VictimCache => {
                    let home = Self::lds_home(reach, cus.len(), victim.key, cu_idx);
                    victim::fill_l1_victim_traced(
                        reach,
                        &mut cus[home].tx_lds,
                        ic,
                        l2,
                        victim,
                        now,
                        sink,
                        obs,
                    );
                }
                crate::config::TxFillPolicy::PrefetchBuffer => {
                    let displaced = l2.insert(victim);
                    if let Some(s) = sink {
                        s.emit(&TraceEvent::VictimInsert {
                            cycle: now,
                            structure: TxStructure::L2Tlb,
                            vpn: victim.key.vpn.0,
                            vmid: victim.key.vmid.raw(),
                            evicted_vpn: displaced.map(|e| e.key.vpn.0),
                            evicted_vmid: displaced.map(|e| e.key.vmid.raw()),
                            mode_flip: false,
                        });
                    }
                }
            }
        }
    }

    /// Which CU's LDS stores a translation: the requester's own under
    /// the paper's design, or `vpn % CUs` under home-node hashing (the
    /// duplication-limiting optimization the paper defers).
    fn lds_home(reach: &ReachConfig, cus: usize, key: TranslationKey, requester: usize) -> usize {
        if reach.lds_home_hashing {
            (key.vpn.0 as usize) % cus
        } else {
            requester
        }
    }

    fn sample_peak_entries(&mut self) {
        let resident: usize = self.cus.iter().map(|c| c.tx_lds.resident()).sum::<usize>()
            + self.shared.resident_tx_icache();
        self.peak_tx_entries = self.peak_tx_entries.max(resident);
    }

    /// One sampling transition at an instruction boundary: closes the
    /// current window, accounts its instructions / cycles to the right
    /// bucket, and arms the next window (or ends a capture run).
    fn sample_tick(&mut self, now: Cycle) {
        if self.capture_on {
            self.capture_done = true;
            self.sample_boundary = u64::MAX;
            return;
        }
        let Some(cfg) = self.sampling else {
            self.sample_boundary = u64::MAX;
            return;
        };
        self.close_span(now);
        match self.sample_mode {
            SampleMode::Warmup | SampleMode::Fastforward => {
                self.sample_mode = SampleMode::Detail;
                self.ff_on = false;
                self.sample_boundary = self.instructions + cfg.detail;
                // Host-profiler instant mark (guest state untouched):
                // interval transitions paint the detail/fast-forward
                // cadence onto the worker's timeline lane.
                gtr_sim::prof::mark("sample:detail");
            }
            SampleMode::Detail => {
                self.sample_mode = SampleMode::Fastforward;
                self.ff_on = true;
                self.sample_boundary = self.instructions + cfg.fastforward;
                gtr_sim::prof::mark("sample:ff");
            }
        }
    }

    /// Closes the span running up to `now` into the current mode's
    /// accumulators. Detail spans additionally update the running CPI
    /// used to extrapolate neighbouring skipped spans (SMARTS-style
    /// piecewise extrapolation: each skipped span is costed at the CPI
    /// of its nearest measured interval, so phase behaviour survives
    /// into the estimate); skipped spans with no preceding detail CPI
    /// (the warmup window) wait in `ff_pending_insts` and are costed
    /// backward from the first interval that closes.
    fn close_span(&mut self, now: Cycle) {
        let span_insts = self.instructions - self.span_start_insts;
        let span_cycles = now.saturating_sub(self.span_start_cycle);
        match self.sample_mode {
            SampleMode::Warmup => {
                self.warmup_insts_acc += span_insts;
                self.warmup_cycles += span_cycles;
                self.ff_pending_insts += span_insts;
            }
            SampleMode::Detail => {
                // Zero-instruction spans still close: the cycle
                // partition invariant needs every span accounted.
                self.detail_spans.push((span_insts, span_cycles));
                if span_insts > 0 && span_cycles > 0 {
                    let cpi = span_cycles as f64 / span_insts as f64;
                    self.last_detail_cpi = cpi;
                    if self.ff_pending_insts > 0 {
                        self.extrapolated_acc += self.ff_pending_insts as f64 * cpi;
                        self.ff_pending_insts = 0;
                    }
                }
            }
            SampleMode::Fastforward => {
                self.ff_insts_acc += span_insts;
                self.ff_cycles += span_cycles;
                if self.last_detail_cpi > 0.0 {
                    self.extrapolated_acc += span_insts as f64 * self.last_detail_cpi;
                } else {
                    self.ff_pending_insts += span_insts;
                }
            }
        }
        self.span_start_insts = self.instructions;
        self.span_start_cycle = now;
    }

    /// Closes the window the run ended inside and reduces the interval
    /// record to a [`SamplingMeta`]: per-interval CPI extrapolation
    /// over the skipped instructions, plus an error bound = the
    /// detail-interval CPI spread weighted by the extrapolated share.
    /// `None` when sampling was never armed.
    fn finish_sampling(&mut self, t_end: Cycle) -> Option<SamplingMeta> {
        let cfg = self.sampling?;
        self.close_span(t_end);
        let detail_insts: u64 = self.detail_spans.iter().map(|&(i, _)| i).sum();
        let detail_cycles: Cycle = self.detail_spans.iter().map(|&(_, c)| c).sum();
        let cpi = if detail_insts > 0 {
            detail_cycles as f64 / detail_insts as f64
        } else {
            0.0
        };
        // Skipped instructions that never saw a usable interval CPI
        // fall back to the global detail CPI.
        if self.ff_pending_insts > 0 {
            self.extrapolated_acc += self.ff_pending_insts as f64 * cpi;
            self.ff_pending_insts = 0;
        }
        let extrapolated_cycles = self.extrapolated_acc.round() as u64;
        let mut min_cpi = f64::INFINITY;
        let mut max_cpi = 0.0f64;
        let mut measured_intervals = 0u32;
        for &(i, c) in &self.detail_spans {
            if i > 0 {
                let v = c as f64 / i as f64;
                min_cpi = min_cpi.min(v);
                max_cpi = max_cpi.max(v);
                measured_intervals += 1;
            }
        }
        let spread = if measured_intervals >= 2 && cpi > 0.0 {
            (max_cpi - min_cpi) / cpi
        } else {
            0.0
        };
        let total = detail_cycles + extrapolated_cycles;
        let share = if total > 0 {
            extrapolated_cycles as f64 / total as f64
        } else {
            0.0
        };
        // Side-cache (DUCATI) divergence: how far the functional
        // fast-forward hit rate drifted from the detailed one, weighted
        // by the extrapolated share. Zero when no side cache is
        // attached or it was never consulted.
        let hr = |hits: u64, lookups: u64| {
            if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            }
        };
        let sc_divergence = if self.sc_detail_lookups > 0 && self.sc_ff_lookups > 0 {
            (hr(self.sc_detail_hits, self.sc_detail_lookups)
                - hr(self.sc_ff_hits, self.sc_ff_lookups))
            .abs()
        } else {
            0.0
        };
        Some(SamplingMeta {
            warmup_window: cfg.warmup,
            detail_window: cfg.detail,
            fastforward_window: cfg.fastforward,
            detail_intervals: self.detail_spans.len() as u64,
            warmup_insts: self.warmup_insts_acc,
            detail_insts,
            fastforward_insts: self.ff_insts_acc,
            warmup_cycles: self.warmup_cycles,
            detail_cycles,
            fastforward_cycles: self.ff_cycles,
            extrapolated_cycles,
            measured_cycles: t_end,
            error_bound_pct: spread * share * 100.0,
            side_cache_error_bound_pct: sc_divergence * share * 100.0,
            checkpoint_restored: self.checkpoint_restored,
        })
    }

    /// Records one epoch sample at `now` and arms the next period
    /// boundary. Sparse phases may skip whole periods (the sampler
    /// fires on the first event at or after a boundary), so epochs are
    /// spaced *at least* `epoch_len` cycles apart.
    fn snapshot_epoch(&mut self, now: Cycle) {
        let snap = self.epoch_snapshot(now);
        self.epochs.push(snap);
        self.next_epoch = (now / self.epoch_len + 1) * self.epoch_len;
    }

    /// A cumulative counter snapshot at `cycle`. Reads the same
    /// sources `finalize` aggregates into [`RunStats`], so the final
    /// snapshot (taken at `t_end`) equals the run totals field for
    /// field — the invariant `export::check_epoch_invariants` gates.
    fn epoch_snapshot(&self, cycle: Cycle) -> EpochStats {
        let mut l1 = gtr_sim::stats::HitMiss::new();
        let mut lds = gtr_sim::stats::HitMiss::new();
        let mut lds_resident = 0u64;
        for cu in &self.cus {
            l1.merge(cu.l1_tlb.stats());
            lds.merge(cu.tx_lds.stats().lookups);
            lds_resident += cu.tx_lds.resident() as u64;
        }
        let mut ic = gtr_sim::stats::HitMiss::new();
        let mut ic_resident = 0u64;
        for icache in &self.shared.icaches {
            ic.merge(icache.stats().tx_lookups);
            ic_resident += icache.resident_tx() as u64;
        }
        let l2 = self.shared.l2_tlb.stats();
        EpochStats {
            cycle,
            translation_requests: self.translation_requests,
            l1_hits: l1.hits,
            l1_misses: l1.misses,
            l2_hits: l2.hits,
            l2_misses: l2.misses,
            lds_tx_hits: lds.hits,
            lds_tx_misses: lds.misses,
            ic_tx_hits: ic.hits,
            ic_tx_misses: ic.misses,
            page_walks: self.shared.iommu.walks(),
            instructions: self.instructions,
            dram_accesses: self.shared.mem.dram().reads() + self.shared.mem.dram().writes(),
            resident_tx: lds_resident + ic_resident,
            lds_resident_tx: lds_resident,
            ic_resident_tx: ic_resident,
        }
    }

    /// Reads the cumulative counters the per-tenant attribution deltas
    /// against — the same sources `epoch_snapshot` and `finalize`
    /// aggregate, so the tenancy sums-to-globals invariant holds by
    /// construction.
    fn tenant_snapshot(&self) -> TenantSnap {
        let mut s = TenantSnap {
            requests: self.translation_requests,
            walks: self.shared.iommu.walks(),
            ..TenantSnap::default()
        };
        for cu in &self.cus {
            let l1 = cu.l1_tlb.stats();
            s.l1_hits += l1.hits;
            s.l1_misses += l1.misses;
            let lds = cu.tx_lds.stats().lookups;
            s.lds_hits += lds.hits;
            s.lds_misses += lds.misses;
        }
        for ic in &self.shared.icaches {
            let tx = ic.stats().tx_lookups;
            s.ic_hits += tx.hits;
            s.ic_misses += tx.misses;
        }
        let l2 = self.shared.l2_tlb.stats();
        s.l2_hits += l2.hits;
        s.l2_misses += l2.misses;
        s
    }

    /// Credits the counter movement since the last kernel boundary to
    /// the retired kernel's tenant. Called from [`Self::run`] only when
    /// `tenancy_on`; the accumulator grows on demand and is padded to
    /// the configured tenant count in `finalize`.
    fn attribute_kernel_to_tenant(&mut self, kernel: &KernelDesc, cycles: Cycle, instructions: u64) {
        let snap = self.tenant_snapshot();
        let prev = self.last_tenant_snap;
        self.last_tenant_snap = snap;
        let idx = kernel.vm_id().raw() as usize;
        if self.tenant_acc.len() <= idx {
            self.tenant_acc.resize_with(idx + 1, TenantStats::default);
        }
        let t = &mut self.tenant_acc[idx];
        if t.app.is_empty() {
            t.app = kernel.name().to_string();
        }
        t.cycles += cycles;
        t.instructions += instructions;
        t.translation_requests += snap.requests - prev.requests;
        t.l1_tlb.hits += snap.l1_hits - prev.l1_hits;
        t.l1_tlb.misses += snap.l1_misses - prev.l1_misses;
        t.lds_tx.hits += snap.lds_hits - prev.lds_hits;
        t.lds_tx.misses += snap.lds_misses - prev.lds_misses;
        t.ic_tx.hits += snap.ic_hits - prev.ic_hits;
        t.ic_tx.misses += snap.ic_misses - prev.ic_misses;
        t.l2_tlb.hits += snap.l2_hits - prev.l2_hits;
        t.l2_tlb.misses += snap.l2_misses - prev.l2_misses;
        t.page_walks += snap.walks - prev.walks;
    }

    fn finalize(&mut self, app: &AppTrace, t_end: Cycle, kernels: Vec<KernelStats>) -> RunStats {
        self.sample_peak_entries();
        let sampling_meta = self.finish_sampling(t_end);
        if self.epoch_len > 0 {
            // The closing snapshot at t_end makes the last epoch equal
            // the run totals (deduplicated if the final event already
            // landed exactly on a period boundary).
            let snap = self.epoch_snapshot(t_end);
            if self.epochs.last() != Some(&snap) {
                self.epochs.push(snap);
            }
        }
        self.trace.flush();
        let mut l1 = gtr_sim::stats::HitMiss::new();
        let mut lds_tx = gtr_sim::stats::HitMiss::new();
        let mut lds_req = Sampler::new();
        let mut lds_idle = Sampler::new();
        for (cu, alloc) in self.cus.iter().zip(&self.lds_allocs) {
            l1.merge(cu.l1_tlb.stats());
            lds_tx.merge(cu.tx_lds.stats().lookups);
            for &v in alloc.request_sizes().samples() {
                lds_req.record(v);
            }
            for &v in cu.lds_port.idle_gaps().samples() {
                lds_idle.record(v);
            }
        }
        let mut ic_tx = gtr_sim::stats::HitMiss::new();
        let mut inst_fetch = gtr_sim::stats::HitMiss::new();
        let mut ic_idle = Sampler::new();
        for ic in &self.shared.icaches {
            ic_tx.merge(ic.stats().tx_lookups);
            inst_fetch.merge(ic.stats().inst);
            for &v in ic.port().idle_gaps().samples() {
                ic_idle.record(v);
            }
        }
        let mut util = Sampler::new();
        for k in &kernels {
            util.record(k.icache_utilization_pct);
        }
        let shared = if self.vpn_cus.is_empty() {
            0.0
        } else {
            self.vpn_cus.values().filter(|m| m.count_ones() > 1).count() as f64
                / self.vpn_cus.len() as f64
        };
        // Entries still resident stay censored: only completed
        // lifetimes made it into the histograms.
        let obs = std::mem::take(&mut self.obs);
        let coalescing = self.reach.tlb_coalescing.map(|_| {
            let mut co = self.shared.l2_tlb.coalescing_counters();
            for cu in &self.cus {
                co.merge(&cu.l1_tlb.coalescing_counters());
                co.merge(&cu.tx_lds.stats().coalescing);
            }
            for ic in &self.shared.icaches {
                co.merge(&ic.stats().coalescing);
            }
            crate::stats::CoalescingStats::from_counters(&co)
        });
        let tenants = if let Some(tc) = self.reach.tenancy {
            // Pad to the configured tenant count (a tenant whose
            // workload never launched still appears, zeroed) and stamp
            // the VM-IDs the index order implies.
            if self.tenant_acc.len() < tc.tenants as usize {
                self.tenant_acc.resize_with(tc.tenants as usize, TenantStats::default);
            }
            for (i, t) in self.tenant_acc.iter_mut().enumerate() {
                t.vmid = i as u8;
            }
            std::mem::take(&mut self.tenant_acc)
        } else {
            Vec::new()
        };
        RunStats {
            app: app.name().to_string(),
            // A sampled run reports detail cycles + CPI extrapolation
            // over the skipped windows (the paper-scale estimate); the
            // raw event-clock end lives in `sampling.measured_cycles`.
            total_cycles: match &sampling_meta {
                Some(m) if m.detail_insts > 0 => m.detail_cycles + m.extrapolated_cycles,
                _ => t_end,
            },
            instructions: self.instructions,
            thread_instructions: self.instructions * self.gpu.threads_per_wave as u64,
            translation_requests: self.translation_requests,
            l1_tlb: l1,
            l2_tlb: self.shared.l2_tlb.stats(),
            lds_tx,
            ic_tx,
            inst_fetch,
            page_walks: self.shared.iommu.walks(),
            pte_accesses: self.shared.iommu.stats().pte_accesses,
            dev_l1_tlb: self.shared.iommu.stats().dev_l1,
            dev_l2_tlb: self.shared.iommu.stats().dev_l2,
            pwc_pmd: self.shared.iommu.pwc_stats().2,
            dram_accesses: self.shared.mem.dram().reads() + self.shared.mem.dram().writes(),
            dram_energy_nj: self.shared.mem.dram_energy_nj(t_end),
            peak_tx_entries: self.peak_tx_entries,
            tx_shared_fraction: shared,
            kernels,
            lds_request_summary: lds_req.five_number_summary(),
            lds_idle_summary: lds_idle.five_number_summary(),
            icache_idle_summary: ic_idle.five_number_summary(),
            icache_utilization_summary: util.five_number_summary(),
            epoch_len: self.epoch_len,
            epochs: std::mem::take(&mut self.epochs),
            attribution: CycleAttribution::from_counts(&self.path_stats),
            dist_enabled: self.obs_on,
            latency_hists: obs.lat,
            iommu_latency: obs.iommu_lat,
            victim_lifetime_lds: obs.victim.lifetime_lds,
            victim_lifetime_ic: obs.victim.lifetime_ic,
            victim_reuse_lds: obs.victim.reuse_lds,
            victim_reuse_ic: obs.victim.reuse_ic,
            sampling: sampling_meta,
            tenants,
            coalescing,
        }
    }
}

impl System {
    /// Diagnostic summary of component occupancy (for calibration and
    /// bottleneck analysis; not part of the stable API surface).
    pub fn debug_busy(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "l2_tlb_port intervals={} | walks={}\n",
            self.shared.l2_port.interval_count(),
            self.shared.iommu.walks(),
        ));
        for (i, cu) in self.cus.iter().enumerate() {
            out.push_str(&format!(
                "cu{i}: l1port busy={} req={} ldsport acc={} pending={}\n",
                cu.l1_port.busy_cycles(),
                cu.l1_port.requests(),
                cu.lds_port.accesses(),
                cu.pending.len(),
            ));
        }
        for (i, ic) in self.shared.icaches.iter().enumerate() {
            out.push_str(&format!("ic{i}: port acc={}\n", ic.port().accesses()));
        }
        let names = ["l1hit", "merged", "lds", "ic", "l2", "walk"];
        for (i, (c, sum)) in self.path_stats.iter().enumerate() {
            if *c > 0 {
                out.push_str(&format!("path {}: n={} avg={}\n", names[i], c, sum / c));
            }
        }
        out.push_str(&format!(
            "oplat avg={} n={} | fetchwait avg={} n={}\n",
            self.op_latency_sum / self.op_count.max(1),
            self.op_count,
            self.fetch_wait_sum / self.fetch_count.max(1),
            self.fetch_count,
        ));
        out.push_str(&format!(
            "txlat avg={} max={}\n",
            self.tx_latency_sum / self.translation_requests.max(1),
            self.tx_latency_max,
        ));
        out.push_str(&format!(
            "dram reads={} writes={} rowhit={:.2} | merged={} treq={}\n",
            self.shared.mem.dram().reads(),
            self.shared.mem.dram().writes(),
            self.shared.mem.dram().row_hit_rate(),
            self.merged_requests,
            self.translation_requests,
        ));
        out
    }

}

/// Convenience: run `app` under `reach` on a default Table-1 machine.
pub fn run_app(app: &AppTrace, reach: ReachConfig) -> RunStats {
    System::new(GpuConfig::default(), reach).run(app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtr_gpu::kernel::{WaveProgram, WorkgroupDesc};

    fn simple_app(pages: u64, ops_per_wave: usize, waves: usize) -> AppTrace {
        // Each op reads 64 lanes scattered over `pages` pages.
        let mut progs = Vec::new();
        for w in 0..waves {
            let ops = (0..ops_per_wave)
                .map(|i| {
                    let base = ((w * ops_per_wave + i) as u64 * 64) % pages * 4096;
                    Op::global_read_strided(base, 4096, 64)
                })
                .collect();
            progs.push(WaveProgram::new(ops));
        }
        let wgs = progs
            .chunks(4)
            .map(|c| WorkgroupDesc::new(c.to_vec()))
            .collect();
        AppTrace::new("test", vec![KernelDesc::new("k", 8, 0, wgs)])
    }

    #[test]
    fn runs_to_completion_and_counts() {
        let app = simple_app(256, 4, 8);
        let stats = run_app(&app, ReachConfig::baseline());
        assert!(stats.total_cycles > 0);
        assert_eq!(stats.instructions, app.total_ops());
        assert!(stats.translation_requests > 0);
        assert!(stats.page_walks > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let app = simple_app(512, 8, 16);
        let a = run_app(&app, ReachConfig::ic_plus_lds());
        let b = run_app(&app, ReachConfig::ic_plus_lds());
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.page_walks, b.page_walks);
        assert_eq!(a.dram_accesses, b.dram_accesses);
    }

    #[test]
    fn victim_structures_reduce_page_walks_when_thrashing() {
        // Footprint far beyond L1 (32) and L2 (512) TLB reach, revisited
        // repeatedly: the victim structures should capture the reuse.
        let pages = 2048u64;
        let mut progs = Vec::new();
        for w in 0..16usize {
            let mut ops = Vec::new();
            for rep in 0..6 {
                let _ = rep;
                for i in 0..8usize {
                    let first = (w * 8 + i) as u64 * 97 % pages;
                    ops.push(Op::global_read_strided(first * 4096, 4096 * 8, 64));
                }
            }
            progs.push(WaveProgram::new(ops));
        }
        let wgs = progs.chunks(4).map(|c| WorkgroupDesc::new(c.to_vec())).collect();
        let app = AppTrace::new("thrash", vec![KernelDesc::new("k", 8, 0, wgs)]);
        let base = run_app(&app, ReachConfig::baseline());
        let reach = run_app(&app, ReachConfig::ic_plus_lds());
        assert!(
            reach.page_walks < base.page_walks,
            "victim caching should cut walks: base={} reach={}",
            base.page_walks,
            reach.page_walks
        );
        assert!(reach.victim_hits() > 0);
    }

    #[test]
    fn baseline_unaffected_structures_stay_empty() {
        let app = simple_app(64, 2, 4);
        let mut sys = System::new(GpuConfig::default(), ReachConfig::baseline());
        let stats = sys.run(&app);
        assert_eq!(stats.victim_hits(), 0);
        assert_eq!(stats.peak_tx_entries, 0);
    }

    #[test]
    fn lds_using_workgroups_block_tx_capacity() {
        // One workgroup per CU holding the whole LDS: Tx inserts bypass.
        let wave = WaveProgram::new(vec![
            Op::lds_write(0),
            Op::global_read_strided(0, 4096, 64),
            Op::lds_read(0),
        ]);
        let wgs = (0..8).map(|_| WorkgroupDesc::new(vec![wave.clone()])).collect();
        let app = AppTrace::new("ldsy", vec![KernelDesc::new("k", 4, 16 * 1024, wgs)]);
        let stats = run_app(&app, ReachConfig::lds_only());
        assert_eq!(stats.lds_tx.hits, 0, "whole LDS app-owned: no tx capacity");
    }

    #[test]
    fn barrier_synchronizes_waves() {
        let fast = WaveProgram::new(vec![Op::compute(1), Op::Barrier, Op::compute(1)]);
        let slow = WaveProgram::new(vec![Op::compute(10_000), Op::Barrier, Op::compute(1)]);
        let app = AppTrace::new(
            "bar",
            vec![KernelDesc::new("k", 1, 0, vec![WorkgroupDesc::new(vec![fast, slow])])],
        );
        let stats = run_app(&app, ReachConfig::baseline());
        assert!(stats.total_cycles >= 10_000, "fast wave must wait at the barrier");
    }

    #[test]
    fn larger_l2_tlb_reduces_walks() {
        let app = simple_app(4096, 16, 32);
        let small = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&app);
        let big = System::new(
            GpuConfig::default().with_l2_tlb_entries(64 * 1024),
            ReachConfig::baseline(),
        )
        .run(&app);
        assert!(big.page_walks < small.page_walks);
        // Cycle time may wobble slightly from second-order interleaving
        // effects; allow 5% slack on top of the walk reduction.
        assert!(big.total_cycles as f64 <= small.total_cycles as f64 * 1.05);
    }

    #[test]
    fn tenant_sums_telescope_to_globals_under_every_policy() {
        use gtr_vm::tenancy::SharingPolicy;
        let solo = simple_app(512, 8, 16);
        for policy in SharingPolicy::all() {
            let app = AppTrace::replicate(&solo, 2);
            let stats = run_app(&app, ReachConfig::ic_plus_lds().with_tenancy(2, policy));
            assert_eq!(stats.tenants.len(), 2, "{policy}: one record per tenant");
            assert!(
                stats.tenants.iter().all(|t| t.instructions > 0 && t.cycles > 0),
                "{policy}: both tenants executed"
            );
            let problems = crate::export::check_tenancy_invariants(&stats);
            assert!(problems.is_empty(), "{policy}: {problems:?}");
        }
    }

    #[test]
    fn single_tenant_run_matches_untenanted_bit_for_bit() {
        use gtr_vm::tenancy::SharingPolicy;
        let app = simple_app(512, 8, 16);
        let base = run_app(&app, ReachConfig::ic_plus_lds());
        let untenanted = crate::export::run_stats_to_json_string(&base);
        for policy in SharingPolicy::all() {
            let mut t1 = run_app(&app, ReachConfig::ic_plus_lds().with_tenancy(1, policy));
            assert_eq!(t1.tenants.len(), 1, "{policy}");
            assert_eq!(t1.tenants[0].instructions, t1.instructions, "{policy}");
            // After dropping the per-tenant appendix, the export must
            // be byte-identical to the tenancy-off run: one tenant
            // shares nothing, partitions nothing, and sub-entry masks
            // collapse to plain vmid tags.
            t1.tenants.clear();
            assert_eq!(
                crate::export::run_stats_to_json_string(&t1),
                untenanted,
                "{policy}: single-tenant run must not perturb the model"
            );
        }
    }

    #[test]
    fn shootdowns_attributed_to_the_owning_tenant() {
        use crate::driver::MigrationEvent;
        use gtr_vm::addr::VmId;
        use gtr_vm::tenancy::SharingPolicy;
        let app = AppTrace::replicate(&simple_app(256, 4, 8), 2);
        // Migrate pages only in tenant 1's address space, triggered
        // deep enough into the run that tenant 1's kernel (launched
        // second) has demand-mapped them.
        let schedule = DriverSchedule::new().migrate(MigrationEvent {
            after_translations: 3000,
            pages: (0..16).map(|v| (VmId::new(1), Vpn(v))).collect(),
        });
        let mut sys = System::new(
            GpuConfig::default(),
            ReachConfig::ic_plus_lds().with_tenancy(2, SharingPolicy::SubEntry),
        )
        .with_driver_schedule(schedule);
        let stats = sys.run(&app);
        let report = sys.shootdown_report();
        assert!(report.pages_migrated > 0, "some touched pages migrated");
        assert_eq!(stats.tenants[0].shootdowns, 0);
        assert_eq!(stats.tenants[1].shootdowns, report.pages_migrated);
        sys.check_translation_coherence();
    }

    #[test]
    fn kernel_stats_cover_all_launches() {
        let k = |n: &str| {
            KernelDesc::new(
                n,
                4,
                0,
                vec![WorkgroupDesc::new(vec![WaveProgram::new(vec![Op::compute(1)])])],
            )
        };
        let app = AppTrace::new("multi", vec![k("a"), k("b"), k("a")]);
        let stats = run_app(&app, ReachConfig::ic_plus_lds());
        assert_eq!(stats.kernels.len(), 3);
        assert_eq!(stats.kernels[0].name, "a");
        assert!(stats.kernels.iter().all(|k| k.cycles > 0));
    }
}
