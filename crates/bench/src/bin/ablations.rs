//! Regenerates the design-choice ablations (victim-vs-prefetch, PWC
//! on/off, coalescer on/off, LDS segment size).
fn main() {
    let scale = scale_from_args();
    println!("{}", gtr_bench::figures::ablations(scale));
    println!("{}", gtr_bench::figures::ablation_segment_size(scale));
    println!("{}", gtr_bench::figures::multi_app(scale));
}

fn scale_from_args() -> gtr_workloads::scale::Scale {
    if std::env::args().any(|a| a == "--quick") {
        gtr_workloads::scale::Scale::quick()
    } else if std::env::args().any(|a| a == "--tiny") {
        gtr_workloads::scale::Scale::tiny()
    } else {
        gtr_workloads::scale::Scale::paper()
    }
}
