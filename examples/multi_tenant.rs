//! First-class multi-tenancy (§7.2, TENANCY.md): several tenants'
//! kernels interleave on the GPU, each in its own address space, and
//! the victim structures share capacity under an explicit
//! [`SharingPolicy`].
//!
//! Two scenarios:
//!
//! 1. **Heterogeneous pair** — ATAX and BICG interleaved
//!    ([`AppTrace::interleave_many`]), the paper's own §7.2 setup,
//!    under every sharing policy.
//! 2. **Homogeneous quad** — four copies of ATAX
//!    ([`AppTrace::replicate`]), the page-dedup best case where
//!    sub-entry sharing collapses the tenants' content-identical
//!    pages onto shared entries (arXiv 2404.18361 §4). Per-tenant
//!    slowdowns come from the exported [`TenantStats`].
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use gpu_translation_reach::core_arch::config::ReachConfig;
use gpu_translation_reach::core_arch::stats::TenantStats;
use gpu_translation_reach::core_arch::system::System;
use gpu_translation_reach::gpu::config::GpuConfig;
use gpu_translation_reach::gpu::kernel::AppTrace;
use gpu_translation_reach::vm::tenancy::SharingPolicy;
use gpu_translation_reach::workloads::{scale::Scale, suite};

fn main() {
    let scale = Scale::quick();

    // --- Scenario 1: the paper's §7.2 pair, per policy. -------------
    let a = suite::by_name("ATAX", scale).unwrap();
    let b = suite::by_name("BICG", scale).unwrap();
    let merged = AppTrace::interleave_many(&[&a, &b]);
    println!(
        "tenants: {} + {} => {} ({} interleaved kernel launches)\n",
        a.name(),
        b.name(),
        merged.name(),
        merged.kernels().len()
    );
    println!("{:<12} {:>12} {:>9} {:>10}  per-tenant cycles", "policy", "cycles", "walks", "speedup");
    let base = System::new(GpuConfig::default(), ReachConfig::baseline()).run(&merged);
    for policy in SharingPolicy::all() {
        let reach = ReachConfig::ic_plus_lds().with_tenancy(2, policy);
        let mut sys = System::new(GpuConfig::default(), reach);
        let stats = sys.run(&merged);
        let per_tenant: Vec<String> = stats
            .tenants
            .iter()
            .map(|t: &TenantStats| format!("{}={}", t.app, t.cycles))
            .collect();
        println!(
            "{:<12} {:>12} {:>9} {:>9.2}x  {}",
            policy.to_string(),
            stats.total_cycles,
            stats.page_walks,
            base.total_cycles as f64 / stats.total_cycles as f64,
            per_tenant.join(" ")
        );
        // Both tenants map their matrices at the same virtual base;
        // the VM-ID (or, under sub-entry sharing, the per-tenant valid
        // mask) keeps every cached translation coherent with the right
        // tenant's page table.
        sys.check_translation_coherence();
    }

    // --- Scenario 2: four identical tenants, slowdown vs solo. ------
    let solo = System::new(GpuConfig::default(), ReachConfig::ic_plus_lds()).run(&a);
    let solo_cycles: u64 = solo.kernels.iter().map(|k| k.cycles).sum();
    let quad = AppTrace::replicate(&a, 4);
    println!("\nfour {} tenants (IC+LDS; solo basis {} cycles):", a.name(), solo_cycles);
    for policy in SharingPolicy::all() {
        let reach = ReachConfig::ic_plus_lds().with_tenancy(4, policy);
        let mut stats = System::new(GpuConfig::default(), reach).run(&quad);
        for t in &mut stats.tenants {
            t.solo_cycles = solo_cycles;
        }
        let slowdowns: Vec<String> =
            stats.tenants.iter().map(|t| format!("{:.2}x", t.slowdown())).collect();
        println!("{:<12} per-tenant slowdown: {}", policy.to_string(), slowdowns.join(" "));
    }
    println!("\n(the tenancy sweep figure runs this at scale: `cargo run --release -p gtr-bench --bin tenancy`)");
}
